//! Offline stand-in for `crossbeam`, providing the
//! [`utils::CachePadded`] subset the workspace uses (shard padding in the
//! execution cache, avoiding false sharing between shard locks).

#![forbid(unsafe_code)]

/// Utilities (mirrors `crossbeam::utils`).
pub mod utils {
    /// Pads and aligns a value to (at least) a cache-line boundary so that
    /// adjacent shards never share a line.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }
}
