//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — measuring real wall-clock time with a simple
//! warmup + median-of-samples scheme.  No HTML reports or statistics
//! beyond mean/median; results print as `<name> ... time: <t>`.
//!
//! Environment knobs: `CRITERION_SAMPLES` overrides the per-benchmark
//! sample count (default 10); the first CLI argument, if present, filters
//! benchmarks by substring (so `cargo bench -- fleet` works).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn filter_arg() -> Option<String> {
    // Skip flags cargo/libtest may pass (e.g. `--bench`); the first bare
    // argument is the name filter.
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Runs timed iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, recording the median over the configured sample count
    /// (after one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// Identifies a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a benchmark name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 1000);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the stub's cost model is sample-count-based).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: self.samples,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("{full:<55} time: {}", fmt_duration(b.last_median));
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.name, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: filter_arg(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = default_samples();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut b = Bencher {
            samples: 3,
            last_median: Duration::ZERO,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.last_median > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
