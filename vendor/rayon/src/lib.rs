//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the parallel-iterator API subset it uses (`into_par_iter`, `par_iter`,
//! `map`, `filter`, `sum`, `fold`, `reduce`, `collect`, `for_each`) with a
//! sequential executor.  Semantics match rayon's on one thread: `fold`
//! produces per-"thread" accumulators (here: exactly one) and `reduce`
//! merges them, so fold/reduce pipelines written for rayon run unchanged
//! and deterministically.

#![forbid(unsafe_code)]

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

/// Sequential "parallel" iterator: a thin wrapper over a std iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Filters items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Runs `f` on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Rayon-style fold: seeds one accumulator per worker (sequentially:
    /// exactly one) and folds every item into it, yielding the accumulators
    /// as a new iterator to be `reduce`d.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.inner.fold(identity(), fold_op);
        ParIter {
            inner: std::iter::once(acc),
        }
    }

    /// Rayon-style reduce: merges all items pairwise starting from the
    /// identity.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Minimum by a key function.
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.inner.min_by_key(f)
    }

    /// Maximum by a key function.
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.inner.max_by_key(f)
    }
}

/// Conversion into a (sequentially executed) parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type Iter = <&'a T as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type Item = <&'a mut T as IntoIterator>::Item;
    type Iter = <&'a mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Runs both closures (sequentially) and returns their results — rayon's
/// `join` signature.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_pipeline_matches_sequential() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_sum_and_par_iter() {
        let v = vec![1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().map(|x| x * 2.0).sum();
        assert_eq!(s, 12.0);
        let doubled: Vec<i32> = (0..4).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
    }
}
