//! Offline stand-in for `tokio`, implementing exactly the API subset
//! `pmssd` uses.
//!
//! The execution model is thread-per-task: [`task::spawn`] runs each
//! future to completion on its own OS thread, and the I/O types wrap
//! their `std` counterparts with methods that *block inside the task's
//! thread* but present tokio's `async` call shape (`accept().await`,
//! `read_exact(&mut buf).await`).  Under thread-per-task, blocking a
//! task blocks only its own thread — exactly the semantics tokio's
//! `spawn_blocking` pool provides — so daemon code written against this
//! stand-in keeps tokio's concurrency structure: many live connections,
//! each a task, none stalling the others.
//!
//! [`runtime::Runtime::block_on`] is a real single-future executor (a
//! parked-thread waker), because joining a [`task::JoinHandle`] is the
//! one place a future here is genuinely pending before completion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Single-future executor entry point.
pub mod runtime {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::{Condvar, Mutex};
    use std::task::{Context, Poll, Wake, Waker};

    /// Parker behind the waker: `wake` flips the flag and notifies the
    /// blocked `block_on` thread.
    struct Parker {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    impl Wake for Parker {
        fn wake(self: std::sync::Arc<Self>) {
            *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_one();
        }
    }

    /// The stand-in runtime: construction is infallible (there is no
    /// reactor to start), kept `Result`-shaped for tokio parity.
    #[derive(Debug, Default)]
    pub struct Runtime;

    impl Runtime {
        /// Creates a runtime.
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime)
        }

        /// Drives `future` to completion on the calling thread, parking
        /// between polls until a waker fires.
        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            let parker = std::sync::Arc::new(Parker {
                woken: Mutex::new(false),
                cv: Condvar::new(),
            });
            let waker = Waker::from(parker.clone());
            let mut cx = Context::from_waker(&waker);
            let mut future = pin!(future);
            loop {
                if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
                    return out;
                }
                let mut woken = parker.woken.lock().unwrap_or_else(|e| e.into_inner());
                while !*woken {
                    woken = parker.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
                }
                *woken = false;
            }
        }
    }
}

/// Task spawning: one OS thread per task.
pub mod task {
    use std::fmt;
    use std::future::Future;
    use std::panic::AssertUnwindSafe;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Why a joined task produced no value: it panicked.  (The stand-in
    /// has no cancellation, so panics are the only failure.)
    #[derive(Debug)]
    pub struct JoinError {
        panic: String,
    }

    impl JoinError {
        /// Whether the task failed by panicking (always true here).
        pub fn is_panic(&self) -> bool {
            true
        }
    }

    impl fmt::Display for JoinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "task panicked: {}", self.panic)
        }
    }

    impl std::error::Error for JoinError {}

    enum State<T> {
        Pending(Option<Waker>),
        Done(Result<T, JoinError>),
        Taken,
    }

    /// Handle to a spawned task; a future resolving to the task's output
    /// once its thread finishes.
    pub struct JoinHandle<T> {
        shared: Arc<Mutex<State<T>>>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.shared.lock().unwrap_or_else(|e| e.into_inner());
            match &mut *state {
                State::Pending(waker) => {
                    *waker = Some(cx.waker().clone());
                    Poll::Pending
                }
                done @ State::Done(_) => match std::mem::replace(done, State::Taken) {
                    State::Done(result) => Poll::Ready(result),
                    _ => unreachable!("matched Done above"),
                },
                State::Taken => panic!("JoinHandle polled after completion"),
            }
        }
    }

    /// Spawns `future` onto its own thread, driving it to completion
    /// there.  Dropping the handle detaches the task (tokio semantics).
    pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared = Arc::new(Mutex::new(State::Pending(None)));
        let worker = Arc::clone(&shared);
        std::thread::spawn(move || {
            let rt = crate::runtime::Runtime;
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| rt.block_on(future)))
                .map_err(|p| JoinError {
                    panic: p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string()),
                });
            let mut state = worker.lock().unwrap_or_else(|e| e.into_inner());
            if let State::Pending(waker) = std::mem::replace(&mut *state, State::Done(result)) {
                drop(state);
                if let Some(w) = waker {
                    w.wake();
                }
            }
        });
        JoinHandle { shared }
    }
}

pub use task::spawn;

/// Async-shaped extension traits over the blocking stream types.
pub mod io {
    use std::future::{ready, Ready};
    use std::io::{Read, Write};

    /// tokio's `AsyncReadExt` subset: exact reads.  The returned future
    /// is already complete — the read blocks the task's own thread.
    pub trait AsyncReadExt: Read {
        /// Reads exactly `buf.len()` bytes.
        fn read_exact_async(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<()>> {
            ready(Read::read_exact(self, buf))
        }
    }

    impl<T: Read> AsyncReadExt for T {}

    /// tokio's `AsyncWriteExt` subset: whole-buffer writes and shutdown.
    pub trait AsyncWriteExt: Write {
        /// Writes the entire buffer.
        fn write_all_async(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(Write::write_all(self, buf).and_then(|()| self.flush()))
        }
    }

    impl<T: Write> AsyncWriteExt for T {}
}

/// Networking: std sockets behind tokio's async call shape.
pub mod net {
    use std::future::{ready, Ready};
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    /// TCP listener; `accept` blocks the calling task's thread.
    #[derive(Debug)]
    pub struct TcpListener(std::net::TcpListener);

    impl TcpListener {
        /// Binds to `addr`.
        pub fn bind<A: ToSocketAddrs>(addr: A) -> Ready<io::Result<TcpListener>> {
            ready(std::net::TcpListener::bind(addr).map(TcpListener))
        }

        /// Accepts one connection.
        pub fn accept(&self) -> Ready<io::Result<(TcpStream, SocketAddr)>> {
            ready(self.0.accept().map(|(s, a)| (TcpStream(s), a)))
        }

        /// The bound local address (port 0 binds resolve here).
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.0.local_addr()
        }
    }

    /// TCP stream; reads and writes block the calling task's thread.
    #[derive(Debug)]
    pub struct TcpStream(std::net::TcpStream);

    impl TcpStream {
        /// Connects to `addr`.
        pub fn connect<A: ToSocketAddrs>(addr: A) -> Ready<io::Result<TcpStream>> {
            ready(std::net::TcpStream::connect(addr).map(TcpStream))
        }

        /// Half-closes the write side, signalling end-of-stream.
        pub fn shutdown_write(&self) -> io::Result<()> {
            self.0.shutdown(std::net::Shutdown::Write)
        }

        /// Clones the handle (shared underlying socket) — lets another
        /// task force-close a connection a reader is blocked on.
        pub fn try_clone(&self) -> io::Result<TcpStream> {
            self.0.try_clone().map(TcpStream)
        }

        /// Closes both directions, unblocking any pending read.
        pub fn shutdown_both(&self) -> io::Result<()> {
            self.0.shutdown(std::net::Shutdown::Both)
        }
    }

    impl std::io::Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl std::io::Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.0.flush()
        }
    }

    /// Unix-domain listener.
    #[derive(Debug)]
    pub struct UnixListener(std::os::unix::net::UnixListener);

    impl UnixListener {
        /// Binds to the filesystem path `path`.
        pub fn bind<P: AsRef<std::path::Path>>(path: P) -> Ready<io::Result<UnixListener>> {
            ready(std::os::unix::net::UnixListener::bind(path).map(UnixListener))
        }

        /// Accepts one connection.
        pub fn accept(&self) -> Ready<io::Result<UnixStream>> {
            ready(self.0.accept().map(|(s, _)| UnixStream(s)))
        }
    }

    /// Unix-domain stream.
    #[derive(Debug)]
    pub struct UnixStream(std::os::unix::net::UnixStream);

    impl UnixStream {
        /// Connects to the filesystem path `path`.
        pub fn connect<P: AsRef<std::path::Path>>(path: P) -> Ready<io::Result<UnixStream>> {
            ready(std::os::unix::net::UnixStream::connect(path).map(UnixStream))
        }

        /// Half-closes the write side, signalling end-of-stream.
        pub fn shutdown_write(&self) -> io::Result<()> {
            self.0.shutdown(std::net::Shutdown::Write)
        }

        /// Clones the handle (shared underlying socket) — lets another
        /// task force-close a connection a reader is blocked on.
        pub fn try_clone(&self) -> io::Result<UnixStream> {
            self.0.try_clone().map(UnixStream)
        }

        /// Closes both directions, unblocking any pending read.
        pub fn shutdown_both(&self) -> io::Result<()> {
            self.0.shutdown(std::net::Shutdown::Both)
        }
    }

    impl std::io::Read for UnixStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl std::io::Write for UnixStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.0.flush()
        }
    }
}

/// Synchronization: the bounded mpsc channel.
pub mod sync {
    /// Bounded multi-producer single-consumer channel over
    /// `std::sync::mpsc::sync_channel`, with tokio's `try_send` error
    /// vocabulary (the daemon's backpressure seam).
    pub mod mpsc {
        use std::future::{ready, Ready};
        use std::sync::mpsc as std_mpsc;

        /// `try_send` failure: the queue is full (backpressure) or the
        /// receiver is gone.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// Queue at capacity; the caller should shed or retry.
            Full(T),
            /// Receiver dropped; no send can ever succeed again.
            Closed(T),
        }

        /// Sending half; clonable across producer tasks.
        #[derive(Debug)]
        pub struct Sender<T>(std_mpsc::SyncSender<T>);

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Sender(self.0.clone())
            }
        }

        impl<T> Sender<T> {
            /// Non-blocking send with typed rejection.
            pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
                self.0.try_send(value).map_err(|e| match e {
                    std_mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    std_mpsc::TrySendError::Disconnected(v) => TrySendError::Closed(v),
                })
            }
        }

        /// Receiving half.
        #[derive(Debug)]
        pub struct Receiver<T>(std_mpsc::Receiver<T>);

        impl<T> Receiver<T> {
            /// Receives the next value; `None` once every sender is gone
            /// and the queue is drained.  Blocks the task's own thread.
            pub fn recv(&mut self) -> Ready<Option<T>> {
                ready(self.0.recv().ok())
            }
        }

        /// Creates a channel holding at most `buffer` queued values.
        pub fn channel<T>(buffer: usize) -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = std_mpsc::sync_channel(buffer);
            (Sender(tx), Receiver(rx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::io::{AsyncReadExt, AsyncWriteExt};
    use super::net::{TcpListener, TcpStream};
    use super::runtime::Runtime;
    use super::sync::mpsc;
    use super::task;

    #[test]
    fn spawned_tasks_join_with_their_output() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            let a = task::spawn(async { 19 });
            let b = task::spawn(async { 23 });
            a.await.unwrap() + b.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_surfaces_a_join_error() {
        let rt = Runtime::new().unwrap();
        let err = rt
            .block_on(task::spawn(async { panic!("boom") }))
            .unwrap_err();
        assert!(err.is_panic());
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn bounded_channel_reports_backpressure() {
        let (tx, mut rx) = mpsc::channel(1);
        tx.try_send(1u32).unwrap();
        assert!(matches!(tx.try_send(2), Err(mpsc::TrySendError::Full(2))));
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { rx.recv().await }), Some(1));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(mpsc::TrySendError::Closed(3))));
    }

    #[test]
    fn tcp_round_trip_across_tasks() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = task::spawn(async move {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 4];
                conn.read_exact_async(&mut buf).await.unwrap();
                conn.write_all_async(&buf).await.unwrap();
                buf
            });
            let mut client = TcpStream::connect(addr).await.unwrap();
            client.write_all_async(b"ping").await.unwrap();
            let mut echo = [0u8; 4];
            client.read_exact_async(&mut echo).await.unwrap();
            assert_eq!(&echo, b"ping");
            assert_eq!(server.await.unwrap(), *b"ping");
        });
    }
}
