//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's poison-free
//! API (`lock()` / `read()` / `write()` return guards directly).  A
//! poisoned std lock means a panic already happened while holding it;
//! matching parking_lot semantics, the wrapper continues with the inner
//! data rather than propagating a `PoisonError`.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Guard type aliases matching parking_lot's names.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
