//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`] over numeric ranges and tuples, [`Just`],
//! `prop::collection::vec`, `prop_map` / `prop_flat_map`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros — with
//! deterministic case generation (seeded per test name) instead of
//! upstream's shrinking engine.  Failures therefore reproduce exactly on
//! re-run; set `PROPTEST_CASES` to change the case count (default 64).
//!
//! ## Failure persistence
//!
//! Like upstream, a failing case's seed is persisted so regressions stay
//! pinned: when a property panics, its case seed is appended to
//! `tests/proptest-regressions/<source_stem>.txt` under the owning
//! package (lines `xs <test_name> <seed_hex>`; `#` comments ignored), and
//! every later run replays the file's seeds for that test before drawing
//! fresh cases.  Check the file in to keep the regression in CI.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-(test, case) seed.
pub fn case_seed(module: &str, test: &str, case: u32) -> u64 {
    // FNV-1a over the fully qualified test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain(test.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// The RNG for one persisted or derived seed.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Deterministic per-(test, case) RNG.
pub fn case_rng(module: &str, test: &str, case: u32) -> TestRng {
    rng_from_seed(case_seed(module, test, case))
}

/// The regression file for a source file: `proptest-regressions/<stem>.txt`
/// next to the source's parent directory, resolved against the owning
/// package's manifest dir when `file!()` paths are workspace-relative.
fn regression_file(source: &str) -> Option<PathBuf> {
    let src = PathBuf::from(source);
    let stem = src.file_stem()?.to_owned();
    let dir = src.parent()?;
    let mut path = PathBuf::new();
    if !dir.is_dir() {
        // `file!()` is workspace-relative but tests run from the package
        // root; re-anchor at the manifest dir and keep only the last
        // directory component (`tests`, `src`, …).
        let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        path.push(manifest);
        path.push(dir.file_name()?);
    } else {
        path.push(dir);
    }
    path.push("proptest-regressions");
    path.push(stem);
    path.set_extension("txt");
    Some(path)
}

/// Seeds persisted for `test` in `source`'s regression file, oldest first.
pub fn persisted_seeds(source: &str, test: &str) -> Vec<u64> {
    let Some(path) = regression_file(source) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let mut it = line.split_whitespace();
            (it.next() == Some("xs") && it.next() == Some(test))
                .then(|| it.next())
                .flatten()
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        })
        .collect()
}

/// Appends a failing seed to the regression file (deduplicated).
pub fn persist_seed(source: &str, test: &str, seed: u64) {
    let Some(path) = regression_file(source) else {
        return;
    };
    let line = format!("xs {test} {seed:016x}");
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    if existing.lines().any(|l| l.trim() == line) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = existing;
    if text.is_empty() {
        text.push_str(
            "# Seeds for failing proptest cases, replayed before fresh cases on every run.\n\
             # Format: xs <test_name> <seed_hex>.  Check this file in; see vendor/proptest.\n",
        );
    }
    text.push_str(&line);
    text.push('\n');
    let _ = std::fs::write(&path, text);
}

/// Writes the failing case's seed to the regression file if the property
/// body panics (armed on construction, disarmed when the case passes).
pub struct PersistOnPanic<'a> {
    source: &'a str,
    test: &'a str,
    seed: u64,
    armed: std::cell::Cell<bool>,
}

impl<'a> PersistOnPanic<'a> {
    /// Arms persistence for one case.
    pub fn new(source: &'a str, test: &'a str, seed: u64) -> Self {
        PersistOnPanic {
            source,
            test,
            seed,
            armed: std::cell::Cell::new(true),
        }
    }

    /// The case passed; nothing to persist.
    pub fn disarm(&self) {
        self.armed.set(false);
    }
}

impl Drop for PersistOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed.get() && std::thread::panicking() {
            persist_seed(self.source, self.test, self.seed);
            eprintln!(
                "proptest: persisted failing seed {:016x} for {} (replayed on next run)",
                self.seed, self.test
            );
        }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// The `prop::` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Length specification for [`vec()`](self::vec): a fixed size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

/// Skips the current case when its precondition does not hold (expands to
/// `continue` inside the [`proptest!`] case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two property values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministic cases.  Persisted
/// regression seeds (see crate docs) are replayed first; a panicking case
/// appends its seed to the regression file before propagating.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __persisted =
                    $crate::persisted_seeds(file!(), stringify!($name));
                let __fresh = (0..$crate::cases())
                    .map(|c| $crate::case_seed(module_path!(), stringify!($name), c));
                for __seed in __persisted.into_iter().chain(__fresh) {
                    let __guard =
                        $crate::PersistOnPanic::new(file!(), stringify!($name), __seed);
                    let mut __rng = $crate::rng_from_seed(__seed);
                    $(let $parm =
                        $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0.0..1.0f64, n..n + 1)))
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0.0..10.0f64, n in 1usize..5, s in -3i32..=3) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!((-3..=3).contains(&s));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn mapped_values_transform(y in (0.0..1.0f64).prop_map(|v| v * 2.0)) {
            prop_assert!((0.0..2.0).contains(&y));
        }
    }

    #[test]
    fn persisted_seeds_round_trip_and_deduplicate() {
        let dir = std::env::temp_dir().join(format!("pmss-proptest-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        let src_path = dir.join("tests").join("demo.rs");
        std::fs::write(&src_path, "").unwrap();
        let src = src_path.to_str().unwrap();

        assert!(crate::persisted_seeds(src, "prop_a").is_empty());
        crate::persist_seed(src, "prop_a", 0xdead_beef);
        crate::persist_seed(src, "prop_a", 0xdead_beef);
        crate::persist_seed(src, "prop_b", 7);
        assert_eq!(crate::persisted_seeds(src, "prop_a"), vec![0xdead_beef]);
        assert_eq!(crate::persisted_seeds(src, "prop_b"), vec![7]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("m", "t", 3).gen();
        let b: u64 = crate::case_rng("m", "t", 3).gen();
        assert_eq!(a, b);
        let c: u64 = crate::case_rng("m", "t", 4).gen();
        assert_ne!(a, c);
    }
}
