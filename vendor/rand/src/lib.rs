//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: [`Rng`]
//! (`gen_range` / `gen_bool` / `gen`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].  The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and fully deterministic per seed, which
//! is all the simulation relies on.  Stream values differ from upstream
//! `rand`'s ChaCha-based `StdRng`; nothing in the workspace depends on the
//! upstream streams, only on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via `Rng::gen`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back in.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_range(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (blanket-implemented over any
/// [`RngCore`], mirroring upstream `rand`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw over the full domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.5..7.5f64);
            assert!((2.5..7.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
            let u = rng.gen_range(10.0..=20.0f64);
            assert!((10.0..=20.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
