//! # pmss — Power Management at System Scale
//!
//! A full Rust reproduction of *"Exploring the Frontiers of Energy
//! Efficiency using Power Management at System Scale"* (SC 2024): the
//! MI250X-class GPU power/performance model, the VAI and memory
//! benchmarks, the Louvain case study, the SLURM-like scheduler and
//! out-of-band telemetry simulation, and — on top of all of it — the
//! paper's contribution: modal decomposition of fleet power telemetry and
//! the projection of benchmark-derived capping factors into an upper bound
//! on system-wide energy savings.
//!
//! This facade re-exports every crate of the workspace:
//!
//! * [`gpu`] — the device model (`pmss-gpu`);
//! * [`workloads`] — benchmark reproducers and app synthesis
//!   (`pmss-workloads`);
//! * [`graph`] — CSR graphs, generators, Louvain (`pmss-graph`);
//! * [`sched`] — domains, queue policy, trace generation (`pmss-sched`);
//! * [`telemetry`] — sensors, fleet simulation, histograms
//!   (`pmss-telemetry`);
//! * [`faults`] — deterministic fault injection for fleet telemetry
//!   (`pmss-faults`): seeded [`faults::FaultPlan`]s drive drops,
//!   duplicates, reordering, glitches, dropouts, and clock skew;
//! * [`columns`] — the columnar window-block substrate (`pmss-columns`):
//!   per-channel SoA [`columns::ColumnBlock`]s and their compressed
//!   resident form, shared by telemetry, stream, and the observers;
//! * [`stream`] — incremental reorder-buffered ingest (`pmss-stream`):
//!   [`stream::StreamEngine`] folds an arrival-ordered event stream into
//!   any observer, bit-identical to the batch path;
//! * [`core`] — modal decomposition and savings projection (`pmss-core`);
//! * [`econ`] — price/carbon economics (`pmss-econ`): typed
//!   [`econ::EconTrace`]s, the per-slot [`econ::EconSeries`] observer,
//!   and the temporal-shifting what-if behind `pmss econ`;
//! * [`pipeline`] — the unified scenario pipeline (`pmss-pipeline`): a
//!   typed [`ScenarioSpec`] run through memoized stages to an
//!   [`Artifacts`] bundle, powering the `pmss` CLI;
//! * [`obs`] — the zero-overhead-when-disabled metrics registry
//!   (`pmss-obs`) behind `pmss --metrics` and `pmss stats`.
//!
//! Every fallible seam returns the workspace-wide [`PmssError`].
//!
//! ## Quickstart
//!
//! ```
//! use pmss::gpu::{Engine, GpuSettings, KernelProfile};
//!
//! // Run a memory-bound kernel uncapped and frequency-capped.
//! let kernel = KernelProfile::builder("stream")
//!     .flops(4e9)
//!     .hbm_bytes(64e9)
//!     .bw_oversub(3.0)
//!     .build();
//! let engine = Engine::default();
//! let base = engine.execute(&kernel, GpuSettings::uncapped());
//! let capped = engine.execute(&kernel, GpuSettings::freq_capped(900.0));
//! // Bandwidth-bound work keeps its runtime but sheds power: free energy.
//! assert!((capped.time_s - base.time_s).abs() < 1e-9);
//! assert!(capped.energy_j < base.energy_j);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pmss_columns as columns;
pub use pmss_core as core;
pub use pmss_econ as econ;
pub use pmss_faults as faults;
pub use pmss_govern as govern;
pub use pmss_gpu as gpu;
pub use pmss_graph as graph;
pub use pmss_obs as obs;
pub use pmss_pipeline as pipeline;
pub use pmss_sched as sched;
pub use pmss_stream as stream;
pub use pmss_telemetry as telemetry;
pub use pmss_workloads as workloads;

pub use pmss_error::PmssError;
pub use pmss_pipeline::{Artifact, ArtifactId, Artifacts, Pipeline, ScalePreset, ScenarioSpec};
