//! The `pmss` binary: one CLI for every paper figure, table, and
//! extension.  All logic lives in `pmss_pipeline::cli`; this shim only
//! wires argv, stdout, and the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pmss_pipeline::cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("pmss: {err}");
            ExitCode::FAILURE
        }
    }
}
