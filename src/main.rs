//! The `pmss` binary: one CLI for every paper figure, table, and
//! extension.  All logic lives in `pmss_pipeline::cli` (batch artifacts)
//! and `pmssd::cli` (the streaming daemon and its client); this shim
//! only wires argv, stdout, and the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => pmssd::cli::run_serve(&args[1..]),
        Some("client") => pmssd::cli::run_client(&args[1..]),
        _ => pmss_pipeline::cli::run(&args),
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("pmss: {err}");
            ExitCode::FAILURE
        }
    }
}
