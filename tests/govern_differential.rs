//! Differential and acceptance suite for the online cluster governor:
//! repeat runs are byte-identical (clean and faulted — the CI matrix
//! re-runs this under `RAYON_NUM_THREADS=1`, pinning the same bytes
//! across thread counts), the online presets realize most of the paper's
//! static no-slowdown ceiling, and the cluster budget invariant holds in
//! every rendered row.

use pmss::pipeline::artifact::GovernArtifact;
use pmss::pipeline::{cli, Artifact, ArtifactId, Pipeline, ScalePreset, ScenarioSpec};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn quick_govern() -> GovernArtifact {
    let mut p =
        Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).expect("quick spec is valid");
    match p.artifact(ArtifactId::Govern).expect("govern artifact") {
        Artifact::Govern(a) => a,
        other => panic!("expected a govern artifact, got {:?}", other.id()),
    }
}

/// The same governed scenario computed twice — fresh pipelines, fresh
/// caches — renders bit-identical bytes, metered and faulted alike.
#[test]
fn govern_runs_are_deterministic_across_repeat_runs() {
    for argv in [
        vec!["govern", "--scale", "quick", "--json", "--metrics"],
        vec![
            "govern",
            "--scale",
            "quick",
            "--json",
            "--metrics",
            "--faults",
            "frontier-typical",
        ],
    ] {
        let a = cli::run(&args(&argv)).unwrap();
        let b = cli::run(&args(&argv)).unwrap();
        // The run manifest carries wall times; compare everything before it.
        let cut = |s: &str| s.split("\"run\"").next().unwrap().to_string();
        assert_eq!(cut(&a), cut(&b), "nondeterministic {argv:?}");
        assert_ne!(cut(&a), "");
    }
}

/// Acceptance: on the clean quick scenario the online policies (greedy,
/// polimer) realize at least 80% of the projection's no-slowdown ceiling
/// while staying under 2% fleet slowdown; the static reference realizes
/// at least as much as either but pays double-digit slowdown.
#[test]
fn online_presets_realize_most_of_the_static_ceiling() {
    let a = quick_govern();
    assert!(a.ceiling_pct > 0.0, "ceiling {}", a.ceiling_pct);
    assert_eq!(a.rows.len(), 3, "three preset rows");
    let by_name = |n: &str| a.rows.iter().find(|r| r.policy == n).expect("preset row");
    let (st, gr, po) = (by_name("static"), by_name("greedy"), by_name("polimer"));
    for r in [gr, po] {
        assert!(
            r.of_ceiling_pct >= 80.0,
            "{} realizes only {:.1}% of the ceiling",
            r.policy,
            r.of_ceiling_pct
        );
        assert!(
            r.slowdown_pct < 2.0,
            "{} slows the fleet {:.2}%",
            r.policy,
            r.slowdown_pct
        );
    }
    assert!(st.realized_pct >= gr.realized_pct && st.realized_pct >= po.realized_pct);
    assert!(
        st.slowdown_pct > 5.0,
        "static's blanket cap should cost double-digit CI slowdown, got {:.2}%",
        st.slowdown_pct
    );
}

/// The budget invariant and control-plane sanity of every rendered row,
/// clean and under the headline fault preset.
#[test]
fn budget_is_never_exceeded_in_any_rendered_row() {
    let mut clean = quick_govern().rows;
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    spec.faults = Some(pmss::faults::FaultPlan::preset("frontier-typical").unwrap());
    let mut p = Pipeline::new(spec).expect("faulted spec is valid");
    let faulted = match p.artifact(ArtifactId::Govern).expect("govern artifact") {
        Artifact::Govern(a) => a.rows,
        other => panic!("expected a govern artifact, got {:?}", other.id()),
    };
    clean.extend(faulted);
    for r in clean {
        assert!(!r.budget_exceeded, "{} exceeded the budget", r.policy);
        assert!(
            r.peak_budget_utilization <= 1.0 + 1e-9,
            "{} peak utilization {}",
            r.policy,
            r.peak_budget_utilization
        );
        assert!(r.rounds > 0 && r.realized_pct.is_finite());
    }
}

/// A spec-supplied custom plan rides along as a fourth row labelled
/// `custom:<policy>`, and a scarce budget forces throttling without ever
/// breaking the invariant.
#[test]
fn custom_scarce_budget_plans_throttle_within_the_invariant() {
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    let mut plan = pmss::govern::GovernorPlan::preset("polimer").unwrap();
    // Scarce: halfway between the per-node floor and ceiling.
    plan.budget_w = Some(spec.nodes as f64 * (plan.node_floor_w + plan.node_ceiling_w) / 2.0);
    spec.govern = Some(plan);
    let mut p = Pipeline::new(spec).expect("spec is valid");
    let a = match p.artifact(ArtifactId::Govern).expect("govern artifact") {
        Artifact::Govern(a) => a,
        other => panic!("expected a govern artifact, got {:?}", other.id()),
    };
    assert_eq!(a.rows.len(), 4, "three presets plus the custom row");
    let custom = &a.rows[3];
    assert_eq!(custom.policy, "custom:polimer");
    assert!(!custom.budget_exceeded);
    assert!(custom.peak_budget_utilization <= 1.0 + 1e-9);
    assert!(
        custom.throttled_node_rounds > 0,
        "a scarce budget must force throttling"
    );
}
