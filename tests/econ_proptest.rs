//! Property tests for the econ layer: arbitrary traces — NaN, negative,
//! empty, off-grid buckets — are typed errors and never panic; the cost
//! integral is an exact identity over the per-slot series and its SKU
//! lanes; the temporal-shifting planner never violates its deadline or
//! power budget and conserves energy move by move; and streaming
//! snapshots price bit-identically to the batch series under any fault
//! plan.
//!
//! Failing case seeds persist to `tests/proptest-regressions/` (see
//! `vendor/proptest`) and replay before fresh cases on every run.

use proptest::prelude::*;

use pmss::columns::{FleetObserver, SampleCtx};
use pmss::core::EnergyLedger;
use pmss::econ::{shift, EconSeries, EconTrace, JOULES_PER_MWH, SLOT_S};
use pmss::faults::{FaultPlan, GapPolicy};
use pmss::sched::{catalog, generate, Schedule, TraceParams};
use pmss::stream::{StreamConfig, StreamEngine};
use pmss::telemetry::{fleet_window_events, simulate_fleet, FleetConfig, Pair};

fn small_schedule(nodes: usize, hours: u64, seed: u64) -> Schedule {
    generate(
        TraceParams {
            nodes,
            duration_s: hours as f64 * 3600.0,
            seed,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

/// Strategy for a *valid* trace: matched-length finite non-negative
/// series on an on-grid bucket, with a real deadline and budget.
fn arb_valid_trace() -> impl Strategy<Value = EconTrace> {
    (
        prop::collection::vec((0.0..250.0f64, 0.0..700.0f64), 1..49),
        1usize..9,
        1u32..33,
        0.2..2.0f64,
    )
        .prop_map(|(pairs, mult, deadline, budget)| {
            let (price, carbon) = pairs.into_iter().unzip();
            EconTrace {
                name: "prop".to_string(),
                bucket_s: mult as f64 * SLOT_S,
                price_usd_per_mwh: price,
                carbon_g_per_kwh: carbon,
                shift_deadline_slots: deadline,
                shift_budget_frac: budget,
            }
        })
}

/// Strategy for a hostile trace: one targeted corruption of a valid one
/// — empty series, NaN price, negative carbon, off-grid / negative /
/// sub-slot bucket, zero deadline, non-finite budget.
fn arb_hostile_trace() -> impl Strategy<Value = EconTrace> {
    (arb_valid_trace(), 0usize..8).prop_map(|(mut t, which)| {
        match which {
            0 => t.price_usd_per_mwh = Vec::new(),
            1 => t.price_usd_per_mwh[0] = f64::NAN,
            2 => t.carbon_g_per_kwh[0] = -5.0,
            3 => t.bucket_s += 1.0,
            4 => t.bucket_s = -SLOT_S,
            5 => t.bucket_s = SLOT_S / 2.0,
            6 => t.shift_deadline_slots = 0,
            _ => t.shift_budget_frac = f64::INFINITY,
        }
        t
    })
}

/// Strategy for an arbitrary recorded series: raw GPU samples at
/// arbitrary in-campaign timestamps and powers (including the boosted
/// region), fed through the same observer entry points the fleet
/// simulation uses.
fn arb_series() -> impl Strategy<Value = EconSeries> {
    prop::collection::vec((0.0..48.0 * 3600.0f64, 0.0..620.0f64, 0u8..3), 1..200).prop_map(
        |samples| {
            let mut series = EconSeries::default();
            for (t_s, power_w, sku) in samples {
                let ctx = SampleCtx {
                    node: 0,
                    slot: 0,
                    sku,
                    job: None,
                };
                series.gpu_sample(&ctx, t_s, power_w);
            }
            series
        },
    )
}

/// Strategy for an arbitrary (not preset) fault plan.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0..0.15f64, 0.0..0.15f64, 0.0..0.05f64, 0.0..0.05f64),
        (0u32..5, 0.0..400.0f64, 0.0..0.03f64, 1u32..8),
        (0.0..5.0f64, 0usize..3, 0u64..1 << 32),
    )
        .prop_map(
            |(
                (drop_prob, dup_prob, nan_prob, spike_prob),
                (reorder_depth, spike_w, dropout_prob, dropout_windows),
                (clock_skew_max_s, policy, seed),
            )| FaultPlan {
                seed,
                drop_prob,
                dup_prob,
                reorder_depth,
                nan_prob,
                spike_prob,
                spike_w,
                dropout_prob,
                dropout_windows,
                clock_skew_max_s,
                gap_policy: GapPolicy::all()[policy],
            },
        )
}

/// Relative-tolerance equality: `1e-9` relative, absolute floor of one
/// unit so empty lanes compare cleanly.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    /// Any hostile trace is rejected with a typed error at validation,
    /// and every consumer downstream of validation — the shift planner
    /// first among them — refuses it the same way instead of panicking.
    #[test]
    fn hostile_traces_are_typed_errors_never_panics(
        trace in arb_hostile_trace(),
        series in arb_series(),
    ) {
        prop_assert!(trace.validate().is_err(), "hostile trace validated");
        prop_assert!(shift(&series, &trace).is_err(), "shift accepted a hostile trace");
        // Pricing against a hostile trace must at worst produce a number,
        // never a panic (validation is the real gate).
        let _ = series.cost_usd(&trace);
        let _ = series.carbon_kg(&trace);
    }

    /// The cost integral is an identity, not an approximation: the
    /// series' total cost equals the slot-by-slot sum of energy × price,
    /// the SKU lanes partition it exactly, and on a flat trace it
    /// collapses to total-energy × price.  Same for carbon.
    #[test]
    fn total_cost_is_the_exact_sum_of_slot_energy_times_price(
        trace in arb_valid_trace(),
        series in arb_series(),
    ) {
        trace.validate().expect("valid by construction");
        let manual_cost: f64 = (0..series.num_slots())
            .map(|s| series.slot_gpu_j(s) / JOULES_PER_MWH * trace.price_at_slot(s))
            .sum();
        let manual_kg: f64 = (0..series.num_slots())
            .map(|s| series.slot_gpu_j(s) / JOULES_PER_MWH * trace.carbon_at_slot(s))
            .sum();
        prop_assert!(close(series.cost_usd(&trace), manual_cost));
        prop_assert!(close(series.carbon_kg(&trace), manual_kg));

        let lane_cost: f64 = (0..series.num_skus())
            .map(|sku| series.sku_cost_usd(sku, &trace))
            .sum();
        let lane_kg: f64 = (0..series.num_skus())
            .map(|sku| series.sku_carbon_kg(sku, &trace))
            .sum();
        prop_assert!(
            close(lane_cost, series.cost_usd(&trace)),
            "SKU lanes leak cost: {lane_cost} vs {}",
            series.cost_usd(&trace)
        );
        prop_assert!(close(lane_kg, series.carbon_kg(&trace)));

        let flat = EconTrace::flat();
        prop_assert!(close(
            series.cost_usd(&flat),
            series.total_gpu_j() / JOULES_PER_MWH * flat.price_usd_per_mwh[0]
        ));
    }

    /// The shift planner holds its invariants under any valid trace and
    /// any recorded series: every move lands strictly later but within
    /// the deadline, energy is conserved slot-sum to slot-sum, no
    /// destination is filled past the power budget, and the shifted
    /// placement never costs more than the baseline.
    #[test]
    fn shifting_never_violates_deadline_or_budget(
        trace in arb_valid_trace(),
        series in arb_series(),
    ) {
        let out = shift(&series, &trace).expect("valid inputs");
        let budget_e = out.budget_w * SLOT_S;
        for m in &out.moves {
            prop_assert!(m.joules > 0.0 && m.joules.is_finite());
            prop_assert!(m.to > m.from, "move goes backward: {} -> {}", m.from, m.to);
            prop_assert!(
                m.to - m.from <= out.deadline_slots,
                "deadline violated: {} -> {} with deadline {}",
                m.from,
                m.to,
                out.deadline_slots
            );
        }
        let pre: f64 = out.pre_slot_j.iter().sum();
        let post: f64 = out.post_slot_j.iter().sum();
        prop_assert!(close(pre, post), "shift leaks energy: {pre} J vs {post} J");
        for m in &out.moves {
            prop_assert!(
                out.post_slot_j[m.to] <= budget_e * (1.0 + 1e-9) + 1e-6,
                "destination slot {} filled to {} J past budget {} J",
                m.to,
                out.post_slot_j[m.to],
                budget_e
            );
        }
        prop_assert!(
            out.shifted_cost_usd <= out.baseline_cost_usd * (1.0 + 1e-9) + 1e-6,
            "shifting made things worse: {} -> {}",
            out.baseline_cost_usd,
            out.shifted_cost_usd
        );
    }

    /// Streaming ingest prices bit-identically to batch simulation under
    /// any fault plan: the paired engine's econ series equals the batch
    /// series exactly, so every cost it can report matches to the bit.
    #[test]
    fn streaming_snapshots_price_bit_identically_to_batch(
        plan in arb_plan(),
        nodes in 1usize..4,
        trace_seed in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, 2, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let batch: Pair<EnergyLedger, EconSeries> = simulate_fleet(&schedule, &cfg);

        let mut eng: StreamEngine<'_, Pair<EnergyLedger, EconSeries>> =
            StreamEngine::new(&schedule, StreamConfig::for_plan(cfg.faults.as_ref()))
                .expect("valid config");
        let mut events = Vec::new();
        fleet_window_events(&schedule, &cfg, |ev| events.push(ev));
        for ev in events {
            eng.ingest(ev).expect("plan-sized horizon accepts the stream");
        }
        let (streamed, _) = eng.finish();
        prop_assert_eq!(&streamed.a, &batch.a, "ledger members diverge");
        prop_assert!(streamed.b == batch.b, "econ members diverge");
        for trace_name in EconTrace::preset_names() {
            let trace = EconTrace::preset(trace_name).expect("preset");
            prop_assert_eq!(
                streamed.b.cost_usd(&trace).to_bits(),
                batch.b.cost_usd(&trace).to_bits(),
                "cost under {} is not bit-identical",
                trace_name
            );
        }
    }
}
