//! Heterogeneous-fleet differential tests: the SKU catalog must be
//! invisible until asked for.  A homogeneous fleet — whether the mix is
//! omitted or spelled `single-sku` — renders every artifact byte-for-byte
//! identical to the pre-catalog goldens, clean and faulted, and a mixed
//! run must never perturb homogeneous output computed afterwards (the
//! shared [`FleetCache`] keys templates by SKU, so cross-class
//! contamination would show up here first).
//!
//! CI's tier-1 matrix runs this suite under both `RAYON_NUM_THREADS`
//! legs, pinning the identity across thread configurations as well.

use pmss::core::EnergyLedger;
use pmss::pipeline::{cli, ArtifactId, Pipeline, ScalePreset, ScenarioSpec};
use pmss::telemetry::simulate_fleet;

fn golden(name: &str, ext: &str) -> String {
    let path = format!("tests/golden/{name}.{ext}");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A quick-scale spec that names the homogeneous mix explicitly instead
/// of omitting it.
fn single_sku_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    spec.fleet_mix = Some("single-sku".to_string());
    spec
}

/// An explicit `single-sku` mix renders every artifact — all 25 of them —
/// byte-for-byte identical to the goldens captured before the SKU catalog
/// existed.
#[test]
fn single_sku_spec_renders_every_golden_byte_for_byte() {
    let mut p = Pipeline::new(single_sku_spec()).expect("valid spec");
    let mut bad = Vec::new();
    for id in ArtifactId::all() {
        let got = p.artifact(id).expect("artifact").render_ascii();
        if got != golden(id.name(), "txt") {
            bad.push(id.name());
        }
    }
    assert!(
        bad.is_empty(),
        "single-sku mix drifted from homogeneous goldens: {}",
        bad.join(", ")
    );
}

/// `--mix single-sku` on the CLI is a no-op for output bytes: clean and
/// `frontier-typical`-faulted runs both reproduce the goldens in both
/// renderings.
#[test]
fn single_sku_cli_flag_matches_clean_and_faulted_goldens() {
    let cases: [(&[&str], &str, &str); 10] = [
        (&["table3", "--scale", "quick"], "table3", "txt"),
        (&["table3", "--scale", "quick", "--json"], "table3", "json"),
        (&["components", "--scale", "quick"], "components", "txt"),
        (
            &["components", "--scale", "quick", "--json"],
            "components",
            "json",
        ),
        (
            &["govern", "--scale", "quick", "--faults", "frontier-typical"],
            "govern-frontier-typical",
            "txt",
        ),
        (
            &[
                "govern",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "govern-frontier-typical",
            "json",
        ),
        (
            &["stream", "--scale", "quick", "--faults", "frontier-typical"],
            "stream-frontier-typical",
            "txt",
        ),
        (
            &[
                "stream",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "stream-frontier-typical",
            "json",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
            ],
            "table4-frontier-typical",
            "txt",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "table4-frontier-typical",
            "json",
        ),
    ];
    for (argv, name, ext) in cases {
        let mut args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        args.push("--mix".to_string());
        args.push("single-sku".to_string());
        let got = cli::run(&args).expect("cli run");
        assert_eq!(
            got,
            golden(name, ext),
            "--mix single-sku drift in {name}.{ext}"
        );
    }
}

/// A mixed-fleet run — through both the pipeline's private cache and the
/// process-wide shared [`FleetCache`] used by the cache-less entry points
/// — never perturbs homogeneous artifacts computed afterwards: the cache
/// keys slot templates by SKU, and this test is the tripwire if that
/// ever regresses.
#[test]
fn mixed_runs_never_perturb_homogeneous_artifacts() {
    // Warm a mixed pipeline end to end (its own cache) ...
    let mut mixed_spec = ScenarioSpec::preset(ScalePreset::Quick);
    mixed_spec.fleet_mix = Some("mixed-50-50".to_string());
    let mut mixed = Pipeline::new(mixed_spec.clone()).expect("valid spec");
    let mixed_render = mixed
        .artifact(ArtifactId::Components)
        .expect("components")
        .render_ascii();
    // ... and the mix must actually change bytes, or this guard is vacuous.
    assert_ne!(
        mixed_render,
        golden("components", "txt"),
        "mixed-50-50 components rendered the homogeneous bytes"
    );

    // Warm the process-wide shared cache with the same schedule under the
    // mixed config (the path `pmss query`-style callers take).
    let schedule = pmss::sched::generate(mixed_spec.trace_params(), &pmss::sched::catalog());
    let cfg = Pipeline::new(mixed_spec)
        .expect("valid spec")
        .fleet_config();
    let _: EnergyLedger = simulate_fleet(&schedule, &cfg);

    // A fresh homogeneous pipeline must still match every pinned golden.
    let mut clean = Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).expect("valid spec");
    for id in [
        ArtifactId::Table4,
        ArtifactId::Table5,
        ArtifactId::Fig8,
        ArtifactId::Components,
    ] {
        let got = clean.artifact(id).expect("artifact").render_ascii();
        assert_eq!(
            got,
            golden(id.name(), "txt"),
            "homogeneous artifact {} drifted after a mixed-fleet run",
            id.name()
        );
    }

    // And so must the cache-less CLI path itself.
    let args: Vec<String> = ["components", "--scale", "quick"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        cli::run(&args).expect("cli run"),
        golden("components", "txt")
    );
}
