//! Integration tests for the beyond-the-paper extensions: governors,
//! calibration, thermal-derived boost, policy exploration, and the
//! projection-validation loop.

use pmss::gpu::{DvfsLadder, Engine, GovernedTotals, Governor, GpuSettings, ThermalModel};
use pmss::workloads::proxy::ProxyApp;

#[test]
fn governor_beats_static_caps_on_every_proxy_app() {
    // The per-phase energy-optimal governor must never lose to any static
    // frequency cap on any named proxy application.
    let engine = Engine::default();
    let ladder = DvfsLadder::default();
    for app in ProxyApp::all() {
        let phases = app.run(2, 60.0);
        let opt = GovernedTotals::from_governed(
            &Governor::EnergyOptimal
                .govern_phases(&engine, &phases, &ladder)
                .unwrap(),
        );
        for mhz in [1700.0, 1300.0, 1100.0, 900.0, 700.0] {
            let fixed = GovernedTotals::from_governed(
                &Governor::Fixed(mhz)
                    .govern_phases(&engine, &phases, &ladder)
                    .unwrap(),
            );
            assert!(
                opt.energy_j <= fixed.energy_j + 1e-6,
                "{}: optimal loses to {mhz} MHz",
                app.name()
            );
        }
    }
}

#[test]
fn slowdown_budget_governor_respects_budget_on_proxies() {
    let engine = Engine::default();
    let ladder = DvfsLadder::default();
    for app in ProxyApp::all() {
        for budget in [0.02, 0.1] {
            let t = GovernedTotals::from_governed(
                &Governor::SlowdownBudget { budget }
                    .govern_phases(&engine, &app.run(1, 60.0), &ladder)
                    .unwrap(),
            );
            assert!(
                t.slowdown() <= budget + 1e-9,
                "{} at budget {budget}: slowdown {}",
                app.name(),
                t.slowdown()
            );
            assert!(t.energy_saving() >= -1e-9);
        }
    }
}

#[test]
fn calibration_recovers_the_engine_model_from_benchmark_runs() {
    // End-to-end calibration: measure (utilization, power) pairs by
    // executing real benchmark kernels, fit, and verify the fitted model
    // predicts held-out kernels.
    use pmss::gpu::calibrate::{fit, Observation};
    use pmss::gpu::Freq;
    use pmss::workloads::vai::{kernel, VaiParams};

    let engine = Engine::default();
    let mut obs = Vec::new();
    for ai in [0.0625, 0.5, 2.0, 16.0, 512.0] {
        let k = kernel(VaiParams::for_intensity(ai, 1 << 26, 2));
        for mhz in [1700.0, 1300.0, 900.0, 600.0] {
            let ex = engine.execute(&k, GpuSettings::freq_capped(mhz));
            obs.push(Observation {
                util: ex.perf.util,
                freq: ex.freq,
                power_w: ex.busy_power_w,
            });
        }
    }
    let fitted = fit(&obs, engine.power_model().curve).expect("fit");

    // Held-out prediction: the membench HBM point.
    let k = pmss::workloads::membench::kernel(
        pmss::workloads::membench::MembenchParams::sized_for(1 << 28, 3.0),
    );
    let ex = engine.execute(&k, GpuSettings::uncapped());
    let predicted = fitted.demand_w(ex.perf.util, Freq::MAX);
    assert!(
        (predicted - ex.busy_power_w).abs() < 0.05 * ex.busy_power_w,
        "predicted {predicted} vs measured {}",
        ex.busy_power_w
    );
}

#[test]
fn thermal_model_grounds_the_boost_budget() {
    let b = ThermalModel::default().derive_boost_budget();
    // The derived budget must sit in the regime that produced the ~1%
    // boosted GPU-hours of Table IV.
    assert!((3.0..30.0).contains(&b.stored_s()));
    assert!((0.02..0.4).contains(&b.duty_cycle()));
}

#[test]
fn proxy_apps_cover_all_table_iv_regions() {
    use pmss::core::Region;
    let engine = Engine::default();
    let mut seen = std::collections::HashSet::new();
    for app in ProxyApp::all() {
        let (mut e, mut t) = (0.0, 0.0);
        for k in app.run(2, 60.0) {
            let ex = engine.execute(&k, GpuSettings::uncapped());
            e += ex.energy_j;
            t += ex.time_s;
        }
        seen.insert(Region::of_power(e / t));
    }
    assert!(seen.contains(&Region::LatencyBound));
    assert!(seen.contains(&Region::MemoryIntensive));
    assert!(seen.contains(&Region::ComputeIntensive));
}

#[test]
fn job_log_round_trips_through_the_scheduler_pipeline() {
    use pmss::sched::{catalog, generate, log, TraceParams};
    use std::io::BufReader;

    let cat = catalog();
    let codes: Vec<&str> = cat.iter().map(|d| d.code).collect();
    let s = generate(
        TraceParams {
            nodes: 8,
            duration_s: 86_400.0,
            seed: 31,
            min_job_s: 900.0,
        },
        &cat,
    );
    let mut buf = Vec::new();
    log::write_log(&mut buf, &s.jobs).unwrap();
    let parsed = log::read_log(BufReader::new(buf.as_slice()), &codes).unwrap();
    assert_eq!(parsed.len(), s.jobs.len());

    // The parsed log carries everything the decomposition needs: rebuild
    // statistics and compare.
    let st_orig = pmss::sched::schedule_stats(&s, cat.len());
    let rebuilt = pmss::sched::Schedule {
        jobs: parsed,
        per_node: s.per_node.clone(),
        duration_s: s.duration_s,
    };
    let st_back = pmss::sched::schedule_stats(&rebuilt, cat.len());
    assert_eq!(st_orig.total_jobs(), st_back.total_jobs());
    assert!((st_orig.total_node_seconds - st_back.total_node_seconds).abs() < 1.0);
}

#[test]
fn sensitivity_spread_is_small_on_fleet_data() {
    use pmss::core::sensitivity::boundary_sweep;
    use pmss::sched::{catalog, generate, TraceParams};
    use pmss::telemetry::{simulate_fleet, FleetConfig, SystemHistogram};
    use pmss::workloads::table3;

    let s = generate(
        TraceParams {
            nodes: 12,
            duration_s: 2.0 * 86_400.0,
            seed: 41,
            min_job_s: 900.0,
        },
        &catalog(),
    );
    let sys: SystemHistogram = simulate_fleet(&s, &FleetConfig::default());
    let total_j: f64 = sys
        .hist
        .centers()
        .zip(sys.hist.counts())
        .map(|(c, &n)| c * n as f64 * 15.0)
        .sum();
    let t3 = table3::compute_default();
    let report = boundary_sweep(&sys.hist, total_j, &t3, 30.0, 4).expect("valid sweep inputs");
    assert!(report.reference.best_free_pct > 3.0);
    assert!(
        report.free_savings_spread() < 0.6 * report.reference.best_free_pct,
        "spread {} vs reference {}",
        report.free_savings_spread(),
        report.reference.best_free_pct
    );
}
