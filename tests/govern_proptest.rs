//! Property tests for the online cluster governor: arbitrary plans —
//! valid or not — never panic, every accepted run keeps the cluster
//! budget invariant, and plan validation is exactly the boundary between
//! typed errors and successful replays.
//!
//! Failing case seeds persist to `tests/proptest-regressions/` (see
//! `vendor/proptest`) and replay before fresh cases on every run.

use proptest::prelude::*;

use pmss_govern::{run_governor, GovernorPlan, Policy};
use pmss_sched::Schedule;
use pmss_stream::StreamConfig;
use pmss_telemetry::{WindowEvent, WindowKind};
use pmss_workloads::sweep::CapSetting;
use pmss_workloads::table3::{Table3, Table3Row};
use pmss_workloads::Factors;

const WINDOW_S: f64 = 15.0;
const GPUS_PER_NODE: u8 = 4;

fn schedule(nodes: usize) -> Schedule {
    Schedule {
        jobs: Vec::new(),
        per_node: vec![Vec::new(); nodes],
        duration_s: 3600.0,
    }
}

/// A small factor table with one free frequency cap and a power-throttle
/// ladder, shaped like the measured Table 3.
fn table() -> Table3 {
    let f = |power, runtime, energy| Factors {
        power_pct: power,
        runtime_pct: runtime,
        energy_pct: energy,
    };
    Table3 {
        freq_rows: vec![
            Table3Row {
                setting: CapSetting::FreqMhz(1700.0),
                vai: f(100.0, 100.0, 100.0),
                mb: f(100.0, 100.0, 100.0),
            },
            Table3Row {
                setting: CapSetting::FreqMhz(700.0),
                vai: f(60.0, 140.0, 84.0),
                mb: f(88.0, 100.0, 88.0),
            },
        ],
        power_rows: vec![
            Table3Row {
                setting: CapSetting::PowerW(560.0),
                vai: f(100.0, 100.0, 100.0),
                mb: f(100.0, 100.0, 100.0),
            },
            Table3Row {
                setting: CapSetting::PowerW(300.0),
                vai: f(55.0, 160.0, 88.0),
                mb: f(90.0, 102.0, 91.8),
            },
            Table3Row {
                setting: CapSetting::PowerW(100.0),
                vai: f(20.0, 400.0, 80.0),
                mb: f(40.0, 200.0, 80.0),
            },
        ],
    }
}

/// In-order steady telemetry with a per-channel power level chosen by a
/// seeded hash, so different seeds exercise different mode mixes (latency,
/// memory-intensive, compute-intensive, boost).
fn events(nodes: u32, windows: u64, seed: u64) -> Vec<WindowEvent> {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let levels = [120.0, 300.0, 500.0, 600.0];
    let mut evs = Vec::new();
    for w in 0..windows {
        for n in 0..nodes {
            for s in 0..GPUS_PER_NODE {
                // Channels hold a level for 8-window stretches so the
                // classifier sees coherent phases, not white noise.
                let h = mix(seed ^ (u64::from(n) << 24) ^ (u64::from(s) << 16) ^ (w / 8));
                evs.push(WindowEvent {
                    node: n,
                    slot: s,
                    sku: 0,
                    window: w,
                    rank: w,
                    t_s: w as f64 * WINDOW_S,
                    span_s: WINDOW_S,
                    kind: WindowKind::Sample {
                        power_w: levels[(h % 4) as usize],
                        job: None,
                    },
                });
            }
        }
    }
    evs
}

/// Strategy over the full plan surface, including out-of-range values:
/// zero intervals, rates and thresholds outside (0, 1], inverted floor
/// and ceiling, negative budgets, non-finite caps.
fn arb_plan() -> impl Strategy<Value = GovernorPlan> {
    (
        (0usize..3, 0u32..5, 0u32..4),
        (-0.5..1.5f64, -0.5..1.5f64, -0.5..1.5f64, -0.5..1.5f64),
        (100.0..3000.0f64, 100.0..3000.0f64),
        (0usize..4, 500.0..200_000.0f64),
        0usize..5,
    )
        .prop_map(
            |(
                (policy, interval_windows, hysteresis_rounds),
                (increase_rate, decrease_rate, lower_thresh, upper_thresh),
                (node_floor_w, node_ceiling_w),
                (budget_kind, budget),
                cap_kind,
            )| GovernorPlan {
                policy: Policy::all()[policy],
                budget_w: match budget_kind {
                    0 => None,
                    1 => Some(budget),
                    2 => Some(-1.0),
                    _ => Some(f64::NAN),
                },
                interval_windows,
                increase_rate,
                decrease_rate,
                lower_thresh,
                upper_thresh,
                hysteresis_rounds,
                node_floor_w,
                node_ceiling_w,
                cap: match cap_kind {
                    0 => None,
                    1 => Some(CapSetting::FreqMhz(700.0)),
                    2 => Some(CapSetting::PowerW(300.0)),
                    3 => Some(CapSetting::FreqMhz(f64::INFINITY)),
                    _ => Some(CapSetting::PowerW(0.0)),
                },
            },
        )
}

/// Strategy constrained to plans `validate()` accepts: every field drawn
/// from its documented legal range.
fn valid_plan() -> impl Strategy<Value = GovernorPlan> {
    (
        (0usize..3, 1u32..5, 0u32..4),
        (0.01..1.0f64, 0.01..1.0f64, 0.05..0.9f64, 0.0..0.09f64),
        (200.0..1000.0f64, 0.0..2000.0f64),
        0usize..3,
    )
        .prop_map(
            |(
                (policy, interval_windows, hysteresis_rounds),
                (increase_rate, decrease_rate, lower_thresh, thresh_gap),
                (node_floor_w, ceiling_extra),
                cap_kind,
            )| GovernorPlan {
                policy: Policy::all()[policy],
                budget_w: None,
                interval_windows,
                increase_rate,
                decrease_rate,
                lower_thresh,
                upper_thresh: lower_thresh + thresh_gap,
                hysteresis_rounds,
                node_floor_w,
                node_ceiling_w: node_floor_w + ceiling_extra,
                cap: match cap_kind {
                    0 => None,
                    1 => Some(CapSetting::FreqMhz(700.0)),
                    _ => Some(CapSetting::PowerW(300.0)),
                },
            },
        )
}

proptest! {
    /// Any plan over the full field surface either resolves and replays
    /// cleanly or fails with a typed error — never a panic.  Every
    /// accepted replay keeps `sum(node caps) <= budget` at all times.
    #[test]
    fn arbitrary_plans_never_panic_and_never_exceed_the_budget(
        plan in arb_plan(),
        nodes in 1u32..5,
        windows in 1u64..40,
        seed in 0u64..1 << 32,
    ) {
        let sched = schedule(nodes as usize);
        let t3 = table();
        let evs = events(nodes, windows, seed);
        let cfg = StreamConfig::default();
        match plan.resolve(nodes as usize, CapSetting::FreqMhz(700.0)) {
            Err(_) => {} // typed rejection is the correct outcome
            Ok(resolved) => {
                let out = run_governor(&sched, &evs, cfg, &resolved, &t3, WINDOW_S)
                    .expect("a resolved plan replays");
                prop_assert!(!out.budget_exceeded, "cluster budget exceeded");
                prop_assert!(
                    out.peak_budget_utilization <= 1.0 + 1e-9,
                    "peak utilization {} above budget",
                    out.peak_budget_utilization
                );
                prop_assert!(out.realized_pct().is_finite());
                prop_assert!(out.slowdown_pct().is_finite());
            }
        }
    }

    /// Valid plans always replay, and the replay is a pure function of its
    /// inputs: running twice yields identical outcomes.
    #[test]
    fn valid_plans_replay_deterministically(
        plan in valid_plan(),
        nodes in 1u32..5,
        windows in 1u64..40,
        seed in 0u64..1 << 32,
    ) {
        let sched = schedule(nodes as usize);
        let t3 = table();
        let evs = events(nodes, windows, seed);
        let cfg = StreamConfig::default();
        let resolved = plan
            .resolve(nodes as usize, CapSetting::FreqMhz(700.0))
            .expect("valid plans resolve against any non-empty fleet");
        let a = run_governor(&sched, &evs, cfg, &resolved, &t3, WINDOW_S).expect("replays");
        let b = run_governor(&sched, &evs, cfg, &resolved, &t3, WINDOW_S).expect("replays");
        prop_assert_eq!(a, b);
    }

    /// The static policy is the savings ceiling among same-cap policies:
    /// capping everything always realizes at least as much energy as mode
    /// capping, which in turn never realizes more than the table's best
    /// case allows (savings stay inside [0, 100)%).
    #[test]
    fn static_realizes_at_least_as_much_as_the_online_policies(
        nodes in 1u32..5,
        windows in 4u64..40,
        seed in 0u64..1 << 32,
    ) {
        let sched = schedule(nodes as usize);
        let t3 = table();
        let evs = events(nodes, windows, seed);
        let cfg = StreamConfig::default();
        let mut saved = Vec::new();
        for name in pmss_govern::PRESETS {
            let resolved = GovernorPlan::preset(name)
                .expect("preset")
                .resolve(nodes as usize, CapSetting::FreqMhz(700.0))
                .expect("resolves");
            let out = run_governor(&sched, &evs, cfg, &resolved, &t3, WINDOW_S).expect("replays");
            prop_assert!((0.0..100.0).contains(&out.realized_pct()));
            saved.push(out.saved_j());
        }
        // saved[0] is `static`; the online policies cap a subset of the
        // windows the static policy caps, with the same factor table.
        prop_assert!(saved[1] <= saved[0] + 1e-9, "greedy out-saved static");
        prop_assert!(saved[2] <= saved[0] + 1e-9, "polimer out-saved static");
    }
}
