//! Property tests for the columnar window-block substrate: arbitrary
//! on-grid blocks survive the compressed resident round trip bit for bit,
//! and the block-shaped fleet surface is indistinguishable — event by
//! event and fold by fold — from the legacy per-event iteration.
//!
//! Failing case seeds persist to `tests/proptest-regressions/` (see
//! `vendor/proptest`) and replay before fresh cases on every run.

use proptest::prelude::*;

use pmss::columns::{BlockGrid, CodecConfig, ColumnBlock, EncodedBlock};
use pmss::core::EnergyLedger;
use pmss::faults::{FaultPlan, GapPolicy};
use pmss::sched::{catalog, generate, Schedule, TraceParams};
use pmss::telemetry::{
    apply_event, fleet_window_blocks, fleet_window_events, simulate_fleet, FleetConfig,
    FleetObserver, GapFill, WindowEvent, WindowKind, REST_SLOT,
};

/// One generated row of a synthetic block, before grid stamping.
#[derive(Debug, Clone, Copy)]
struct RowSpec {
    window: u64,
    rank_off: i8,
    kind_pick: u8,
    watts: u16,
    job: Option<u8>,
}

/// Strategy for a synthetic block's rows: windows ascending with
/// duplicates, ranks a bounded shuffle of the window index, kinds cycling
/// through samples (including NaN glitches) and every gap fill.
fn arb_rows(n_full: u64) -> impl Strategy<Value = Vec<RowSpec>> {
    prop::collection::vec((0..=n_full, -3i8..=3, 0u8..6, 0u16..2000, 0u8..40), 1..120).prop_map(
        |mut rows| {
            rows.sort_by_key(|r| r.0);
            rows.into_iter()
                .map(|(window, rank_off, kind_pick, watts, job_raw)| RowSpec {
                    window,
                    rank_off,
                    kind_pick,
                    watts,
                    // Half the draws carry a job attribution.
                    job: (job_raw < 20).then_some(job_raw),
                })
                .collect()
        },
    )
}

/// Materializes a row spec on `grid` as a [`WindowEvent`] whose power
/// values sit on the codec's 1 W quantization grid (so the resident round
/// trip must be *exact*, not merely within half a quantum).
fn stamp_event(grid: &BlockGrid, node: u32, slot: u8, sku: u8, spec: &RowSpec) -> WindowEvent {
    let rest = slot == REST_SLOT;
    let (t_s, span_s) = {
        // Reproduce the generator's stamp through the public encode
        // contract: encode verifies these bitwise, so build them the same
        // way the fleet generator does.
        let w_start = spec.window as f64 * grid.window_s;
        let n_full = (grid.duration_s / grid.window_s).floor() as u64;
        let w_end = if spec.window == n_full {
            grid.duration_s
        } else {
            w_start + grid.window_s
        };
        let span = w_end - w_start;
        let center = if rest {
            0.5 * (w_start + w_end)
        } else {
            w_start + 0.5 * span
        };
        (center + grid.skew_s, span)
    };
    let watts = f64::from(spec.watts);
    let job = spec.job.map(usize::from);
    let kind = if rest {
        WindowKind::NodeRest { rest_w: watts }
    } else {
        match spec.kind_pick {
            0 => WindowKind::Sample {
                power_w: f64::NAN,
                job,
            },
            1 => WindowKind::Gap {
                fill: GapFill::Interpolated(watts),
                job,
            },
            2 => WindowKind::Gap {
                fill: GapFill::Excluded,
                job: None,
            },
            3 => WindowKind::Gap {
                fill: GapFill::Idle(watts),
                job: None,
            },
            _ => WindowKind::Sample {
                power_w: watts,
                job,
            },
        }
    };
    WindowEvent {
        node,
        slot,
        sku,
        window: spec.window,
        rank: spec.window.saturating_add_signed(i64::from(spec.rank_off)),
        t_s,
        span_s,
        kind,
    }
}

/// A bitwise comparison key for one event (plain `==` is false for the
/// NaN power values glitch faults produce).
fn event_key(ev: &WindowEvent) -> (u32, u8, u8, u64, u64, u64, u64, u8, u64, Option<usize>) {
    let (kind, bits, job) = match ev.kind {
        WindowKind::Sample { power_w, job } => (0u8, power_w.to_bits(), job),
        WindowKind::Gap { fill, job } => match fill {
            GapFill::Interpolated(w) => (1, w.to_bits(), job),
            GapFill::Excluded => (2, 0, job),
            GapFill::Idle(w) => (3, w.to_bits(), job),
        },
        WindowKind::NodeRest { rest_w } => (4, rest_w.to_bits(), None),
    };
    (
        ev.node,
        ev.slot,
        ev.sku,
        ev.window,
        ev.rank,
        ev.t_s.to_bits(),
        ev.span_s.to_bits(),
        kind,
        bits,
        job,
    )
}

/// Strategy for an arbitrary (not preset) fault plan.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0..0.15f64, 0.0..0.15f64, 0.0..0.05f64, 0.0..0.05f64),
        (0u32..5, 0.0..400.0f64, 0.0..0.03f64, 1u32..8),
        (0.0..5.0f64, 0usize..3, 0u64..1 << 32),
    )
        .prop_map(
            |(
                (drop_prob, dup_prob, nan_prob, spike_prob),
                (reorder_depth, spike_w, dropout_prob, dropout_windows),
                (clock_skew_max_s, policy, seed),
            )| FaultPlan {
                seed,
                drop_prob,
                dup_prob,
                reorder_depth,
                nan_prob,
                spike_prob,
                spike_w,
                dropout_prob,
                dropout_windows,
                clock_skew_max_s,
                gap_policy: GapPolicy::all()[policy],
            },
        )
}

fn small_schedule(nodes: usize, hours: u64, seed: u64) -> Schedule {
    generate(
        TraceParams {
            nodes,
            duration_s: hours as f64 * 3600.0,
            seed,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

proptest! {
    /// Any on-grid block — duplicated and reordered windows, every gap
    /// fill, NaN glitches, a partial tail window, clock skew, power on
    /// the 1 W quantization grid — encodes and decodes back to the
    /// identical block, bit for bit, through the compressed resident
    /// format.
    #[test]
    fn on_grid_blocks_round_trip_bit_for_bit(
        (n_full, rows) in (10u64..300).prop_flat_map(|n| (Just(n), arb_rows(n))),
        window_s in (0usize..3).prop_map(|i| [5.0f64, 15.0, 60.0][i]),
        tail_frac in 0.0..1.0f64,
        skew_s in -5.0..5.0f64,
        node in 0u32..64,
        slot in 0u8..5,
        sku in 0u8..16,
    ) {
        let grid = BlockGrid {
            window_s,
            duration_s: (n_full as f64 + tail_frac) * window_s,
            skew_s,
        };
        let events: Vec<WindowEvent> = rows
            .iter()
            .map(|r| stamp_event(&grid, node, slot, sku, r))
            .collect();
        let block = ColumnBlock::from_events(node, slot, &events);
        let enc = EncodedBlock::encode(&block, grid, CodecConfig::default()).expect("encode");
        let dec = enc.decode(CodecConfig::default()).expect("decode");
        prop_assert_eq!(dec.len(), block.len());
        for i in 0..block.len() {
            prop_assert_eq!(event_key(&dec.event(i)), event_key(&block.event(i)));
        }
    }

    /// The block-shaped fleet surface is the per-event surface: for any
    /// fault plan, concatenating every block's rows reproduces the legacy
    /// event stream bit for bit, every block's columnar fold equals the
    /// per-event `apply_event` loop over the same rows bit for bit, and —
    /// when the plan does not reorder delivery (arrival order is window
    /// order, so accumulation order matches) — the channel-merged ledger
    /// equals the batch ledger bit for bit.
    #[test]
    fn block_iteration_matches_per_event_iteration(
        plan in arb_plan(),
        nodes in 1usize..4,
        hours in 1u64..3,
        trace_seed in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, hours, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let mut by_event = Vec::new();
        fleet_window_events(&schedule, &cfg, |ev| by_event.push(event_key(&ev)));

        let mut by_block = Vec::new();
        let mut ledger = EnergyLedger::default();
        fleet_window_blocks(&schedule, &cfg, |block| {
            by_block.extend(block.iter().map(|ev| event_key(&ev)));
            let mut folded = EnergyLedger::default();
            folded.fold_block(&schedule, block);
            let mut applied = EnergyLedger::default();
            for ev in block.iter() {
                apply_event(&mut applied, &schedule, &ev);
            }
            assert_eq!(folded, applied, "columnar fold vs per-event apply");
            ledger.merge(folded);
        });
        prop_assert_eq!(by_block, by_event);

        // Under reordering faults the blocks arrive (and fold) in delivery
        // order while the batch path folds in window order, so f64
        // accumulation order — and hence low bits — legitimately differ;
        // the stream engine's reorder ring is what restores window order
        // (covered by the stream differential suites).  Without
        // reordering the two folds are the same sequence and must agree
        // bit for bit.
        let reorders = cfg.faults.as_ref().is_some_and(|p| p.reorder_depth > 0);
        if !reorders {
            let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);
            prop_assert_eq!(&ledger, &batch);
        }
    }
}
