//! Property tests for the streaming ingest engine: arbitrary fault plans
//! and delivery orderings never panic, snapshots are prefix-monotone, the
//! reorder buffer honours its declared memory bound, and late arrivals
//! are rejected with a typed error instead of corrupting state.
//!
//! Failing case seeds persist to `tests/proptest-regressions/` (see
//! `vendor/proptest`) and replay before fresh cases on every run.

use proptest::prelude::*;

use pmss_core::EnergyLedger;
use pmss_faults::{FaultPlan, GapPolicy};
use pmss_sched::{catalog, generate, Schedule, TraceParams};
use pmss_stream::{StreamConfig, StreamEngine, StreamError};
use pmss_telemetry::{fleet_window_events, simulate_fleet, FleetConfig, WindowEvent};

/// A small-but-real trace: enough channels and windows to exercise every
/// event kind while keeping 64 cases per property fast.
fn small_schedule(nodes: usize, hours: u64, seed: u64) -> Schedule {
    generate(
        TraceParams {
            nodes,
            duration_s: hours as f64 * 3600.0,
            seed,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

/// Strategy for an arbitrary (not preset) fault plan.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0..0.15f64, 0.0..0.15f64, 0.0..0.05f64, 0.0..0.05f64),
        (0u32..5, 0.0..400.0f64, 0.0..0.03f64, 1u32..8),
        (0.0..5.0f64, 0usize..3, 0u64..1 << 32),
    )
        .prop_map(
            |(
                (drop_prob, dup_prob, nan_prob, spike_prob),
                (reorder_depth, spike_w, dropout_prob, dropout_windows),
                (clock_skew_max_s, policy, seed),
            )| FaultPlan {
                seed,
                drop_prob,
                dup_prob,
                reorder_depth,
                nan_prob,
                spike_prob,
                spike_w,
                dropout_prob,
                dropout_windows,
                clock_skew_max_s,
                gap_policy: GapPolicy::all()[policy],
            },
        )
}

/// Deterministic within-horizon shuffle keyed by `salt`: each event's
/// sort key gains a pseudo-random lag in `[0, slack]`.
fn shuffle_within(events: &[WindowEvent], slack: u64, salt: u64) -> Vec<WindowEvent> {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut keyed: Vec<(u64, usize, WindowEvent)> = events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let h = mix(salt ^ (ev.node as u64) << 40 ^ (ev.slot as u64) << 32 ^ ev.window);
            (ev.window + h % (slack + 1), i, *ev)
        })
        .collect();
    keyed.sort_by_key(|&(k, i, _)| (k, i));
    keyed.into_iter().map(|(_, _, ev)| ev).collect()
}

fn materialize(schedule: &Schedule, cfg: &FleetConfig) -> Vec<WindowEvent> {
    let mut events = Vec::new();
    fleet_window_events(schedule, cfg, |ev| events.push(ev));
    events
}

proptest! {
    /// Any fault plan, any shard count, any within-horizon reordering on
    /// top: the engine neither panics nor rejects, and its final ledger
    /// equals the batch decomposition.
    #[test]
    fn arbitrary_plans_and_orderings_never_panic_and_match_batch(
        plan in arb_plan(),
        nodes in 1usize..4,
        hours in 1u64..3,
        trace_seed in 0u64..1 << 32,
        shards in 1usize..5,
        slack in 0u64..7,
        salt in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, hours, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);

        let base = StreamConfig::for_plan(cfg.faults.as_ref());
        let stream_cfg = StreamConfig {
            shards,
            reorder_horizon: base.reorder_horizon + slack,
            ..StreamConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, stream_cfg).expect("valid config");
        for ev in shuffle_within(&materialize(&schedule, &cfg), slack, salt) {
            eng.ingest(ev).expect("within-horizon delivery is accepted");
        }
        let (streamed, stats) = eng.finish();
        prop_assert_eq!(&streamed, &batch);
        prop_assert_eq!(stats.late_rejects, 0);
    }

    /// Snapshots along a stream are prefix-monotone: ingest only ever
    /// grows the observed time and energy, never retracts them.
    #[test]
    fn snapshots_are_prefix_monotone(
        plan in arb_plan(),
        trace_seed in 0u64..1 << 32,
        stride in 500usize..4000,
    ) {
        let schedule = small_schedule(2, 1, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, StreamConfig::for_plan(cfg.faults.as_ref()))
                .expect("valid config");

        let mut last_total_s = 0.0f64;
        let mut last_joules = 0.0f64;
        let mut last_events = 0u64;
        let mut check = |eng: &StreamEngine<'_, EnergyLedger>| {
            let snap = eng.snapshot();
            let cov = snap.coverage();
            let joules: f64 = snap.region_totals().iter().map(|c| c.joules).sum();
            assert!(cov.total_s() >= last_total_s, "coverage retracted");
            assert!(joules >= last_joules, "energy retracted");
            assert!(eng.stats().events >= last_events, "event count retracted");
            last_total_s = cov.total_s();
            last_joules = joules;
            last_events = eng.stats().events;
        };

        let events = materialize(&schedule, &cfg);
        for (i, ev) in events.iter().enumerate() {
            eng.ingest(*ev).expect("arrival order is within horizon");
            if i % stride == 0 {
                check(&eng);
            }
        }
        eng.flush();
        check(&eng);
    }

    /// The reorder buffer honours its declared bound throughout ingest:
    /// never more than `horizon` windows parked per channel, never more
    /// than `channels x horizon` in total.
    #[test]
    fn reorder_buffer_stays_within_declared_bound(
        plan in arb_plan(),
        trace_seed in 0u64..1 << 32,
        slack in 0u64..7,
        salt in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(2, 1, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let base = StreamConfig::for_plan(cfg.faults.as_ref());
        let stream_cfg = StreamConfig {
            reorder_horizon: base.reorder_horizon + slack,
            ..StreamConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, stream_cfg).expect("valid config");
        for ev in shuffle_within(&materialize(&schedule, &cfg), slack, salt) {
            eng.ingest(ev).expect("within-horizon delivery is accepted");
            prop_assert!(eng.stats().buffered_windows <= eng.buffer_bound());
        }
        let bound = eng.buffer_bound();
        let (_, stats) = eng.finish();
        prop_assert!(stats.peak_buffered_windows <= bound);
        prop_assert!(stats.peak_channel_windows as u64 <= stream_cfg.reorder_horizon);
    }

    /// Replaying any already-released window is rejected with the typed
    /// late-arrival error and leaves the stream's result untouched.
    #[test]
    fn late_arrivals_reject_typed_without_corrupting_state(
        plan in arb_plan(),
        trace_seed in 0u64..1 << 32,
        pick in 0usize..1 << 16,
    ) {
        let schedule = small_schedule(2, 1, trace_seed);
        let cfg = FleetConfig {
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let events = materialize(&schedule, &cfg);
        let base = StreamConfig::for_plan(cfg.faults.as_ref());

        let mut clean: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, base).expect("valid config");
        let mut tampered: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, base).expect("valid config");
        // Re-send a random event from far enough back that its window is
        // guaranteed released (beyond the horizon, in delivered-window
        // terms of its own channel).
        let horizon = base.reorder_horizon;
        let mut replayed = false;
        for (i, ev) in events.iter().enumerate() {
            clean.ingest(*ev).expect("arrival order is within horizon");
            tampered.ingest(*ev).expect("arrival order is within horizon");
            if !replayed && i > 0 {
                let victim = events[..i]
                    .iter()
                    .find(|v| v.channel() == ev.channel() && ev.window > v.window + horizon);
                if let Some(&v) = victim {
                    // Only exercise a deterministic subset of positions.
                    if i % ((pick % 97) + 1) == 0 {
                        let err = tampered.ingest(v).expect_err("released window");
                        prop_assert!(matches!(err, StreamError::LateArrival { .. }));
                        replayed = true;
                    }
                }
            }
        }
        let (a, _) = clean.finish();
        let (b, stats) = tampered.finish();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(stats.late_rejects, u64::from(replayed));
    }
}
