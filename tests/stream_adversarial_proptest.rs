//! Adversarial-ingest properties: arbitrary hostile events — channels the
//! schedule does not have, jobs outside the job log, windows up to
//! `u64::MAX` — and corrupted `EncodedBlock` wire payloads never panic
//! the engine, every rejection carries a typed [`StreamError`], a
//! rejected frame leaves state bit-identical, and the accepted prefix
//! folds to exactly the state a clean engine reaches over those events
//! alone.
//!
//! Failing case seeds persist to `tests/proptest-regressions/`.

use proptest::prelude::*;

use pmss_columns::{BlockGrid, CodecConfig, ColumnBlock, EncodedBlock};
use pmss_core::EnergyLedger;
use pmss_sched::{catalog, generate, Schedule, TraceParams};
use pmss_stream::{StreamConfig, StreamEngine};
use pmss_telemetry::{fleet_window_events, FleetConfig, WindowEvent, WindowKind};

fn small_schedule(seed: u64) -> Schedule {
    generate(
        TraceParams {
            nodes: 2,
            duration_s: 3600.0,
            seed,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

/// In-order clean events for `schedule` (the honest feed the adversary
/// interleaves with).
fn clean_events(schedule: &Schedule) -> Vec<WindowEvent> {
    let cfg = FleetConfig::default();
    let mut events = Vec::new();
    fleet_window_events(schedule, &cfg, |ev| events.push(ev));
    events
}

/// Strategy for one adversarial event: extreme nodes, slots, windows, and
/// job indices, most outside anything the 2-node schedule defines.  Each
/// coordinate picks among an in-range band, a hostile band, and the type
/// maximum.
fn arb_hostile_event() -> impl Strategy<Value = WindowEvent> {
    (0u64..1 << 60, 0u64..1 << 60, 0u64..1 << 60, 0u64..1 << 60).prop_map(|(a, b, c, d)| {
        let node = match a % 3 {
            0 => (a / 3 % 2) as u32,
            1 => 2 + (a / 3 % 100) as u32,
            _ => u32::MAX,
        };
        let slot = match b % 3 {
            0 => (b / 3 % 5) as u8,
            1 => 5 + (b / 3 % 200) as u8,
            _ => u8::MAX,
        };
        let window = match c % 3 {
            0 => c / 3 % 1000,
            1 => (1u64 << 23) + c / 3 % (1 << 17),
            _ => u64::MAX,
        };
        let job = match d % 3 {
            0 => None,
            1 => Some((d / 3 % 10_000) as usize),
            _ => Some(usize::MAX),
        };
        // SKU bands: in-catalog, past the wire-format ceiling, type max.
        let sku = match (a ^ d) % 3 {
            0 => ((a ^ d) / 3 % 3) as u8,
            1 => 16 + ((a ^ d) / 3 % 100) as u8,
            _ => u8::MAX,
        };
        WindowEvent {
            node,
            slot,
            sku,
            window,
            rank: window,
            t_s: window as f64 * 15.0,
            span_s: 15.0,
            kind: WindowKind::Sample {
                power_w: 300.0,
                job,
            },
        }
    })
}

proptest! {
    /// Interleaving hostile events with an honest feed: nothing panics,
    /// every verdict is typed, and the engine that saw the mix ends
    /// bit-identical to an engine fed only the accepted events.
    #[test]
    fn hostile_events_are_inert(
        seed in 0u64..1 << 32,
        hostile in prop::collection::vec(arb_hostile_event(), 1..40),
        positions in prop::collection::vec(0usize..500, 1..40),
    ) {
        let schedule = small_schedule(seed);
        let clean = clean_events(&schedule);
        let cfg = StreamConfig::default();
        let mut mixed: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, cfg).unwrap();
        let mut accepted_only: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, cfg).unwrap();

        // Interleave: hostile event i lands before clean event
        // positions[i] (mod len).
        let mut inject: std::collections::HashMap<usize, Vec<WindowEvent>> =
            std::collections::HashMap::new();
        for (ev, pos) in hostile.iter().zip(&positions) {
            inject.entry(pos % clean.len()).or_default().push(*ev);
        }

        for (i, ev) in clean.iter().enumerate() {
            for hostile_ev in inject.get(&i).into_iter().flatten() {
                let before = mixed.snapshot();
                let stats_before = mixed.stats();
                match mixed.ingest(*hostile_ev) {
                    Ok(()) => {
                        // In-schedule coordinates: the twin must accept too.
                        accepted_only.ingest(*hostile_ev).unwrap();
                    }
                    Err(_) => {
                        // Typed rejection: state bit-identical, only
                        // reject tallies moved.
                        prop_assert_eq!(&mixed.snapshot(), &before);
                        let after = mixed.stats();
                        prop_assert_eq!(after.events, stats_before.events);
                        prop_assert!(
                            after.late_rejects + after.channel_rejects
                                + after.span_rejects + after.job_rejects
                                > stats_before.late_rejects + stats_before.channel_rejects
                                + stats_before.span_rejects + stats_before.job_rejects
                        );
                    }
                }
            }
            // An *accepted* hostile event may legitimately shift the
            // release frontier (it names real coordinates), so a clean
            // event can become a late arrival — but both engines hold
            // the same accepted set, so their verdicts must agree.
            let vm = mixed.ingest(*ev);
            let vt = accepted_only.ingest(*ev);
            prop_assert_eq!(vm.is_ok(), vt.is_ok());
        }
        prop_assert_eq!(mixed.snapshot(), accepted_only.snapshot());
        let (a, _) = mixed.finish();
        let (b, _) = accepted_only.finish();
        prop_assert_eq!(a, b);
    }

    /// Corrupting a valid wire frame — byte flips, truncation, or both —
    /// never panics the decode path, and a frame that fails validation is
    /// rejected before the engine sees anything.
    #[test]
    fn corrupted_wire_frames_are_rejected_before_state(
        seed in 0u64..1 << 32,
        flips in prop::collection::vec((0usize..10_000, 0usize..256), 1..16),
        truncate_to in (0usize..20_000).prop_map(|n| (n < 10_000).then_some(n)),
    ) {
        let schedule = small_schedule(seed);
        let clean = clean_events(&schedule);
        let codec = CodecConfig::default();

        // A genuine block for channel (0, 0), encoded to wire bytes.
        let mut block = ColumnBlock::new(0, 0);
        for ev in clean.iter().filter(|e| e.channel() == (0, 0)) {
            block.push(ev);
        }
        let grid = BlockGrid {
            window_s: 15.0,
            duration_s: schedule.duration_s,
            skew_s: 0.0,
        };
        let enc = EncodedBlock::encode(&block, grid, codec).unwrap();
        let mut wire = enc.to_bytes();

        // Corrupt it.
        for &(pos, value) in &flips {
            let idx = pos % wire.len();
            wire[idx] = value as u8;
        }
        if let Some(n) = truncate_to {
            wire.truncate(n % (wire.len() + 1));
        }

        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, StreamConfig::default()).unwrap();
        let before = eng.snapshot();
        // The daemon's admission path: structural parse, bounded decode,
        // then ingest.  Each stage either succeeds or returns a typed
        // error; none may panic.
        if let Ok(parsed) = EncodedBlock::from_bytes(&wire) {
            if let Ok(decoded) = parsed.decode(codec) {
                let _ = eng.ingest_block(&decoded);
            }
        }
        // Wherever the corruption was caught, the engine either ingested
        // a fully valid block or remained untouched.
        if eng.stats().events == 0 {
            prop_assert_eq!(eng.snapshot(), before);
        }
    }
}
