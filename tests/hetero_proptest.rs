//! Property tests for heterogeneous fleets: arbitrary SKU mixes —
//! including indices past the catalog and past [`MAX_SKUS`] — never
//! panic, the per-SKU ledger lanes and the per-component split both
//! conserve device energy, and the streaming and compressed-resident
//! paths stay bit-identical to the batch decomposition under any mix.
//!
//! Failing case seeds persist to `tests/proptest-regressions/` (see
//! `vendor/proptest`) and replay before fresh cases on every run.

use proptest::prelude::*;

use pmss::core::EnergyLedger;
use pmss::faults::{FaultPlan, GapPolicy};
use pmss::gpu::{FleetMix, SkuCatalog};
use pmss::sched::{catalog, generate, Schedule, TraceParams};
use pmss::stream::{StreamConfig, StreamEngine};
use pmss::telemetry::{fleet_window_events, simulate_fleet, FleetConfig, ResidentFleet};

/// A small-but-real trace: enough channels and windows to exercise every
/// event kind while keeping the per-property case budget fast.
fn small_schedule(nodes: usize, hours: u64, seed: u64) -> Schedule {
    generate(
        TraceParams {
            nodes,
            duration_s: hours as f64 * 3600.0,
            seed,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

/// Strategy for an arbitrary node-class pattern: raw bytes, so indices
/// beyond the standard catalog (wrapped by [`SkuCatalog::spec`]) and
/// beyond [`MAX_SKUS`] (clamped by [`FleetMix::new`]) are both routine.
fn arb_mix() -> impl Strategy<Value = FleetMix> {
    prop::collection::vec(0u8..=u8::MAX, 1..8).prop_map(FleetMix::new)
}

/// Strategy for an arbitrary (not preset) fault plan.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0..0.15f64, 0.0..0.15f64, 0.0..0.05f64, 0.0..0.05f64),
        (0u32..5, 0.0..400.0f64, 0.0..0.03f64, 1u32..8),
        (0.0..5.0f64, 0usize..3, 0u64..1 << 32),
    )
        .prop_map(
            |(
                (drop_prob, dup_prob, nan_prob, spike_prob),
                (reorder_depth, spike_w, dropout_prob, dropout_windows),
                (clock_skew_max_s, policy, seed),
            )| FaultPlan {
                seed,
                drop_prob,
                dup_prob,
                reorder_depth,
                nan_prob,
                spike_prob,
                spike_w,
                dropout_prob,
                dropout_windows,
                clock_skew_max_s,
                gap_policy: GapPolicy::all()[policy],
            },
        )
}

/// Relative-tolerance equality for energy/time sums: `1e-9` relative,
/// absolute below one joule-or-second so empty lanes compare cleanly.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn materialize(schedule: &Schedule, cfg: &FleetConfig) -> Vec<pmss::telemetry::WindowEvent> {
    let mut events = Vec::new();
    fleet_window_events(schedule, cfg, |ev| events.push(ev));
    events
}

proptest! {
    /// Any mix simulates without panicking, and the ledger's bookkeeping
    /// conserves energy twice over: the per-SKU GPU lanes sum to the
    /// region totals (and the per-SKU rest lanes to the rest total), and
    /// splitting each SKU's regional energy through its component
    /// fractions reassembles the device total — per region the fractions
    /// are a partition of unity by construction.
    #[test]
    fn arbitrary_mixes_conserve_energy_through_sku_and_component_lanes(
        mix in arb_mix(),
        nodes in 1usize..5,
        hours in 1u64..3,
        trace_seed in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, hours, trace_seed);
        let cfg = FleetConfig { mix, ..FleetConfig::default() };
        let ledger: EnergyLedger = simulate_fleet(&schedule, &cfg);
        let catalog = SkuCatalog::standard();

        // SKU lanes partition the fleet: summing them recovers the
        // region totals and the rest-of-node total.
        let regions = ledger.region_totals();
        let mut lane_j = vec![0.0f64; regions.len()];
        let mut lane_s = vec![0.0f64; regions.len()];
        let mut rest_j = 0.0f64;
        for sku in 0..ledger.num_skus() {
            for (region, cell) in ledger.sku_gpu_totals(sku).iter().enumerate() {
                lane_j[region] += cell.joules;
                lane_s[region] += cell.seconds;
            }
            rest_j += ledger.sku_rest_total(sku).joules;
        }
        for (region, cell) in regions.iter().enumerate() {
            prop_assert!(
                close(lane_j[region], cell.joules) && close(lane_s[region], cell.seconds),
                "SKU lanes leak in region {region}: {} J vs {} J",
                lane_j[region],
                cell.joules
            );
        }
        prop_assert!(close(rest_j, ledger.rest_total().joules));

        // Component fractions split each SKU's regional energy without
        // loss: HBM + L2 + ALU + clock tree reassemble the device total.
        for sku in 0..ledger.num_skus() {
            let spec = catalog.spec(sku as u8);
            let sku_regions = ledger.sku_gpu_totals(sku);
            let device_j: f64 = sku_regions.iter().map(|c| c.joules).sum();
            let mut lanes = [0.0f64; 4];
            for (region, cell) in sku_regions.iter().enumerate() {
                let fractions = spec.region_component_fractions(region);
                prop_assert!(
                    (fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12,
                    "fractions of sku {sku} region {region} are not a partition of unity"
                );
                for (lane, f) in lanes.iter_mut().zip(fractions) {
                    *lane += cell.joules * f;
                }
            }
            let split_j: f64 = lanes.iter().sum();
            prop_assert!(
                close(split_j, device_j),
                "component split of sku {sku} leaks: {split_j} J vs {device_j} J"
            );
        }
    }

    /// Under any mix the other ingestion paths hold their contracts
    /// against the batch decomposition: streaming ingest of the in-order
    /// event stream is bit-identical, and compressed-resident
    /// capture/replay is deterministic with bit-exact time coverage and
    /// energy within the codec's half-quantum bound (power is quantized
    /// at 1 W on capture — the sensor's own resolution).
    #[test]
    fn stream_and_resident_replay_match_batch_under_any_mix(
        mix in arb_mix(),
        nodes in 1usize..4,
        hours in 1u64..3,
        trace_seed in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, hours, trace_seed);
        let cfg = FleetConfig { mix, ..FleetConfig::default() };
        let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);

        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, StreamConfig::default()).expect("valid config");
        for ev in materialize(&schedule, &cfg) {
            eng.ingest(ev).expect("in-order delivery is accepted");
        }
        let (streamed, _) = eng.finish();
        prop_assert_eq!(&streamed, &batch);

        let resident = ResidentFleet::capture(&schedule, &cfg).expect("capture");
        let replayed: EnergyLedger = resident.replay(&schedule).expect("replay");
        let again: EnergyLedger = resident.replay(&schedule).expect("replay");
        prop_assert_eq!(&again, &replayed, "replay is deterministic");

        let (bc, rc) = (batch.coverage(), replayed.coverage());
        prop_assert_eq!(bc.observed_s.to_bits(), rc.observed_s.to_bits());
        prop_assert_eq!(bc.interpolated_s.to_bits(), rc.interpolated_s.to_bits());
        prop_assert_eq!(bc.excluded_s.to_bits(), rc.excluded_s.to_bits());
        prop_assert_eq!(bc.discarded_s.to_bits(), rc.discarded_s.to_bits());
        let tol = 0.5 * (bc.observed_s + bc.interpolated_s + bc.attributed_idle_s);
        let diff = (batch.total().joules - replayed.total().joules).abs();
        prop_assert!(
            diff <= tol,
            "replay energy drift {diff} J exceeds quantization bound {tol} J"
        );
    }

    /// Mixed fleets compose with arbitrary fault plans: the faulted,
    /// mixed stream still never panics, and the reorder-buffered engine
    /// still lands exactly on the batch ledger.
    #[test]
    fn faulted_mixed_streams_never_panic_and_match_batch(
        mix in arb_mix(),
        plan in arb_plan(),
        nodes in 1usize..4,
        trace_seed in 0u64..1 << 32,
    ) {
        let schedule = small_schedule(nodes, 2, trace_seed);
        let cfg = FleetConfig {
            mix,
            faults: (!plan.is_noop()).then(|| plan.clone()),
            ..FleetConfig::default()
        };
        let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);

        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&schedule, StreamConfig::for_plan(cfg.faults.as_ref()))
                .expect("valid config");
        for ev in materialize(&schedule, &cfg) {
            eng.ingest(ev).expect("plan-sized horizon accepts the stream");
        }
        let (streamed, stats) = eng.finish();
        prop_assert_eq!(&streamed, &batch);
        prop_assert_eq!(stats.late_rejects, 0);
    }
}
