//! Econ differential tests: economics must be invisible until asked for.
//!
//! A flat trace — whether the `econ` field is omitted or spelled
//! `--econ flat` — renders every artifact byte-for-byte identical to the
//! pre-econ goldens, clean and under the `frontier-typical` fault
//! preset, in both renderings.  And the `econ` query answered by a live
//! `pmssd` daemon over a streamed campaign is byte-identical to the
//! batch `pmss query econ` comparator over the same events — the same
//! differential guarantee the daemon gives for every other query kind.
//!
//! CI's tier-1 matrix runs this suite under both `RAYON_NUM_THREADS`
//! legs, pinning the identities across thread configurations as well.

use pmss::econ::EconTrace;
use pmss::pipeline::{cli, ArtifactId, Pipeline, ScalePreset, ScenarioSpec};
use pmss_pipeline::query::Query;
use pmssd::client::{ingest_campaign, Connection, Target};
use pmssd::daemon::{Daemon, DaemonConfig, Listen};

fn golden(name: &str, ext: &str) -> String {
    let path = format!("tests/golden/{name}.{ext}");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A quick-scale spec that names the flat trace explicitly instead of
/// omitting it.
fn flat_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    spec.econ = Some(EconTrace::flat());
    spec
}

/// An explicit flat trace renders every artifact — all 26 of them —
/// byte-for-byte identical to the goldens captured without one.
#[test]
fn flat_trace_spec_renders_every_golden_byte_for_byte() {
    let mut p = Pipeline::new(flat_spec()).expect("valid spec");
    let mut bad = Vec::new();
    for id in ArtifactId::all() {
        let got = p.artifact(id).expect("artifact").render_ascii();
        if got != golden(id.name(), "txt") {
            bad.push(id.name());
        }
    }
    assert!(
        bad.is_empty(),
        "flat econ trace drifted from pre-econ goldens: {}",
        bad.join(", ")
    );
}

/// `--econ flat` on the CLI is a no-op for output bytes: clean and
/// `frontier-typical`-faulted runs both reproduce the goldens in both
/// renderings — including `whatif`, whose render grows an econ section
/// the moment a trace is *active*.
#[test]
fn flat_econ_cli_flag_matches_clean_and_faulted_goldens() {
    let cases: [(&[&str], &str, &str); 10] = [
        (&["table3", "--scale", "quick"], "table3", "txt"),
        (&["table3", "--scale", "quick", "--json"], "table3", "json"),
        (&["whatif", "--scale", "quick"], "whatif", "txt"),
        (&["econ", "--scale", "quick"], "econ", "txt"),
        (&["econ", "--scale", "quick", "--json"], "econ", "json"),
        (
            &["govern", "--scale", "quick", "--faults", "frontier-typical"],
            "govern-frontier-typical",
            "txt",
        ),
        (
            &[
                "govern",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "govern-frontier-typical",
            "json",
        ),
        (
            &["stream", "--scale", "quick", "--faults", "frontier-typical"],
            "stream-frontier-typical",
            "txt",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
            ],
            "table4-frontier-typical",
            "txt",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "table4-frontier-typical",
            "json",
        ),
    ];
    for (argv, name, ext) in cases {
        let mut args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        args.push("--econ".to_string());
        args.push("flat".to_string());
        let got = cli::run(&args).expect("cli run");
        assert_eq!(got, golden(name, ext), "--econ flat drift in {name}.{ext}");
    }
}

/// An in-process daemon on a fresh port, plus its run thread.
struct Harness {
    target: Target,
    thread: std::thread::JoinHandle<Result<(), pmss_error::PmssError>>,
}

fn start_daemon() -> Harness {
    let cfg = DaemonConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        metrics_addr: None,
        queue_depth: 64,
        sync_interval: 8,
    };
    let daemon = Daemon::bind(cfg).expect("bind on port 0");
    let addr = daemon.local_addr().expect("tcp listener has an address");
    let thread = std::thread::spawn(move || daemon.run());
    Harness {
        target: Target::Tcp(addr.to_string()),
        thread,
    }
}

impl Harness {
    fn stop(self) {
        let mut conn = Connection::connect(&self.target).expect("connect for shutdown");
        conn.shutdown().expect("shutdown acked");
        self.thread
            .join()
            .expect("daemon thread joins")
            .expect("daemon exits cleanly");
    }
}

/// The daemon's `econ` answer over a streamed campaign is byte-identical
/// to the batch `pmss query econ` comparator — clean under `diurnal`,
/// faulted under `duck-curve` — and a tenant opened *without* a trace
/// rejects the query with a typed error instead of inventing one.
#[test]
fn daemon_econ_answers_are_byte_identical_to_batch() {
    let h = start_daemon();
    let cases: [(&str, &str, Option<&str>); 2] = [
        ("clean-diurnal", "diurnal", None),
        ("faulted-duck", "duck-curve", Some("frontier-typical")),
    ];
    for (tenant, trace, faults) in cases {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.econ = EconTrace::preset(trace);
        if let Some(name) = faults {
            spec.faults = Some(pmss::faults::FaultPlan::preset(name).expect("known preset"));
        }
        let mut conn = Connection::connect(&h.target).expect("connect");
        conn.open(tenant, Some(&spec)).expect("open with spec");
        let report = ingest_campaign(&mut conn, &spec).expect("ingest");
        assert!(report.blocks > 0 && report.rows > 0);
        let daemon_answer = conn.query(&Query::Econ).expect("daemon answers econ");

        let mut argv = vec!["query", "econ", "--scale", "quick", "--econ", trace];
        if let Some(name) = faults {
            argv.extend_from_slice(&["--faults", name]);
        }
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let batch_answer = cli::run(&args).expect("batch comparator");
        assert_eq!(
            daemon_answer, batch_answer,
            "daemon vs batch econ mismatch for {tenant}"
        );
    }

    // No trace on the tenant: the query bounces with a typed rejection
    // and never crashes the worker.
    let mut conn = Connection::connect(&h.target).expect("connect");
    conn.open("traceless", Some(&ScenarioSpec::preset(ScalePreset::Quick)))
        .expect("open");
    assert!(conn.query(&Query::Econ).is_err(), "traceless econ answered");
    h.stop();
}
