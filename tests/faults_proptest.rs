//! Property tests for fault injection: arbitrary valid plans must never
//! panic the pipeline, and the exclude gap policy must conserve energy on
//! the windows it keeps.
//!
//! The nightly CI job re-runs this suite with `PROPTEST_CASES=2048`.

use pmss::core::EnergyLedger;
use pmss::faults::{FaultPlan, GapPolicy};
use pmss::pipeline::{ArtifactId, Pipeline, ScalePreset, ScenarioSpec};
use pmss::sched::{catalog, generate, TraceParams};
use pmss::telemetry::{simulate_fleet, FleetConfig};
use proptest::prelude::*;

/// An arbitrary plan over the full validated parameter space, including
/// the pathological corners (total drop, huge negative spikes, deep
/// reorder buffers).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (
            0.0..=1.0f64, // drop
            0.0..=0.5f64, // dup
            0.0..=0.2f64, // nan
            0.0..=0.2f64, // spike
            0.0..=0.5f64, // dropout
        ),
        (
            0u64..(1 << 53),     // seed
            0u32..64,            // reorder depth
            -1000.0..=1000.0f64, // spike magnitude
            1u32..50,            // dropout interval
            0.0..=30.0f64,       // clock skew
            0usize..3,           // gap policy
        ),
    )
        .prop_map(
            |((drop, dup, nan, spike, dropout), (seed, depth, w, int, skew, pol))| FaultPlan {
                seed,
                drop_prob: drop,
                dup_prob: dup,
                reorder_depth: depth,
                nan_prob: nan,
                spike_prob: spike,
                spike_w: w,
                dropout_prob: dropout,
                dropout_windows: int,
                clock_skew_max_s: skew,
                gap_policy: GapPolicy::all()[pol],
            },
        )
}

/// A two-node, ~2.4-hour scenario: big enough to exercise every fault
/// channel, small enough for thousands of proptest cases.
fn tiny_spec(plan: FaultPlan) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    spec.name = "tiny-faulted".to_string();
    spec.nodes = 2;
    spec.days = 0.1;
    spec.freq_caps_mhz = vec![1700.0, 1100.0];
    spec.power_caps_w = vec![560.0, 300.0];
    spec.faults = Some(plan);
    spec
}

proptest! {
    /// Any valid plan runs the fleet-backed artifacts to completion — no
    /// panics, no errors — even when it drops every single sample.
    #[test]
    fn arbitrary_plans_never_panic_pipeline_artifacts(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok());
        let mut p = Pipeline::new(tiny_spec(plan)).unwrap();
        for id in [ArtifactId::Table4, ArtifactId::Fig8, ArtifactId::Table5] {
            let res = p.artifact(id);
            prop_assert!(res.is_ok(), "{}: {:?}", id.name(), res.err());
        }
    }

    /// Under the exclude policy, drop-style faults only remove windows:
    /// the surviving decomposition never exceeds the clean energy, and
    /// every clean observed second is accounted as observed or excluded.
    #[test]
    fn exclude_policy_conserves_energy_on_covered_windows(
        drop in 0.0..=1.0f64,
        dropout in 0.0..=1.0f64,
        seed in 0u64..(1 << 53),
    ) {
        let schedule = generate(
            TraceParams {
                nodes: 3,
                duration_s: 2.0 * 3600.0,
                seed: 11,
                min_job_s: 900.0,
            },
            &catalog(),
        );
        let clean: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
        let plan = FaultPlan {
            seed,
            drop_prob: drop,
            dropout_prob: dropout,
            dropout_windows: 6,
            gap_policy: GapPolicy::Exclude,
            ..FaultPlan::none()
        };
        let cfg = FleetConfig {
            faults: Some(plan),
            ..FleetConfig::default()
        };
        let faulted: EnergyLedger = simulate_fleet(&schedule, &cfg);

        let (c, f) = (clean.coverage(), faulted.coverage());
        prop_assert_eq!(f.observed_s + f.excluded_s, c.observed_s);
        prop_assert!((0.0..=1.0).contains(&f.fraction()));
        prop_assert!(
            faulted.total().joules <= clean.total().joules * (1.0 + 1e-12),
            "excluding windows must never add energy"
        );
        prop_assert!(faulted.total().seconds <= c.observed_s);
    }
}
