//! The pmssd differential guard: every query answer the daemon serves is
//! **byte-identical** to the batch CLI's answer over the same event
//! prefix — clean and under fault presets — and adversarial frames
//! bounce off with typed errors, leaving published answers untouched.
//!
//! The daemon runs in-process on a port-0 TCP listener; the client is
//! the same synchronous client `pmss client` uses, so these tests cover
//! the real wire path end to end: capture → encode → frame → decode →
//! ingest → snapshot → query → render.

use pmss_columns::{BlockGrid, CodecConfig, ColumnBlock, EncodedBlock};
use pmss_core::EnergyLedger;
use pmss_faults::FaultPlan;
use pmss_pipeline::query::Query;
use pmss_pipeline::{Pipeline, ScalePreset, ScenarioSpec};
use pmss_stream::StreamState;
use pmss_telemetry::{ResidentFleet, WindowEvent, WindowKind};
use pmssd::client::{ingest_campaign, ClientError, Connection, Target};
use pmssd::daemon::{Daemon, DaemonConfig, Listen};
use pmssd::proto::code;

/// An in-process daemon on a fresh port, plus its run thread.
struct Harness {
    target: Target,
    metrics_addr: String,
    thread: std::thread::JoinHandle<Result<(), pmss_error::PmssError>>,
}

fn start_daemon(queue_depth: usize, sync_interval: u64) -> Harness {
    let cfg = DaemonConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        queue_depth,
        sync_interval,
    };
    let daemon = Daemon::bind(cfg).expect("bind on port 0");
    let addr = daemon.local_addr().expect("tcp listener has an address");
    let metrics_addr = daemon.metrics_addr().expect("metrics bound").to_string();
    let thread = std::thread::spawn(move || daemon.run());
    Harness {
        target: Target::Tcp(addr.to_string()),
        metrics_addr,
        thread,
    }
}

impl Harness {
    fn stop(self) {
        let mut conn = Connection::connect(&self.target).expect("connect for shutdown");
        conn.shutdown().expect("shutdown acked");
        self.thread
            .join()
            .expect("daemon thread joins")
            .expect("daemon exits cleanly");
    }
}

fn spec_for(faults: Option<&str>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
    if let Some(name) = faults {
        let plan = FaultPlan::preset(name).expect("known fault preset");
        spec.faults = if plan.is_noop() { None } else { Some(plan) };
    }
    spec
}

/// The batch side of the differential: exactly the `pmss query` code
/// path — capture, batch replay, shared answer renderer.
fn batch_answers(spec: &ScenarioSpec, queries: &[Query]) -> Vec<String> {
    let mut p = Pipeline::new(spec.clone()).expect("valid spec");
    let cfg = p.fleet_config();
    let (schedule, factor) = {
        let fleet = p.fleet().expect("fleet stage");
        (fleet.schedule.clone(), fleet.frontier_factor)
    };
    let t3 = p.table3().expect("table3 stage").clone();
    let resident = ResidentFleet::capture(&schedule, &cfg).expect("capture");
    let ledger: EnergyLedger = resident.replay(&schedule).expect("replay");
    let state = StreamState::new(ledger, factor);
    queries
        .iter()
        .map(|q| {
            pmss_pipeline::query::answer(&state, &t3, spec.active_econ(), q)
                .expect("batch answer")
                .to_string_pretty()
        })
        .collect()
}

/// Every query kind the daemon serves, including a what-if on a real
/// ladder rung.
fn all_queries(spec: &ScenarioSpec) -> Vec<Query> {
    let t3 = Pipeline::new(spec.clone())
        .expect("valid spec")
        .table3()
        .expect("table3")
        .clone();
    let whatif = t3.power_rows[t3.power_rows.len() / 2].setting;
    vec![
        Query::Projection,
        Query::Coverage,
        Query::Ledger,
        Query::WhatIf(whatif),
    ]
}

#[test]
fn daemon_answers_are_byte_identical_to_batch() {
    let h = start_daemon(64, 8);
    for (tenant, faults) in [("clean", None), ("typical", Some("frontier-typical"))] {
        let spec = spec_for(faults);
        let mut conn = Connection::connect(&h.target).expect("connect");
        conn.open(tenant, Some(&spec)).expect("open with spec");
        let report = ingest_campaign(&mut conn, &spec).expect("ingest");
        assert!(report.blocks > 0 && report.rows > 0);
        let queries = all_queries(&spec);
        let batch = batch_answers(&spec, &queries);
        for (q, expected) in queries.iter().zip(&batch) {
            let got = conn.query(q).expect("daemon answers");
            assert_eq!(
                &got, expected,
                "daemon vs batch mismatch for {tenant}/{q:?}"
            );
        }
    }
    // The metrics endpoint reflects both tenants.
    let scraped = pmssd::client::scrape_metrics(&h.metrics_addr).expect("scrape");
    assert!(scraped.contains("tenant=\"clean\""));
    assert!(scraped.contains("tenant=\"typical\""));
    h.stop();
}

#[test]
fn adversarial_frames_bounce_with_typed_errors_and_answers_hold() {
    let h = start_daemon(64, 8);
    let spec = spec_for(None);
    let mut conn = Connection::connect(&h.target).expect("connect");
    conn.open("victim", Some(&spec)).expect("open");
    ingest_campaign(&mut conn, &spec).expect("ingest");
    let baseline = conn.query(&Query::Projection).expect("baseline answer");

    let reject_code = |r: Result<(), ClientError>| match r {
        Err(ClientError::Rejected { code, .. }) => code,
        other => panic!("expected a typed rejection, got {other:?}"),
    };

    // A block for a channel the fleet does not have.
    let mut alien = ColumnBlock::new(u32::MAX, 0);
    alien.push(&WindowEvent {
        node: u32::MAX,
        slot: 0,
        sku: 0,
        window: 0,
        rank: 0,
        t_s: 7.5, // window center on the declared 15 s grid
        span_s: 15.0,
        kind: WindowKind::Sample {
            power_w: 300.0,
            job: None,
        },
    });
    let grid = BlockGrid {
        window_s: 15.0,
        duration_s: 3600.0,
        skew_s: 0.0,
    };
    let enc = EncodedBlock::encode(&alien, grid, CodecConfig::default()).expect("encode");
    assert_eq!(reject_code(conn.send_block(&enc)), code::INVALID_CHANNEL);

    // A structurally corrupt wire frame: NaN grid field.
    let mut wire = enc.to_bytes();
    wire[13..21].copy_from_slice(&f64::NAN.to_le_bytes());
    let err = match conn.send_block_raw(&wire) {
        Err(ClientError::Rejected { code, .. }) => code,
        other => panic!("expected malformed rejection, got {other:?}"),
    };
    assert_eq!(err, code::MALFORMED);

    // Frames for the protocol itself: BLOCK before OPEN is usage.
    let mut fresh = Connection::connect(&h.target).expect("second connection");
    assert_eq!(
        reject_code(fresh.send_block(&enc)),
        code::USAGE,
        "BLOCK before OPEN"
    );
    // QUERY for a tenant that does not exist (OPEN without spec).
    match fresh.open("nobody", None) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, code::UNKNOWN_TENANT),
        other => panic!("expected unknown_tenant, got {other:?}"),
    }

    // After all of that, the published answer is bit-for-bit what it was.
    assert_eq!(
        conn.query(&Query::Projection).expect("still serving"),
        baseline
    );
    h.stop();
}

#[test]
fn concurrent_split_feeds_converge_and_backpressure_is_typed() {
    // Queue depth 1 forces admission collisions between two feeder
    // connections; both retry on the typed backpressure error, so the
    // campaign still lands exactly once and answers match batch.
    let h = start_daemon(1, 4);
    let spec = spec_for(Some("frontier-typical"));
    {
        let mut conn = Connection::connect(&h.target).expect("connect");
        conn.open("shared", Some(&spec)).expect("open");
    }

    let schedule = pmss_sched::generate(spec.trace_params(), &pmss_sched::catalog());
    let cfg = Pipeline::new(spec.clone()).expect("spec").fleet_config();
    let resident = ResidentFleet::capture(&schedule, &cfg).expect("capture");
    let blocks: Vec<EncodedBlock> = resident.blocks().to_vec();

    let feeders: Vec<_> = (0..2)
        .map(|parity| {
            let target = h.target.clone();
            let mine: Vec<EncodedBlock> = blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == parity)
                .map(|(_, b)| b.clone())
                .collect();
            std::thread::spawn(move || {
                let mut conn = Connection::connect(&target).expect("feeder connect");
                conn.open("shared", None).expect("bind existing tenant");
                let mut retries = 0u64;
                for enc in &mine {
                    loop {
                        match conn.send_block(enc) {
                            Ok(()) => break,
                            Err(ClientError::Rejected { code: c, .. })
                                if c == code::BACKPRESSURE =>
                            {
                                retries += 1;
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("feeder failed: {e}"),
                        }
                    }
                }
                retries
            })
        })
        .collect();
    let _retries: u64 = feeders.into_iter().map(|f| f.join().expect("feeder")).sum();

    let mut conn = Connection::connect(&h.target).expect("reader connect");
    conn.open("shared", None).expect("bind");
    conn.flush().expect("flush");
    let queries = all_queries(&spec);
    let batch = batch_answers(&spec, &queries);
    for (q, expected) in queries.iter().zip(&batch) {
        assert_eq!(&conn.query(q).expect("answer"), expected, "query {q:?}");
    }
    h.stop();
}
