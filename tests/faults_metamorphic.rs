//! Metamorphic and differential tests for the fault-injection subsystem.
//!
//! Three relations pin the injector against the clean pipeline:
//!
//! 1. **Differential**: a zero-fault plan (`--faults none`) must leave
//!    every output byte identical — the clean path IS the pre-fault path.
//! 2. **Reorder invariance**: delivery permutations within the reorder
//!    bound must not change the decomposition (gap policies are applied at
//!    generation order, before delivery ranking).  Energy sums are only
//!    float-permutation-equal, so they compare under a 1e-9 relative
//!    tolerance; integer-weight tallies (seconds of equal windows) are
//!    exact.
//! 3. **Duplicate collapse**: a duplicate-only plan delivers the clean
//!    stream with adjacent repeats — deduplication recovers it exactly.

use pmss::core::EnergyLedger;
use pmss::faults::FaultPlan;
use pmss::pipeline::cli;
use pmss::sched::{catalog, generate, Schedule, TraceParams};
use pmss::telemetry::{simulate_fleet, FleetConfig, FleetObserver, SampleCtx};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tiny_schedule() -> Schedule {
    generate(
        TraceParams {
            nodes: 4,
            duration_s: 4.0 * 3600.0,
            seed: 5,
            min_job_s: 900.0,
        },
        &catalog(),
    )
}

fn faulted_cfg(plan: FaultPlan) -> FleetConfig {
    FleetConfig {
        faults: Some(plan),
        ..FleetConfig::default()
    }
}

/// Collects every delivered GPU sample, bit-exact, in delivery order.
#[derive(Default)]
struct Collector {
    samples: Vec<(u32, u8, u64, u64)>,
}

impl FleetObserver for Collector {
    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
        self.samples
            .push((ctx.node, ctx.slot, t_s.to_bits(), power_w.to_bits()));
    }
    fn merge(&mut self, other: Self) {
        self.samples.extend(other.samples);
    }
}

/// Acceptance: `pmss fig 2 --faults none` is byte-identical to
/// `pmss fig 2`, in ASCII and in the JSON envelope (which must not even
/// gain a `faults` section).
#[test]
fn zero_fault_cli_runs_are_byte_identical() {
    let clean = cli::run(&args(&["fig", "2", "--scale", "quick"])).unwrap();
    let faulted = cli::run(&args(&["fig", "2", "--scale", "quick", "--faults", "none"])).unwrap();
    assert_eq!(clean, faulted, "ASCII drift under a zero-fault plan");

    let clean = cli::run(&args(&["fig", "2", "--scale", "quick", "--json"])).unwrap();
    let faulted = cli::run(&args(&[
        "fig", "2", "--scale", "quick", "--json", "--faults", "none",
    ]))
    .unwrap();
    assert_eq!(clean, faulted, "JSON drift under a zero-fault plan");
    assert!(!clean.contains("\"faults\""));
}

/// A `None` plan and an explicit no-op plan produce bit-identical
/// observers at the library level too.
#[test]
fn noop_plan_equals_no_plan_at_the_library_level() {
    let schedule = tiny_schedule();
    let clean: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
    let noop: EnergyLedger = simulate_fleet(&schedule, &faulted_cfg(FaultPlan::none()));
    assert_eq!(clean.energy_matrix_j(), noop.energy_matrix_j());
    assert_eq!(clean.coverage(), noop.coverage());
}

/// Reordering within the buffer bound leaves the decomposition invariant:
/// the same multiset of samples reaches the same cells, so seconds match
/// exactly and energies match up to float-summation order.
#[test]
fn inbound_reordering_preserves_the_decomposition() {
    let schedule = tiny_schedule();
    let clean: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
    for depth in [1, 4, 16] {
        let plan = FaultPlan {
            reorder_depth: depth,
            ..FaultPlan::none()
        };
        let shuffled: EnergyLedger = simulate_fleet(&schedule, &faulted_cfg(plan));
        assert_eq!(
            clean.coverage(),
            shuffled.coverage(),
            "coverage drift at reorder depth {depth}"
        );
        for (region, (a, b)) in clean
            .region_totals()
            .iter()
            .zip(shuffled.region_totals())
            .enumerate()
        {
            assert_eq!(a.seconds, b.seconds, "region {region} seconds");
            let rel = (a.joules - b.joules).abs() / a.joules.max(1.0);
            assert!(
                rel < 1e-9,
                "region {region} energy drift {rel} at depth {depth}"
            );
        }
    }
}

/// A duplicate-only plan delivers each duplicated sample immediately after
/// the original: removing adjacent repeats recovers the clean stream
/// bit-for-bit.
#[test]
fn duplicate_only_plans_collapse_to_the_clean_stream() {
    let schedule = tiny_schedule();
    let clean: Collector = simulate_fleet(&schedule, &FleetConfig::default());
    let plan = FaultPlan {
        dup_prob: 0.2,
        ..FaultPlan::none()
    };
    let mut duped: Collector = simulate_fleet(&schedule, &faulted_cfg(plan));
    assert!(
        duped.samples.len() > clean.samples.len(),
        "a 20% duplication plan must actually duplicate"
    );
    duped.samples.dedup();
    assert_eq!(clean.samples, duped.samples);
}

/// The same faulted scenario computed twice — fresh pipelines, fresh
/// caches — renders bit-identical bytes.  The CI matrix re-runs this whole
/// suite under `RAYON_NUM_THREADS=1`, pinning the same bytes across
/// thread-count configurations (fault decisions are counter-based hashes,
/// never draws from a shared RNG stream).
#[test]
fn faulted_runs_are_deterministic_across_repeat_runs() {
    let a = cli::run(&args(&[
        "faults",
        "--scale",
        "quick",
        "--json",
        "--metrics",
    ]))
    .unwrap();
    let b = cli::run(&args(&[
        "faults",
        "--scale",
        "quick",
        "--json",
        "--metrics",
    ]))
    .unwrap();
    // The run manifest carries wall times; compare everything before it.
    let cut = |s: &str| s.split("\"run\"").next().unwrap().to_string();
    assert_eq!(cut(&a), cut(&b));
    assert_ne!(cut(&a), "");
}
