//! Batch ↔ stream differential suite: for every preset scenario × fault
//! preset, the streaming ingest engine reproduces the batch
//! `simulate_fleet` ledger — and everything derived from it (coverage,
//! projection rows, coverage bounds) — **bit for bit**, under in-order
//! delivery, shuffled-within-horizon delivery, and sharded ingest.
//!
//! The quick scenario runs everywhere; `PMSS_STREAM_FULL=1` additionally
//! covers the medium and large presets (minutes of wall time — nightly CI
//! territory).

use pmss_core::project::{Projection, ProjectionInput};
use pmss_core::EnergyLedger;
use pmss_faults::{FaultPlan, PRESETS};
use pmss_pipeline::spec::{ScalePreset, ScenarioSpec};
use pmss_sched::{catalog, Schedule};
use pmss_stream::{StreamConfig, StreamEngine};
use pmss_telemetry::{fleet_window_events, simulate_fleet, FleetConfig, WindowEvent};
use pmss_workloads::{table3, Table3};

/// Asserts two f64s carry identical bit patterns (not just `==`, which
/// would let `-0.0 == 0.0` slide).
#[track_caller]
fn assert_bits(a: f64, b: f64, what: &str) {
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: {a:?} ({:#x}) != {b:?} ({:#x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// Asserts ledger equality down to the bit pattern of every cell and
/// coverage counter.
#[track_caller]
fn assert_ledger_identical(a: &EnergyLedger, b: &EnergyLedger, ctx: &str) {
    // Structural equality first (catches shape mismatches with a readable
    // diff), then bitwise equality of every derived number.
    assert_eq!(a, b, "{ctx}: ledger structural mismatch");
    let (ca, cb) = (a.coverage(), b.coverage());
    assert_bits(ca.observed_s, cb.observed_s, &format!("{ctx}: observed_s"));
    assert_bits(
        ca.interpolated_s,
        cb.interpolated_s,
        &format!("{ctx}: interpolated_s"),
    );
    assert_bits(
        ca.attributed_idle_s,
        cb.attributed_idle_s,
        &format!("{ctx}: attributed_idle_s"),
    );
    assert_bits(ca.excluded_s, cb.excluded_s, &format!("{ctx}: excluded_s"));
    assert_bits(
        ca.discarded_s,
        cb.discarded_s,
        &format!("{ctx}: discarded_s"),
    );
    for (i, (ra, rb)) in a.region_totals().iter().zip(&b.region_totals()).enumerate() {
        assert_bits(ra.seconds, rb.seconds, &format!("{ctx}: region {i} s"));
        assert_bits(ra.joules, rb.joules, &format!("{ctx}: region {i} J"));
    }
}

/// Asserts projection equality bitwise, row by row.
#[track_caller]
fn assert_projection_identical(a: &Projection, b: &Projection, ctx: &str) {
    assert_eq!(a.freq_rows.len(), b.freq_rows.len(), "{ctx}: freq rows");
    assert_eq!(a.power_rows.len(), b.power_rows.len(), "{ctx}: power rows");
    for (ra, rb) in a
        .freq_rows
        .iter()
        .zip(&b.freq_rows)
        .chain(a.power_rows.iter().zip(&b.power_rows))
    {
        assert_bits(ra.ci_mwh, rb.ci_mwh, &format!("{ctx}: ci_mwh"));
        assert_bits(ra.mi_mwh, rb.mi_mwh, &format!("{ctx}: mi_mwh"));
        assert_bits(ra.ts_mwh, rb.ts_mwh, &format!("{ctx}: ts_mwh"));
        assert_bits(ra.savings_pct, rb.savings_pct, &format!("{ctx}: savings"));
        assert_bits(ra.delta_t_pct, rb.delta_t_pct, &format!("{ctx}: delta_t"));
        assert_bits(
            ra.savings_dt0_pct,
            rb.savings_dt0_pct,
            &format!("{ctx}: dt0"),
        );
    }
}

fn scenario(preset: ScalePreset, faults: &str) -> (Schedule, FleetConfig, f64) {
    let mut spec = ScenarioSpec::preset(preset);
    let plan = FaultPlan::preset(faults).expect("known preset");
    spec.faults = if plan.is_noop() { None } else { Some(plan) };
    let schedule = pmss_sched::generate(spec.trace_params(), &catalog());
    let cfg = FleetConfig {
        faults: spec.faults.clone(),
        ..FleetConfig::default()
    };
    let factor = spec.frontier_factor();
    (schedule, cfg, factor)
}

/// Streams the run's events through a fresh engine without materializing
/// the trace, returning the final ledger.
fn stream_ledger(schedule: &Schedule, cfg: &FleetConfig, stream_cfg: StreamConfig) -> EnergyLedger {
    let mut eng: StreamEngine<'_, EnergyLedger> =
        StreamEngine::new(schedule, stream_cfg).expect("valid config");
    fleet_window_events(schedule, cfg, |ev| {
        eng.ingest(ev).expect("delivery within horizon");
    });
    eng.finish().0
}

/// Streams the run with an extra deterministic within-horizon shuffle
/// applied per channel.  Arrival order emits each channel contiguously,
/// so only one channel's events are ever buffered — the test itself stays
/// bounded-memory even at the large preset.
fn stream_ledger_shuffled(
    schedule: &Schedule,
    cfg: &FleetConfig,
    stream_cfg: StreamConfig,
    slack: u64,
) -> EnergyLedger {
    let mut eng: StreamEngine<'_, EnergyLedger> =
        StreamEngine::new(schedule, stream_cfg).expect("valid config");
    let mut pending: Vec<WindowEvent> = Vec::new();
    let mut current: Option<(u32, u8)> = None;
    let drain = |eng: &mut StreamEngine<'_, EnergyLedger>, pending: &mut Vec<WindowEvent>| {
        for ev in shuffle_within(pending, slack) {
            eng.ingest(ev).expect("delivery within horizon");
        }
        pending.clear();
    };
    fleet_window_events(schedule, cfg, |ev| {
        if current != Some(ev.channel()) {
            drain(&mut eng, &mut pending);
            current = Some(ev.channel());
        }
        pending.push(ev);
    });
    drain(&mut eng, &mut pending);
    eng.finish().0
}

/// Deterministic within-horizon shuffle: each event's sort key gets a
/// pseudo-random lag in `[0, slack]`, so no event moves more than `slack`
/// windows earlier than a same-channel predecessor — exactly what a
/// horizon of `slack + 1` absorbs.
fn shuffle_within(events: &[WindowEvent], slack: u64) -> Vec<WindowEvent> {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut keyed: Vec<(u64, usize, WindowEvent)> = events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let lag =
                mix((ev.node as u64) << 40 ^ (ev.slot as u64) << 32 ^ ev.window) % (slack + 1);
            (ev.window + lag, i, *ev)
        })
        .collect();
    keyed.sort_by_key(|&(k, i, _)| (k, i));
    keyed.into_iter().map(|(_, _, ev)| ev).collect()
}

fn run_differential(preset: ScalePreset, faults: &str, t3: &Table3) {
    let (schedule, cfg, factor) = scenario(preset, faults);
    let ctx = format!("{}/{faults}", preset.name());

    let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);

    // Arrival order (the fault plan's own reordering realized in-stream).
    let base = StreamConfig::for_plan(cfg.faults.as_ref());
    let in_order = stream_ledger(&schedule, &cfg, base);
    assert_ledger_identical(&in_order, &batch, &format!("{ctx}: arrival order"));

    // Extra shuffled-within-horizon delivery on top of the plan's.
    let slack = 6u64;
    let shuffled_cfg = StreamConfig {
        reorder_horizon: base.reorder_horizon + slack,
        ..StreamConfig::default()
    };
    let shuffled = stream_ledger_shuffled(&schedule, &cfg, shuffled_cfg, slack);
    assert_ledger_identical(&shuffled, &batch, &format!("{ctx}: shuffled"));

    // Sharded ingest.
    let sharded = stream_ledger(&schedule, &cfg, base.with_shards(3));
    assert_ledger_identical(&sharded, &batch, &format!("{ctx}: sharded"));

    // Everything derived from the ledger is identical too.
    let scaled_batch = batch.scaled(factor).expect("finite frontier factor");
    let scaled_stream = in_order.scaled(factor).expect("finite frontier factor");
    let pb = pmss_core::project(ProjectionInput::from_ledger(&scaled_batch), t3).unwrap();
    let ps = pmss_core::project(ProjectionInput::from_ledger(&scaled_stream), t3).unwrap();
    assert_projection_identical(&ps, &pb, &ctx);
    let bb = pb
        .best_free()
        .coverage_bounds_dt0(batch.coverage().fraction());
    let bs = ps
        .best_free()
        .coverage_bounds_dt0(in_order.coverage().fraction());
    assert_bits(bs.lo_pct, bb.lo_pct, &format!("{ctx}: bounds lo"));
    assert_bits(bs.hi_pct, bb.hi_pct, &format!("{ctx}: bounds hi"));
}

fn presets_under_test() -> Vec<ScalePreset> {
    if std::env::var("PMSS_STREAM_FULL").is_ok_and(|v| v == "1") {
        ScalePreset::all().to_vec()
    } else {
        vec![ScalePreset::Quick]
    }
}

#[test]
fn stream_is_bit_identical_to_batch_across_presets_and_fault_plans() {
    let t3 = table3::compute_default();
    for preset in presets_under_test() {
        for faults in PRESETS {
            run_differential(preset, faults, &t3);
        }
    }
}

#[test]
fn mid_stream_snapshots_equal_batch_over_the_ingested_prefix() {
    // A snapshot after N events equals a batch over those same windows:
    // replay the prefix through a second engine and flush it.
    let (schedule, cfg, _) = scenario(ScalePreset::Quick, "frontier-typical");
    let mut events = Vec::new();
    fleet_window_events(&schedule, &cfg, |ev| events.push(ev));
    let base = StreamConfig::for_plan(cfg.faults.as_ref());

    let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&schedule, base).unwrap();
    let cut = events.len() / 3;
    for ev in &events[..cut] {
        eng.ingest(*ev).unwrap();
    }
    let snap = eng.snapshot();
    let mut prefix_eng: StreamEngine<'_, EnergyLedger> =
        StreamEngine::new(&schedule, base).unwrap();
    for ev in &events[..cut] {
        prefix_eng.ingest(*ev).unwrap();
    }
    let prefix = prefix_eng.finish().0;
    assert_ledger_identical(&snap, &prefix, "prefix snapshot");

    // Ingesting the rest converges on the full batch result.
    for ev in &events[cut..] {
        eng.ingest(*ev).unwrap();
    }
    let (full, _) = eng.finish();
    let batch: EnergyLedger = simulate_fleet(&schedule, &cfg);
    assert_ledger_identical(&full, &batch, "prefix + rest");
}
