//! Observability acceptance tests: metering must be invisible in artifact
//! bytes, and the `--metrics` envelope must carry the run's cache, solver,
//! and stage tallies.

use pmss::pipeline::json::Json;
use pmss::pipeline::{cli, ArtifactId, Pipeline, ScalePreset, ScenarioSpec};

fn cli_run(list: &[&str]) -> String {
    let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
    cli::run(&args).expect("cli run")
}

/// A metered pipeline renders byte-identical artifacts to an unmetered
/// one — ASCII and JSON — across fleet-, benchmark-, and sweep-backed
/// artifacts.
#[test]
fn metered_artifacts_are_byte_identical() {
    for id in [ArtifactId::Fig2, ArtifactId::Table5, ArtifactId::PeakPower] {
        let spec = ScenarioSpec::preset(ScalePreset::Quick);
        let plain = Pipeline::new(spec.clone())
            .unwrap()
            .artifact(id)
            .expect("plain artifact");
        let mut metered_p = Pipeline::with_metrics(spec).unwrap();
        let metered = metered_p.artifact(id).expect("metered artifact");
        assert_eq!(
            plain.render_ascii(),
            metered.render_ascii(),
            "ASCII drift under metering for {}",
            id.name()
        );
        assert_eq!(
            plain.to_json().to_string_pretty(),
            metered.to_json().to_string_pretty(),
            "JSON drift under metering for {}",
            id.name()
        );
        let m = metered_p.metrics_report().expect("metrics enabled");
        assert!(m.counter("artifacts.computed") >= 1);
    }
}

/// `--metrics --json` adds a parseable `run` + `metrics` envelope whose
/// cache counters reflect real traffic; without the flag the envelope is
/// unchanged.
#[test]
fn cli_metrics_envelope_reports_cache_traffic() {
    let text = cli_run(&["fig", "2", "--metrics", "--json", "--scale", "quick"]);
    let v = Json::parse(&text).expect("envelope parses");
    assert_eq!(v.get("artifact").and_then(Json::as_str), Some("fig2"));
    let run = v.get("run").expect("run manifest present");
    assert_eq!(run.get("command").and_then(Json::as_str), Some("fig 2"));
    assert_eq!(run.get("nodes").and_then(Json::as_f64), Some(16.0));
    let counters = v
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("counters present");
    let counter = |name: &str| counters.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    // Fig. 2 runs the fleet twice over one schedule (stage + energy
    // split), so the shared template cache must see hits.
    assert!(counter("template_cache.hits") > 0.0, "{text}");
    assert!(counter("template_cache.misses") > 0.0, "{text}");
    // Synthesized phase kernels are near-unique, so the exec cache mostly
    // misses — its job here is to prove the engine-side tallies flow.
    assert!(counter("exec_cache.misses") > 0.0, "{text}");
    assert!(counter("engine.executions") > 0.0, "{text}");
    assert!(counter("cap_solver.iters") > 0.0, "{text}");
    assert!(counter("fleet.runs") >= 2.0, "{text}");

    let plain = cli_run(&["fig", "2", "--json", "--scale", "quick"]);
    let v = Json::parse(&plain).expect("plain envelope parses");
    assert!(
        v.get("run").is_none(),
        "run manifest leaked without --metrics"
    );
    assert!(
        v.get("metrics").is_none(),
        "metrics leaked without --metrics"
    );
}

/// In ASCII mode `--metrics` appends the report after the unchanged
/// artifact bytes.
#[test]
fn cli_metrics_ascii_appends_after_artifact() {
    let plain = cli_run(&["table", "5", "--scale", "quick"]);
    let metered = cli_run(&["table", "5", "--metrics", "--scale", "quick"]);
    assert!(
        metered.starts_with(&plain),
        "artifact bytes changed under --metrics"
    );
    let block = &metered[plain.len()..];
    assert!(block.contains("== metrics =="), "{block}");
    assert!(block.contains("stage.fleet.runs"), "{block}");
    assert!(block.contains("stage.table3.runs"), "{block}");
}

/// `pmss stats` runs the staged pipeline and reports metrics only.
#[test]
fn stats_subcommand_reports_the_full_pipeline() {
    let ascii = cli_run(&["stats", "--scale", "quick"]);
    assert!(ascii.starts_with("== metrics =="), "{ascii}");
    assert!(ascii.contains("run: stats"), "{ascii}");
    assert!(ascii.contains("stage.projection.runs"), "{ascii}");

    let text = cli_run(&["stats", "--json", "--scale", "quick"]);
    let v = Json::parse(&text).expect("stats envelope parses");
    assert_eq!(
        v.get("run")
            .and_then(|r| r.get("command"))
            .and_then(Json::as_str),
        Some("stats")
    );
    let counters = v.get("metrics").and_then(|m| m.get("counters")).unwrap();
    for name in [
        "stage.fleet.runs",
        "stage.table3.runs",
        "stage.projection.runs",
        "fleet.gpu_samples",
        "engine.executions",
    ] {
        let n = counters.get(name).and_then(Json::as_f64).unwrap_or(0.0);
        assert!(n >= 1.0, "counter {name} missing or zero in {text}");
    }
    // The projection stage reuses both memoized stages.
    assert!(
        counters
            .get("stage.fleet.reuses")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0,
        "{text}"
    );
    let gauges = v.get("metrics").and_then(|m| m.get("gauges")).unwrap();
    for name in ["fleet.node_hours", "fleet.node_hours_per_s", "fleet.wall_s"] {
        assert!(
            gauges.get(name).and_then(Json::as_f64).unwrap_or(-1.0) > 0.0,
            "gauge {name} missing in {text}"
        );
    }
}

/// The fleet-level tallies agree with what the observers themselves see:
/// attributed samples can never exceed total samples, and boost bookkeeping
/// is self-consistent.
#[test]
fn metrics_tallies_are_self_consistent() {
    let mut p = Pipeline::with_metrics(ScenarioSpec::preset(ScalePreset::Quick)).unwrap();
    p.fleet().expect("fleet stage");
    let m = p.metrics_report().expect("metrics enabled");
    let gpu = m.counter("fleet.gpu_samples");
    let attributed = m.counter("fleet.attributed_samples");
    assert!(gpu > 0);
    assert!(attributed <= gpu, "attributed {attributed} > total {gpu}");
    let tpl_hits = m.counter("template_cache.hits");
    let tpl_misses = m.counter("template_cache.misses");
    assert!(m.counter("template_cache.inserts") <= tpl_misses);
    assert_eq!(
        m.gauge("template_cache.hit_rate"),
        Some(tpl_hits as f64 / (tpl_hits + tpl_misses) as f64)
    );
    assert_eq!(
        m.counter("exec_cache.inserts"),
        m.counter("exec_cache.misses")
    );
}
