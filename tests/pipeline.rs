//! Cross-crate integration tests: the full paper pipeline from benchmarks
//! through fleet telemetry to the savings projection, with the headline
//! shape assertions.

use pmss::core::project::{project, ProjectionInput};
use pmss::core::{EnergyLedger, Region};
use pmss::gpu::GpuSettings;
use pmss::sched::{catalog, generate, TraceParams};
use pmss::telemetry::{simulate_fleet, FleetConfig, Pair, SystemHistogram};
use pmss::workloads::table3;

fn medium_params() -> TraceParams {
    TraceParams {
        nodes: 48,
        duration_s: 5.0 * 86_400.0,
        seed: 2024,
        min_job_s: 900.0,
    }
}

fn fleet_ledger() -> (SystemHistogram, EnergyLedger) {
    let schedule = generate(medium_params(), &catalog());
    let obs: Pair<SystemHistogram, EnergyLedger> =
        simulate_fleet(&schedule, &FleetConfig::default());
    (obs.a, obs.b)
}

#[test]
fn modal_decomposition_reproduces_table_iv() {
    // Paper Table IV: 29.8 / 49.5 / 19.5 / 1.1 % of GPU hours.
    let (_, ledger) = fleet_ledger();
    let f = ledger.gpu_hours_fractions();
    assert!(
        (f[Region::LatencyBound.index()] - 0.298).abs() < 0.06,
        "latency-bound hours {:.3}",
        f[Region::LatencyBound.index()]
    );
    assert!(
        (f[Region::MemoryIntensive.index()] - 0.495).abs() < 0.06,
        "memory-intensive hours {:.3}",
        f[Region::MemoryIntensive.index()]
    );
    assert!(
        (f[Region::ComputeIntensive.index()] - 0.195).abs() < 0.05,
        "compute-intensive hours {:.3}",
        f[Region::ComputeIntensive.index()]
    );
    assert!(
        (f[Region::Boosted.index()] - 0.011).abs() < 0.01,
        "boosted hours {:.3}",
        f[Region::Boosted.index()]
    );
}

#[test]
fn system_distribution_has_the_fig8_shape() {
    let (system, _) = fleet_ledger();
    let hist = system.hist;
    // Idle peak near 89 W exists.
    let peaks = hist.peaks_w(2.0, 0.005);
    assert!(
        peaks.iter().any(|&p| (80.0..100.0).contains(&p)),
        "no idle peak: {peaks:?}"
    );
    // Several distinct modes across the power axis (the paper: "several
    // peaks close to low power utilization and few peaks towards higher").
    assert!(
        peaks.len() >= 3,
        "expected multi-modal distribution: {peaks:?}"
    );
    // A small boost tail above the TDP.
    let boost = hist.fraction_between(560.0, 700.0);
    assert!((0.001..0.03).contains(&boost), "boost tail {boost}");
}

#[test]
fn projection_reproduces_table_v_headlines() {
    let (_, ledger) = fleet_ledger();
    let t3 = table3::compute_default();
    let p = project(ProjectionInput::from_ledger(&ledger), &t3).expect("projection");

    // Headline: best no-slowdown savings in the high single digits at
    // 900 MHz (paper: 8.5 %).
    let best = p.best_free();
    assert!(
        (5.0..=12.0).contains(&best.savings_dt0_pct),
        "best free savings {:.2}%",
        best.savings_dt0_pct
    );
    assert!(
        matches!(best.setting, pmss::workloads::CapSetting::FreqMhz(m) if (899.0..=1101.0).contains(&m)),
        "best free setting {:?}",
        best.setting
    );

    // CI savings negative at 700 MHz (paper: -129.7 MWh).
    assert!(p.freq_row(700.0).expect("700 row").ci_mwh < 0.0);

    // Frequency capping beats power capping (paper Sec. V-C).
    let best_freq = p
        .freq_rows
        .iter()
        .map(|r| r.ts_mwh)
        .fold(f64::MIN, f64::max);
    let best_power = p
        .power_rows
        .iter()
        .map(|r| r.ts_mwh)
        .fold(f64::MIN, f64::max);
    assert!(best_freq > best_power);

    // dT grows monotonically as the frequency cap tightens.
    let dts: Vec<f64> = p.freq_rows.iter().map(|r| r.delta_t_pct).collect();
    for w in dts.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "dT not monotone: {dts:?}");
    }
}

#[test]
fn selective_capping_keeps_most_of_the_savings() {
    // Paper Table VI: capping only the hot domains at job sizes A-C keeps
    // a significant share of the system-wide savings.
    use pmss::core::heatmap::{energy_saved, energy_used};
    use pmss::sched::JobSizeClass;

    let (_, ledger) = fleet_ledger();
    let t3 = table3::compute_default();

    let full = project(ProjectionInput::from_ledger(&ledger), &t3).expect("projection");
    let saved = energy_saved(&ledger, t3.freq_row(1100.0).expect("1100 row"));
    let threshold = 0.35
        * saved
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .cloned()
            .fold(0.0, f64::max);
    let hot = saved.hot_domains(threshold);
    assert!(!hot.is_empty() && hot.len() < 8, "hot domains {hot:?}");

    let selective = project(
        ProjectionInput::from_ledger_filtered(&ledger, |d, s| {
            hot.contains(&d) && s <= JobSizeClass::C
        }),
        &t3,
    )
    .expect("projection");
    let full_900 = full.freq_row(900.0).expect("900").ts_mwh;
    let sel_900 = selective.freq_row(900.0).expect("900").ts_mwh;
    assert!(
        sel_900 > 0.4 * full_900,
        "selective {sel_900} vs full {full_900}"
    );
    assert!(sel_900 <= full_900 + 1e-9);

    // Sanity on the Fig. 10(a) heatmap: most energy in large job classes
    // (paper: "most of the science domain primary energy utilization comes
    // from jobs that belong to job sizes A and B").
    let used = energy_used(&ledger);
    let large: f64 = used.rows.iter().map(|r| r[0] + r[1] + r[2]).sum();
    assert!(
        large > 0.6 * used.total(),
        "A-C share {}",
        large / used.total()
    );
}

#[test]
fn capped_fleet_draws_less_power_but_boost_disappears() {
    // Re-running the fleet under a hard frequency cap validates the
    // telemetry side: mean power drops and the >= 560 W region vanishes.
    let schedule = generate(
        TraceParams {
            nodes: 8,
            duration_s: 86_400.0,
            seed: 3,
            min_job_s: 900.0,
        },
        &catalog(),
    );
    let base: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
    let capped: EnergyLedger = simulate_fleet(
        &schedule,
        &FleetConfig {
            settings: GpuSettings::freq_capped(1100.0),
            ..Default::default()
        },
    );
    let mean = |l: &EnergyLedger| l.total().joules / l.total().seconds;
    assert!(mean(&capped) < mean(&base) - 15.0);
    let f = capped.gpu_hours_fractions();
    assert!(
        f[Region::Boosted.index()] < 0.002,
        "boost under cap {:?}",
        f
    );
}

#[test]
fn sensor_comparison_validates_telemetry_fidelity() {
    // Fig. 2(a): the two sensor paths agree within a few percent.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let phases =
        pmss::workloads::phases::synthesize_app(pmss::workloads::AppClass::Mixed, 1800.0, &mut rng);
    let c = pmss::telemetry::compare_sensors(&phases, GpuSettings::uncapped(), 11);
    assert!(c.mean_abs_diff_w / c.mean_power_w < 0.05);
}
