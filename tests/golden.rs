//! Golden tests: the `pmss` CLI must reproduce the pre-refactor binaries'
//! ASCII output byte-for-byte, and the `--json` envelope for the seeded
//! headline artifacts must stay stable.
//!
//! The `tests/golden/*.txt` files were captured from the original
//! `crates/bench/src/bin/*` binaries at the default (quick) scale before
//! they were collapsed into the pipeline; `tests/golden/*.json` pins the
//! structured output introduced with it.

use pmss::pipeline::{cli, metrics, Artifact, ArtifactId, Pipeline, ScalePreset, ScenarioSpec};

/// A quick-scale pipeline; with `PMSS_METRICS` set the suite runs fully
/// metered, pinning that metrics collection never changes artifact bytes
/// (CI exercises both configurations).
fn quick_pipeline() -> Pipeline {
    let spec = ScenarioSpec::preset(ScalePreset::Quick);
    if metrics::metrics_env_enabled() {
        Pipeline::with_metrics(spec).expect("quick spec is valid")
    } else {
        Pipeline::new(spec).expect("quick spec is valid")
    }
}

fn golden(name: &str, ext: &str) -> String {
    let path = format!("tests/golden/{name}.{ext}");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Every artifact renders exactly the bytes the dedicated binary printed.
#[test]
fn ascii_matches_the_pre_refactor_binaries() {
    let mut p = quick_pipeline();
    let mut bad = Vec::new();
    for id in ArtifactId::all() {
        let got = p.artifact(id).expect("artifact").render_ascii();
        let want = golden(id.name(), "txt");
        if got != want {
            bad.push(format!(
                "{}: {} bytes rendered vs {} golden",
                id.name(),
                got.len(),
                want.len()
            ));
        }
    }
    assert!(bad.is_empty(), "ASCII drift:\n{}", bad.join("\n"));
}

/// The CLI `--json` envelope for the seeded headline artifacts is stable.
#[test]
fn json_matches_the_golden_captures() {
    for name in [
        "fig2",
        "table3",
        "table5",
        "validate",
        "stream",
        "govern",
        "components",
        "econ",
    ] {
        let args: Vec<String> = [name, "--json", "--scale", "quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let got = cli::run(&args).expect("cli run");
        assert_eq!(got, golden(name, "json"), "JSON drift in {name}");
    }
}

/// `pmss faults` and a faulted preset run are pinned byte-for-byte in
/// both renderings.  Like the rest of the suite this runs under
/// `PMSS_METRICS` both off and on in CI, so it also pins that fault
/// metering never changes output bytes.
#[test]
fn faulted_runs_match_the_golden_captures() {
    let cases: [(&[&str], &str, &str); 8] = [
        (&["faults", "--scale", "quick"], "faults", "txt"),
        (&["faults", "--scale", "quick", "--json"], "faults", "json"),
        (
            &["govern", "--scale", "quick", "--faults", "frontier-typical"],
            "govern-frontier-typical",
            "txt",
        ),
        (
            &[
                "govern",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "govern-frontier-typical",
            "json",
        ),
        (
            &["stream", "--scale", "quick", "--faults", "frontier-typical"],
            "stream-frontier-typical",
            "txt",
        ),
        (
            &[
                "stream",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "stream-frontier-typical",
            "json",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
            ],
            "table4-frontier-typical",
            "txt",
        ),
        (
            &[
                "table",
                "4",
                "--scale",
                "quick",
                "--faults",
                "frontier-typical",
                "--json",
            ],
            "table4-frontier-typical",
            "json",
        ),
    ];
    for (argv, name, ext) in cases {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let got = cli::run(&args).expect("cli run");
        assert_eq!(got, golden(name, ext), "golden drift in {name}.{ext}");
    }
}

/// An active `--econ diurnal` trace is pinned byte-for-byte in both
/// renderings of the what-if artifact — the seam where the econ section
/// joins a historical artifact rather than standing alone.
#[test]
fn econ_runs_match_the_golden_captures() {
    let cases: [(&[&str], &str, &str); 2] = [
        (
            &["whatif", "--scale", "quick", "--econ", "diurnal"],
            "whatif-econ-diurnal",
            "txt",
        ),
        (
            &["whatif", "--scale", "quick", "--econ", "diurnal", "--json"],
            "whatif-econ-diurnal",
            "json",
        ),
    ];
    for (argv, name, ext) in cases {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let got = cli::run(&args).expect("cli run");
        assert_eq!(got, golden(name, ext), "golden drift in {name}.{ext}");
    }
}

/// Running the streaming replay leaves the batch path untouched: every
/// batch artifact computed after a `stream` run in the same pipeline
/// renders the same bytes as in a pipeline that never streamed.
#[test]
fn stream_replay_does_not_perturb_batch_artifacts() {
    let mut streamed = quick_pipeline();
    streamed
        .artifact(ArtifactId::Stream)
        .expect("stream artifact");
    for id in [ArtifactId::Table4, ArtifactId::Table5, ArtifactId::Fig8] {
        let after_stream = streamed.artifact(id).expect("artifact").render_ascii();
        assert_eq!(
            after_stream,
            golden(id.name(), "txt"),
            "batch artifact {} drifted after a stream replay",
            id.name()
        );
    }
}

/// Running the online governor leaves the batch path untouched: every
/// batch artifact computed after a `govern` run in the same pipeline
/// renders the same bytes as in a pipeline that never governed.
#[test]
fn govern_replay_does_not_perturb_batch_artifacts() {
    let mut governed = quick_pipeline();
    governed
        .artifact(ArtifactId::Govern)
        .expect("govern artifact");
    for id in [ArtifactId::Fig2, ArtifactId::Table4, ArtifactId::Table5] {
        let after_govern = governed.artifact(id).expect("artifact").render_ascii();
        assert_eq!(
            after_govern,
            golden(id.name(), "txt"),
            "batch artifact {} drifted after a governor replay",
            id.name()
        );
    }
}

/// The default CLI path (no flags) renders the same bytes as the library
/// API — the shim in `src/main.rs` only prints the returned string.
#[test]
fn cli_default_output_equals_library_render() {
    let via_cli = cli::run(&["table3".to_string()]).expect("cli run");
    let via_lib = quick_pipeline()
        .artifact(ArtifactId::Table3)
        .expect("artifact")
        .render_ascii();
    assert_eq!(via_cli, via_lib);
}

/// Artifacts round-trip through the bundle API: `artifacts()` returns the
/// same renders as one-at-a-time `artifact()` calls.
#[test]
fn artifact_bundle_is_consistent_with_single_lookups() {
    let mut p = quick_pipeline();
    let ids = [ArtifactId::Table3, ArtifactId::Table5, ArtifactId::Validate];
    let bundle = p.artifacts(&ids).expect("bundle");
    for id in ids {
        let single: Artifact = quick_pipeline().artifact(id).expect("artifact");
        let from_bundle = bundle.get(id).expect("present in bundle");
        assert_eq!(single.render_ascii(), from_bundle.render_ascii());
        assert_eq!(
            single.to_json().to_string_pretty(),
            from_bundle.to_json().to_string_pretty()
        );
    }
}
