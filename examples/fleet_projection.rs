//! End-to-end fleet projection (the paper's full pipeline): synthesize a
//! job schedule, simulate out-of-band telemetry, decompose it into the
//! Table IV modes, and project frequency-cap savings — then *validate* the
//! projection by actually re-running the fleet under the cap, something
//! the paper could not do on the production machine.
//!
//! ```sh
//! cargo run --release --example fleet_projection
//! ```

use pmss::core::project::{project, ProjectionInput};
use pmss::core::report::{render_projection, render_table4};
use pmss::core::{EnergyLedger, Region};
use pmss::gpu::GpuSettings;
use pmss::sched::{catalog, generate, TraceParams};
use pmss::telemetry::{simulate_fleet, FleetConfig};
use pmss::workloads::table3;

fn main() {
    let params = TraceParams {
        nodes: 24,
        duration_s: 3.0 * 86_400.0,
        seed: 42,
        min_job_s: 900.0,
    };
    let domains = catalog();
    let schedule = generate(params, &domains);
    println!(
        "schedule: {} jobs over {} nodes x {:.0} days, utilization {:.1}%",
        schedule.jobs.len(),
        params.nodes,
        params.duration_s / 86_400.0,
        100.0 * schedule.utilization()
    );

    // Observe the fleet uncapped.
    let ledger: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
    println!("\n{}", render_table4(&ledger));

    // Project savings from the benchmark factors.
    let t3 = table3::compute_default();
    let projection = project(ProjectionInput::from_ledger(&ledger), &t3).expect("projection");
    println!("{}", render_projection(&projection, true));

    // Validate the projection at the job level: re-execute each job's
    // actual phase list to completion (energy-to-solution, not fixed
    // walltime) uncapped and at 900 MHz, and compare against the
    // projection — something the paper could not do on the production
    // machine.
    use pmss::gpu::Engine;
    use pmss::workloads::phases::synthesize_app;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let engine = Engine::default();
    let mut e_base = 0.0;
    let mut e_capped = 0.0;
    let mut t_base = 0.0;
    let mut t_capped = 0.0;
    for job in schedule.jobs.iter().take(200) {
        let mut rng = StdRng::seed_from_u64(job.seed);
        for phase in synthesize_app(job.app_class, job.duration_s(), &mut rng) {
            let b = engine.execute(&phase, GpuSettings::uncapped());
            let c = engine.execute(&phase, GpuSettings::freq_capped(900.0));
            e_base += b.energy_j;
            e_capped += c.energy_j;
            t_base += b.time_s;
            t_capped += c.time_s;
        }
    }
    let projected = projection.freq_row(900.0).expect("900 MHz row");
    println!(
        "900 MHz cap, energy-to-solution over {} jobs' phases:",
        schedule.jobs.len().min(200)
    );
    println!(
        "  projected saving {:.1}% (dT {:.1}%)  |  measured {:.1}% (dT {:+.1}%)",
        projected.savings_pct,
        projected.delta_t_pct,
        100.0 * (1.0 - e_capped / e_base),
        100.0 * (t_capped / t_base - 1.0),
    );
    println!(
        "(The measured run also pays the latency-region slowdown that the paper's\n\
         projection method deliberately excludes, so its dT is larger.)"
    );
    let mi = ledger.region_totals()[Region::MemoryIntensive.index()].mwh();
    println!("observed MI-mode energy: {mi:.2} MWh at this scale");
}
