//! The paper's real-application case study (Sec. IV-C / Fig. 7): Louvain
//! community detection on social and road networks under DVFS.
//!
//! Runs the *actual* Louvain algorithm on generated networks, maps each
//! level onto the GPU model via the degree-based thread mapping, and
//! reports the frequency sensitivity and energy savings per network family.
//!
//! ```sh
//! cargo run --release --example louvain_dvfs
//! ```

use pmss::gpu::GpuSettings;
use pmss::graph::case_study::{networks, CaseScale, CaseStudy};
use pmss::graph::choose_mapping;

fn main() {
    for case in networks(CaseScale::Medium, 7) {
        let stats = case.graph.degree_stats();
        let mapping = choose_mapping(&stats);
        let study = CaseStudy::prepare(&case, 3);
        println!(
            "{}: {} nodes, {} edges (d_max {}, d_avg {:.1}) -> {:?}",
            case.name,
            case.graph.num_nodes(),
            case.graph.num_edges(),
            stats.d_max,
            stats.d_avg,
            mapping,
        );
        println!(
            "  Louvain: Q = {:.3} over {} levels, {} communities",
            study.result.modularity,
            study.result.levels.len(),
            study.result.num_communities(),
        );
        print!("  runtime vs 1700 MHz:");
        let base = study.run(GpuSettings::uncapped());
        for mhz in [1300.0, 900.0, 500.0] {
            let p = study.run(GpuSettings::freq_capped(mhz));
            print!("  {:.0} MHz x{:.2}", mhz, p.runtime_s / base.runtime_s);
        }
        println!();
        let s = study.savings(GpuSettings::freq_capped(900.0));
        println!(
            "  900 MHz: {:.1}% energy saved, {:+.1}% runtime   peak power {:.0} W",
            100.0 * s.energy_saving,
            100.0 * s.runtime_increase,
            base.peak_power_w,
        );
    }
    println!("\nPaper checks: social networks are mildly frequency-sensitive with a few");
    println!("percent of free-ish savings at 900 MHz; the bounded-degree road network is");
    println!("strongly frequency-sensitive and peaks near 205 W.");
}
