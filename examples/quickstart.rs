//! Quickstart: run a kernel on the GPU model under both power-management
//! knobs and print the power/performance/energy trade-off.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pmss::gpu::{Engine, GpuSettings, KernelProfile};

fn main() {
    let engine = Engine::default();

    // A memory-bound streaming kernel (like the paper's low-AI VAI runs)
    // and a compute-bound one (the high-AI tail).
    let streaming = KernelProfile::builder("streaming")
        .flops(8e12)
        .hbm_bytes(128e12) // AI = 1/16
        .flop_efficiency(0.268)
        .bw_oversub(3.0) // latency-hiding: bandwidth survives capping
        .build();
    let compute = KernelProfile::builder("compute")
        .flops(12.8e12 * 40.0)
        .hbm_bytes(5e11) // AI = 1024
        .flop_efficiency(0.268)
        .build();

    println!("kernel      settings          time(s)  power(W)  energy(kJ)");
    for kernel in [&streaming, &compute] {
        let base = engine.execute(kernel, GpuSettings::uncapped());
        for (label, settings) in [
            ("uncapped    ", GpuSettings::uncapped()),
            ("900 MHz cap ", GpuSettings::freq_capped(900.0)),
            ("300 W cap   ", GpuSettings::power_capped(300.0)),
        ] {
            let ex = engine.execute(kernel, settings);
            println!(
                "{:<11} {label}  {:>7.2}  {:>8.0}  {:>9.1}   ({:+.1}% energy, {:+.1}% time)",
                kernel.name,
                ex.time_s,
                ex.busy_power_w,
                ex.energy_j / 1e3,
                100.0 * (ex.energy_j / base.energy_j - 1.0),
                100.0 * (ex.time_s / base.time_s - 1.0),
            );
        }
    }

    println!();
    println!("The paper's core observation, in two kernels: capping the clock is");
    println!("free energy for bandwidth-bound work (runtime unchanged, power down),");
    println!("but a time/energy trade-off for compute-bound work.");
}
