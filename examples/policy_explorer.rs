//! Operator-facing policy exploration (extension of paper Table VI): given
//! fleet telemetry, which domains and job sizes should be capped, at what
//! frequencies, and what does the coverage/disruption trade-off look like?
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use pmss::core::policy::{minimal_policy, tradeoff_curve};
use pmss::core::whatif::{best_uniform, optimize_per_domain};
use pmss::core::EnergyLedger;
use pmss::sched::{catalog, generate, TraceParams};
use pmss::telemetry::{simulate_fleet, FleetConfig};
use pmss::workloads::table3;

fn main() {
    let domains = catalog();
    let schedule = generate(
        TraceParams {
            nodes: 32,
            duration_s: 4.0 * 86_400.0,
            seed: 11,
            min_job_s: 900.0,
        },
        &domains,
    );
    let ledger: EnergyLedger = simulate_fleet(&schedule, &FleetConfig::default());
    let t3 = table3::compute_default();
    let total_j = ledger.total().joules;

    // 1. Coverage/disruption curve at a 900 MHz cap.
    let row = t3.freq_row(900.0).expect("900 MHz row");
    println!("coverage/disruption at a 900 MHz cap (cells ranked by savings):");
    for (cells, coverage, disruption) in tradeoff_curve(&ledger, row).iter().step_by(5) {
        println!(
            "  {cells:>3} cells capped -> {:.0}% of savings, {:.0}% of cappable GPU time touched",
            100.0 * coverage,
            100.0 * disruption
        );
    }

    // 2. Minimal policy for 80 % of the savings.
    let policy = minimal_policy(&ledger, row, 0.8);
    println!(
        "\nminimal policy for 80% of savings: {} cells, {:.0}% coverage, {:.0}% disruption",
        policy.cells.len(),
        100.0 * policy.coverage(),
        100.0 * policy.disruption()
    );
    for c in policy.cells.iter().take(8) {
        println!(
            "  cap {} jobs of {} (size {})",
            domains[c.domain].code,
            domains[c.domain].name,
            c.size.label()
        );
    }

    // 3. Per-domain mixed caps under slowdown budgets (extension).
    println!("\nper-domain cap assignment vs best uniform cap:");
    println!(
        "{:>12} | {:>14} | {:>14}",
        "dT budget", "mixed saves", "uniform saves"
    );
    for budget in [2.0, 5.0, 10.0, 25.0] {
        let mixed = optimize_per_domain(&ledger, &t3, budget);
        let (setting, uniform_j) =
            best_uniform(&ledger, &t3, budget).expect("paper ladders are non-empty");
        println!(
            "{:>11}% | {:>13.2}% | {:>9.2}% @{:.0} MHz",
            budget,
            100.0 * mixed.savings_fraction(total_j),
            100.0 * uniform_j / total_j,
            setting.value()
        );
    }
    println!("\nThe mixed assignment always matches or beats the uniform cap — the");
    println!("operator version of the paper's 'selected domains and job sizes' point.");
}
