//! Empirical Roofline Tool probe + power-model calibration round trip.
//!
//! Discovers the device's attainable ceilings empirically (the paper's
//! Sec. III-B-a methodology), then demonstrates the calibration workflow:
//! fit a fresh power model from anchor measurements and verify it matches.
//!
//! ```sh
//! cargo run --example ert_probe
//! ```

use pmss::gpu::calibrate::{anchor_observations, fit, rmse};
use pmss::gpu::{Engine, PowerModel};
use pmss::workloads::ert::{probe_ladder, ErtConfig};

fn main() {
    let engine = Engine::default();

    println!("Empirical roofline across the DVFS ladder:");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>8}",
        "MHz", "peak TFLOP/s", "HBM TB/s", "L2 TB/s", "ridge AI"
    );
    for r in probe_ladder(&engine, &ErtConfig::default()) {
        println!(
            "{:>8.0} | {:>12.2} | {:>12.2} | {:>12.2} | {:>8.2}",
            r.freq.mhz(),
            r.peak_flops / 1e12,
            r.peak_hbm_bw / 1e12,
            r.peak_l2_bw / 1e12,
            r.ridge_ai()
        );
    }
    println!(
        "paper check: ridge at AI = 4; HBM roof survives capping, compute roof scales with f\n"
    );

    // Calibration round trip: measure anchors on the "real" device, fit a
    // fresh model, compare.
    let reference = PowerModel::default();
    let observations = anchor_observations(&reference);
    let fitted = fit(&observations, reference.curve).expect("calibration");
    println!(
        "power-model calibration from {} anchor measurements:",
        observations.len()
    );
    println!(
        "  idle {:.1} W, clock {:.1} W, ALU {:.1} W, on-die {:.1} W, HBM {:.1} W",
        fitted.idle_w, fitted.clock_w, fitted.alu_max_w, fitted.ondie_max_w, fitted.hbm_max_w
    );
    println!(
        "  RMSE vs measurements: {:.3} W",
        rmse(&fitted, &observations)
    );
}
