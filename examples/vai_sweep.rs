//! VAI roofline sweep (paper Algorithm 1, Figs. 4–5): trace the roofline
//! with the Variable Arithmetic Intensity benchmark, verify the kernel's
//! bookkeeping against the real CPU implementation, and print the
//! energy-to-solution surface across the DVFS ladder.
//!
//! ```sh
//! cargo run --example vai_sweep
//! ```

use pmss::gpu::Engine;
use pmss::workloads::sweep::{freq_settings, normalize, sweep_kernel};
use pmss::workloads::vai;

fn main() {
    // 1. Validate the FLOP/byte accounting by actually executing
    //    Algorithm 1 on the CPU at a small scale.
    let params = vai::VaiParams::for_intensity(0.25, 4096, 3);
    let reference = vai::run_reference(params);
    println!(
        "Algorithm 1 reference run: {} work-items, AI = {} FLOP/byte, checksum c[17] = {:.1}",
        params.global_wis,
        params.intensity(),
        reference.c[17]
    );
    assert_eq!(reference.flops / reference.bytes, params.intensity());

    // 2. Sweep the roofline on the device model.
    let engine = Engine::default();
    println!("\nAI (F/B)  | TFLOP/s @1700 | power W | best-energy frequency");
    for ai in vai::intensity_sweep() {
        let k = vai::kernel(vai::VaiParams::for_intensity(ai, 1 << 28, 4));
        let points = sweep_kernel(&engine, &k, &freq_settings()).expect("builtin kernel");
        let norm = normalize(&points).expect("sweep includes baseline");
        let best = norm
            .iter()
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("no NaN"))
            .expect("non-empty sweep");
        let base = &points[0].execution;
        println!(
            "{ai:>9.4} | {:>13.2} | {:>7.0} | {:>5.0} MHz ({:.1}% energy, {:+.1}% time)",
            base.perf.flops_per_s / 1e12,
            base.busy_power_w,
            best.setting.value(),
            100.0 * best.energy,
            100.0 * (best.runtime - 1.0),
        );
    }
    println!("\nPaper check: energy-optimal frequency sits mid-ladder (~1100-1300 MHz)");
    println!("for compute-bound intensities and the power peak is at AI = 4.");
}
