//! Property-based tests for the telemetry substrate.

use pmss_gpu::PowerSample;
use pmss_telemetry::sampler::{aggregate, trace_energy_j};
use pmss_telemetry::PowerHistogram;
use proptest::prelude::*;

/// Varint encoding matching the codec's wire format, for composing
/// adversarial streams byte-for-byte.
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Varint values weighted toward the extremes that uniform random bytes
/// essentially never produce: 9-10 byte maximal encodings (`u64::MAX`
/// counts and runs, `zigzag(i64::MIN)` deltas) that probe for wrapping
/// arithmetic in the decoder's bound checks and delta accumulator.
fn extreme_varint() -> impl Strategy<Value = u64> {
    (0usize..10, 0u64..=u64::MAX).prop_map(|(which, raw)| match which {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => u64::MAX - 1,
        4 => 1u64 << 63,
        5 => i64::MAX as u64,
        6 => (1u64 << 53) + 1,
        7 => (1u64 << 54) + 1, // zigzag(2^53 + 1): just past the bound
        8 => raw % 4096,
        _ => raw,
    })
}

fn arb_trace() -> impl Strategy<Value = Vec<PowerSample>> {
    prop::collection::vec(80.0..600.0f64, 1..300).prop_map(|values| {
        values
            .into_iter()
            .enumerate()
            .map(|(i, w)| PowerSample {
                t_s: (i as f64 + 0.5) * 2.0,
                power_w: w,
            })
            .collect()
    })
}

proptest! {
    /// Aggregation conserves energy when windows divide evenly, and is
    /// within one window's worth otherwise.
    #[test]
    fn aggregation_preserves_energy(trace in arb_trace()) {
        let agg = aggregate(&trace, 14.0); // 7 samples per window
        let original = trace_energy_j(&trace, 2.0);
        let aggregated: f64 = agg.iter().map(|s| s.power_w * 14.0).sum();
        // The trailing partial window is scaled up by the mean; bound the
        // discrepancy by one full window at max power.
        prop_assert!((original - aggregated).abs() <= 14.0 * 600.0);
        if trace.len().is_multiple_of(7) {
            prop_assert!((original - aggregated).abs() < 1e-6 * original.max(1.0));
        }
    }

    /// Aggregated means never exceed the input range.
    #[test]
    fn aggregation_respects_range(trace in arb_trace(), window in 4.0..60.0f64) {
        let agg = aggregate(&trace, window);
        let lo = trace.iter().map(|s| s.power_w).fold(f64::INFINITY, f64::min);
        let hi = trace.iter().map(|s| s.power_w).fold(0.0f64, f64::max);
        for s in agg {
            prop_assert!(s.power_w >= lo - 1e-9 && s.power_w <= hi + 1e-9);
        }
    }

    /// Histogram mass is conserved: density sums to 1, fractions of the
    /// full range equal 1, merge adds totals.
    #[test]
    fn histogram_mass_conservation(values in prop::collection::vec(0.0..700.0f64, 1..500)) {
        let mut h = PowerHistogram::gpu_default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let mass: f64 = h.density().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!((h.fraction_between(0.0, 700.0) - 1.0).abs() < 1e-9);
        let mean = h.mean_w().unwrap();
        let direct = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((mean - direct).abs() < 1e-9);
    }

    /// Merging two histograms equals recording the union.
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0.0..700.0f64, 0..200),
        b in prop::collection::vec(0.0..700.0f64, 0..200),
    ) {
        let mut ha = PowerHistogram::gpu_default();
        let mut hb = PowerHistogram::gpu_default();
        let mut hu = PowerHistogram::gpu_default();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.counts(), hu.counts());
    }

    /// Smoothing never creates or destroys probability mass (interior).
    #[test]
    fn smoothing_conserves_interior_mass(values in prop::collection::vec(100.0..600.0f64, 10..300)) {
        let mut h = PowerHistogram::gpu_default();
        for &v in &values {
            h.record(v);
        }
        let sm = h.smoothed_density(2.0);
        let mass: f64 = sm.iter().sum();
        // Mass within 2% (edge truncation only affects bins near 0/700 W,
        // which the 100-600 W support avoids).
        prop_assert!((mass - 1.0).abs() < 0.02, "mass {mass}");
    }

    /// CSV round-trip is lossless to the printed precision.
    #[test]
    fn csv_round_trip(trace in arb_trace()) {
        use pmss_telemetry::export::{read_samples, write_samples};
        let mut buf = Vec::new();
        write_samples(&mut buf, &trace).unwrap();
        let back = read_samples(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            prop_assert!((a.power_w - b.power_w).abs() < 1e-3);
        }
    }

    /// Codec round-trip is lossless at the quantization step for any
    /// finite wattage series.
    #[test]
    fn codec_round_trip_is_lossless(samples in prop::collection::vec(0.0..700.0f64, 0..400)) {
        use pmss_telemetry::compress::{decode, encode, CodecConfig};
        let cfg = CodecConfig::default();
        let encoded = encode(&samples, cfg).unwrap();
        let decoded = decode(&encoded, cfg).unwrap();
        prop_assert_eq!(decoded.len(), samples.len());
        for (a, b) in samples.iter().zip(&decoded) {
            prop_assert!((a - b).abs() <= 0.5 * cfg.quantum_w + 1e-9, "{} vs {}", a, b);
        }
    }

    /// A single non-finite sample anywhere in the series makes the encoder
    /// refuse (never saturate) and name the offending index.
    #[test]
    fn codec_rejects_non_finite_samples(
        prefix in prop::collection::vec(0.0..700.0f64, 0..20),
        which in 0..3usize,
    ) {
        use pmss_telemetry::compress::{encode, CodecConfig};
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        let mut samples = prefix.clone();
        samples.push(bad);
        let err = encode(&samples, CodecConfig::default()).unwrap_err();
        prop_assert!(matches!(err, pmss_error::PmssError::InvalidValue { .. }), "{}", err);
        prop_assert!(err.to_string().contains(&format!("[{}]", prefix.len())), "{}", err);
    }

    /// Arbitrary bytes never panic the decoder and never make it allocate
    /// past the configured sample bound: every outcome is either a valid
    /// series within the bound or a typed error.
    #[test]
    fn codec_decode_survives_arbitrary_bytes(data in prop::collection::vec(0..=255u8, 0..64)) {
        use pmss_telemetry::compress::{decode, CodecConfig};
        let cfg = CodecConfig { max_samples: 4096, ..Default::default() };
        match decode(&data, cfg) {
            Ok(series) => prop_assert!(series.len() <= cfg.max_samples),
            Err(e) => prop_assert!(e.to_string().contains("power-codec"), "{}", e),
        }
    }

    /// Structured adversarial streams — a varint count followed by
    /// (delta, run) varint pairs, all drawn from extreme values — never
    /// panic the decoder or make it allocate past the sample bound.
    /// Uniform random bytes (above) almost never produce the 9-10 byte
    /// maximal varints needed to exercise overflow in the run-bound check
    /// and delta accumulator; this strategy hits them constantly.
    #[test]
    fn codec_decode_survives_adversarial_varint_streams(
        count in extreme_varint(),
        pairs in prop::collection::vec((extreme_varint(), extreme_varint()), 0..8),
        trailing in prop::collection::vec(0..=255u8, 0..4),
    ) {
        use pmss_telemetry::compress::{decode, CodecConfig};
        let mut data = Vec::new();
        push_varint(&mut data, count);
        for (delta, run) in pairs {
            push_varint(&mut data, delta);
            push_varint(&mut data, run);
        }
        data.extend(trailing);
        let cfg = CodecConfig { max_samples: 4096, ..Default::default() };
        match decode(&data, cfg) {
            Ok(series) => prop_assert!(series.len() <= cfg.max_samples),
            Err(e) => prop_assert!(e.to_string().contains("power-codec"), "{}", e),
        }
    }
}
