//! Window-energy conservation: [`EnergyLedger::region_totals`] must agree
//! with the sum of every recorded window energy, including on schedules
//! whose duration is not a multiple of the 15-second telemetry window —
//! the regime where the (fixed) dropped-tail and coverage-hole sampling
//! bugs used to lose or mis-bill energy.

use pmss_core::EnergyLedger;
use pmss_sched::{catalog, generate, TraceParams};
use pmss_telemetry::{simulate_fleet, FleetConfig, FleetObserver, SampleCtx};
use proptest::prelude::*;

/// Independent tally of the same sample stream the ledger sees: one
/// `power * window` energy contribution per GPU sample.
#[derive(Default)]
struct EnergySum {
    joules: f64,
    samples: u64,
}

impl FleetObserver for EnergySum {
    fn gpu_sample(&mut self, _ctx: &SampleCtx<'_>, _t_s: f64, power_w: f64) {
        self.joules += power_w * 15.0;
        self.samples += 1;
    }
    fn merge(&mut self, other: Self) {
        self.joules += other.joules;
        self.samples += other.samples;
    }
}

proptest! {
    #[test]
    fn region_totals_match_recorded_window_energy(
        nodes in 1usize..4,
        // Offsets in (0, 900) that are mostly *not* multiples of 15 s.
        dur_offset_s in 1u32..900,
        seed in 0u64..1_000,
    ) {
        let schedule = generate(
            TraceParams {
                nodes,
                duration_s: 3600.0 + dur_offset_s as f64,
                seed,
                min_job_s: 600.0,
            },
            &catalog(),
        );
        let cfg = FleetConfig::default();
        // Same config and seed: both observers see the identical,
        // deterministic sample stream.
        let ledger: EnergyLedger = simulate_fleet(&schedule, &cfg);
        let sum: EnergySum = simulate_fleet(&schedule, &cfg);

        let ledger_joules: f64 = ledger.region_totals().iter().map(|c| c.joules).sum();
        prop_assert!(sum.samples > 0);
        prop_assert!(
            (ledger_joules - sum.joules).abs() <= 1e-6 * sum.joules.max(1.0),
            "ledger {} J vs recorded {} J over {} samples",
            ledger_joules,
            sum.joules,
            sum.samples,
        );
    }
}
