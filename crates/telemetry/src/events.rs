//! The window-event seam — moved to [`pmss_columns`] (the columnar
//! substrate sits below this crate so that every consumer of window
//! telemetry can depend on the seam without depending on the generator).
//! Re-exported here so historical `pmss_telemetry::events` paths keep
//! working.

pub use pmss_columns::{apply_event, WindowEvent, WindowKind, REST_SLOT};
