//! Telemetry ↔ scheduler-log join: per-job power statistics and series.
//!
//! "Joining job-scheduler logs and telemetry data is essential for
//! analysis at the jobs and science domain level" (paper Sec. II-A).  The
//! fleet simulator attributes samples as it emits them, so the join is an
//! observer: [`JobPowerIndex`] keeps bounded per-job statistics for every
//! job, and full 15-second series for an opt-in watch list.

use std::collections::HashMap;

use crate::fleet::{FleetObserver, SampleCtx};

/// Streaming summary of one job's GPU power samples.
#[derive(Debug, Clone, Default)]
pub struct JobPowerStats {
    /// Sample count.
    pub samples: u64,
    /// Mean power, watts.
    pub mean_w: f64,
    /// Minimum sample, watts.
    pub min_w: f64,
    /// Maximum sample, watts.
    pub max_w: f64,
    /// Sum of squares accumulator (for the variance).
    m2: f64,
    /// Domain index of the job.
    pub domain: usize,
    /// GPU energy attributed to the job, joules (15 s windows).
    pub energy_j: f64,
}

impl JobPowerStats {
    fn record(&mut self, power_w: f64, window_s: f64) {
        self.samples += 1;
        if self.samples == 1 {
            self.min_w = power_w;
            self.max_w = power_w;
        } else {
            self.min_w = self.min_w.min(power_w);
            self.max_w = self.max_w.max(power_w);
        }
        // Welford's online mean/variance.
        let delta = power_w - self.mean_w;
        self.mean_w += delta / self.samples as f64;
        self.m2 += delta * (power_w - self.mean_w);
        self.energy_j += power_w * window_s;
    }

    fn merge(&mut self, other: &JobPowerStats) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.samples as f64;
        let n2 = other.samples as f64;
        let delta = other.mean_w - self.mean_w;
        self.mean_w = (n1 * self.mean_w + n2 * other.mean_w) / (n1 + n2);
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.samples += other.samples;
        self.min_w = self.min_w.min(other.min_w);
        self.max_w = self.max_w.max(other.max_w);
        self.energy_j += other.energy_j;
    }

    /// Sample standard deviation of the job's power, watts.
    pub fn std_w(&self) -> f64 {
        if self.samples < 2 {
            0.0
        } else {
            (self.m2 / (self.samples - 1) as f64).sqrt()
        }
    }
}

/// The join observer: per-job statistics plus full series for watched jobs.
#[derive(Debug, Clone, Default)]
pub struct JobPowerIndex {
    stats: HashMap<u64, JobPowerStats>,
    watch: Vec<u64>,
    series: HashMap<u64, Vec<(f64, f64)>>,
    window_s: f64,
}

impl JobPowerIndex {
    /// An index that additionally retains the full `(t, power)` series for
    /// the given job ids.
    pub fn watching(job_ids: Vec<u64>) -> Self {
        JobPowerIndex {
            watch: job_ids,
            window_s: 15.0,
            ..Default::default()
        }
    }

    /// Statistics for a job, if it was observed.
    pub fn job(&self, id: u64) -> Option<&JobPowerStats> {
        self.stats.get(&id)
    }

    /// Full series for a watched job.
    pub fn series(&self, id: u64) -> Option<&[(f64, f64)]> {
        self.series.get(&id).map(|v| v.as_slice())
    }

    /// Number of distinct jobs observed.
    pub fn num_jobs(&self) -> usize {
        self.stats.len()
    }

    /// Iterates `(job_id, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &JobPowerStats)> {
        self.stats.iter()
    }

    /// Mean power per domain, `(domain, mean_w, jobs)` triples sorted by
    /// domain.
    pub fn domain_means(&self) -> Vec<(usize, f64, usize)> {
        let mut acc: HashMap<usize, (f64, u64, usize)> = HashMap::new();
        for s in self.stats.values() {
            let e = acc.entry(s.domain).or_default();
            e.0 += s.mean_w * s.samples as f64;
            e.1 += s.samples;
            e.2 += 1;
        }
        let mut out: Vec<(usize, f64, usize)> = acc
            .into_iter()
            .map(|(d, (sum, n, jobs))| (d, sum / n as f64, jobs))
            .collect();
        out.sort_by_key(|&(d, _, _)| d);
        out
    }
}

impl FleetObserver for JobPowerIndex {
    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
        let window = if self.window_s > 0.0 {
            self.window_s
        } else {
            15.0
        };
        // Glitched (non-finite) sensor readings would poison the Welford
        // accumulators for good; skip them.
        if !power_w.is_finite() {
            return;
        }
        if let Some(job) = ctx.job {
            let stats = self.stats.entry(job.id).or_default();
            stats.domain = job.domain;
            stats.record(power_w, window);
            if self.watch.contains(&job.id) {
                self.series.entry(job.id).or_default().push((t_s, power_w));
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (id, s) in other.stats {
            self.stats.entry(id).or_default().merge(&s);
        }
        for (id, mut v) in other.series {
            let entry = self.series.entry(id).or_default();
            entry.append(&mut v);
            entry.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        for id in other.watch {
            if !self.watch.contains(&id) {
                self.watch.push(id);
            }
        }
        if self.window_s == 0.0 {
            self.window_s = other.window_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{simulate_fleet, FleetConfig};
    use pmss_sched::{catalog, generate, TraceParams};

    fn schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 6.0 * 3600.0,
                seed: 21,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn every_job_gets_statistics() {
        let s = schedule();
        let idx: JobPowerIndex = simulate_fleet(&s, &FleetConfig::default());
        // Every job long enough to cover a window appears.
        let expected = s.jobs.iter().filter(|j| j.duration_s() >= 30.0).count();
        assert!(
            idx.num_jobs() >= expected * 9 / 10,
            "{} of {} jobs indexed",
            idx.num_jobs(),
            expected
        );
        for (_, st) in idx.iter() {
            assert!(st.samples > 0);
            assert!(st.min_w <= st.mean_w && st.mean_w <= st.max_w);
            assert!(st.energy_j > 0.0);
        }
    }

    #[test]
    fn watched_jobs_keep_full_series() {
        let s = schedule();
        let id = s.jobs[0].id;
        let mut template = JobPowerIndex::watching(vec![id]);
        // simulate_fleet needs Default; emulate a watch by merging into a
        // watching index after a default-observer run is not possible, so
        // drive the observer manually through a second simulation pass.
        let collected: JobPowerIndex = simulate_fleet(&s, &FleetConfig::default());
        // Watch-list functionality exercised directly:
        let job = &s.jobs[0];
        for i in 0..10 {
            template.gpu_sample(
                &crate::fleet::SampleCtx {
                    node: 0,
                    slot: 0,
                    sku: 0,
                    job: Some(job),
                },
                i as f64 * 15.0,
                300.0,
            );
        }
        let series = template.series(id).expect("watched series");
        assert_eq!(series.len(), 10);
        assert!(collected.job(id).is_some());
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let job = pmss_sched::Job {
            id: 7,
            domain: 2,
            project_id: "X".into(),
            num_nodes: 1,
            size_class: pmss_sched::JobSizeClass::E,
            begin_s: 0.0,
            end_s: 1.0,
            app_class: pmss_workloads::AppClass::Mixed,
            seed: 0,
        };
        let ctx = crate::fleet::SampleCtx {
            node: 0,
            slot: 0,
            sku: 0,
            job: Some(&job),
        };
        let powers = [100.0, 200.0, 300.0, 400.0, 150.0, 250.0];

        let mut single = JobPowerIndex::default();
        for (i, &p) in powers.iter().enumerate() {
            single.gpu_sample(&ctx, i as f64, p);
        }

        let mut a = JobPowerIndex::default();
        let mut b = JobPowerIndex::default();
        for (i, &p) in powers.iter().enumerate() {
            if i < 3 {
                a.gpu_sample(&ctx, i as f64, p);
            } else {
                b.gpu_sample(&ctx, i as f64, p);
            }
        }
        a.merge(b);

        let s1 = single.job(7).unwrap();
        let s2 = a.job(7).unwrap();
        assert!((s1.mean_w - s2.mean_w).abs() < 1e-9);
        assert!((s1.std_w() - s2.std_w()).abs() < 1e-9);
        assert_eq!(s1.samples, s2.samples);
    }

    #[test]
    fn domain_means_cover_active_domains() {
        let s = schedule();
        let idx: JobPowerIndex = simulate_fleet(&s, &FleetConfig::default());
        let means = idx.domain_means();
        assert!(!means.is_empty());
        for (_, mean, jobs) in means {
            assert!(mean > 80.0 && mean < 560.0);
            assert!(jobs >= 1);
        }
    }
}
