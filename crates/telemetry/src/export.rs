//! CSV persistence for telemetry products.
//!
//! The paper notes that telemetry-driven studies "struggle with collecting
//! and managing extensive datasets"; this module makes the storage cost
//! concrete: samples, histograms, and job statistics serialize to plain
//! CSV with `std` only, and [`sample_storage_bytes`] estimates the footprint
//! of a Frontier-scale collection campaign.

use std::io::{BufRead, Write};

use pmss_error::PmssError;
use pmss_gpu::PowerSample;

use crate::hist::PowerHistogram;

/// Writes a power-sample series as `t_s,power_w` CSV.
pub fn write_samples<W: Write>(mut w: W, samples: &[PowerSample]) -> Result<(), PmssError> {
    writeln!(w, "t_s,power_w")?;
    for s in samples {
        writeln!(w, "{:.3},{:.3}", s.t_s, s.power_w)?;
    }
    Ok(())
}

/// Reads a `t_s,power_w` CSV written by [`write_samples`].
///
/// Malformed lines are a [`PmssError::MalformedData`]; underlying reader
/// failures surface as [`PmssError::Io`].
pub fn read_samples<R: BufRead>(r: R) -> Result<Vec<PowerSample>, PmssError> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 && line.starts_with("t_s") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let parse = |s: Option<&str>| -> Result<f64, PmssError> {
            s.and_then(|v| v.trim().parse().ok()).ok_or_else(|| {
                PmssError::malformed("csv", format!("line {}: {line:?}", lineno + 1))
            })
        };
        let t_s = parse(parts.next())?;
        let power_w = parse(parts.next())?;
        out.push(PowerSample { t_s, power_w });
    }
    Ok(out)
}

/// Writes a histogram as `bin_center_w,count` CSV.
pub fn write_histogram<W: Write>(mut w: W, hist: &PowerHistogram) -> Result<(), PmssError> {
    writeln!(w, "bin_center_w,count")?;
    for (center, &count) in hist.centers().zip(hist.counts()) {
        if count > 0 {
            writeln!(w, "{center:.1},{count}")?;
        }
    }
    Ok(())
}

/// Estimated raw storage for a telemetry campaign, in bytes.
///
/// * `nodes` — fleet size;
/// * `gpus_per_node` — sensors per node (4 GPU channels on Frontier);
/// * `days` — campaign length;
/// * `period_s` — sampling period (2 s raw, 15 s aggregated);
/// * `bytes_per_sample` — storage per sample (16 B for a packed
///   timestamp+value pair, more for CSV).
pub fn sample_storage_bytes(
    nodes: usize,
    gpus_per_node: usize,
    days: f64,
    period_s: f64,
    bytes_per_sample: f64,
) -> f64 {
    let samples = nodes as f64 * gpus_per_node as f64 * days * 86_400.0 / period_s;
    samples * bytes_per_sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn series() -> Vec<PowerSample> {
        (0..50)
            .map(|i| PowerSample {
                t_s: i as f64 * 15.0,
                power_w: 300.0 + (i % 7) as f64,
            })
            .collect()
    }

    #[test]
    fn samples_round_trip_through_csv() {
        let original = series();
        let mut buf = Vec::new();
        write_samples(&mut buf, &original).unwrap();
        let read = read_samples(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(read.len(), original.len());
        for (a, b) in original.iter().zip(&read) {
            assert!((a.t_s - b.t_s).abs() < 1e-3);
            assert!((a.power_w - b.power_w).abs() < 1e-3);
        }
    }

    #[test]
    fn malformed_csv_is_an_error() {
        let bad = "t_s,power_w\n1.0\n";
        assert!(read_samples(BufReader::new(bad.as_bytes())).is_err());
        let bad2 = "1.0,abc\n";
        assert!(read_samples(BufReader::new(bad2.as_bytes())).is_err());
    }

    #[test]
    fn histogram_export_skips_empty_bins() {
        let mut h = PowerHistogram::gpu_default();
        h.record(300.0);
        h.record(300.0);
        let mut buf = Vec::new();
        write_histogram(&mut buf, &h).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.contains(",2"));
    }

    #[test]
    fn frontier_scale_storage_is_terabytes_raw() {
        // The paper's infrastructure point: 2 s raw sampling of 9408 nodes
        // x 4 GPUs for 90 days is a multi-TB dataset even in a packed
        // binary format — hence the 15 s aggregation.
        let raw = sample_storage_bytes(9408, 4, 90.0, 2.0, 16.0);
        let aggregated = sample_storage_bytes(9408, 4, 90.0, 15.0, 16.0);
        assert!(raw > 2e12, "raw {raw}");
        assert!(aggregated < raw / 7.0);
    }
}
