//! Codec-resident campaign capture and block-level replay.
//!
//! A [`ResidentFleet`] is one fleet run at rest: every telemetry channel
//! captured as a compressed [`EncodedBlock`] (the power column through the
//! overflow-hardened quantizing codec, integer columns as delta varints,
//! timestamps derived from the window grid — see `pmss_columns::resident`).
//! This is the paper's "huge data storage" answer made concrete: a
//! campaign store is a flat sequence of independently-decodable blocks,
//! and replaying it against an observer touches one decompressed block at
//! a time — O(channel) scratch, never O(campaign).
//!
//! Replay is *bit-deterministic* (the same store folds to the same ledger,
//! bit for bit, every time) and exact in everything the codec stores
//! losslessly: window indices, delivery ranks, tags, job attribution,
//! timestamps, spans — so coverage accounting matches the live run to the
//! bit.  Power values are quantized at capture (1 W by default, the
//! sensor's own resolution), so replayed *energy* agrees with the live run
//! to within half a quantum per sample — the precision the fleet's sensors
//! had in the first place.

use pmss_columns::{BlockGrid, CodecConfig, ColumnBlock, EncodedBlock, FleetObserver};
use pmss_error::PmssError;
use pmss_sched::Schedule;

use crate::fleet::{fleet_window_blocks, FleetConfig};

/// One fleet run's telemetry, compressed block-per-channel (see module
/// docs).
#[derive(Debug, Clone)]
pub struct ResidentFleet {
    blocks: Vec<EncodedBlock>,
    codec: CodecConfig,
    raw_bytes: usize,
    rows: u64,
}

impl ResidentFleet {
    /// Runs the fleet simulation for `(schedule, cfg)` and captures every
    /// channel as a compressed resident block, at the codec's default 1 W
    /// sensor quantization.
    pub fn capture(schedule: &Schedule, cfg: &FleetConfig) -> Result<ResidentFleet, PmssError> {
        ResidentFleet::capture_with(schedule, cfg, CodecConfig::default())
    }

    /// [`ResidentFleet::capture`] under an explicit codec configuration.
    pub fn capture_with(
        schedule: &Schedule,
        cfg: &FleetConfig,
        codec: CodecConfig,
    ) -> Result<ResidentFleet, PmssError> {
        let plan = cfg.faults.as_ref().filter(|p| !p.is_noop());
        let mut blocks = Vec::new();
        let mut raw_bytes = 0usize;
        let mut rows = 0u64;
        let mut first_err = None;
        fleet_window_blocks(schedule, cfg, |block| {
            if first_err.is_some() {
                return;
            }
            let grid = BlockGrid {
                window_s: cfg.window_s,
                duration_s: schedule.duration_s,
                skew_s: plan.map_or(0.0, |p| p.clock_skew_s(block.node())),
            };
            match EncodedBlock::encode(block, grid, codec) {
                Ok(enc) => {
                    raw_bytes += block.column_bytes();
                    rows += block.len() as u64;
                    blocks.push(enc);
                }
                Err(e) => first_err = Some(e),
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(ResidentFleet {
                blocks,
                codec,
                raw_bytes,
                rows,
            }),
        }
    }

    /// Replays the store into a fresh observer: each block decodes
    /// independently and folds in canonical channel order (nodes
    /// ascending; GPU slots `0..4`, then rest-of-node), with
    /// channel-grouped observers accumulated one fresh partial per
    /// channel — the batch simulation's accumulation shape.  `schedule`
    /// must be the one the store was captured from (job attribution
    /// indexes its job log).
    pub fn replay<O: FleetObserver + Default>(&self, schedule: &Schedule) -> Result<O, PmssError> {
        let mut obs = O::default();
        for enc in &self.blocks {
            let block = enc.decode(self.codec)?;
            if O::CHANNEL_GROUPED {
                let mut chan = O::default();
                chan.fold_block(schedule, &block);
                obs.merge(chan);
            } else {
                obs.fold_block(schedule, &block);
            }
        }
        Ok(obs)
    }

    /// Decodes each block in canonical order to `emit` — the seam for
    /// feeding a resident store through the streaming engine's
    /// `ingest_block`.
    pub fn decode_blocks(&self, mut emit: impl FnMut(&ColumnBlock)) -> Result<(), PmssError> {
        for enc in &self.blocks {
            emit(&enc.decode(self.codec)?);
        }
        Ok(())
    }

    /// The compressed per-channel blocks, in canonical channel order.
    pub fn blocks(&self) -> &[EncodedBlock] {
        &self.blocks
    }

    /// Total window rows across every block.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Compressed size: the sum of every block's payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.blocks.iter().map(EncodedBlock::payload_bytes).sum()
    }

    /// Uncompressed columnar size the store replaced.
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Compression ratio: raw columnar bytes over compressed payload.
    pub fn compression_ratio(&self) -> f64 {
        let payload = self.payload_bytes();
        if payload == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / payload as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::simulate_fleet;
    use pmss_core::EnergyLedger;
    use pmss_faults::FaultPlan;
    use pmss_sched::{catalog, generate, TraceParams};

    fn schedule() -> Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 3.0 * 3600.0,
                seed: 9,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn capture_compresses_and_replay_is_deterministic() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let resident = ResidentFleet::capture(&sched, &cfg).expect("capture");
        assert!(resident.rows() > 0);
        assert!(
            resident.compression_ratio() > 4.0,
            "ratio {}",
            resident.compression_ratio()
        );
        let a: EnergyLedger = resident.replay(&sched).expect("replay");
        let b: EnergyLedger = resident.replay(&sched).expect("replay");
        assert_eq!(a, b);
    }

    #[test]
    fn replay_coverage_is_exact_and_energy_within_quantization() {
        let sched = schedule();
        let cfg = FleetConfig {
            faults: Some(FaultPlan::preset("frontier-typical").expect("preset")),
            ..FleetConfig::default()
        };
        let live: EnergyLedger = simulate_fleet(&sched, &cfg);
        let resident = ResidentFleet::capture(&sched, &cfg).expect("capture");
        let replayed: EnergyLedger = resident.replay(&sched).expect("replay");
        // Everything the codec stores losslessly matches the live run to
        // the bit: the time-coverage ledger only ever accumulates spans.
        let lc = live.coverage();
        let rc = replayed.coverage();
        assert_eq!(lc.observed_s.to_bits(), rc.observed_s.to_bits());
        assert_eq!(lc.excluded_s.to_bits(), rc.excluded_s.to_bits());
        assert_eq!(lc.interpolated_s.to_bits(), rc.interpolated_s.to_bits());
        assert_eq!(lc.discarded_s.to_bits(), rc.discarded_s.to_bits());
        // Power is quantized at 1 W, so total energy agrees to within half
        // a quantum across the observed seconds.
        let tol = 0.5 * (lc.observed_s + lc.interpolated_s + lc.attributed_idle_s);
        let diff = (live.total().joules - replayed.total().joules).abs();
        assert!(
            diff <= tol,
            "energy drift {diff} J exceeds quantization bound {tol} J"
        );
    }

    #[test]
    fn decode_blocks_visits_every_captured_row_in_order() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let resident = ResidentFleet::capture(&sched, &cfg).expect("capture");
        let mut rows = 0u64;
        let mut channels = Vec::new();
        resident
            .decode_blocks(|b| {
                rows += b.len() as u64;
                channels.push(b.channel());
            })
            .expect("decode");
        assert_eq!(rows, resident.rows());
        let mut sorted = channels.clone();
        sorted.sort();
        assert_eq!(channels, sorted, "canonical channel order");
    }
}
