//! Sampling-rate conversion: the paper's pipeline captures power at
//! 2-second intervals out-of-band and aggregates to 15-second means in
//! pre-processing (Table II a).

use pmss_gpu::PowerSample;

/// Aggregates a uniformly-sampled trace into fixed windows by mean,
/// emitting one sample per window stamped at the window center.
///
/// Partial trailing windows are emitted as the mean of whatever they hold,
/// matching the paper's pre-processing (no samples are dropped).
pub fn aggregate(samples: &[PowerSample], window_s: f64) -> Vec<PowerSample> {
    assert!(window_s > 0.0);
    let mut out = Vec::new();
    let mut acc = 0.0;
    let mut n = 0u32;
    let mut window_idx = 0usize;

    for s in samples {
        let idx = (s.t_s / window_s) as usize;
        if idx != window_idx && n > 0 {
            out.push(PowerSample {
                t_s: (window_idx as f64 + 0.5) * window_s,
                power_w: acc / n as f64,
            });
            acc = 0.0;
            n = 0;
        }
        window_idx = idx;
        acc += s.power_w;
        n += 1;
    }
    if n > 0 {
        out.push(PowerSample {
            t_s: (window_idx as f64 + 0.5) * window_s,
            power_w: acc / n as f64,
        });
    }
    out
}

/// Mean power of a trace, in watts.
pub fn mean_power(samples: &[PowerSample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().map(|s| s.power_w).sum::<f64>() / samples.len() as f64)
}

/// Energy implied by a uniformly-sampled trace, in joules.
pub fn trace_energy_j(samples: &[PowerSample], period_s: f64) -> f64 {
    samples.iter().map(|s| s.power_w * period_s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(values: &[f64], period: f64) -> Vec<PowerSample> {
        values
            .iter()
            .enumerate()
            .map(|(i, &w)| PowerSample {
                t_s: (i as f64 + 0.5) * period,
                power_w: w,
            })
            .collect()
    }

    #[test]
    fn aggregates_means_per_window() {
        // 2 s samples into 6 s windows: three samples each.
        let t = trace(&[100.0, 110.0, 120.0, 200.0, 210.0, 220.0], 2.0);
        let agg = aggregate(&t, 6.0);
        assert_eq!(agg.len(), 2);
        assert!((agg[0].power_w - 110.0).abs() < 1e-12);
        assert!((agg[1].power_w - 210.0).abs() < 1e-12);
        assert_eq!(agg[0].t_s, 3.0);
        assert_eq!(agg[1].t_s, 9.0);
    }

    #[test]
    fn partial_trailing_window_is_kept() {
        let t = trace(&[100.0, 100.0, 100.0, 400.0], 2.0);
        let agg = aggregate(&t, 6.0);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[1].power_w, 400.0);
    }

    #[test]
    fn aggregation_preserves_energy() {
        let t = trace(&[150.0, 250.0, 350.0, 450.0, 90.0, 91.0], 2.0);
        let original = trace_energy_j(&t, 2.0);
        let agg = aggregate(&t, 6.0);
        // Two full windows of three samples: energy per aggregated sample
        // is mean * window.
        let aggregated: f64 = agg.iter().map(|s| s.power_w * 6.0).sum();
        assert!((original - aggregated).abs() < 1e-9);
    }

    #[test]
    fn paper_rates_two_to_fifteen_seconds() {
        // 2 s capture aggregated to 15 s: 7 or 8 source samples per window.
        let values: Vec<f64> = (0..60).map(|i| 300.0 + i as f64).collect();
        let t = trace(&values, 2.0);
        let agg = aggregate(&t, 15.0);
        assert_eq!(agg.len(), 8);
        assert!(agg.windows(2).all(|w| w[1].t_s - w[0].t_s == 15.0));
    }

    #[test]
    fn empty_trace_yields_empty_aggregate() {
        assert!(aggregate(&[], 15.0).is_empty());
        assert_eq!(mean_power(&[]), None);
    }
}
