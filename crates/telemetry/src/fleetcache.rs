//! Fleet-level memoization: per-(job, slot-seed) phase *templates* layered
//! over the kernel-level [`ExecCache`].
//!
//! The fleet simulation synthesizes an application (a seeded random phase
//! sequence) for every (placement, GPU slot) and executes each phase
//! through the engine.  Synthesis is deterministic in its seed, class,
//! duration, and the applied [`GpuSettings`], and the local RNG it consumes
//! is dropped immediately afterwards — so the entire per-cycle segment
//! template is a pure function of those four inputs and can be memoized
//! wholesale.  A warm template hit skips the RNG draws, the kernel-profile
//! construction, *and* every engine execution for that slot; repeated
//! simulations of a schedule (one run per observer, benchmark iterations,
//! what-if sweeps) touch one cache entry per placement instead of one per
//! phase.
//!
//! Cold misses still go through [`Engine::execute_cached`], so the
//! kernel-level cache deduplicates identical (kernel, settings) executions
//! across templates and remains the single source of engine results.
//!
//! Keys are exact — the seed plus the bit patterns of the duration and
//! settings — so the memoized path is bit-identical to recomputing (the
//! same argument as the [`ExecCache`] key quantization, one level up).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::RwLock;

use pmss_gpu::{CacheStats, Engine, ExecCache, FxBuildHasher, FxHasher, GpuSettings};
use pmss_workloads::phases::synthesize_app;
use pmss_workloads::AppClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One constant-power stretch of a single phase cycle, precomputed once
/// per (job, slot-seed) and replayed across cycle iterations.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PhaseSeg {
    pub(crate) dur_s: f64,
    pub(crate) power_w: f64,
    /// True when the device is pinned at its firmware limit and may boost.
    pub(crate) boostable: bool,
}

/// Exact identity of one synthesized slot template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TemplateKey {
    /// Per-(job, node, slot) synthesis seed.
    seed: u64,
    /// SKU index of the node class executing the template: each SKU's
    /// engine calibration produces different phase powers/durations, so
    /// templates must never be shared across classes.
    sku: u8,
    class: AppClass,
    /// `f64::to_bits` of the synthesized app duration.
    dur_bits: u64,
    /// `f64::to_bits` of the frequency cap, in MHz.
    freq_bits: u64,
    /// `f64::to_bits` of the power cap (`u64::MAX` when uncapped).
    cap_bits: u64,
}

type TemplateShard = CachePadded<RwLock<HashMap<TemplateKey, Arc<[PhaseSeg]>, FxBuildHasher>>>;

/// Sharded concurrent cache of fleet slot templates plus the kernel-level
/// [`ExecCache`] that fills them on misses.
///
/// Shareable across any runs that resolve engines through the standard
/// [`pmss_gpu::SkuCatalog`]: the SKU index is part of the template key, so
/// every node class keeps its own templates.  Safe to use concurrently
/// from all rayon workers.
#[derive(Debug)]
pub struct FleetCache {
    exec: ExecCache,
    shards: Box<[TemplateShard]>,
    shard_bits: u32,
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    inserts: CachePadded<AtomicU64>,
}

impl Default for FleetCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetCache {
    /// The process-wide shared cache used by the cache-less entry points
    /// (`simulate_fleet`, `fleet_window_events`, `fleet_window_blocks`)
    /// when [`crate::FleetConfig::use_exec_cache`] is set.  Keys are
    /// exact — including the SKU index selecting the engine calibration —
    /// so sharing across every run in the process is bit-safe; it
    /// amortizes template synthesis across benchmark iterations, repeated
    /// artifacts, and what-if sweeps.
    pub fn shared() -> &'static FleetCache {
        static SHARED: std::sync::OnceLock<FleetCache> = std::sync::OnceLock::new();
        SHARED.get_or_init(FleetCache::new)
    }

    /// Creates an empty cache (64 template shards, like [`ExecCache`]).
    pub fn new() -> Self {
        let n = 64usize;
        FleetCache {
            exec: ExecCache::new(),
            shards: (0..n)
                .map(|_| CachePadded::new(RwLock::new(HashMap::default())))
                .collect(),
            shard_bits: n.trailing_zeros(),
            hits: CachePadded::new(AtomicU64::new(0)),
            misses: CachePadded::new(AtomicU64::new(0)),
            inserts: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The kernel-level execution cache templates are built from.
    pub fn exec(&self) -> &ExecCache {
        &self.exec
    }

    /// Template hit/miss/insert counters.  Inserts can trail misses: the
    /// miss path computes outside the shard lock, so a lost race keeps its
    /// own template and inserts nothing.
    pub fn template_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    /// Number of cached slot templates.
    pub fn template_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Drops all templates and executions and zeroes every counter.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.exec.clear();
    }

    fn shard(&self, key: &TemplateKey) -> &TemplateShard {
        let h = BuildHasherDefault::<FxHasher>::default().hash_one(key);
        // Top bits select the shard; the in-shard map uses the low bits.
        let shift = (u64::BITS - self.shard_bits) % u64::BITS;
        &self.shards[(h >> shift) as usize & (self.shards.len() - 1)]
    }

    /// Returns the slot template for (`sku`, `seed`, `class`,
    /// `duration_s`, `settings`), synthesizing and executing it through
    /// the kernel cache on first sight.  `engine` must be the calibration
    /// of SKU `sku` — the key carries only the index.
    ///
    /// The miss path computes outside the shard lock: template keys are
    /// unique per (job, node, slot), so duplicated work from a concurrent
    /// race is not worth serializing the shard for.
    pub(crate) fn template(
        &self,
        engine: &Engine,
        sku: u8,
        seed: u64,
        class: AppClass,
        duration_s: f64,
        settings: GpuSettings,
    ) -> Arc<[PhaseSeg]> {
        let key = TemplateKey {
            seed,
            sku,
            class,
            dur_bits: duration_s.to_bits(),
            freq_bits: settings.freq_cap.mhz().to_bits(),
            cap_bits: settings.power_cap_w.map_or(u64::MAX, f64::to_bits),
        };
        let shard = self.shard(&key);
        if let Some(tmpl) = shard.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(tmpl);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(seed);
        let phases = synthesize_app(class, duration_s, &mut rng);
        let mut tmpl = Vec::with_capacity(phases.len() * 3);
        for phase in &phases {
            let ex = engine.execute_cached(&self.exec, phase, settings);
            for (dur_s, power_w, boostable) in [
                (ex.perf.roofline_s, ex.busy_power_w, ex.ppt_throttled),
                (ex.perf.serial_s, ex.serial_power_w, false),
                (ex.perf.stall_s, ex.idle_power_w, false),
            ] {
                if dur_s > 0.0 {
                    tmpl.push(PhaseSeg {
                        dur_s,
                        power_w,
                        boostable,
                    });
                }
            }
        }
        let tmpl: Arc<[PhaseSeg]> = tmpl.into();
        if let Entry::Vacant(v) = shard.write().entry(key) {
            v.insert(Arc::clone(&tmpl));
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        tmpl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_deterministic_and_memoized() {
        let cache = FleetCache::new();
        let engine = Engine::default();
        let a = cache.template(
            &engine,
            0,
            42,
            AppClass::Mixed,
            3600.0,
            GpuSettings::uncapped(),
        );
        let b = cache.template(
            &engine,
            0,
            42,
            AppClass::Mixed,
            3600.0,
            GpuSettings::uncapped(),
        );
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(cache.template_stats().hits, 1);
        assert_eq!(cache.template_stats().misses, 1);
        assert_eq!(cache.template_stats().inserts, 1);
        assert_eq!(cache.template_len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn distinct_inputs_get_distinct_templates() {
        let cache = FleetCache::new();
        let engine = Engine::default();
        let base = cache.template(
            &engine,
            0,
            7,
            AppClass::Mixed,
            1800.0,
            GpuSettings::uncapped(),
        );
        for (sku, seed, class, dur, settings) in [
            (0, 8, AppClass::Mixed, 1800.0, GpuSettings::uncapped()),
            (
                0,
                7,
                AppClass::ComputeIntensive,
                1800.0,
                GpuSettings::uncapped(),
            ),
            (0, 7, AppClass::Mixed, 1801.0, GpuSettings::uncapped()),
            (
                0,
                7,
                AppClass::Mixed,
                1800.0,
                GpuSettings::power_capped(300.0),
            ),
            (1, 7, AppClass::Mixed, 1800.0, GpuSettings::uncapped()),
        ] {
            let t = cache.template(&engine, sku, seed, class, dur, settings);
            assert!(!Arc::ptr_eq(&base, &t));
        }
        assert_eq!(cache.template_len(), 6);
        assert_eq!(cache.template_stats().misses, 6);
    }

    #[test]
    fn clear_empties_both_levels() {
        let cache = FleetCache::new();
        let engine = Engine::default();
        cache.template(
            &engine,
            0,
            1,
            AppClass::MemoryIntensive,
            600.0,
            GpuSettings::uncapped(),
        );
        assert!(cache.template_len() > 0);
        assert!(!cache.exec().is_empty());
        cache.clear();
        assert_eq!(cache.template_len(), 0);
        assert!(cache.exec().is_empty());
        assert_eq!(cache.template_stats(), CacheStats::default());
        assert_eq!(cache.exec().stats(), CacheStats::default());
    }
}
