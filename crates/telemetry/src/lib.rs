//! # pmss-telemetry — out-of-band power telemetry simulation
//!
//! The paper's raw material is three months of Frontier power telemetry:
//! per-node sensors sampled every 2 seconds, aggregated to 15-second means,
//! joined with the SLURM job log (Table II).  This crate reproduces that
//! data product end to end:
//!
//! * [`sampler`] — 2 s → 15 s aggregation;
//! * [`hist`] — power histograms with smoothing and peak finding (Figs. 8–9);
//! * [`fleet`] — the rayon-parallel fleet simulation streaming 15 s samples
//!   (with boost excursions and sensor noise) to a [`fleet::FleetObserver`];
//! * [`observers`] — system-wide and per-domain histograms, GPU-vs-CPU
//!   energy split (Fig. 2 b);
//! * [`smi`] — in-band (ROCm-SMI-like) vs out-of-band agreement (Fig. 2 a);
//! * [`join`] — telemetry ↔ job-log join with per-job power statistics;
//! * [`export`] — CSV persistence and storage-cost estimation;
//! * [`fleetpower`] — facility-level aggregate power (peak demand, load
//!   duration, peak shaving under caps);
//! * [`compress`] — delta/run-length codec for power series (the storage
//!   cost the paper's discussion raises).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compress;
pub mod events;
pub mod export;
pub mod fleet;
pub mod fleetcache;
pub mod fleetpower;
pub mod hist;
pub mod join;
pub mod observers;
pub mod resident;
pub mod sampler;
pub mod smi;

pub use events::{apply_event, WindowEvent, WindowKind, REST_SLOT};
pub use fleet::{
    delivery_ordered_events, fleet_window_blocks, fleet_window_events,
    fleet_window_events_with_cache, simulate_fleet, simulate_fleet_metered,
    simulate_fleet_with_cache, FleetConfig, FleetObserver, FleetRunStats, GapFill, SampleCtx,
};
pub use fleetcache::FleetCache;
pub use fleetpower::FleetPowerSeries;
pub use hist::PowerHistogram;
pub use join::{JobPowerIndex, JobPowerStats};
pub use observers::{DomainHistograms, GpuCpuEnergy, Pair, SystemHistogram};
pub use pmss_columns::{BlockGrid, CodecConfig, ColumnBlock, EncodedBlock, Tag, NO_JOB};
pub use resident::ResidentFleet;
pub use smi::{compare_sensors, Comparison};
