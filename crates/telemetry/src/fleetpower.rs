//! Fleet-level aggregate power: the facility view.
//!
//! The paper's motivation is the facility power envelope (Table I: "Peak
//! power 29 MW"; the abstract: "constrained power budgets").  This
//! observer aggregates per-GPU and rest-of-node samples into a total
//! fleet power time series, from which peak demand, the load-duration
//! curve, and the peak-shaving effect of capping fall out.

use crate::fleet::{FleetObserver, SampleCtx};

/// Aggregate fleet power per telemetry window.
#[derive(Debug, Clone, Default)]
pub struct FleetPowerSeries {
    /// Sum of sample powers per window index, watts.
    totals_w: Vec<f64>,
    window_s: f64,
}

impl FleetPowerSeries {
    /// Hard ceiling on the window index: 1e9 fifteen-second windows is
    /// ~475 simulated years, far past any real campaign.  A glitched
    /// timestamp must not be able to demand an unbounded `resize`.
    const MAX_SLOT: f64 = 1e9;

    fn slot(&mut self, t_s: f64) -> &mut f64 {
        let w = if self.window_s > 0.0 {
            self.window_s
        } else {
            15.0
        };
        self.window_s = w;
        let idx = Self::slot_index(t_s, w);
        if self.totals_w.len() <= idx {
            self.totals_w.resize(idx + 1, 0.0);
        }
        &mut self.totals_w[idx]
    }

    /// Maps a sample timestamp to its window index.  An unchecked `as
    /// usize` here saturates on NaN/negative/huge floats, but the
    /// saturation point is `usize::MAX` — the resize in [`slot`] would
    /// then be an instant OOM.  Clamp explicitly: hostile timestamps
    /// land in slot 0 (non-finite, non-positive) or the capped tail
    /// (overlarge); the cast happens only after both clamps.
    fn slot_index(t_s: f64, w: f64) -> usize {
        if !t_s.is_finite() || t_s <= 0.0 {
            return 0;
        }
        (t_s / w).min(Self::MAX_SLOT) as usize
    }

    /// The aggregate series, watts per window.
    pub fn series_w(&self) -> &[f64] {
        &self.totals_w
    }

    /// Peak fleet power, watts.
    pub fn peak_w(&self) -> f64 {
        self.totals_w.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean fleet power, watts.
    pub fn mean_w(&self) -> f64 {
        if self.totals_w.is_empty() {
            0.0
        } else {
            self.totals_w.iter().sum::<f64>() / self.totals_w.len() as f64
        }
    }

    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        let w = if self.window_s > 0.0 {
            self.window_s
        } else {
            15.0
        };
        self.totals_w.iter().sum::<f64>() * w
    }

    /// Load factor: mean over peak, in `(0, 1]`.
    pub fn load_factor(&self) -> f64 {
        let p = self.peak_w();
        if p > 0.0 {
            self.mean_w() / p
        } else {
            0.0
        }
    }

    /// Load-duration curve: the fraction of time fleet power exceeds each
    /// of the given wattages.
    pub fn exceedance(&self, thresholds_w: &[f64]) -> Vec<(f64, f64)> {
        if self.totals_w.is_empty() {
            return thresholds_w.iter().map(|&t| (t, 0.0)).collect();
        }
        thresholds_w
            .iter()
            .map(|&t| {
                let over = self.totals_w.iter().filter(|&&p| p > t).count();
                (t, over as f64 / self.totals_w.len() as f64)
            })
            .collect()
    }
}

impl FleetObserver for FleetPowerSeries {
    fn gpu_sample(&mut self, _ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
        // One non-finite reading would poison the whole window's total (and
        // everything derived from it); skip glitched samples.
        if power_w.is_finite() {
            *self.slot(t_s) += power_w;
        }
    }

    fn node_sample(&mut self, _ctx: &SampleCtx<'_>, t_s: f64, _span_s: f64, rest_w: f64) {
        if rest_w.is_finite() {
            *self.slot(t_s) += rest_w;
        }
    }

    fn merge(&mut self, other: Self) {
        if self.totals_w.len() < other.totals_w.len() {
            self.totals_w.resize(other.totals_w.len(), 0.0);
        }
        for (a, b) in self.totals_w.iter_mut().zip(&other.totals_w) {
            *a += b;
        }
        if self.window_s == 0.0 {
            self.window_s = other.window_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{simulate_fleet, FleetConfig};
    use pmss_gpu::GpuSettings;
    use pmss_sched::{catalog, generate, TraceParams};

    fn schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 6,
                duration_s: 6.0 * 3600.0,
                seed: 19,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn fleet_power_is_bounded_by_the_hardware_envelope() {
        let s = schedule();
        let fp: FleetPowerSeries = simulate_fleet(&s, &FleetConfig::default());
        // 6 nodes x (4 GPUs x 600 W boost + ~400 W rest).
        let ceiling = 6.0 * (4.0 * 600.0 + 400.0);
        assert!(fp.peak_w() <= ceiling, "peak {}", fp.peak_w());
        // And above the all-idle floor.
        let floor = 6.0 * (4.0 * 85.0 + 200.0);
        assert!(fp.mean_w() > floor, "mean {}", fp.mean_w());
        assert!((0.0..=1.0).contains(&fp.load_factor()));
    }

    #[test]
    fn energy_matches_component_observers() {
        use crate::observers::GpuCpuEnergy;
        use crate::Pair;
        let s = schedule();
        let both: Pair<FleetPowerSeries, GpuCpuEnergy> =
            simulate_fleet(&s, &FleetConfig::default());
        let component = both.b.gpu_energy_j + both.b.rest_energy_j;
        assert!(
            (both.a.energy_j() - component).abs() < 1e-6 * component,
            "{} vs {}",
            both.a.energy_j(),
            component
        );
    }

    #[test]
    fn capping_shaves_fleet_peak_power() {
        // The operator story: a frequency cap cuts not just energy but the
        // facility's peak demand.
        let s = schedule();
        let base: FleetPowerSeries = simulate_fleet(&s, &FleetConfig::default());
        let capped: FleetPowerSeries = simulate_fleet(
            &s,
            &FleetConfig {
                settings: GpuSettings::freq_capped(1100.0),
                ..Default::default()
            },
        );
        assert!(
            capped.peak_w() < base.peak_w() - 100.0,
            "base peak {} vs capped {}",
            base.peak_w(),
            capped.peak_w()
        );
    }

    #[test]
    fn hostile_timestamps_cannot_explode_the_series() {
        let ctx = SampleCtx {
            node: 0,
            slot: 0,
            sku: 0,
            job: None,
        };
        let mut fp = FleetPowerSeries::default();
        // NaN, infinities, and negatives all land in slot 0 instead of
        // saturating the `as usize` cast at usize::MAX and OOMing the
        // resize.
        for t in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1e18, -0.0] {
            fp.gpu_sample(&ctx, t, 100.0);
            fp.node_sample(&ctx, t, 15.0, 50.0);
        }
        assert_eq!(fp.series_w().len(), 1);
        assert!((fp.series_w()[0] - 750.0).abs() < 1e-9);
        // An absurdly large timestamp clamps to the bounded ceiling —
        // checked at the index-mapping level so the test itself never
        // has to materialize the capped tail.
        assert_eq!(
            FleetPowerSeries::slot_index(1e300, 15.0),
            FleetPowerSeries::MAX_SLOT as usize
        );
        assert_eq!(FleetPowerSeries::slot_index(f64::MAX, 15.0), 1e9 as usize);
        // Ordinary in-campaign timestamps are untouched by the clamps.
        assert_eq!(FleetPowerSeries::slot_index(45.0, 15.0), 3);
    }

    #[test]
    fn exceedance_curve_is_monotone_decreasing() {
        let s = schedule();
        let fp: FleetPowerSeries = simulate_fleet(&s, &FleetConfig::default());
        let thresholds: Vec<f64> = (0..20).map(|i| i as f64 * fp.peak_w() / 19.0).collect();
        let curve = fp.exceedance(&thresholds);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        assert!(curve[0].1 > 0.99, "everything exceeds 0 W");
        assert!(curve.last().unwrap().1 < 0.01, "nothing exceeds the peak");
    }
}
