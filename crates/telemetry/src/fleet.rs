//! Fleet telemetry simulation: executes a job schedule on a fleet of
//! modeled nodes and streams 15-second power samples to an observer.
//!
//! This is the stand-in for three months of Frontier out-of-band telemetry
//! (paper Table II a): per node, per GPU slot, one mean-power sample every
//! 15 seconds, attributable to the job occupying the node.  Simulation is
//! rayon-parallel across nodes; observers are fold/reduce-merged, so no
//! locking is involved.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use pmss_faults::{FaultLane, FaultPlan, GapPolicy, Glitch};

use pmss_gpu::consts::GPUS_PER_NODE;
use pmss_gpu::trace::standard_normal;
use pmss_gpu::{BoostBudget, Engine, FleetMix, GpuSettings, NodeRestModel, SkuCatalog};
use pmss_sched::Schedule;
use pmss_workloads::phases::synthesize_app;
use pmss_workloads::AppClass;

use pmss_columns::ColumnBlock;

use crate::events::{WindowEvent, WindowKind, REST_SLOT};
use crate::fleetcache::FleetCache;

pub use pmss_columns::{FleetObserver, GapFill, SampleCtx};

/// Fleet-simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Telemetry window, in seconds (the paper: 15 s).
    pub window_s: f64,
    /// Gaussian noise on window means, standard deviation in watts
    /// (2-second sensor noise shrinks by sqrt(7.5) in the mean).
    pub noise_sd_w: f64,
    /// Power-management settings applied fleet-wide during the simulation.
    pub settings: GpuSettings,
    /// Per-domain setting overrides (indexed by catalog position): the
    /// selective-capping deployments of Table VI / the what-if optimizer.
    /// Jobs of domain `d` use `domain_settings[d]` when present; everything
    /// else (including idle time) uses `settings`.
    pub domain_settings: Vec<Option<GpuSettings>>,
    /// RNG seed.
    pub seed: u64,
    /// Memoize slot templates and engine executions across phases, cycles,
    /// nodes, slots, and repeated runs (see [`FleetCache`]).  When
    /// disabled, the simulation takes the unmemoized reference path that
    /// re-synthesizes each app and re-executes every phase on every cycle
    /// iteration; both paths produce bit-identical output, so disabling
    /// only serves equivalence tests and A/B benchmarking.
    pub use_exec_cache: bool,
    /// Deterministic telemetry degradation applied to the emitted stream
    /// (see [`pmss_faults::FaultPlan`]).  `None` — or a plan that injects
    /// nothing — leaves the stream untouched, bit for bit: the clean path
    /// is the exact pre-fault code path, which is what the differential
    /// harness pins.
    pub faults: Option<FaultPlan>,
    /// Node-class assignment over the standard [`SkuCatalog`].  The
    /// default homogeneous mix maps every node to SKU 0 (the paper's
    /// MI250X blade) and reproduces the single-SKU simulation bit for
    /// bit; mixed patterns give each node class its own engine
    /// calibration, rest-of-node power domain, and boost envelope.
    pub mix: FleetMix,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            window_s: 15.0,
            noise_sd_w: 1.5,
            settings: GpuSettings::uncapped(),
            domain_settings: Vec::new(),
            seed: 1,
            use_exec_cache: true,
            faults: None,
            mix: FleetMix::homogeneous(),
        }
    }
}

impl FleetConfig {
    /// The settings in force for a job of `domain`.
    pub fn settings_for(&self, domain: usize) -> GpuSettings {
        self.domain_settings
            .get(domain)
            .copied()
            .flatten()
            .unwrap_or(self.settings)
    }
}

// `SampleCtx`, `GapFill`, and `FleetObserver` moved to `pmss-columns`
// (re-exported above): the consumer trait now lives with the columnar
// substrate so observers can override `FleetObserver::fold_block`.

/// Per-worker tallies of one fleet-simulation run, following the same
/// fold/merge discipline as [`FleetObserver`]: each rayon worker
/// accumulates its own partial and partials are [`FleetRunStats::merge`]d
/// at reduce time — no locks, no atomics on the hot path.
///
/// Produced by [`simulate_fleet_metered`]; the unmetered entry points
/// thread a zero-sized no-op sink through the same monomorphized code, so
/// disabling metrics costs literally nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetRunStats {
    /// GPU window samples emitted.
    pub gpu_samples: u64,
    /// GPU samples attributed to a job (vs idle).
    pub attributed_samples: u64,
    /// Rest-of-node window samples emitted.
    pub node_samples: u64,
    /// Boost-burst engagements: windows where stored headroom was spent.
    pub boost_engagements: u64,
    /// Total boosted seconds granted across all engagements.
    pub boost_granted_s: f64,
    /// Boostable windows that found insufficient headroom and recharged
    /// instead.
    pub boost_denied: u64,
    /// GPU window samples lost to fault injection (individual drops and
    /// whole-node dropouts alike).
    pub faults_dropped: u64,
    /// GPU samples delivered twice by fault injection.
    pub faults_duplicated: u64,
    /// Delivered samples glitched to NaN or spiked.
    pub faults_glitched: u64,
    /// Samples delivered out of generation order.
    pub faults_reordered: u64,
    /// Node-windows suppressed by whole-node dropout intervals.
    pub faults_dropout_windows: u64,
    /// Lost windows filled by interpolation (`interpolate` gap policy).
    pub gaps_interpolated: u64,
    /// Lost windows excluded from the stream (`exclude` gap policy).
    pub gaps_excluded: u64,
    /// Lost windows billed as idle (`attribute-idle` gap policy).
    pub gaps_idle: u64,
}

impl FleetRunStats {
    /// Folds another worker's tallies into this one (the reduce step).
    pub fn merge(&mut self, other: &FleetRunStats) {
        self.gpu_samples += other.gpu_samples;
        self.attributed_samples += other.attributed_samples;
        self.node_samples += other.node_samples;
        self.boost_engagements += other.boost_engagements;
        self.boost_granted_s += other.boost_granted_s;
        self.boost_denied += other.boost_denied;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_glitched += other.faults_glitched;
        self.faults_reordered += other.faults_reordered;
        self.faults_dropout_windows += other.faults_dropout_windows;
        self.gaps_interpolated += other.gaps_interpolated;
        self.gaps_excluded += other.gaps_excluded;
        self.gaps_idle += other.gaps_idle;
    }
}

/// One fault-injection event, tallied by the metric sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultEvent {
    /// A GPU window sample was lost (drop or dropout).
    Dropped,
    /// A delivered GPU sample arrived twice.
    Duplicated,
    /// A delivered sample was glitched (NaN or spike).
    Glitched,
    /// A sample was delivered out of generation order.
    Reordered,
    /// A whole-node dropout suppressed one node-window.
    DropoutWindow,
    /// A lost window was filled by interpolation.
    GapInterpolated,
    /// A lost window was excluded from the stream.
    GapExcluded,
    /// A lost window was billed as unattributed idle.
    GapIdle,
}

/// Internal metric sink threaded through the simulation.  Monomorphized:
/// the `()` impl is all empty inlined bodies, so the unmetered build
/// compiles the recording away entirely — which is what keeps the
/// "metrics must not perturb output or cost" guarantee trivially true.
trait FleetSink: Default + Send {
    fn gpu_sample(&mut self, _attributed: bool) {}
    fn node_sample(&mut self) {}
    fn boost_engaged(&mut self, _granted_s: f64) {}
    fn boost_denied(&mut self) {}
    fn fault(&mut self, _e: FaultEvent) {}
    fn absorb(&mut self, other: Self);
}

/// The no-op sink of the unmetered entry points.
impl FleetSink for () {
    fn absorb(&mut self, _other: Self) {}
}

impl FleetSink for FleetRunStats {
    fn gpu_sample(&mut self, attributed: bool) {
        self.gpu_samples += 1;
        self.attributed_samples += attributed as u64;
    }
    fn node_sample(&mut self) {
        self.node_samples += 1;
    }
    fn boost_engaged(&mut self, granted_s: f64) {
        self.boost_engagements += 1;
        self.boost_granted_s += granted_s;
    }
    fn boost_denied(&mut self) {
        self.boost_denied += 1;
    }
    fn fault(&mut self, e: FaultEvent) {
        match e {
            FaultEvent::Dropped => self.faults_dropped += 1,
            FaultEvent::Duplicated => self.faults_duplicated += 1,
            FaultEvent::Glitched => self.faults_glitched += 1,
            FaultEvent::Reordered => self.faults_reordered += 1,
            FaultEvent::DropoutWindow => self.faults_dropout_windows += 1,
            FaultEvent::GapInterpolated => self.gaps_interpolated += 1,
            FaultEvent::GapExcluded => self.gaps_excluded += 1,
            FaultEvent::GapIdle => self.gaps_idle += 1,
        }
    }
    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }
}

/// Host CPU utilization while a workload class runs (drives the
/// rest-of-node power for Fig. 2 b).
fn cpu_util_of(class: AppClass) -> f64 {
    match class {
        AppClass::ComputeIntensive => 0.25,
        AppClass::MemoryIntensive => 0.30,
        AppClass::LatencyBound => 0.55,
        AppClass::Mixed => 0.35,
    }
}

/// One constant-power stretch of a GPU slot's timeline.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start_s: f64,
    end_s: f64,
    power_w: f64,
    job: Option<usize>,
    /// True when the device is pinned at its firmware limit and may boost.
    boostable: bool,
}

/// Builds the segment timeline of one GPU slot under `settings`.
/// `engine` is the calibration of the node's SKU; `sku` keys the template
/// cache so classes never share memoized executions.
#[allow(clippy::too_many_arguments)]
fn slot_segments(
    schedule: &Schedule,
    node: usize,
    slot: usize,
    sku: u8,
    engine: &Engine,
    cache: Option<&FleetCache>,
    cfg: &FleetConfig,
    idle_power_w: f64,
) -> Vec<Segment> {
    let mut segs = Vec::new();
    let mut t = 0.0f64;

    for placement in &schedule.per_node[node] {
        if placement.begin_s > t {
            segs.push(Segment {
                start_s: t,
                end_s: placement.begin_s,
                power_w: idle_power_w,
                job: None,
                boostable: false,
            });
        }
        let job = &schedule.jobs[placement.job];
        let settings = cfg.settings_for(job.domain);
        let slot_seed = job.seed ^ ((node as u64) << 8) ^ slot as u64;

        // Cycle phases until the job window is filled (under caps the same
        // wall window holds less completed work).
        let mut cursor = placement.begin_s;
        match cache {
            Some(cache) => {
                // Memoized path: the whole per-cycle template — phase
                // synthesis plus one engine execution per phase — is
                // resolved through the shared cache, and the cycle loop
                // replays it instead of re-running the engine every
                // iteration.
                let tmpl = cache.template(
                    engine,
                    sku,
                    slot_seed,
                    job.app_class,
                    job.duration_s(),
                    settings,
                );
                if !tmpl.is_empty() {
                    'fill: loop {
                        let cursor_at_cycle_start = cursor;
                        for seg in tmpl.iter() {
                            let end = (cursor + seg.dur_s).min(placement.end_s);
                            if end > cursor {
                                segs.push(Segment {
                                    start_s: cursor,
                                    end_s: end,
                                    power_w: seg.power_w,
                                    job: Some(placement.job),
                                    boostable: seg.boostable,
                                });
                                cursor = end;
                            }
                            if cursor >= placement.end_s {
                                break 'fill;
                            }
                        }
                        if cursor <= cursor_at_cycle_start {
                            break;
                        }
                    }
                }
            }
            None => {
                // Reference path: re-synthesize the app and re-execute
                // every phase on every cycle iteration, exactly as the
                // pre-cache implementation did.  Synthesis is seed-pure and
                // `Engine::execute` is stateless, so this produces
                // bit-identical segments to the memoized path; it is kept
                // as the baseline for equivalence tests and A/B
                // benchmarking.
                let mut rng = StdRng::seed_from_u64(slot_seed);
                let phases = synthesize_app(job.app_class, job.duration_s(), &mut rng);
                'fill: loop {
                    let cursor_at_cycle_start = cursor;
                    for phase in &phases {
                        let ex = engine.execute(phase, settings);
                        for (dur, power, boostable) in [
                            (ex.perf.roofline_s, ex.busy_power_w, ex.ppt_throttled),
                            (ex.perf.serial_s, ex.serial_power_w, false),
                            (ex.perf.stall_s, ex.idle_power_w, false),
                        ] {
                            if dur <= 0.0 {
                                continue;
                            }
                            let end = (cursor + dur).min(placement.end_s);
                            if end > cursor {
                                segs.push(Segment {
                                    start_s: cursor,
                                    end_s: end,
                                    power_w: power,
                                    job: Some(placement.job),
                                    boostable,
                                });
                                cursor = end;
                            }
                            if cursor >= placement.end_s {
                                break 'fill;
                            }
                        }
                    }
                    if cursor <= cursor_at_cycle_start {
                        break;
                    }
                }
            }
        }
        if cursor < placement.end_s {
            // Degenerate phases (an empty or sub-resolution synthesis, or
            // durations too small to advance the cursor) cannot fill the
            // job window.  The slot is still allocated to the job, so bill
            // the remainder at idle power rather than leaving it uncovered
            // (an uncovered span integrates as 0 W into window means).
            segs.push(Segment {
                start_s: cursor,
                end_s: placement.end_s,
                power_w: idle_power_w,
                job: Some(placement.job),
                boostable: false,
            });
        }
        t = placement.end_s;
    }

    if t < schedule.duration_s {
        segs.push(Segment {
            start_s: t,
            end_s: schedule.duration_s,
            power_w: idle_power_w,
            job: None,
            boostable: false,
        });
    }
    segs
}

/// Walks `segments` in `window_s` windows, emitting one [`WindowEvent`]
/// per window — mean power with boost excursions and sensor noise applied,
/// degraded in place when the config carries an active [`FaultPlan`] —
/// to `emit` in canonical channel order: ascending window, duplicate
/// deliveries adjacent.  Sample *generation* (including RNG consumption)
/// is identical with and without a plan; faults only change what is
/// emitted for each generated window.
#[allow(clippy::too_many_arguments)]
fn slot_window_events<M: FleetSink>(
    sink: &mut M,
    schedule: &Schedule,
    segments: &[Segment],
    node: u32,
    slot: u8,
    sku: u8,
    cfg: &FleetConfig,
    boost: &mut BoostBudget,
    rng: &mut StdRng,
    idle_power_w: f64,
    boosted_w: f64,
    lane: &mut FaultLane,
    emit: &mut impl FnMut(WindowEvent),
) {
    let plan = cfg.faults.as_ref().filter(|p| !p.is_noop());
    let skew = plan.map_or(0.0, |p| p.clock_skew_s(node));
    // Interpolation holds the last *clean generated* value: a glitched
    // sensor reading must not poison later gap fills.
    let mut last_good: Option<f64> = None;
    // Delivery ranks of every delivered copy, for the reorder tally.
    let mut ranks: Vec<(u64, u64)> = Vec::new();
    let n_full = (schedule.duration_s / cfg.window_s).floor() as usize;
    // All of the channel's fault decisions, filled in one columnar pass
    // (bit-identical to the scalar per-window decision calls).
    if let Some(p) = plan {
        p.fill_lane(node, slot, 0..n_full as u64 + 1, lane);
    }
    let mut seg_idx = 0usize;

    // `n_full` whole windows plus, when the duration is not an exact
    // multiple of the window, one final partial window averaging the
    // remaining covered span (previously the tail was silently dropped).
    for w in 0..=n_full {
        let w_start = w as f64 * cfg.window_s;
        let w_end = if w == n_full {
            schedule.duration_s
        } else {
            w_start + cfg.window_s
        };
        let span = w_end - w_start;
        if span <= 1e-9 {
            break;
        }
        let center = w_start + 0.5 * span;

        // Advance to the first segment overlapping this window.
        while seg_idx + 1 < segments.len() && segments[seg_idx].end_s <= w_start {
            seg_idx += 1;
        }

        let mut energy = 0.0f64;
        let mut attributed: Option<usize> = None;
        let mut i = seg_idx;
        while i < segments.len() && segments[i].start_s < w_end {
            let s = &segments[i];
            let overlap = (s.end_s.min(w_end) - s.start_s.max(w_start)).max(0.0);
            if overlap > 0.0 {
                let mut p = s.power_w;
                if s.boostable {
                    // The device boosts in bursts: it waits for enough
                    // thermal headroom to sustain a multi-second excursion,
                    // then spends it at once.  While pinned at the firmware
                    // limit (below the TDP) headroom still recovers slowly.
                    const BURST_MIN_S: f64 = 8.0;
                    if boost.stored_s() >= BURST_MIN_S {
                        let granted = boost.spend(overlap.min(10.0));
                        sink.boost_engaged(granted);
                        p = (granted * boosted_w + (overlap - granted) * s.power_w) / overlap;
                    } else {
                        sink.boost_denied();
                        boost.recharge(overlap);
                    }
                } else {
                    boost.recharge(overlap);
                }
                energy += p * overlap;
                // Attribute the window to the job occupying its center —
                // matching how the sample is stamped — rather than to
                // whichever segment happens to overlap the window first.
                if s.start_s <= center && center < s.end_s {
                    attributed = s.job;
                }
            }
            i += 1;
        }

        let mean = (energy / span + cfg.noise_sd_w * standard_normal(rng)).max(0.0);
        let window = w as u64;
        let Some(plan) = plan else {
            sink.gpu_sample(attributed.is_some());
            emit(WindowEvent {
                node,
                slot,
                sku,
                window,
                rank: window,
                t_s: center,
                span_s: span,
                kind: WindowKind::Sample {
                    power_w: mean,
                    job: attributed,
                },
            });
            continue;
        };

        if lane.lost(window) {
            sink.fault(FaultEvent::Dropped);
            let (fill, event, job) = match plan.gap_policy {
                GapPolicy::Exclude => (GapFill::Excluded, FaultEvent::GapExcluded, attributed),
                GapPolicy::Interpolate => (
                    GapFill::Interpolated(last_good.unwrap_or(idle_power_w)),
                    FaultEvent::GapInterpolated,
                    attributed,
                ),
                GapPolicy::AttributeIdle => {
                    (GapFill::Idle(idle_power_w), FaultEvent::GapIdle, None)
                }
            };
            sink.fault(event);
            emit(WindowEvent {
                node,
                slot,
                sku,
                window,
                rank: window,
                t_s: center + skew,
                span_s: span,
                kind: WindowKind::Gap { fill, job },
            });
            continue;
        }
        last_good = Some(mean);
        let mut power_w = mean;
        if let Some(glitch) = lane.glitch(window) {
            sink.fault(FaultEvent::Glitched);
            power_w = match glitch {
                Glitch::Nan => f64::NAN,
                Glitch::Spike(w) => power_w + w,
            };
        }
        let rank = lane.delivery_rank(window);
        let ev = WindowEvent {
            node,
            slot,
            sku,
            window,
            rank,
            t_s: center + skew,
            span_s: span,
            kind: WindowKind::Sample {
                power_w,
                job: attributed,
            },
        };
        if lane.duplicated(window) {
            sink.fault(FaultEvent::Duplicated);
            sink.gpu_sample(attributed.is_some());
            if plan.reorder_depth > 0 {
                ranks.push((rank, window));
            }
            emit(ev);
        }
        sink.gpu_sample(attributed.is_some());
        if plan.reorder_depth > 0 {
            ranks.push((rank, window));
        }
        emit(ev);
    }

    // Reorder tally: under the plan's bounded reorder buffer the channel's
    // *arrival* order is its delivered copies sorted by (rank, window); a
    // sample is counted out-of-order when it arrives after a later window,
    // exactly as a downstream consumer of the arrival stream would see it.
    // (With depth 0 every rank equals its window and nothing reorders.)
    ranks.sort_unstable();
    let mut prev_window = 0u64;
    for (i, &(_, w)) in ranks.iter().enumerate() {
        if i > 0 && w < prev_window {
            sink.fault(FaultEvent::Reordered);
        }
        prev_window = w;
    }
}

/// Emits the per-window rest-of-node power samples as [`WindowEvent`]s on
/// the node's [`REST_SLOT`] channel.  Dropped-out windows emit nothing at
/// all (a silent node is a hole in the stream, not a gap record).
#[allow(clippy::too_many_arguments)] // one bundle of per-node channel context
fn node_rest_events<M: FleetSink>(
    sink: &mut M,
    schedule: &Schedule,
    node: u32,
    sku: u8,
    cfg: &FleetConfig,
    rest: &NodeRestModel,
    dropout: &mut Vec<bool>,
    emit: &mut impl FnMut(WindowEvent),
) {
    let n_full = (schedule.duration_s / cfg.window_s).floor() as usize;
    let placements = &schedule.per_node[node as usize];
    let mut p_idx = 0usize;
    let plan = cfg.faults.as_ref().filter(|p| !p.is_noop());
    let skew = plan.map_or(0.0, |p| p.clock_skew_s(node));
    // Dropout decisions for the whole channel in one columnar pass,
    // amortized per dropout interval.
    if let Some(p) = plan {
        p.fill_node_dropout(node, 0..n_full as u64 + 1, dropout);
    }

    // Same window layout as `emit_windows`, including the partial tail.
    #[allow(clippy::needless_range_loop)] // `w` drives the window math; `dropout[w]` is incidental
    for w in 0..=n_full {
        let w_start = w as f64 * cfg.window_s;
        let w_end = if w == n_full {
            schedule.duration_s
        } else {
            w_start + cfg.window_s
        };
        if w_end - w_start <= 1e-9 {
            break;
        }
        let t = 0.5 * (w_start + w_end);
        while p_idx < placements.len() && placements[p_idx].end_s <= t {
            p_idx += 1;
        }
        // A dropped-out node is silent on every channel: the rest-of-node
        // sample vanishes along with the GPU samples of the interval.
        if plan.is_some() && dropout[w] {
            sink.fault(FaultEvent::DropoutWindow);
            continue;
        }
        let util = placements
            .get(p_idx)
            .filter(|p| p.begin_s <= t)
            .map(|p| cpu_util_of(schedule.jobs[p.job].app_class))
            .unwrap_or(0.03);
        sink.node_sample();
        emit(WindowEvent {
            node,
            slot: REST_SLOT,
            sku,
            window: w as u64,
            rank: w as u64,
            t_s: t + skew,
            span_s: w_end - w_start,
            kind: WindowKind::NodeRest {
                rest_w: rest.power_w(util),
            },
        });
    }
}

/// Runs the fleet simulation, returning the merged observer.
///
/// When [`FleetConfig::use_exec_cache`] is set (the default), the
/// process-wide [`FleetCache::shared`] memoizes slot templates across
/// *every* run in the process, so repeated simulations (benchmark
/// iterations, what-if sweeps, pipeline artifacts) pay template synthesis
/// once.  Cache keys are exact, so output is bit-identical to a cold
/// cache regardless of prior contents; use [`simulate_fleet_with_cache`]
/// to supply a caller-owned cache instead (e.g. to inspect hit rates).
pub fn simulate_fleet<O>(schedule: &Schedule, cfg: &FleetConfig) -> O
where
    O: FleetObserver + Default,
{
    if cfg.use_exec_cache {
        simulate_fleet_impl::<O, ()>(schedule, cfg, Some(FleetCache::shared())).0
    } else {
        simulate_fleet_impl::<O, ()>(schedule, cfg, None).0
    }
}

/// [`simulate_fleet`] with a caller-owned cache.
///
/// The cache may be shared by any two `simulate_fleet_with_cache` calls:
/// engines are resolved through the standard [`SkuCatalog`] and the SKU
/// index is part of every template key, so mixes never collide.  Output
/// is bit-identical to the uncached path regardless of the cache's prior
/// contents, because cache keys are exact (see [`FleetCache`]).
pub fn simulate_fleet_with_cache<O>(schedule: &Schedule, cfg: &FleetConfig, cache: &FleetCache) -> O
where
    O: FleetObserver + Default,
{
    simulate_fleet_impl::<O, ()>(schedule, cfg, Some(cache)).0
}

/// [`simulate_fleet_with_cache`], additionally tallying run statistics
/// (sample counts, boost engagements) via a per-worker [`FleetRunStats`]
/// sink merged at reduce time.
///
/// The observer output is bit-identical to the unmetered entry points:
/// the sink only counts, it never touches the simulation state.  Cache
/// hit/miss/insert counters live on `cache` itself and accumulate across
/// runs; snapshot [`FleetCache::template_stats`] before and after to
/// attribute them to one run.
pub fn simulate_fleet_metered<O>(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: &FleetCache,
) -> (O, FleetRunStats)
where
    O: FleetObserver + Default,
{
    simulate_fleet_impl::<O, FleetRunStats>(schedule, cfg, Some(cache))
}

/// Per-SKU values the window loop reads constantly, resolved once per run
/// from the catalog.  For SKU 0 every value is bit-identical to what the
/// homogeneous simulation computed inline (`Engine::default()`,
/// `NodeRestModel::default()`, the TDP/boost midpoint).
struct SkuRuntime {
    engine: Engine,
    rest: NodeRestModel,
    idle_power_w: f64,
    boosted_w: f64,
}

impl SkuRuntime {
    fn resolve(catalog: &SkuCatalog) -> Vec<SkuRuntime> {
        catalog
            .skus()
            .iter()
            .map(|spec| SkuRuntime {
                engine: spec.engine.clone(),
                rest: spec.rest,
                idle_power_w: spec
                    .engine
                    .power_model()
                    .demand_w(pmss_gpu::Utilization::idle(), pmss_gpu::Freq::MAX),
                boosted_w: spec.boosted_w(),
            })
            .collect()
    }
}

/// The SKU index of `node` under `mix`, folded into the catalog's range so
/// arbitrary mix patterns can never index out of bounds (and so energy
/// lanes stay dense: two pattern values naming the same catalog entry land
/// in the same lane).
fn canonical_sku(mix: &FleetMix, catalog: &SkuCatalog, node: usize) -> u8 {
    (mix.sku_of(node) as usize % catalog.len().max(1)) as u8
}

fn simulate_fleet_impl<O, M>(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: Option<&FleetCache>,
) -> (O, M)
where
    O: FleetObserver + Default,
    M: FleetSink,
{
    let catalog = SkuCatalog::standard();
    let runtime = SkuRuntime::resolve(&catalog);

    // One scratch block per worker, reset per channel: generation writes
    // the channel's windows into SoA columns, then the observer folds the
    // whole block at once ([`FleetObserver::fold_block`]).  The fold
    // replays the identical observer-call sequence the per-event path
    // made, so low-order float bits are pinned; columnar observers merely
    // skip per-event dispatch.
    let windows_hint = (schedule.duration_s / cfg.window_s).floor() as usize + 1;

    (0..schedule.per_node.len())
        .into_par_iter()
        .fold(
            || (O::default(), M::default()),
            |(mut obs, mut sink), node| {
                let sku = canonical_sku(&cfg.mix, &catalog, node);
                let rt = &runtime[sku as usize];
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((node as u64) << 20));
                let mut block = ColumnBlock::with_capacity(node as u32, 0, windows_hint);
                let mut lane = FaultLane::new();
                let mut dropout = Vec::new();
                // Channel-grouped observers accumulate each channel into a
                // fresh partial, merged in canonical order (GPU slots 0..4,
                // then rest-of-node) — the shape `pmss-stream` reproduces
                // bit for bit (see [`FleetObserver::CHANNEL_GROUPED`]).
                // Everything else folds blocks straight into the running
                // accumulator, preserving historical low-order bits.
                let fold = |obs: &mut O, block: &ColumnBlock| {
                    if O::CHANNEL_GROUPED {
                        let mut chan = O::default();
                        chan.fold_block(schedule, block);
                        obs.merge(chan);
                    } else {
                        obs.fold_block(schedule, block);
                    }
                };
                for slot in 0..GPUS_PER_NODE {
                    let segs = slot_segments(
                        schedule,
                        node,
                        slot,
                        sku,
                        &rt.engine,
                        cache,
                        cfg,
                        rt.idle_power_w,
                    );
                    let mut boost = BoostBudget::default();
                    block.reset(node as u32, slot as u8);
                    slot_window_events(
                        &mut sink,
                        schedule,
                        &segs,
                        node as u32,
                        slot as u8,
                        sku,
                        cfg,
                        &mut boost,
                        &mut rng,
                        rt.idle_power_w,
                        rt.boosted_w,
                        &mut lane,
                        &mut |ev| block.push(&ev),
                    );
                    fold(&mut obs, &block);
                }
                block.reset(node as u32, REST_SLOT);
                node_rest_events(
                    &mut sink,
                    schedule,
                    node as u32,
                    sku,
                    cfg,
                    &rt.rest,
                    &mut dropout,
                    &mut |ev| block.push(&ev),
                );
                fold(&mut obs, &block);
                (obs, sink)
            },
        )
        .reduce(
            || (O::default(), M::default()),
            |(mut a, mut a_sink), (b, b_sink)| {
                a.merge(b);
                a_sink.absorb(b_sink);
                (a, a_sink)
            },
        )
}

/// Streams every telemetry event of a fleet run to `emit` in *arrival*
/// order — the order a collection fabric would deliver them: channel by
/// channel (nodes ascending; GPU slots `0..4`, then rest-of-node), each
/// channel's events sorted by `(rank, window)` so an active fault plan's
/// bounded reordering is realized in the stream itself.
///
/// Event *generation* (power modeling, RNG consumption, fault decisions)
/// is bit-identical to [`simulate_fleet`]; only the emission order
/// differs.  Feeding these events through `pmss-stream`'s reorder-buffered
/// ingest reproduces the batch observer exactly.
pub fn fleet_window_events(
    schedule: &Schedule,
    cfg: &FleetConfig,
    mut emit: impl FnMut(WindowEvent),
) {
    fleet_window_blocks(schedule, cfg, |b| b.iter().for_each(&mut emit));
}

/// [`fleet_window_events`] with a caller-owned cache (same contract as
/// [`simulate_fleet_with_cache`]).
pub fn fleet_window_events_with_cache(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: &FleetCache,
    mut emit: impl FnMut(WindowEvent),
) {
    fleet_window_blocks_impl(schedule, cfg, Some(cache), &mut |b: &ColumnBlock| {
        b.iter().for_each(&mut emit)
    });
}

/// Streams every telemetry channel of a fleet run to `emit` as one
/// [`ColumnBlock`] per channel, in canonical channel order (nodes
/// ascending; GPU slots `0..4`, then rest-of-node).  Within a block, rows
/// are in the channel's *arrival* order — ascending window without
/// faults, `(rank, window)`-sorted (duplicates adjacent) under an active
/// reordering plan — so [`fleet_window_events`] is exactly a flattening
/// of these blocks.
///
/// The block reference is a reusable scratch buffer: it is only valid for
/// the duration of the callback (clone it to retain).
pub fn fleet_window_blocks(
    schedule: &Schedule,
    cfg: &FleetConfig,
    mut emit: impl FnMut(&ColumnBlock),
) {
    if cfg.use_exec_cache {
        fleet_window_blocks_impl(schedule, cfg, Some(FleetCache::shared()), &mut emit);
    } else {
        fleet_window_blocks_impl(schedule, cfg, None, &mut emit);
    }
}

fn fleet_window_blocks_impl(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: Option<&FleetCache>,
    emit: &mut impl FnMut(&ColumnBlock),
) {
    let catalog = SkuCatalog::standard();
    let runtime = SkuRuntime::resolve(&catalog);
    let reordering = cfg
        .faults
        .as_ref()
        .is_some_and(|p| !p.is_noop() && p.reorder_depth > 0);
    let windows_hint = (schedule.duration_s / cfg.window_s).floor() as usize + 1;
    let mut block = ColumnBlock::with_capacity(0, 0, windows_hint);
    let mut lane = FaultLane::new();
    let mut dropout = Vec::new();

    for node in 0..schedule.per_node.len() {
        let sku = canonical_sku(&cfg.mix, &catalog, node);
        let rt = &runtime[sku as usize];
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((node as u64) << 20));
        for slot in 0..GPUS_PER_NODE {
            let segs = slot_segments(
                schedule,
                node,
                slot,
                sku,
                &rt.engine,
                cache,
                cfg,
                rt.idle_power_w,
            );
            let mut boost = BoostBudget::default();
            block.reset(node as u32, slot as u8);
            slot_window_events(
                &mut (),
                schedule,
                &segs,
                node as u32,
                slot as u8,
                sku,
                cfg,
                &mut boost,
                &mut rng,
                rt.idle_power_w,
                rt.boosted_w,
                &mut lane,
                &mut |ev| block.push(&ev),
            );
            if reordering {
                // Arrival order: stable-sort the channel by (rank, window),
                // keeping duplicate copies (equal keys) adjacent.
                block.sort_arrival();
            }
            emit(&block);
        }
        block.reset(node as u32, REST_SLOT);
        node_rest_events(
            &mut (),
            schedule,
            node as u32,
            sku,
            cfg,
            &rt.rest,
            &mut dropout,
            &mut |ev| block.push(&ev),
        );
        emit(&block);
    }
}

/// Materializes one run's full event stream in *delivery* order — every
/// event sorted by `(rank, node, slot, window)`, the order the pipeline's
/// stream/govern artifacts replay and the governor rounds on.  This is
/// the one shared constructor for that ordering (benches, artifacts, and
/// differential tests previously each carried their own copy).
pub fn delivery_ordered_events(schedule: &Schedule, cfg: &FleetConfig) -> Vec<WindowEvent> {
    let mut events = Vec::new();
    fleet_window_events(schedule, cfg, |ev| events.push(ev));
    events.sort_unstable_by(|a, b| {
        (a.rank, a.node, a.slot, a.window).cmp(&(b.rank, b.node, b.slot, b.window))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_sched::{catalog, generate, TraceParams};

    /// Collects every sample — test-only observer.
    #[derive(Default)]
    struct Collector {
        gpu: Vec<(u32, u8, f64, f64, Option<u64>)>,
        node: Vec<(u32, f64, f64)>,
    }

    impl FleetObserver for Collector {
        fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
            self.gpu
                .push((ctx.node, ctx.slot, t_s, power_w, ctx.job.map(|j| j.id)));
        }
        fn node_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, _span_s: f64, rest_w: f64) {
            self.node.push((ctx.node, t_s, rest_w));
        }
        fn merge(&mut self, mut other: Self) {
            self.gpu.append(&mut other.gpu);
            self.node.append(&mut other.node);
        }
    }

    fn tiny_schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 5,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn sample_counts_match_windows_and_slots() {
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        let windows = (s.duration_s / 15.0) as usize;
        assert_eq!(c.gpu.len(), 4 * GPUS_PER_NODE * windows);
        assert_eq!(c.node.len(), 4 * windows);
    }

    #[test]
    fn partial_tail_window_is_emitted() {
        // Duration not a multiple of the window: the 7-second tail gets its
        // own sample (it used to be dropped entirely).
        let s = generate(
            TraceParams {
                nodes: 2,
                duration_s: 2.0 * 3600.0 + 7.0,
                seed: 5,
                min_job_s: 900.0,
            },
            &catalog(),
        );
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        let windows = (s.duration_s / 15.0).floor() as usize + 1;
        assert_eq!(c.gpu.len(), 2 * GPUS_PER_NODE * windows);
        assert_eq!(c.node.len(), 2 * windows);
        // The tail sample is stamped at the center of its covered span.
        let tail_t = 2.0 * 3600.0 + 3.5;
        assert!(c
            .gpu
            .iter()
            .any(|&(_, _, t, _, _)| (t - tail_t).abs() < 1e-9));
    }

    #[test]
    fn partial_tail_mean_covers_the_actual_span() {
        // An all-idle slot must read exactly idle power in *every* window,
        // including the 10-second tail: the tail mean is normalized by the
        // covered span, not the nominal window length.
        let s = pmss_sched::Schedule {
            jobs: Vec::new(),
            per_node: vec![Vec::new()],
            duration_s: 100.0,
        };
        let cfg = FleetConfig {
            noise_sd_w: 0.0,
            ..Default::default()
        };
        let c: Collector = simulate_fleet(&s, &cfg);
        let idle_w = pmss_gpu::Engine::default()
            .power_model()
            .demand_w(pmss_gpu::Utilization::idle(), pmss_gpu::Freq::MAX);
        assert_eq!(c.gpu.len(), GPUS_PER_NODE * 7); // 6 full windows + tail
        for &(_, _, t, w, job) in &c.gpu {
            assert!((w - idle_w).abs() < 1e-9, "t {t}: {w} vs idle {idle_w}");
            assert_eq!(job, None);
        }
        // Total integrated energy is conserved: sum of mean * span equals
        // idle power over the whole 100 s horizon, per slot.
        let slot0: f64 = c
            .gpu
            .iter()
            .filter(|x| x.1 == 0)
            .map(|x| {
                let span = if x.2 > 90.0 { 10.0 } else { 15.0 };
                x.3 * span
            })
            .sum();
        assert!((slot0 - idle_w * 100.0).abs() < 1e-6, "energy {slot0}");
    }

    #[test]
    fn degenerate_phases_are_billed_at_idle_power() {
        // A job shorter than the phase-synthesis resolution (<= 1 s)
        // produces no phases; its window must still be covered (at idle
        // power, attributed to the job) instead of integrating as 0 W.
        let job = pmss_sched::Job {
            id: 7,
            domain: 0,
            project_id: "TST000".into(),
            num_nodes: 1,
            size_class: pmss_sched::JobSizeClass::E,
            begin_s: 30.0,
            end_s: 30.9,
            app_class: pmss_workloads::AppClass::Mixed,
            seed: 11,
        };
        let s = pmss_sched::Schedule {
            per_node: vec![vec![pmss_sched::Placement {
                job: 0,
                begin_s: job.begin_s,
                end_s: job.end_s,
            }]],
            jobs: vec![job],
            duration_s: 60.0,
        };
        let cfg = FleetConfig {
            noise_sd_w: 0.0,
            ..Default::default()
        };
        let c: Collector = simulate_fleet(&s, &cfg);
        let idle_w = pmss_gpu::Engine::default()
            .power_model()
            .demand_w(pmss_gpu::Utilization::idle(), pmss_gpu::Freq::MAX);
        // Every sample reads exactly idle power: the 0.9 s job span is
        // covered by the degenerate-phase idle segment, not left as a gap.
        for &(_, _, t, w, _) in &c.gpu {
            assert!((w - idle_w).abs() < 1e-9, "t {t}: {w} vs idle {idle_w}");
        }
    }

    #[test]
    fn samples_cover_physical_power_range() {
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        for &(_, _, _, w, _) in &c.gpu {
            assert!((0.0..=650.0).contains(&w), "sample {w} W");
        }
        // Busy samples exist well above idle.
        assert!(c.gpu.iter().any(|&(_, _, _, w, _)| w > 150.0));
    }

    #[test]
    fn job_attribution_matches_schedule() {
        // Window attribution is by the segment covering the window center,
        // so every sample — attributed or idle — must agree exactly with
        // the placement (if any) containing its timestamp.
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        for &(node, _, t, _, job_id) in c.gpu.iter() {
            let expect = s.per_node[node as usize]
                .iter()
                .find(|p| p.begin_s <= t && t < p.end_s)
                .map(|p| s.jobs[p.job].id);
            assert_eq!(job_id, expect, "node {node} t {t}");
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = tiny_schedule();
        let a: Collector = simulate_fleet(&s, &FleetConfig::default());
        let b: Collector = simulate_fleet(&s, &FleetConfig::default());
        let sum_a: f64 = a.gpu.iter().map(|x| x.3).sum();
        let sum_b: f64 = b.gpu.iter().map(|x| x.3).sum();
        assert_eq!(sum_a, sum_b);
    }

    #[test]
    fn frequency_cap_lowers_fleet_mean_power() {
        let s = tiny_schedule();
        let base: Collector = simulate_fleet(&s, &FleetConfig::default());
        let capped: Collector = simulate_fleet(
            &s,
            &FleetConfig {
                settings: GpuSettings::freq_capped(900.0),
                ..Default::default()
            },
        );
        let mean = |c: &Collector| c.gpu.iter().map(|x| x.3).sum::<f64>() / c.gpu.len() as f64;
        assert!(
            mean(&capped) < mean(&base) - 10.0,
            "capped {} vs base {}",
            mean(&capped),
            mean(&base)
        );
    }

    #[test]
    fn idle_tail_reads_idle_power() {
        // A schedule with a single short job leaves a long idle tail.
        let s = generate(
            TraceParams {
                nodes: 1,
                duration_s: 7200.0,
                seed: 3,
                min_job_s: 900.0,
            },
            &catalog(),
        );
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        let unattributed: Vec<f64> = c
            .gpu
            .iter()
            .filter(|x| x.4.is_none())
            .map(|x| x.3)
            .collect();
        if !unattributed.is_empty() {
            let m = unattributed.iter().sum::<f64>() / unattributed.len() as f64;
            assert!((85.0..95.0).contains(&m), "idle mean {m}");
        }
    }

    #[test]
    fn cached_simulation_is_bit_identical_to_uncached() {
        let s = tiny_schedule();
        let cached: Collector = simulate_fleet(&s, &FleetConfig::default());
        let uncached: Collector = simulate_fleet(
            &s,
            &FleetConfig {
                use_exec_cache: false,
                ..Default::default()
            },
        );
        // Exact-bit cache keys make the memoized path indistinguishable
        // from fresh execution: every sample matches bit for bit.
        assert_eq!(cached.gpu.len(), uncached.gpu.len());
        assert_eq!(cached.gpu, uncached.gpu);
        assert_eq!(cached.node, uncached.node);
    }

    #[test]
    fn metered_run_is_bit_identical_and_counts_samples() {
        let s = tiny_schedule();
        let cfg = FleetConfig::default();
        let plain: Collector = simulate_fleet(&s, &cfg);
        let cache = FleetCache::new();
        let (metered, stats): (Collector, FleetRunStats) = simulate_fleet_metered(&s, &cfg, &cache);
        // The sink only counts: observer output matches bit for bit.
        assert_eq!(plain.gpu, metered.gpu);
        assert_eq!(plain.node, metered.node);
        // Tallies agree with what the collector saw.
        assert_eq!(stats.gpu_samples as usize, metered.gpu.len());
        assert_eq!(stats.node_samples as usize, metered.node.len());
        let attributed = metered.gpu.iter().filter(|x| x.4.is_some()).count();
        assert_eq!(stats.attributed_samples as usize, attributed);
        assert!(stats.attributed_samples > 0);
        assert!(stats.attributed_samples < stats.gpu_samples);
    }

    #[test]
    fn metered_run_tallies_boost_under_ppt_throttling() {
        // Compute-heavy work pins devices at the firmware limit, which is
        // exactly when boost bursts engage; a 4-node, 4-hour schedule has
        // plenty of such windows.
        let s = tiny_schedule();
        let cache = FleetCache::new();
        let (_ledger, stats): (Collector, FleetRunStats) =
            simulate_fleet_metered(&s, &FleetConfig::default(), &cache);
        assert!(stats.boost_engagements > 0, "{stats:?}");
        assert!(stats.boost_granted_s > 0.0);
        // Engagements spend at most 10 s each.
        assert!(stats.boost_granted_s <= 10.0 * stats.boost_engagements as f64);

        // Merge discipline: two halves fold to the whole.
        let mut a = stats;
        let before = a.gpu_samples;
        a.merge(&stats);
        assert_eq!(a.gpu_samples, 2 * before);
        assert_eq!(a.boost_engagements, 2 * stats.boost_engagements);
    }

    #[test]
    fn shared_cache_is_warm_on_repeat_runs() {
        // Template keys are seeded per (job, node, slot), so within one
        // cold run every slot template misses exactly once; any repeated
        // simulation of the same schedule — different observers, benchmark
        // iterations, what-if sweeps — then runs entirely warm: every
        // template hits and the engine executes nothing at all.
        let s = tiny_schedule();
        let cache = FleetCache::new();
        let cfg = FleetConfig::default();
        let _: Collector = simulate_fleet_with_cache(&s, &cfg, &cache);
        let cold_tmpl = cache.template_stats();
        let cold_exec = cache.exec().stats();
        assert_eq!(cold_tmpl.misses as usize, cache.template_len());
        assert!(cold_tmpl.misses > 0);
        assert_eq!(cold_exec.misses as usize, cache.exec().len());
        assert!(cold_exec.misses > 0);

        let _: Collector = simulate_fleet_with_cache(&s, &cfg, &cache);
        let warm_tmpl = cache.template_stats();
        assert_eq!(warm_tmpl.misses, cold_tmpl.misses, "no new synthesis");
        assert_eq!(warm_tmpl.hits, cold_tmpl.hits + cold_tmpl.lookups());
        assert_eq!(
            cache.exec().stats(),
            cold_exec,
            "warm templates never reach the engine"
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use pmss_sched::{catalog, generate, TraceParams};

    /// Collects every delivery, gaps included.
    #[derive(Default)]
    struct FaultCollector {
        gpu: Vec<(u32, u8, f64, f64, Option<u64>)>,
        gaps: Vec<(u32, u8, f64, f64, GapFill)>,
        node: Vec<(u32, f64, f64)>,
    }

    impl FleetObserver for FaultCollector {
        fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
            self.gpu
                .push((ctx.node, ctx.slot, t_s, power_w, ctx.job.map(|j| j.id)));
        }
        fn gpu_gap(&mut self, ctx: &SampleCtx<'_>, t_s: f64, span_s: f64, fill: GapFill) {
            self.gaps.push((ctx.node, ctx.slot, t_s, span_s, fill));
        }
        fn node_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, _span_s: f64, rest_w: f64) {
            self.node.push((ctx.node, t_s, rest_w));
        }
        fn merge(&mut self, mut other: Self) {
            self.gpu.append(&mut other.gpu);
            self.gaps.append(&mut other.gaps);
            self.node.append(&mut other.node);
        }
    }

    fn schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 5,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    fn with_plan(plan: FaultPlan) -> FleetConfig {
        FleetConfig {
            faults: Some(plan),
            ..Default::default()
        }
    }

    #[test]
    fn noop_plan_is_bit_identical_to_no_plan() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let noop: FaultCollector = simulate_fleet(&s, &with_plan(FaultPlan::none()));
        assert_eq!(clean.gpu, noop.gpu);
        assert_eq!(clean.node, noop.node);
        assert!(noop.gaps.is_empty());
    }

    #[test]
    fn drops_under_exclude_remove_samples_and_report_gaps() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            drop_prob: 0.05,
            ..FaultPlan::none()
        };
        let cache = FleetCache::new();
        let (faulted, stats): (FaultCollector, FleetRunStats) =
            simulate_fleet_metered(&s, &with_plan(plan), &cache);
        assert!(faulted.gpu.len() < clean.gpu.len());
        assert_eq!(faulted.gpu.len() + faulted.gaps.len(), clean.gpu.len());
        assert_eq!(stats.faults_dropped as usize, faulted.gaps.len());
        assert_eq!(stats.gaps_excluded, stats.faults_dropped);
        assert!(faulted
            .gaps
            .iter()
            .all(|g| g.4 == GapFill::Excluded && g.3 > 0.0));
        // Roughly 5 % of samples drop.
        let rate = faulted.gaps.len() as f64 / clean.gpu.len() as f64;
        assert!((0.03..0.07).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn interpolation_holds_the_previous_delivered_value() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            drop_prob: 0.05,
            gap_policy: GapPolicy::Interpolate,
            ..FaultPlan::none()
        };
        let faulted: FaultCollector = simulate_fleet(&s, &with_plan(plan.clone()));
        assert_eq!(faulted.gpu.len() + faulted.gaps.len(), clean.gpu.len());
        for &(node, slot, t, _span, fill) in &faulted.gaps {
            let GapFill::Interpolated(held) = fill else {
                panic!("wrong fill {fill:?}");
            };
            // The held value is the last clean sample of the slot before
            // the gap (or idle power for a leading gap).
            let prev = clean.gpu.iter().rfind(|x| {
                x.0 == node
                    && x.1 == slot
                    && x.2 < t
                    && !plan.drops(node, slot, (x.2 / 15.0) as u64)
            });
            if let Some(&(_, _, _, w, _)) = prev {
                assert_eq!(held, w, "node {node} slot {slot} t {t}");
            }
        }
    }

    #[test]
    fn attribute_idle_bills_gaps_as_unattributed_idle() {
        let s = schedule();
        let plan = FaultPlan {
            seed: 9,
            drop_prob: 0.05,
            gap_policy: GapPolicy::AttributeIdle,
            ..FaultPlan::none()
        };
        let faulted: FaultCollector = simulate_fleet(&s, &with_plan(plan));
        let idle_w = pmss_gpu::Engine::default()
            .power_model()
            .demand_w(pmss_gpu::Utilization::idle(), pmss_gpu::Freq::MAX);
        assert!(!faulted.gaps.is_empty());
        for &(.., fill) in &faulted.gaps {
            assert_eq!(fill, GapFill::Idle(idle_w));
        }
    }

    #[test]
    fn duplicates_dedup_back_to_the_clean_stream() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            dup_prob: 0.05,
            ..FaultPlan::none()
        };
        let faulted: FaultCollector = simulate_fleet(&s, &with_plan(plan));
        assert!(faulted.gpu.len() > clean.gpu.len());
        let mut dedup = faulted.gpu.clone();
        dedup.dedup();
        let mut sorted_clean = clean.gpu.clone();
        sorted_clean.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dedup.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dedup, sorted_clean);
    }

    #[test]
    fn reordering_stays_within_the_buffer_bound() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            reorder_depth: 4,
            ..FaultPlan::none()
        };
        let cache = FleetCache::new();
        let (faulted, stats): (FaultCollector, FleetRunStats) =
            simulate_fleet_metered(&s, &with_plan(plan), &cache);
        assert_eq!(faulted.gpu.len(), clean.gpu.len());
        assert!(stats.faults_reordered > 0, "{stats:?}");
        // Same multiset of samples: sorting both recovers equality.
        let mut a = faulted.gpu.clone();
        let mut b = clean.gpu.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn node_dropout_silences_gpu_and_node_channels_together() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            dropout_prob: 0.05,
            dropout_windows: 8,
            ..FaultPlan::none()
        };
        let cache = FleetCache::new();
        let (faulted, stats): (FaultCollector, FleetRunStats) =
            simulate_fleet_metered(&s, &with_plan(plan.clone()), &cache);
        assert!(stats.faults_dropout_windows > 0, "{stats:?}");
        assert_eq!(
            faulted.node.len() as u64 + stats.faults_dropout_windows,
            clean.node.len() as u64
        );
        // Every dropped-out window loses all four GPU slots.
        assert_eq!(
            stats.faults_dropped,
            stats.faults_dropout_windows * GPUS_PER_NODE as u64
        );
    }

    #[test]
    fn clock_skew_shifts_whole_nodes_by_a_bounded_offset() {
        let s = schedule();
        let clean: FaultCollector = simulate_fleet(&s, &FleetConfig::default());
        let plan = FaultPlan {
            seed: 9,
            clock_skew_max_s: 3.0,
            ..FaultPlan::none()
        };
        let faulted: FaultCollector = simulate_fleet(&s, &with_plan(plan.clone()));
        assert_eq!(faulted.gpu.len(), clean.gpu.len());
        for (f, c) in faulted.gpu.iter().zip(&clean.gpu) {
            let skew = plan.clock_skew_s(c.0);
            assert!(skew.abs() <= 3.0);
            assert_eq!(f.2, c.2 + skew, "node {}", c.0);
            assert_eq!(f.3, c.3);
        }
    }

    #[test]
    fn glitches_inject_nans_and_spikes() {
        let s = schedule();
        let plan = FaultPlan {
            seed: 9,
            nan_prob: 0.01,
            spike_prob: 0.01,
            spike_w: 300.0,
            ..FaultPlan::none()
        };
        let cache = FleetCache::new();
        let (faulted, stats): (FaultCollector, FleetRunStats) =
            simulate_fleet_metered(&s, &with_plan(plan), &cache);
        let nans = faulted.gpu.iter().filter(|x| x.3.is_nan()).count();
        let spikes = faulted.gpu.iter().filter(|x| x.3 > 700.0).count();
        assert!(nans > 0, "no NaN glitches");
        assert!(spikes > 0, "no spikes");
        assert!(stats.faults_glitched as usize >= nans + spikes);
    }

    #[test]
    fn frontier_typical_preset_runs_end_to_end() {
        let s = schedule();
        let plan = FaultPlan::preset("frontier-typical").unwrap();
        let cache = FleetCache::new();
        let (faulted, stats): (FaultCollector, FleetRunStats) =
            simulate_fleet_metered(&s, &with_plan(plan), &cache);
        assert!(!faulted.gpu.is_empty());
        assert!(stats.faults_dropped > 0);
        assert!(stats.gpu_samples > 0);
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use crate::observers::SystemHistogram;
    use pmss_sched::{catalog, generate, TraceParams};

    #[test]
    fn per_domain_settings_cap_only_the_selected_domains() {
        let cat = catalog();
        let schedule = generate(
            TraceParams {
                nodes: 6,
                duration_s: 8.0 * 3600.0,
                seed: 23,
                min_job_s: 900.0,
            },
            &cat,
        );

        // Cap only the compute-heavy CPH domain (index 0).
        let mut domain_settings = vec![None; cat.len()];
        domain_settings[0] = Some(GpuSettings::freq_capped(900.0));
        let cfg = FleetConfig {
            domain_settings,
            ..Default::default()
        };

        /// Mean power per domain.
        #[derive(Default)]
        struct PerDomainMean {
            sums: Vec<(f64, u64)>,
        }
        impl FleetObserver for PerDomainMean {
            fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, _t: f64, w: f64) {
                if let Some(j) = ctx.job {
                    if self.sums.len() <= j.domain {
                        self.sums.resize(j.domain + 1, (0.0, 0));
                    }
                    self.sums[j.domain].0 += w;
                    self.sums[j.domain].1 += 1;
                }
            }
            fn merge(&mut self, other: Self) {
                if self.sums.len() < other.sums.len() {
                    self.sums.resize(other.sums.len(), (0.0, 0));
                }
                for (a, b) in self.sums.iter_mut().zip(&other.sums) {
                    a.0 += b.0;
                    a.1 += b.1;
                }
            }
        }

        let base: PerDomainMean = simulate_fleet(&schedule, &FleetConfig::default());
        let selective: PerDomainMean = simulate_fleet(&schedule, &cfg);
        let mean = |p: &PerDomainMean, d: usize| p.sums[d].0 / p.sums[d].1 as f64;

        // The capped domain's mean power drops materially...
        assert!(
            mean(&selective, 0) < mean(&base, 0) - 30.0,
            "capped domain: {} vs {}",
            mean(&selective, 0),
            mean(&base, 0)
        );
        // ... while an uncapped domain is untouched (same seeds, same
        // phases, same settings -> identical power).
        for d in 1..base.sums.len().min(selective.sums.len()) {
            if base.sums[d].1 > 0 {
                assert!(
                    (mean(&selective, d) - mean(&base, d)).abs() < 1.0,
                    "domain {d} should be unaffected"
                );
            }
        }

        // Sanity: the selective run still produces a full histogram.
        let h: SystemHistogram = simulate_fleet(&schedule, &cfg);
        assert!(h.hist.total() > 0);
    }
}
