//! Fleet telemetry simulation: executes a job schedule on a fleet of
//! modeled nodes and streams 15-second power samples to an observer.
//!
//! This is the stand-in for three months of Frontier out-of-band telemetry
//! (paper Table II a): per node, per GPU slot, one mean-power sample every
//! 15 seconds, attributable to the job occupying the node.  Simulation is
//! rayon-parallel across nodes; observers are fold/reduce-merged, so no
//! locking is involved.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use pmss_gpu::consts::GPUS_PER_NODE;
use pmss_gpu::trace::standard_normal;
use pmss_gpu::{BoostBudget, Engine, GpuSettings, NodeRestModel};
use pmss_sched::{Job, Schedule};
use pmss_workloads::phases::synthesize_app;
use pmss_workloads::AppClass;

/// Fleet-simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Telemetry window, in seconds (the paper: 15 s).
    pub window_s: f64,
    /// Gaussian noise on window means, standard deviation in watts
    /// (2-second sensor noise shrinks by sqrt(7.5) in the mean).
    pub noise_sd_w: f64,
    /// Power-management settings applied fleet-wide during the simulation.
    pub settings: GpuSettings,
    /// Per-domain setting overrides (indexed by catalog position): the
    /// selective-capping deployments of Table VI / the what-if optimizer.
    /// Jobs of domain `d` use `domain_settings[d]` when present; everything
    /// else (including idle time) uses `settings`.
    pub domain_settings: Vec<Option<GpuSettings>>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            window_s: 15.0,
            noise_sd_w: 1.5,
            settings: GpuSettings::uncapped(),
            domain_settings: Vec::new(),
            seed: 1,
        }
    }
}

impl FleetConfig {
    /// The settings in force for a job of `domain`.
    pub fn settings_for(&self, domain: usize) -> GpuSettings {
        self.domain_settings
            .get(domain)
            .copied()
            .flatten()
            .unwrap_or(self.settings)
    }
}

/// Attribution context of one telemetry sample.
#[derive(Debug, Clone, Copy)]
pub struct SampleCtx<'a> {
    /// Node index.
    pub node: u32,
    /// GPU slot within the node (0–3).
    pub slot: u8,
    /// Job occupying the node at the sample time, if any.
    pub job: Option<&'a Job>,
}

/// Consumer of fleet telemetry.  Implementations accumulate whatever view
/// they need (histograms, energy ledgers, joined series); `merge` combines
/// per-node partials after the parallel fold.
pub trait FleetObserver: Send + Sized {
    /// One GPU power sample (window mean), stamped at the window center.
    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64);
    /// One rest-of-node (CPU package + board) power sample per window.
    fn node_sample(&mut self, _node: u32, _t_s: f64, _rest_w: f64) {}
    /// Folds another observer's state into this one.
    fn merge(&mut self, other: Self);
}

/// Host CPU utilization while a workload class runs (drives the
/// rest-of-node power for Fig. 2 b).
fn cpu_util_of(class: AppClass) -> f64 {
    match class {
        AppClass::ComputeIntensive => 0.25,
        AppClass::MemoryIntensive => 0.30,
        AppClass::LatencyBound => 0.55,
        AppClass::Mixed => 0.35,
    }
}

/// One constant-power stretch of a GPU slot's timeline.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start_s: f64,
    end_s: f64,
    power_w: f64,
    job: Option<usize>,
    /// True when the device is pinned at its firmware limit and may boost.
    boostable: bool,
}

/// Builds the segment timeline of one GPU slot under `settings`.
fn slot_segments(
    schedule: &Schedule,
    node: usize,
    slot: usize,
    engine: &Engine,
    cfg: &FleetConfig,
    idle_power_w: f64,
) -> Vec<Segment> {
    let mut segs = Vec::new();
    let mut t = 0.0f64;

    for placement in &schedule.per_node[node] {
        if placement.begin_s > t {
            segs.push(Segment {
                start_s: t,
                end_s: placement.begin_s,
                power_w: idle_power_w,
                job: None,
                boostable: false,
            });
        }
        let job = &schedule.jobs[placement.job];
        let settings = cfg.settings_for(job.domain);
        let mut rng =
            StdRng::seed_from_u64(job.seed ^ ((node as u64) << 8) ^ slot as u64);
        let phases = synthesize_app(job.app_class, job.duration_s(), &mut rng);

        // Cycle phases until the job window is filled (under caps the same
        // wall window holds less completed work).
        let mut cursor = placement.begin_s;
        'fill: loop {
            let cursor_at_cycle_start = cursor;
            for phase in &phases {
                let ex = engine.execute(phase, settings);
                for (dur, power, boostable) in [
                    (ex.perf.roofline_s, ex.busy_power_w, ex.ppt_throttled),
                    (ex.perf.serial_s, ex.serial_power_w, false),
                    (ex.perf.stall_s, ex.idle_power_w, false),
                ] {
                    if dur <= 0.0 {
                        continue;
                    }
                    let end = (cursor + dur).min(placement.end_s);
                    if end > cursor {
                        segs.push(Segment {
                            start_s: cursor,
                            end_s: end,
                            power_w: power,
                            job: Some(placement.job),
                            boostable,
                        });
                    }
                    cursor = end;
                    if cursor >= placement.end_s {
                        break 'fill;
                    }
                }
            }
            if phases.is_empty() || cursor <= cursor_at_cycle_start {
                // Degenerate phases cannot fill the window; leave the rest
                // of the job window at the last cursor position (it will be
                // covered by the next idle segment).
                break;
            }
        }
        t = placement.end_s;
    }

    if t < schedule.duration_s {
        segs.push(Segment {
            start_s: t,
            end_s: schedule.duration_s,
            power_w: idle_power_w,
            job: None,
            boostable: false,
        });
    }
    segs
}

/// Walks `segments` in `window_s` windows, emitting mean power per window
/// with boost excursions and sensor noise applied.
#[allow(clippy::too_many_arguments)]
fn emit_windows<O: FleetObserver>(
    observer: &mut O,
    schedule: &Schedule,
    segments: &[Segment],
    node: u32,
    slot: u8,
    cfg: &FleetConfig,
    boost: &mut BoostBudget,
    rng: &mut StdRng,
) {
    let n_windows = (schedule.duration_s / cfg.window_s).floor() as usize;
    let mut seg_idx = 0usize;

    for w in 0..n_windows {
        let w_start = w as f64 * cfg.window_s;
        let w_end = w_start + cfg.window_s;

        // Advance to the first segment overlapping this window.
        while seg_idx + 1 < segments.len() && segments[seg_idx].end_s <= w_start {
            seg_idx += 1;
        }

        let mut energy = 0.0f64;
        let mut attributed: Option<usize> = None;
        let mut i = seg_idx;
        while i < segments.len() && segments[i].start_s < w_end {
            let s = &segments[i];
            let overlap = (s.end_s.min(w_end) - s.start_s.max(w_start)).max(0.0);
            if overlap > 0.0 {
                let mut p = s.power_w;
                if s.boostable {
                    // The device boosts in bursts: it waits for enough
                    // thermal headroom to sustain a multi-second excursion,
                    // then spends it at once.  While pinned at the firmware
                    // limit (below the TDP) headroom still recovers slowly.
                    const BURST_MIN_S: f64 = 8.0;
                    if boost.stored_s() >= BURST_MIN_S {
                        let granted = boost.spend(overlap.min(10.0));
                        let boosted = pmss_gpu::consts::GPU_TDP_W
                            + 0.5 * (pmss_gpu::consts::GPU_BOOST_W
                                - pmss_gpu::consts::GPU_TDP_W);
                        p = (granted * boosted + (overlap - granted) * s.power_w) / overlap;
                    } else {
                        boost.recharge(overlap);
                    }
                } else {
                    boost.recharge(overlap);
                }
                energy += p * overlap;
                if attributed.is_none() {
                    attributed = s.job;
                }
            }
            i += 1;
        }

        let mean = energy / cfg.window_s + cfg.noise_sd_w * standard_normal(rng);
        let ctx = SampleCtx {
            node,
            slot,
            job: attributed.map(|j| &schedule.jobs[j]),
        };
        observer.gpu_sample(&ctx, w_start + 0.5 * cfg.window_s, mean.max(0.0));
    }
}

/// Emits the per-window rest-of-node power samples.
fn emit_node_rest<O: FleetObserver>(
    observer: &mut O,
    schedule: &Schedule,
    node: u32,
    cfg: &FleetConfig,
    rest: &NodeRestModel,
) {
    let n_windows = (schedule.duration_s / cfg.window_s).floor() as usize;
    let placements = &schedule.per_node[node as usize];
    let mut p_idx = 0usize;

    for w in 0..n_windows {
        let t = (w as f64 + 0.5) * cfg.window_s;
        while p_idx < placements.len() && placements[p_idx].end_s <= t {
            p_idx += 1;
        }
        let util = placements
            .get(p_idx)
            .filter(|p| p.begin_s <= t)
            .map(|p| cpu_util_of(schedule.jobs[p.job].app_class))
            .unwrap_or(0.03);
        observer.node_sample(node, t, rest.power_w(util));
    }
}

/// Runs the fleet simulation, returning the merged observer.
pub fn simulate_fleet<O>(schedule: &Schedule, cfg: &FleetConfig) -> O
where
    O: FleetObserver + Default,
{
    let engine = Engine::default();
    let rest = NodeRestModel::default();
    let idle_power_w = engine
        .power_model()
        .demand_w(pmss_gpu::Utilization::idle(), pmss_gpu::Freq::MAX);

    (0..schedule.per_node.len())
        .into_par_iter()
        .fold(O::default, |mut obs, node| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((node as u64) << 20));
            for slot in 0..GPUS_PER_NODE {
                let segs = slot_segments(schedule, node, slot, &engine, cfg, idle_power_w);
                let mut boost = BoostBudget::default();
                emit_windows(
                    &mut obs,
                    schedule,
                    &segs,
                    node as u32,
                    slot as u8,
                    cfg,
                    &mut boost,
                    &mut rng,
                );
            }
            emit_node_rest(&mut obs, schedule, node as u32, cfg, &rest);
            obs
        })
        .reduce(O::default, |mut a, b| {
            a.merge(b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_sched::{catalog, generate, TraceParams};

    /// Collects every sample — test-only observer.
    #[derive(Default)]
    struct Collector {
        gpu: Vec<(u32, u8, f64, f64, Option<u64>)>,
        node: Vec<(u32, f64, f64)>,
    }

    impl FleetObserver for Collector {
        fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
            self.gpu
                .push((ctx.node, ctx.slot, t_s, power_w, ctx.job.map(|j| j.id)));
        }
        fn node_sample(&mut self, node: u32, t_s: f64, rest_w: f64) {
            self.node.push((node, t_s, rest_w));
        }
        fn merge(&mut self, mut other: Self) {
            self.gpu.append(&mut other.gpu);
            self.node.append(&mut other.node);
        }
    }

    fn tiny_schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 5,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn sample_counts_match_windows_and_slots() {
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        let windows = (s.duration_s / 15.0) as usize;
        assert_eq!(c.gpu.len(), 4 * GPUS_PER_NODE * windows);
        assert_eq!(c.node.len(), 4 * windows);
    }

    #[test]
    fn samples_cover_physical_power_range() {
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        for &(_, _, _, w, _) in &c.gpu {
            assert!((0.0..=650.0).contains(&w), "sample {w} W");
        }
        // Busy samples exist well above idle.
        assert!(c.gpu.iter().any(|&(_, _, _, w, _)| w > 150.0));
    }

    #[test]
    fn job_attribution_matches_schedule() {
        let s = tiny_schedule();
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        for &(node, _, t, _, job_id) in c.gpu.iter().take(5000) {
            let expect = s.per_node[node as usize]
                .iter()
                .find(|p| p.begin_s <= t && t < p.end_s)
                .map(|p| s.jobs[p.job].id);
            if let (Some(a), Some(b)) = (job_id, expect) {
                assert_eq!(a, b, "node {node} t {t}");
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = tiny_schedule();
        let a: Collector = simulate_fleet(&s, &FleetConfig::default());
        let b: Collector = simulate_fleet(&s, &FleetConfig::default());
        let sum_a: f64 = a.gpu.iter().map(|x| x.3).sum();
        let sum_b: f64 = b.gpu.iter().map(|x| x.3).sum();
        assert_eq!(sum_a, sum_b);
    }

    #[test]
    fn frequency_cap_lowers_fleet_mean_power() {
        let s = tiny_schedule();
        let base: Collector = simulate_fleet(&s, &FleetConfig::default());
        let capped: Collector = simulate_fleet(
            &s,
            &FleetConfig {
                settings: GpuSettings::freq_capped(900.0),
                ..Default::default()
            },
        );
        let mean = |c: &Collector| {
            c.gpu.iter().map(|x| x.3).sum::<f64>() / c.gpu.len() as f64
        };
        assert!(
            mean(&capped) < mean(&base) - 10.0,
            "capped {} vs base {}",
            mean(&capped),
            mean(&base)
        );
    }

    #[test]
    fn idle_tail_reads_idle_power() {
        // A schedule with a single short job leaves a long idle tail.
        let s = generate(
            TraceParams {
                nodes: 1,
                duration_s: 7200.0,
                seed: 3,
                min_job_s: 900.0,
            },
            &catalog(),
        );
        let c: Collector = simulate_fleet(&s, &FleetConfig::default());
        let unattributed: Vec<f64> = c
            .gpu
            .iter()
            .filter(|x| x.4.is_none())
            .map(|x| x.3)
            .collect();
        if !unattributed.is_empty() {
            let m = unattributed.iter().sum::<f64>() / unattributed.len() as f64;
            assert!((85.0..95.0).contains(&m), "idle mean {m}");
        }
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use crate::observers::SystemHistogram;
    use pmss_sched::{catalog, generate, TraceParams};

    #[test]
    fn per_domain_settings_cap_only_the_selected_domains() {
        let cat = catalog();
        let schedule = generate(
            TraceParams {
                nodes: 6,
                duration_s: 8.0 * 3600.0,
                seed: 23,
                min_job_s: 900.0,
            },
            &cat,
        );

        // Cap only the compute-heavy CPH domain (index 0).
        let mut domain_settings = vec![None; cat.len()];
        domain_settings[0] = Some(GpuSettings::freq_capped(900.0));
        let cfg = FleetConfig {
            domain_settings,
            ..Default::default()
        };

        /// Mean power per domain.
        #[derive(Default)]
        struct PerDomainMean {
            sums: Vec<(f64, u64)>,
        }
        impl FleetObserver for PerDomainMean {
            fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, _t: f64, w: f64) {
                if let Some(j) = ctx.job {
                    if self.sums.len() <= j.domain {
                        self.sums.resize(j.domain + 1, (0.0, 0));
                    }
                    self.sums[j.domain].0 += w;
                    self.sums[j.domain].1 += 1;
                }
            }
            fn merge(&mut self, other: Self) {
                if self.sums.len() < other.sums.len() {
                    self.sums.resize(other.sums.len(), (0.0, 0));
                }
                for (a, b) in self.sums.iter_mut().zip(&other.sums) {
                    a.0 += b.0;
                    a.1 += b.1;
                }
            }
        }

        let base: PerDomainMean = simulate_fleet(&schedule, &FleetConfig::default());
        let selective: PerDomainMean = simulate_fleet(&schedule, &cfg);
        let mean = |p: &PerDomainMean, d: usize| p.sums[d].0 / p.sums[d].1 as f64;

        // The capped domain's mean power drops materially...
        assert!(
            mean(&selective, 0) < mean(&base, 0) - 30.0,
            "capped domain: {} vs {}",
            mean(&selective, 0),
            mean(&base, 0)
        );
        // ... while an uncapped domain is untouched (same seeds, same
        // phases, same settings -> identical power).
        for d in 1..base.sums.len().min(selective.sums.len()) {
            if base.sums[d].1 > 0 {
                assert!(
                    (mean(&selective, d) - mean(&base, d)).abs() < 1.0,
                    "domain {d} should be unaffected"
                );
            }
        }

        // Sanity: the selective run still produces a full histogram.
        let h: SystemHistogram = simulate_fleet(&schedule, &cfg);
        assert!(h.hist.total() > 0);
    }
}
