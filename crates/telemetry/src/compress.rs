//! Power-series codec — moved to [`pmss_columns::codec`], where it also
//! backs the codec-resident block format ([`pmss_columns::EncodedBlock`]).
//! Re-exported here so historical `pmss_telemetry::compress` paths keep
//! working.

pub use pmss_columns::codec::{compression_ratio, decode, encode, CodecConfig};
