//! Ready-made fleet observers: the system-wide power distribution (Fig. 8),
//! per-science-domain distributions (Fig. 9), and the GPU-vs-CPU energy
//! split (Fig. 2 b).

use crate::fleet::{FleetObserver, GapFill, SampleCtx};
use crate::hist::PowerHistogram;

/// System-wide GPU power distribution — the paper's Fig. 8.
#[derive(Debug, Clone)]
pub struct SystemHistogram {
    /// The distribution of all 15 s GPU power samples.
    pub hist: PowerHistogram,
}

impl Default for SystemHistogram {
    fn default() -> Self {
        SystemHistogram {
            hist: PowerHistogram::gpu_default(),
        }
    }
}

impl FleetObserver for SystemHistogram {
    fn gpu_sample(&mut self, _ctx: &SampleCtx<'_>, _t_s: f64, power_w: f64) {
        self.hist.record(power_w);
    }
    fn merge(&mut self, other: Self) {
        self.hist.merge(&other.hist);
    }
}

/// Per-science-domain GPU power distributions — the paper's Fig. 9.
/// Samples outside any job are dropped (the paper joins telemetry with the
/// scheduler log, so only job samples carry a domain).
#[derive(Debug, Clone, Default)]
pub struct DomainHistograms {
    hists: Vec<PowerHistogram>,
}

impl DomainHistograms {
    fn ensure(&mut self, domain: usize) {
        while self.hists.len() <= domain {
            self.hists.push(PowerHistogram::gpu_default());
        }
    }

    /// Histogram of a domain, if any samples were attributed to it.
    pub fn domain(&self, domain: usize) -> Option<&PowerHistogram> {
        self.hists.get(domain).filter(|h| h.total() > 0)
    }

    /// Number of domain slots seen.
    pub fn len(&self) -> usize {
        self.hists.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(|h| h.total() == 0)
    }
}

impl FleetObserver for DomainHistograms {
    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, _t_s: f64, power_w: f64) {
        if let Some(job) = ctx.job {
            self.ensure(job.domain);
            self.hists[job.domain].record(power_w);
        }
    }
    fn merge(&mut self, other: Self) {
        self.ensure(other.hists.len().saturating_sub(1));
        for (i, h) in other.hists.into_iter().enumerate() {
            self.ensure(i);
            self.hists[i].merge(&h);
        }
    }
}

/// GPU vs rest-of-node energy accounting — the paper's Fig. 2(b), showing
/// that GPUs dominate node energy on the system.
#[derive(Debug, Clone)]
pub struct GpuCpuEnergy {
    /// Total GPU energy, joules (sum over samples x window; filled by the
    /// caller from sample power x window seconds).
    pub gpu_energy_j: f64,
    /// Total rest-of-node energy, joules.
    pub rest_energy_j: f64,
    /// Distribution of GPU sample powers.
    pub gpu_hist: PowerHistogram,
    /// Distribution of rest-of-node sample powers.
    pub rest_hist: PowerHistogram,
    window_s: f64,
}

impl Default for GpuCpuEnergy {
    fn default() -> Self {
        GpuCpuEnergy {
            gpu_energy_j: 0.0,
            rest_energy_j: 0.0,
            gpu_hist: PowerHistogram::gpu_default(),
            rest_hist: PowerHistogram::gpu_default(),
            window_s: 15.0,
        }
    }
}

impl GpuCpuEnergy {
    /// GPU share of total node energy, in `[0, 1]`.
    pub fn gpu_share(&self) -> f64 {
        let total = self.gpu_energy_j + self.rest_energy_j;
        if total == 0.0 {
            0.0
        } else {
            self.gpu_energy_j / total
        }
    }
}

impl FleetObserver for GpuCpuEnergy {
    fn gpu_sample(&mut self, _ctx: &SampleCtx<'_>, _t_s: f64, power_w: f64) {
        // A glitched (non-finite) sensor reading must not poison the energy
        // integral; the histogram already drops non-finite values.
        if power_w.is_finite() {
            self.gpu_energy_j += power_w * self.window_s;
        }
        self.gpu_hist.record(power_w);
    }
    fn node_sample(&mut self, _ctx: &SampleCtx<'_>, _t_s: f64, _span_s: f64, rest_w: f64) {
        if rest_w.is_finite() {
            self.rest_energy_j += rest_w * self.window_s;
        }
        self.rest_hist.record(rest_w);
    }
    fn merge(&mut self, other: Self) {
        self.gpu_energy_j += other.gpu_energy_j;
        self.rest_energy_j += other.rest_energy_j;
        self.gpu_hist.merge(&other.gpu_hist);
        self.rest_hist.merge(&other.rest_hist);
    }
}

/// Combines two observers into one fleet pass.
#[derive(Debug, Clone, Default)]
pub struct Pair<A, B> {
    /// First observer.
    pub a: A,
    /// Second observer.
    pub b: B,
}

impl<A: FleetObserver, B: FleetObserver> FleetObserver for Pair<A, B> {
    // A pair is channel-grouped when either member needs to be: grouping
    // is a property of the whole simulation pass, and members whose state
    // merges exactly (integer-count histograms) are unaffected by it.
    const CHANNEL_GROUPED: bool = A::CHANNEL_GROUPED || B::CHANNEL_GROUPED;

    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, power_w: f64) {
        self.a.gpu_sample(ctx, t_s, power_w);
        self.b.gpu_sample(ctx, t_s, power_w);
    }
    fn gpu_gap(&mut self, ctx: &SampleCtx<'_>, t_s: f64, span_s: f64, fill: GapFill) {
        // Forwarded explicitly so members that override `gpu_gap` (e.g. a
        // coverage-accounting ledger) see the gap, not the default
        // fill-as-sample translation.
        self.a.gpu_gap(ctx, t_s, span_s, fill);
        self.b.gpu_gap(ctx, t_s, span_s, fill);
    }
    fn node_sample(&mut self, ctx: &SampleCtx<'_>, t_s: f64, span_s: f64, rest_w: f64) {
        self.a.node_sample(ctx, t_s, span_s, rest_w);
        self.b.node_sample(ctx, t_s, span_s, rest_w);
    }
    fn merge(&mut self, other: Self) {
        self.a.merge(other.a);
        self.b.merge(other.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{simulate_fleet, FleetConfig};
    use pmss_sched::{catalog, generate, TraceParams};

    fn schedule() -> pmss_sched::Schedule {
        generate(
            TraceParams {
                nodes: 6,
                duration_s: 8.0 * 3600.0,
                seed: 11,
                min_job_s: 900.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn system_histogram_collects_all_samples() {
        let s = schedule();
        let obs: SystemHistogram = simulate_fleet(&s, &FleetConfig::default());
        let windows = (s.duration_s / 15.0) as usize;
        assert_eq!(obs.hist.total() as usize, 6 * 4 * windows);
    }

    #[test]
    fn domain_histograms_only_count_job_samples() {
        let s = schedule();
        let obs: Pair<SystemHistogram, DomainHistograms> =
            simulate_fleet(&s, &FleetConfig::default());
        let domain_total: u64 = (0..obs.b.len())
            .filter_map(|d| obs.b.domain(d))
            .map(|h| h.total())
            .sum();
        assert!(domain_total > 0);
        assert!(domain_total <= obs.a.hist.total());
    }

    #[test]
    fn gpu_dominates_node_energy() {
        // Paper Sec. VI: non-GPU components are dwarfed (< 20 %) on busy
        // nodes; with 4 GPUs vs one CPU the fleet share is strongly
        // GPU-heavy.
        let s = schedule();
        let obs: GpuCpuEnergy = simulate_fleet(&s, &FleetConfig::default());
        assert!(
            obs.gpu_share() > 0.6,
            "GPU energy share {}",
            obs.gpu_share()
        );
    }
}
