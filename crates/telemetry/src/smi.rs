//! In-band vs out-of-band sensor comparison — the paper's Fig. 2(a), which
//! shows that the facility telemetry agrees with ROCm SMI readings for a
//! sample application run.
//!
//! Both sensors watch the same execution; they differ in sampling period,
//! noise, and quantization.  The comparison reports the two aggregated
//! series and their agreement.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pmss_gpu::trace::{sample_execution, TraceConfig};
use pmss_gpu::{BoostBudget, Engine, GpuSettings, KernelProfile, PowerSample};

use crate::sampler::aggregate;

/// The two sensor channels of Fig. 2(a).
#[derive(Debug, Clone, Copy)]
pub struct SensorPair {
    /// Facility out-of-band channel: 2 s period, aggregated to 15 s.
    pub out_of_band: TraceConfig,
    /// ROCm-SMI-like in-band channel: 1 s period, aggregated to 15 s.
    pub in_band: TraceConfig,
}

impl Default for SensorPair {
    fn default() -> Self {
        SensorPair {
            out_of_band: TraceConfig {
                sample_period_s: 2.0,
                noise_sd_w: 4.0,
                quantum_w: 1.0,
            },
            in_band: TraceConfig {
                sample_period_s: 1.0,
                noise_sd_w: 2.5,
                quantum_w: 1.0,
            },
        }
    }
}

/// Result of observing one run through both sensors.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Out-of-band series aggregated to 15 s.
    pub telemetry: Vec<PowerSample>,
    /// In-band (SMI) series aggregated to 15 s.
    pub smi: Vec<PowerSample>,
    /// Mean absolute difference between the aligned series, in watts.
    pub mean_abs_diff_w: f64,
    /// Mean power of the out-of-band series, in watts.
    pub mean_power_w: f64,
}

/// Runs `phases` once and observes the run through both sensors.
pub fn compare_sensors(phases: &[KernelProfile], settings: GpuSettings, seed: u64) -> Comparison {
    let engine = Engine::default();
    let pair = SensorPair::default();

    let mut oob_raw = Vec::new();
    let mut smi_raw = Vec::new();
    let mut t_base = 0.0f64;
    let mut rng_a = StdRng::seed_from_u64(seed);
    let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5151);
    let mut boost_a = BoostBudget::default();
    let mut boost_b = BoostBudget::default();

    for phase in phases {
        let ex = engine.execute(phase, settings);
        for s in sample_execution(&ex, &mut boost_a, pair.out_of_band, &mut rng_a) {
            oob_raw.push(PowerSample {
                t_s: t_base + s.t_s,
                power_w: s.power_w,
            });
        }
        for s in sample_execution(&ex, &mut boost_b, pair.in_band, &mut rng_b) {
            smi_raw.push(PowerSample {
                t_s: t_base + s.t_s,
                power_w: s.power_w,
            });
        }
        t_base += ex.time_s;
    }

    let telemetry = aggregate(&oob_raw, 15.0);
    let smi = aggregate(&smi_raw, 15.0);

    let n = telemetry.len().min(smi.len());
    let mean_abs_diff_w = if n == 0 {
        0.0
    } else {
        (0..n)
            .map(|i| (telemetry[i].power_w - smi[i].power_w).abs())
            .sum::<f64>()
            / n as f64
    };
    let mean_power_w = if telemetry.is_empty() {
        0.0
    } else {
        telemetry.iter().map(|s| s.power_w).sum::<f64>() / telemetry.len() as f64
    };

    Comparison {
        telemetry,
        smi,
        mean_abs_diff_w,
        mean_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_app() -> Vec<KernelProfile> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        pmss_workloads::phases::synthesize_app(pmss_workloads::AppClass::Mixed, 1200.0, &mut rng)
    }

    #[test]
    fn sensors_agree_within_noise() {
        // Fig. 2(a): "telemetry data is comparable to the data derived from
        // the ROCm SMI library".
        let c = compare_sensors(&sample_app(), GpuSettings::uncapped(), 17);
        assert!(c.mean_power_w > 100.0);
        assert!(
            c.mean_abs_diff_w < 0.05 * c.mean_power_w,
            "disagreement {} W vs mean {} W",
            c.mean_abs_diff_w,
            c.mean_power_w
        );
    }

    #[test]
    fn series_lengths_align() {
        let c = compare_sensors(&sample_app(), GpuSettings::uncapped(), 17);
        let diff = c.telemetry.len() as i64 - c.smi.len() as i64;
        assert!(diff.abs() <= 2, "{} vs {}", c.telemetry.len(), c.smi.len());
    }

    #[test]
    fn comparison_tracks_capped_runs_too() {
        let base = compare_sensors(&sample_app(), GpuSettings::uncapped(), 17);
        let capped = compare_sensors(&sample_app(), GpuSettings::freq_capped(900.0), 17);
        assert!(capped.mean_power_w < base.mean_power_w);
    }
}
