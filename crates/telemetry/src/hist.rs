//! Fixed-bin power histograms: the data structure behind the paper's
//! Figs. 8 and 9 (distribution of 15-second GPU power samples) and the
//! modal decomposition built on top of it.

/// Histogram over `[0, max_w)` watts with uniform bins.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerHistogram {
    bin_w: f64,
    counts: Vec<u64>,
    total: u64,
    sum_w: f64,
}

impl PowerHistogram {
    /// Creates a histogram covering `[0, max_w)` with `bins` bins.
    pub fn new(max_w: f64, bins: usize) -> Self {
        assert!(max_w > 0.0 && bins > 0);
        PowerHistogram {
            bin_w: max_w / bins as f64,
            counts: vec![0; bins],
            total: 0,
            sum_w: 0.0,
        }
    }

    /// Default layout for GPU package power: 0–700 W in 2 W bins (covers
    /// idle through boost).
    pub fn gpu_default() -> Self {
        PowerHistogram::new(700.0, 350)
    }

    /// Records one power sample; values beyond the range clamp into the
    /// edge bins.  Non-finite samples (sensor glitches propagated as NaN or
    /// ±inf) are skipped: a NaN would land in bin 0 via the float-to-int
    /// cast while poisoning `sum_w` — and with it `mean_w` — forever.
    pub fn record(&mut self, power_w: f64) {
        if !power_w.is_finite() {
            return;
        }
        let idx = ((power_w / self.bin_w) as isize).clamp(0, self.counts.len() as isize - 1);
        self.counts[idx as usize] += 1;
        self.total += 1;
        self.sum_w += power_w;
    }

    /// Merges another histogram of identical layout.
    ///
    /// # Panics
    /// Panics on layout mismatch.
    pub fn merge(&mut self, other: &PowerHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            (self.bin_w - other.bin_w).abs() < 1e-12,
            "bin width mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_w += other.sum_w;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean recorded power, in watts (`None` when empty).
    pub fn mean_w(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum_w / self.total as f64)
    }

    /// Bin width in watts.
    pub fn bin_width(&self) -> f64 {
        self.bin_w
    }

    /// Bin centers, in watts.
    pub fn centers(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.counts.len()).map(move |i| (i as f64 + 0.5) * self.bin_w)
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of samples with power in `[lo_w, hi_w)` — the quantity
    /// behind the Table IV "GPU Hrs. (%)" column.
    ///
    /// Computed from bin membership; samples beyond the histogram range are
    /// attributed to the edge bins they were clamped into.
    pub fn fraction_between(&self, lo_w: f64, hi_w: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = (lo_w / self.bin_w).round() as usize;
        let hi = ((hi_w / self.bin_w).round() as usize).min(self.counts.len());
        let inside: u64 = self.counts[lo.min(self.counts.len())..hi].iter().sum();
        inside as f64 / self.total as f64
    }

    /// Probability density per bin (sums to 1 over bins).
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Gaussian-smoothed density (sigma in bins) for peak finding.
    pub fn smoothed_density(&self, sigma_bins: f64) -> Vec<f64> {
        let d = self.density();
        if sigma_bins <= 0.0 {
            return d;
        }
        let radius = (3.0 * sigma_bins).ceil() as isize;
        let weights: Vec<f64> = (-radius..=radius)
            .map(|k| (-0.5 * (k as f64 / sigma_bins).powi(2)).exp())
            .collect();
        let wsum: f64 = weights.iter().sum();
        (0..d.len() as isize)
            .map(|i| {
                let mut acc = 0.0;
                for (j, w) in weights.iter().enumerate() {
                    let idx = i + j as isize - radius;
                    if (0..d.len() as isize).contains(&idx) {
                        acc += w * d[idx as usize];
                    }
                }
                acc / wsum
            })
            .collect()
    }

    /// Local maxima of the smoothed density that carry at least
    /// `min_mass` of probability within ±2 bins — the "peaks or local
    /// maxima" the paper reads modes of operation from.
    pub fn peaks_w(&self, sigma_bins: f64, min_mass: f64) -> Vec<f64> {
        let s = self.smoothed_density(sigma_bins);
        let d = self.density();
        let mut peaks = Vec::new();
        for i in 1..s.len().saturating_sub(1) {
            if s[i] > s[i - 1] && s[i] >= s[i + 1] {
                let lo = i.saturating_sub(2);
                let hi = (i + 3).min(d.len());
                let mass: f64 = d[lo..hi].iter().sum();
                if mass >= min_mass {
                    peaks.push((i as f64 + 0.5) * self.bin_w);
                }
            }
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut h = PowerHistogram::new(600.0, 300);
        for _ in 0..70 {
            h.record(100.0);
        }
        for _ in 0..30 {
            h.record(450.0);
        }
        assert_eq!(h.total(), 100);
        assert!((h.fraction_between(0.0, 200.0) - 0.7).abs() < 1e-12);
        assert!((h.fraction_between(420.0, 560.0) - 0.3).abs() < 1e-12);
        assert!((h.mean_w().unwrap() - 205.0).abs() < 1e-9);
    }

    #[test]
    fn clamping_keeps_mass_conserved() {
        let mut h = PowerHistogram::new(600.0, 300);
        h.record(-5.0);
        h.record(900.0);
        assert_eq!(h.total(), 2);
        let sum: f64 = h.density().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_are_skipped() {
        let mut h = PowerHistogram::new(600.0, 300);
        h.record(100.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(300.0);
        // Only the two finite samples count; the mean stays finite.
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 2);
        assert!((h.mean_w().unwrap() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PowerHistogram::gpu_default();
        let mut b = PowerHistogram::gpu_default();
        a.record(100.0);
        b.record(300.0);
        b.record(300.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.fraction_between(290.0, 310.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_layout_mismatch() {
        let mut a = PowerHistogram::new(600.0, 300);
        let b = PowerHistogram::new(600.0, 100);
        a.merge(&b);
    }

    #[test]
    fn smoothing_preserves_mass() {
        let mut h = PowerHistogram::gpu_default();
        for i in 0..1000 {
            h.record(90.0 + (i % 400) as f64);
        }
        let sm = h.smoothed_density(3.0);
        let mass: f64 = sm.iter().sum();
        assert!((mass - 1.0).abs() < 0.02, "mass {mass}");
    }

    #[test]
    fn peaks_found_for_bimodal_distribution() {
        let mut h = PowerHistogram::gpu_default();
        // Two modes: ~150 W and ~480 W with slight spread.
        for i in 0..2000 {
            h.record(150.0 + ((i * 7) % 21) as f64 - 10.0);
            h.record(480.0 + ((i * 5) % 21) as f64 - 10.0);
        }
        let peaks = h.peaks_w(2.0, 0.02);
        assert!(
            peaks.iter().any(|&p| (140.0..170.0).contains(&p)),
            "{peaks:?}"
        );
        assert!(
            peaks.iter().any(|&p| (470.0..500.0).contains(&p)),
            "{peaks:?}"
        );
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = PowerHistogram::gpu_default();
        assert_eq!(h.mean_w(), None);
        assert_eq!(h.fraction_between(0.0, 700.0), 0.0);
        assert!(h.peaks_w(2.0, 0.01).is_empty());
    }
}
