//! # pmss-error — the workspace-wide typed error
//!
//! Every fallible seam of the PMSS workspace returns [`PmssError`]: kernel
//! validation in `pmss-gpu`, sweep aggregation and Table III computation in
//! `pmss-workloads`, telemetry persistence and the power-series codec in
//! `pmss-telemetry`, boundary validation and the savings projection in
//! `pmss-core`, and scenario parsing in `pmss-pipeline`.  The variants are
//! structured (no stringly-typed `Result<_, String>`), implement
//! [`std::error::Error`], and render operator-readable messages through
//! [`std::fmt::Display`].
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! graph so that every other crate can share the one type.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// The unified error type of the PMSS workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum PmssError {
    /// Modal-decomposition region boundaries are not strictly increasing.
    InvalidBoundaries {
        /// Latency / memory-intensive boundary, watts.
        latency_mi_w: f64,
        /// Memory- / compute-intensive boundary, watts.
        mi_ci_w: f64,
        /// Compute-intensive / boost boundary, watts.
        ci_boost_w: f64,
    },
    /// A kernel profile failed validation.
    InvalidKernel {
        /// Kernel name.
        kernel: String,
        /// Which constraint failed.
        reason: String,
    },
    /// A scenario-spec field failed validation.
    InvalidSpec {
        /// Field name.
        field: &'static str,
        /// Which constraint failed.
        reason: String,
    },
    /// A user-supplied value (environment variable, CLI flag, config
    /// field) failed to parse.
    InvalidValue {
        /// What was being parsed (e.g. `"PMSS_SCALE"`).
        what: String,
        /// The offending value.
        value: String,
        /// A description of the accepted values.
        expected: String,
    },
    /// A lookup found no matching entry (e.g. a cap row missing from a
    /// sweep).
    Missing {
        /// What was being looked up.
        what: String,
        /// The key or context of the failed lookup.
        detail: String,
    },
    /// Serialized or encoded data failed to decode.
    MalformedData {
        /// The format being decoded (e.g. `"csv"`, `"power-codec"`,
        /// `"json"`).
        format: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// A computation received empty input where data was required.
    EmptyInput {
        /// What was empty.
        what: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A command-line usage error.
    Usage(String),
}

impl PmssError {
    /// Convenience constructor for [`PmssError::InvalidValue`].
    pub fn invalid_value(
        what: impl Into<String>,
        value: impl Into<String>,
        expected: impl Into<String>,
    ) -> Self {
        PmssError::InvalidValue {
            what: what.into(),
            value: value.into(),
            expected: expected.into(),
        }
    }

    /// Convenience constructor for [`PmssError::Missing`].
    pub fn missing(what: impl Into<String>, detail: impl Into<String>) -> Self {
        PmssError::Missing {
            what: what.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`PmssError::MalformedData`].
    pub fn malformed(format: &'static str, detail: impl Into<String>) -> Self {
        PmssError::MalformedData {
            format,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`PmssError::EmptyInput`].
    pub fn empty(what: impl Into<String>) -> Self {
        PmssError::EmptyInput { what: what.into() }
    }
}

impl fmt::Display for PmssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmssError::InvalidBoundaries {
                latency_mi_w,
                mi_ci_w,
                ci_boost_w,
            } => write!(
                f,
                "region boundaries out of order: latency/MI {latency_mi_w} W, \
                 MI/CI {mi_ci_w} W, CI/boost {ci_boost_w} W (must be strictly \
                 increasing and positive)"
            ),
            PmssError::InvalidKernel { kernel, reason } => {
                write!(f, "invalid kernel profile `{kernel}`: {reason}")
            }
            PmssError::InvalidSpec { field, reason } => {
                write!(f, "invalid scenario spec: `{field}` {reason}")
            }
            PmssError::InvalidValue {
                what,
                value,
                expected,
            } => write!(f, "invalid {what} value {value:?}: expected {expected}"),
            PmssError::Missing { what, detail } => write!(f, "missing {what}: {detail}"),
            PmssError::MalformedData { format, detail } => {
                write!(f, "malformed {format} data: {detail}")
            }
            PmssError::EmptyInput { what } => write!(f, "empty input: {what}"),
            PmssError::Io(e) => write!(f, "I/O error: {e}"),
            PmssError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PmssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmssError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PmssError {
    fn from(e: std::io::Error) -> Self {
        PmssError::Io(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T, E = PmssError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error_with_source() {
        let e = PmssError::from(std::io::Error::other("disk"));
        let dynerr: &dyn std::error::Error = &e;
        assert!(dynerr.source().is_some());
        assert!(dynerr.to_string().contains("disk"));
    }

    #[test]
    fn display_messages_are_structured() {
        let e = PmssError::InvalidBoundaries {
            latency_mi_w: 500.0,
            mi_ci_w: 420.0,
            ci_boost_w: 560.0,
        };
        assert!(e.to_string().contains("out of order"));
        let e = PmssError::invalid_value("PMSS_SCALE", "huge", "quick | medium | large");
        assert!(e.to_string().contains("PMSS_SCALE"));
        assert!(e.to_string().contains("huge"));
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = PmssError::empty("fleet energy");
        assert!(std::error::Error::source(&e).is_none());
    }
}
