//! The governor's sensing observer: per-channel, per-region energy.
//!
//! A [`ChannelLedger`] is the observer the streaming engine maintains for
//! the governor.  Unlike the decomposition ledger it keeps every
//! `(node, slot)` channel separate, because the governor's whole job is
//! per-channel mode classification; and it keeps only what classification
//! needs — GPU seconds and joules per Table IV region — so snapshots stay
//! cheap at sync-window cadence.
//!
//! Sensing sees exactly what the collection fabric delivered: non-finite
//! (glitched) readings are discarded, excluded gaps contribute nothing,
//! and interpolated or idle-attributed gap fills are sensed at their fill
//! power — the governor's view degrades with the telemetry, which is the
//! point of measuring it under fault presets.

use std::collections::BTreeMap;

use pmss_columns::Tag;
use pmss_core::Region;
use pmss_sched::Schedule;
use pmss_telemetry::{ColumnBlock, FleetObserver, GapFill, SampleCtx};

/// Telemetry window length assumed for samples, seconds (the fleet
/// simulation's default; gap events carry their own spans).
const WINDOW_S: f64 = 15.0;

/// One channel's accumulated per-region telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelAccum {
    /// GPU seconds per Table IV region.
    pub region_s: [f64; 4],
    /// GPU joules per Table IV region.
    pub region_j: [f64; 4],
}

impl ChannelAccum {
    /// Total sensed energy, joules.
    pub fn total_j(&self) -> f64 {
        self.region_j.iter().sum()
    }

    /// The region holding the most sensed energy (ties break toward the
    /// lower-power region), or `None` when nothing was sensed.
    pub fn dominant_region(&self) -> Option<Region> {
        if self.total_j() <= 0.0 {
            return None;
        }
        let mut best = Region::LatencyBound;
        for r in Region::all() {
            if self.region_j[r.index()] > self.region_j[best.index()] {
                best = r;
            }
        }
        Some(best)
    }

    /// This accumulator minus `prev` (element-wise; sensing deltas between
    /// two snapshots of a monotone accumulation).
    pub fn minus(&self, prev: &ChannelAccum) -> ChannelAccum {
        let mut out = *self;
        for i in 0..4 {
            out.region_s[i] -= prev.region_s[i];
            out.region_j[i] -= prev.region_j[i];
        }
        out
    }

    fn record(&mut self, power_w: f64, span_s: f64) {
        let r = Region::of_power(power_w).index();
        self.region_s[r] += span_s;
        self.region_j[r] += power_w * span_s;
    }
}

/// Per-channel region accounting of a telemetry stream — the observer the
/// governor snapshots at every sync window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelLedger {
    channels: BTreeMap<(u32, u8), ChannelAccum>,
}

impl ChannelLedger {
    /// All channels with sensed telemetry, keyed by `(node, slot)`.
    pub fn channels(&self) -> &BTreeMap<(u32, u8), ChannelAccum> {
        &self.channels
    }

    /// One channel's accumulator (zero when nothing was sensed).
    pub fn channel(&self, node: u32, slot: u8) -> ChannelAccum {
        self.channels
            .get(&(node, slot))
            .copied()
            .unwrap_or_default()
    }
}

impl FleetObserver for ChannelLedger {
    // Per-channel maps merge exactly (disjoint keys per partial), so the
    // batch and streamed accumulation shapes coincide.
    const CHANNEL_GROUPED: bool = true;

    fn gpu_sample(&mut self, ctx: &SampleCtx<'_>, _t_s: f64, power_w: f64) {
        // A non-finite reading cannot be classified into a region; the
        // governor simply does not sense that window.
        if !power_w.is_finite() {
            return;
        }
        self.channels
            .entry((ctx.node, ctx.slot))
            .or_default()
            .record(power_w, WINDOW_S);
    }

    fn gpu_gap(&mut self, ctx: &SampleCtx<'_>, _t_s: f64, span_s: f64, fill: GapFill) {
        match fill {
            GapFill::Excluded => {}
            GapFill::Interpolated(w) | GapFill::Idle(w) => {
                self.channels
                    .entry((ctx.node, ctx.slot))
                    .or_default()
                    .record(w, span_s);
            }
        }
    }

    // Columnar fold: a block is one channel, so the whole fold touches a
    // single accumulator — looked up once, not once per window.  Each
    // contributing row performs the same two adds as the per-event path, in
    // the same order, starting from the channel's existing value, so the
    // fold is bit-identical to row-by-row replay; rows that sense nothing
    // (rest-of-node, excluded gaps, non-finite samples) must not create the
    // channel entry, matching the event path's lazy `entry(..)`.
    fn fold_rows(
        &mut self,
        _schedule: &Schedule,
        block: &ColumnBlock,
        rows: std::ops::Range<usize>,
    ) {
        const SAMPLE: u8 = Tag::Sample as u8;
        const GAP_INTERPOLATED: u8 = Tag::GapInterpolated as u8;
        const GAP_IDLE: u8 = Tag::GapIdle as u8;
        let key = block.channel();
        let mut acc = self.channels.get(&key).copied();
        let tags = block.tags();
        let values = block.values();
        let spans = block.spans();
        for i in rows {
            match tags[i] {
                SAMPLE => {
                    let p = values[i];
                    if !p.is_finite() {
                        continue;
                    }
                    let a = acc.get_or_insert_with(ChannelAccum::default);
                    let r = Region::bin_power(p);
                    a.region_s[r] += WINDOW_S;
                    a.region_j[r] += p * WINDOW_S;
                }
                GAP_INTERPOLATED | GAP_IDLE => {
                    let a = acc.get_or_insert_with(ChannelAccum::default);
                    a.record(values[i], spans[i]);
                }
                // NodeRest and excluded gaps sense nothing.
                _ => {}
            }
        }
        if let Some(a) = acc {
            self.channels.insert(key, a);
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, acc) in other.channels {
            let mine = self.channels.entry(key).or_default();
            for i in 0..4 {
                mine.region_s[i] += acc.region_s[i];
                mine.region_j[i] += acc.region_j[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(node: u32, slot: u8) -> SampleCtx<'static> {
        SampleCtx {
            node,
            slot,
            sku: 0,
            job: None,
        }
    }

    #[test]
    fn samples_land_in_their_region_and_channel() {
        let mut l = ChannelLedger::default();
        l.gpu_sample(&ctx(0, 1), 0.0, 300.0); // MI
        l.gpu_sample(&ctx(0, 1), 15.0, 500.0); // CI
        l.gpu_sample(&ctx(2, 0), 0.0, 100.0); // latency
        l.gpu_sample(&ctx(2, 0), 15.0, f64::NAN); // discarded
        let a = l.channel(0, 1);
        assert_eq!(a.region_s[Region::MemoryIntensive.index()], WINDOW_S);
        assert_eq!(
            a.region_j[Region::ComputeIntensive.index()],
            500.0 * WINDOW_S
        );
        assert_eq!(a.dominant_region(), Some(Region::ComputeIntensive));
        let b = l.channel(2, 0);
        assert_eq!(b.total_j(), 100.0 * WINDOW_S);
        assert_eq!(l.channel(9, 9).dominant_region(), None);
    }

    #[test]
    fn gaps_follow_their_fill_policy() {
        let mut l = ChannelLedger::default();
        l.gpu_gap(&ctx(1, 0), 0.0, 30.0, GapFill::Excluded);
        assert!(l.channels().is_empty());
        l.gpu_gap(&ctx(1, 0), 0.0, 30.0, GapFill::Interpolated(250.0));
        l.gpu_gap(&ctx(1, 0), 30.0, 15.0, GapFill::Idle(90.0));
        let a = l.channel(1, 0);
        assert_eq!(a.region_s[Region::MemoryIntensive.index()], 30.0);
        assert_eq!(a.region_s[Region::LatencyBound.index()], 15.0);
    }

    #[test]
    fn merge_sums_by_channel_key() {
        let mut a = ChannelLedger::default();
        a.gpu_sample(&ctx(0, 0), 0.0, 300.0);
        let mut b = ChannelLedger::default();
        b.gpu_sample(&ctx(0, 0), 15.0, 300.0);
        b.gpu_sample(&ctx(1, 0), 0.0, 450.0);
        a.merge(b);
        assert_eq!(a.channel(0, 0).region_s[1], 2.0 * WINDOW_S);
        assert_eq!(a.channels().len(), 2);
    }

    #[test]
    fn fold_block_is_bit_identical_to_per_event_replay() {
        use pmss_telemetry::{apply_event, WindowEvent, WindowKind};
        let schedule = Schedule {
            jobs: Vec::new(),
            per_node: Vec::new(),
            duration_s: 600.0,
        };
        let mk = |window: u64, kind: WindowKind| WindowEvent {
            node: 4,
            slot: 2,
            sku: 0,
            window,
            rank: window,
            t_s: window as f64 * 15.0 + 7.5,
            span_s: 15.0,
            kind,
        };
        let events = [
            mk(
                0,
                WindowKind::Sample {
                    power_w: 312.5,
                    job: None,
                },
            ),
            mk(
                1,
                WindowKind::Sample {
                    power_w: f64::NAN,
                    job: None,
                },
            ),
            mk(
                2,
                WindowKind::Gap {
                    fill: GapFill::Excluded,
                    job: None,
                },
            ),
            mk(
                3,
                WindowKind::Gap {
                    fill: GapFill::Interpolated(433.7),
                    job: None,
                },
            ),
            mk(
                4,
                WindowKind::Gap {
                    fill: GapFill::Idle(88.0),
                    job: None,
                },
            ),
            mk(
                5,
                WindowKind::Sample {
                    power_w: 577.25,
                    job: None,
                },
            ),
        ];
        let block = pmss_telemetry::ColumnBlock::from_events(4, 2, &events);

        let mut by_event = ChannelLedger::default();
        for ev in &events {
            apply_event(&mut by_event, &schedule, ev);
        }
        let mut by_block = ChannelLedger::default();
        by_block.fold_block(&schedule, &block);
        assert_eq!(by_block, by_event);
        let (a, b) = (by_block.channel(4, 2), by_event.channel(4, 2));
        for i in 0..4 {
            assert_eq!(a.region_s[i].to_bits(), b.region_s[i].to_bits());
            assert_eq!(a.region_j[i].to_bits(), b.region_j[i].to_bits());
        }

        // A block that senses nothing must not materialize the channel.
        let silent = [
            mk(
                6,
                WindowKind::Gap {
                    fill: GapFill::Excluded,
                    job: None,
                },
            ),
            mk(
                7,
                WindowKind::Sample {
                    power_w: f64::INFINITY,
                    job: None,
                },
            ),
        ];
        let silent_block = pmss_telemetry::ColumnBlock::from_events(4, 2, &silent);
        let mut l = ChannelLedger::default();
        l.fold_block(&schedule, &silent_block);
        assert!(l.channels().is_empty());
    }

    #[test]
    fn delta_between_snapshots_isolates_one_round() {
        let mut l = ChannelLedger::default();
        l.gpu_sample(&ctx(0, 0), 0.0, 300.0);
        let prev = l.channel(0, 0);
        l.gpu_sample(&ctx(0, 0), 15.0, 500.0);
        let d = l.channel(0, 0).minus(&prev);
        assert_eq!(d.region_j[Region::MemoryIntensive.index()], 0.0);
        assert_eq!(
            d.region_j[Region::ComputeIntensive.index()],
            500.0 * WINDOW_S
        );
    }
}
