//! Online cluster power governor: from the paper's static ceiling to a
//! closed control loop.
//!
//! The paper's headline is an *offline* bound — project per-mode scaling
//! factors (Table III) onto recorded telemetry and report the best
//! no-slowdown savings a static cap could have realized.  This crate asks
//! the follow-up question the paper's discussion motivates: how much of
//! that ceiling can an *online* controller realize when it only sees the
//! telemetry stream as it arrives, possibly degraded by collection faults?
//!
//! The governor consumes [`pmss_stream::StreamEngine`] snapshots at a
//! periodic sync window (the PoLiMEr rebalancing discipline): it
//! classifies each `(node, slot)` telemetry channel's current operating
//! mode from the last window of delivered samples, applies the projection's
//! best no-slowdown cap to channels it believes are memory-intensive, and
//! — under the `polimer` policy — reallocates a cluster-wide power budget
//! across nodes by observed slack, with configurable increase/decrease
//! rates, hysteresis, and per-node floor/ceiling caps.
//!
//! Realized savings are accounted with the same Table III factors the
//! projection uses, applied window by window to the cap each decision
//! actually had in force — so the gap between the governor and the ceiling
//! is exactly the cost of sensing lag, misclassification, hysteresis, and
//! budget pressure.
//!
//! * [`GovernorPlan`] — typed, validated configuration with
//!   `static | greedy | polimer` presets;
//! * [`ChannelLedger`] — the per-channel mode-sensing observer the stream
//!   engine maintains;
//! * [`run_governor`] — the deterministic replay loop producing a
//!   [`GovernOutcome`].

mod channels;
mod plan;
mod sim;

pub use channels::{ChannelAccum, ChannelLedger};
pub use plan::{GovernorPlan, Policy, ResolvedPlan, PRESETS};
pub use sim::{run_governor, GovernOutcome, RegionTally};
