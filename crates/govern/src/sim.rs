//! The governor replay loop: deterministic, delivery-ordered, budget-safe.
//!
//! [`run_governor`] replays a fleet's telemetry [`WindowEvent`]s in
//! delivery-rank order through a [`StreamEngine`] carrying the
//! [`ChannelLedger`] sensing observer.  At every sync-window boundary it
//! snapshots the engine, diffs against the previous snapshot to get the
//! round's per-channel telemetry, and decides the next round's caps; the
//! decisions then meet the telemetry again on the accounting side, where
//! each delivered window is charged the Table III energy/runtime factor of
//! whatever cap the governor actually had in force for that window's
//! round.
//!
//! Everything is a pure function of the event sequence: no wall clock, no
//! thread-order dependence, no randomness — the same discipline that makes
//! the streaming ledger bit-identical to the batch path makes the governor
//! byte-identical across thread counts and repeat runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use pmss_core::Region;
use pmss_error::PmssError;
use pmss_gpu::consts::GPUS_PER_NODE;
use pmss_obs::Metrics;
use pmss_sched::Schedule;
use pmss_stream::{StreamConfig, StreamEngine, StreamStats};
use pmss_telemetry::{GapFill, WindowEvent, WindowKind, REST_SLOT};
use pmss_workloads::sweep::CapSetting;
use pmss_workloads::{Table3, Table3Row};

use crate::channels::ChannelLedger;
use crate::plan::{GovernorPlan, Policy, ResolvedPlan};

/// Per-region accounting of the governed replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionTally {
    /// Delivered GPU seconds classified into this region.
    pub seconds: f64,
    /// Delivered GPU joules classified into this region.
    pub joules: f64,
    /// Joules of this region's energy that arrived under a cap.
    pub capped_j: f64,
    /// Energy saved by the caps in force, joules (negative on regression).
    pub saved_j: f64,
    /// Runtime added by the caps in force, seconds.
    pub extra_s: f64,
}

/// What one governed replay realized, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernOutcome {
    /// The policy that ran.
    pub policy: Policy,
    /// The cap applied to governed channels.
    pub cap: CapSetting,
    /// The cluster power budget, watts.
    pub budget_w: f64,
    /// Sync-window length, seconds.
    pub interval_s: f64,
    /// Sync windows elapsed over the replay.
    pub rounds: u64,
    /// Rounds in which the budget rebalancer adjusted at least one cap.
    pub rebalances: u64,
    /// Mode-cap and throttle transitions across all channels and nodes.
    pub cap_churn: u64,
    /// Mode-cap flips deferred by hysteresis.
    pub hysteresis_suppressions: u64,
    /// Node-rounds spent power-throttled (observed draw above the node
    /// cap).
    pub throttled_node_rounds: u64,
    /// Peak of `sum(node caps) / budget` across all rounds.
    pub peak_budget_utilization: f64,
    /// Whether the cluster budget was ever exceeded (must stay `false`).
    pub budget_exceeded: bool,
    /// Per-region delivery-side accounting, indexed by `Region::index()`.
    pub regions: [RegionTally; 4],
    /// Ingest tallies of the sensing engine.
    pub stream: StreamStats,
}

impl GovernOutcome {
    /// Total delivered GPU energy, joules.
    pub fn total_j(&self) -> f64 {
        self.regions.iter().map(|r| r.joules).sum()
    }

    /// Total delivered GPU time, seconds.
    pub fn total_s(&self) -> f64 {
        self.regions.iter().map(|r| r.seconds).sum()
    }

    /// Total energy saved, joules.
    pub fn saved_j(&self) -> f64 {
        self.regions.iter().map(|r| r.saved_j).sum()
    }

    /// Realized savings as a percentage of delivered GPU energy — the
    /// figure measured against the projection ceiling.
    pub fn realized_pct(&self) -> f64 {
        let total = self.total_j();
        if total > 0.0 {
            100.0 * self.saved_j() / total
        } else {
            0.0
        }
    }

    /// Realized savings as a percentage of `ceiling_pct`.
    pub fn of_ceiling_pct(&self, ceiling_pct: f64) -> f64 {
        if ceiling_pct != 0.0 {
            100.0 * self.realized_pct() / ceiling_pct
        } else {
            0.0
        }
    }

    /// Time-weighted slowdown in one region, percent.
    pub fn region_slowdown_pct(&self, region: Region) -> f64 {
        let t = &self.regions[region.index()];
        if t.seconds > 0.0 {
            100.0 * t.extra_s / t.seconds
        } else {
            0.0
        }
    }

    /// Time-weighted slowdown over the whole fleet, percent.
    pub fn slowdown_pct(&self) -> f64 {
        let total = self.total_s();
        if total > 0.0 {
            100.0 * self.regions.iter().map(|r| r.extra_s).sum::<f64>() / total
        } else {
            0.0
        }
    }

    /// Share of memory-intensive energy that arrived under a cap, percent
    /// — how much of the ceiling's substrate the classifier captured.
    pub fn mi_capture_pct(&self) -> f64 {
        let mi = &self.regions[Region::MemoryIntensive.index()];
        if mi.joules > 0.0 {
            100.0 * mi.capped_j / mi.joules
        } else {
            0.0
        }
    }

    /// Publishes counters and gauges under `govern.<policy>.*`.
    pub fn publish_metrics(&self, m: &mut Metrics) {
        let n = MetricNames::for_policy(self.policy);
        m.add(n.rounds, self.rounds);
        m.add(n.rebalances, self.rebalances);
        m.add(n.cap_churn, self.cap_churn);
        m.add(n.hysteresis_suppressions, self.hysteresis_suppressions);
        m.add(n.throttled_node_rounds, self.throttled_node_rounds);
        m.gauge_set(n.budget_utilization, self.peak_budget_utilization);
        m.gauge_set(n.realized_pct, self.realized_pct());
        m.gauge_set(n.slowdown_pct, self.slowdown_pct());
        m.gauge_set(n.mi_capture_pct, self.mi_capture_pct());
    }
}

/// Static metric-name table (the registry requires `&'static str` keys).
struct MetricNames {
    rounds: &'static str,
    rebalances: &'static str,
    cap_churn: &'static str,
    hysteresis_suppressions: &'static str,
    throttled_node_rounds: &'static str,
    budget_utilization: &'static str,
    realized_pct: &'static str,
    slowdown_pct: &'static str,
    mi_capture_pct: &'static str,
}

macro_rules! metric_names {
    ($policy:literal) => {
        MetricNames {
            rounds: concat!("govern.", $policy, ".rounds"),
            rebalances: concat!("govern.", $policy, ".rebalances"),
            cap_churn: concat!("govern.", $policy, ".cap_churn"),
            hysteresis_suppressions: concat!("govern.", $policy, ".hysteresis_suppressions"),
            throttled_node_rounds: concat!("govern.", $policy, ".throttled_node_rounds"),
            budget_utilization: concat!("govern.", $policy, ".peak_budget_utilization"),
            realized_pct: concat!("govern.", $policy, ".realized_pct"),
            slowdown_pct: concat!("govern.", $policy, ".slowdown_pct"),
            mi_capture_pct: concat!("govern.", $policy, ".mi_capture_pct"),
        }
    };
}

impl MetricNames {
    fn for_policy(policy: Policy) -> MetricNames {
        match policy {
            Policy::Static => metric_names!("static"),
            Policy::Greedy => metric_names!("greedy"),
            Policy::Polimer => metric_names!("polimer"),
        }
    }
}

/// The caps in force during one round.
#[derive(Debug, Clone, Default)]
struct Assignment {
    /// Every channel is mode-capped (the `static` policy).
    all_capped: bool,
    /// Channels mode-capped by classification.
    capped: BTreeSet<(u32, u8)>,
    /// Per-node power-throttle setting, when the node exceeded its cap.
    throttle: Vec<Option<CapSetting>>,
}

impl Assignment {
    fn setting_for(&self, node: u32, slot: u8, cap: CapSetting) -> Option<CapSetting> {
        if self.all_capped || self.capped.contains(&(node, slot)) {
            Some(cap)
        } else {
            self.throttle.get(node as usize).copied().flatten()
        }
    }
}

/// Looks up the Table III factor row for a cap setting.
fn factor_row(table3: &Table3, cap: CapSetting) -> Result<Table3Row, PmssError> {
    let row = match cap {
        CapSetting::FreqMhz(m) => table3.freq_row(m),
        CapSetting::PowerW(w) => table3.power_row(w),
    };
    row.cloned().ok_or_else(|| {
        PmssError::invalid_value(
            "governor cap",
            format!("{cap:?}"),
            "a setting present in the factor table's cap ladders",
        )
    })
}

/// Runs one governed replay of `events` (sorted by delivery rank) and
/// returns the outcome.  The result is a pure function of the arguments.
pub fn run_governor(
    schedule: &Schedule,
    events: &[WindowEvent],
    stream_cfg: StreamConfig,
    resolved: &ResolvedPlan,
    table3: &Table3,
    window_s: f64,
) -> Result<GovernOutcome, PmssError> {
    let plan = &resolved.plan;
    let nodes = resolved.nodes;
    let budget_w = resolved.budget_w;
    if !(window_s.is_finite() && window_s > 0.0) {
        return Err(PmssError::invalid_value(
            "governor window_s",
            format!("{window_s}"),
            "a finite positive telemetry window",
        ));
    }
    let cap_row = factor_row(table3, resolved.cap)?;
    // Throttle ladder: the non-baseline power settings, each with its own
    // factor row so throttled windows are charged honestly.
    let throttle_rows: Vec<Table3Row> = table3
        .power_rows
        .iter()
        .filter(|r| !r.setting.is_baseline())
        .cloned()
        .collect();

    let interval = plan.interval_windows as u64;
    let round_span_s = interval as f64 * window_s;
    // How many past rounds an in-horizon late delivery can still reach.
    let keep_rounds = (stream_cfg.reorder_horizon / interval) as usize + 2;

    let mut eng: StreamEngine<'_, ChannelLedger> = StreamEngine::new(schedule, stream_cfg)?;
    let mut prev_snap = ChannelLedger::default();

    // Control state.
    let mut caps: Vec<f64> =
        vec![(budget_w / nodes as f64).clamp(plan.node_floor_w, plan.node_ceiling_w); nodes];
    let mut pending: BTreeMap<(u32, u8), (bool, u32)> = BTreeMap::new();
    let mut current = Assignment {
        all_capped: plan.policy == Policy::Static,
        capped: BTreeSet::new(),
        throttle: vec![None; nodes],
    };

    let initial_sum: f64 = caps.iter().sum();
    let mut out = GovernOutcome {
        policy: plan.policy,
        cap: resolved.cap,
        budget_w,
        interval_s: round_span_s,
        rounds: 0,
        rebalances: 0,
        cap_churn: 0,
        hysteresis_suppressions: 0,
        throttled_node_rounds: 0,
        peak_budget_utilization: initial_sum / budget_w,
        budget_exceeded: initial_sum > budget_w * (1.0 + 1e-9),
        regions: Default::default(),
        stream: StreamStats::default(),
    };

    // Assignment history: `history[i]` governed round `base_round + i`.
    let mut history: VecDeque<Assignment> = VecDeque::new();
    history.push_back(current.clone());
    let mut base_round: u64 = 0;
    let mut round: u64 = 0;

    for ev in events {
        // Cross every sync-window boundary between the previous event's
        // rank and this one's: snapshot, classify, rebalance, decide.  The
        // snapshot happens before this event is ingested, so a decision
        // only ever sees telemetry from strictly earlier ranks.
        while ev.rank >= (round + 1) * interval {
            round += 1;
            out.rounds += 1;
            if plan.policy != Policy::Static {
                let snap = eng.snapshot();
                decide(
                    &snap,
                    &prev_snap,
                    plan,
                    budget_w,
                    round_span_s,
                    &mut caps,
                    &mut pending,
                    &mut current,
                    &throttle_rows,
                    &mut out,
                );
                prev_snap = snap;
            }
            history.push_back(current.clone());
            while history.len() > keep_rounds {
                history.pop_front();
                base_round += 1;
            }
        }

        if eng.ingest(*ev).is_err() {
            // Counted by the engine; an event past the reorder horizon is
            // neither sensed nor governed.
            continue;
        }

        // Accounting: charge the window the factor of whatever cap its
        // round's decision had in force.
        let ev_round = ev.window / interval;
        let idx = (ev_round.saturating_sub(base_round) as usize).min(history.len() - 1);
        let assign = &history[idx];
        account(ev, assign, resolved.cap, &cap_row, &throttle_rows, &mut out);
    }
    eng.flush();
    out.stream = eng.stats();
    Ok(out)
}

/// Applies one delivered event to the outcome tallies.
fn account(
    ev: &WindowEvent,
    assign: &Assignment,
    cap: CapSetting,
    cap_row: &Table3Row,
    throttle_rows: &[Table3Row],
    out: &mut GovernOutcome,
) {
    if ev.slot == REST_SLOT {
        return;
    }
    let (power_w, span_s) = match ev.kind {
        WindowKind::Sample { power_w, .. } => (power_w, ev.span_s),
        WindowKind::Gap { fill, .. } => match fill {
            GapFill::Excluded => return,
            GapFill::Interpolated(w) | GapFill::Idle(w) => (w, ev.span_s),
        },
        WindowKind::NodeRest { .. } => return,
    };
    if !power_w.is_finite() {
        return;
    }
    let region = Region::of_power(power_w);
    let tally = &mut out.regions[region.index()];
    let energy_j = power_w * span_s;
    tally.seconds += span_s;
    tally.joules += energy_j;
    if !region.cappable() {
        return;
    }
    let Some(setting) = assign.setting_for(ev.node, ev.slot, cap) else {
        return;
    };
    let row = if setting == cap {
        cap_row
    } else {
        match throttle_rows.iter().find(|r| r.setting == setting) {
            Some(r) => r,
            // A throttle setting is always drawn from `throttle_rows`;
            // tolerate a mismatch by charging nothing.
            None => return,
        }
    };
    let f = match region {
        Region::MemoryIntensive => &row.mb,
        _ => &row.vai,
    };
    tally.capped_j += energy_j;
    tally.saved_j += energy_j * (1.0 - f.energy_pct / 100.0);
    tally.extra_s += span_s * (f.runtime_pct - 100.0) / 100.0;
}

/// One sync-window decision: classify channels, apply hysteresis, and —
/// under `polimer` — rebalance the cluster budget and derive throttles.
#[allow(clippy::too_many_arguments)]
fn decide(
    snap: &ChannelLedger,
    prev: &ChannelLedger,
    plan: &GovernorPlan,
    budget_w: f64,
    round_span_s: f64,
    caps: &mut [f64],
    pending: &mut BTreeMap<(u32, u8), (bool, u32)>,
    current: &mut Assignment,
    throttle_rows: &[Table3Row],
    out: &mut GovernOutcome,
) {
    let nodes = caps.len();
    let mut observed_w = vec![0.0f64; nodes];

    // Classify every channel that sensed telemetry this round.
    for (&(node, slot), acc) in snap.channels() {
        let delta = acc.minus(&prev.channel(node, slot));
        if slot == REST_SLOT {
            continue;
        }
        if (node as usize) < nodes {
            observed_w[node as usize] += delta.total_j().max(0.0) / round_span_s;
        }
        let Some(region) = delta.dominant_region() else {
            continue;
        };
        let want = region == Region::MemoryIntensive;
        let key = (node, slot);
        let have = current.capped.contains(&key);
        if want == have {
            pending.remove(&key);
            continue;
        }
        if plan.hysteresis_rounds > 0 {
            let entry = pending.entry(key).or_insert((want, 0));
            if entry.0 != want {
                *entry = (want, 0);
            }
            entry.1 += 1;
            if entry.1 <= plan.hysteresis_rounds {
                out.hysteresis_suppressions += 1;
                continue;
            }
            pending.remove(&key);
        }
        if want {
            current.capped.insert(key);
        } else {
            current.capped.remove(&key);
        }
        out.cap_churn += 1;
    }

    if plan.policy != Policy::Polimer {
        return;
    }

    // Slack reclamation: a node observed under its lower threshold donates
    // a `decrease_rate` fraction of the measured slack back to the pool.
    let mut adjusted = false;
    for n in 0..nodes {
        if observed_w[n] < plan.lower_thresh * caps[n] {
            let target = observed_w[n] / plan.lower_thresh;
            let next = (caps[n] - plan.decrease_rate * (caps[n] - target))
                .clamp(plan.node_floor_w, plan.node_ceiling_w);
            if next < caps[n] {
                caps[n] = next;
                adjusted = true;
            }
        }
    }
    // Grants: a node observed above its upper threshold receives headroom
    // for the observed draw plus an `increase_rate` margin, as far as the
    // remaining pool allows — so `sum(caps) <= budget` holds structurally.
    let mut pool = budget_w - caps.iter().sum::<f64>();
    for n in 0..nodes {
        if observed_w[n] > plan.upper_thresh * caps[n] {
            let need = (observed_w[n] * (1.0 + plan.increase_rate) - caps[n])
                .min(plan.node_ceiling_w - caps[n])
                .min(pool);
            if need > 0.0 {
                caps[n] += need;
                pool -= need;
                adjusted = true;
            }
        }
    }
    if adjusted {
        out.rebalances += 1;
    }

    // Throttle nodes still drawing above their cap: the strongest ladder
    // power setting that fits the per-GPU share of the node cap (or the
    // deepest available setting when none fits).
    for n in 0..nodes {
        let throttle = if observed_w[n] > caps[n] {
            let per_gpu = caps[n] / GPUS_PER_NODE as f64;
            throttle_rows
                .iter()
                .filter(|r| r.setting.value() <= per_gpu)
                .max_by(|a, b| a.setting.value().total_cmp(&b.setting.value()))
                .or_else(|| {
                    throttle_rows
                        .iter()
                        .min_by(|a, b| a.setting.value().total_cmp(&b.setting.value()))
                })
                .map(|r| r.setting)
        } else {
            None
        };
        if throttle.is_some() {
            out.throttled_node_rounds += 1;
        }
        if current.throttle[n] != throttle {
            current.throttle[n] = throttle;
            out.cap_churn += 1;
        }
    }

    let total: f64 = caps.iter().sum();
    out.peak_budget_utilization = out.peak_budget_utilization.max(total / budget_w);
    if total > budget_w * (1.0 + 1e-9) {
        out.budget_exceeded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_workloads::Factors;

    const WINDOW_S: f64 = 15.0;

    fn schedule(nodes: usize) -> Schedule {
        Schedule {
            jobs: Vec::new(),
            per_node: vec![Vec::new(); nodes],
            duration_s: 4.0 * 3600.0,
        }
    }

    fn table() -> Table3 {
        let f = |power, runtime, energy| Factors {
            power_pct: power,
            runtime_pct: runtime,
            energy_pct: energy,
        };
        Table3 {
            freq_rows: vec![
                Table3Row {
                    setting: CapSetting::FreqMhz(1700.0),
                    vai: f(100.0, 100.0, 100.0),
                    mb: f(100.0, 100.0, 100.0),
                },
                Table3Row {
                    setting: CapSetting::FreqMhz(700.0),
                    vai: f(60.0, 140.0, 84.0),
                    mb: f(88.0, 100.0, 88.0),
                },
            ],
            power_rows: vec![
                Table3Row {
                    setting: CapSetting::PowerW(560.0),
                    vai: f(100.0, 100.0, 100.0),
                    mb: f(100.0, 100.0, 100.0),
                },
                Table3Row {
                    setting: CapSetting::PowerW(300.0),
                    vai: f(55.0, 160.0, 88.0),
                    mb: f(90.0, 102.0, 91.8),
                },
                Table3Row {
                    setting: CapSetting::PowerW(100.0),
                    vai: f(20.0, 400.0, 80.0),
                    mb: f(40.0, 200.0, 80.0),
                },
            ],
        }
    }

    fn sample(node: u32, slot: u8, window: u64, power_w: f64) -> WindowEvent {
        WindowEvent {
            node,
            slot,
            sku: 0,
            window,
            rank: window,
            t_s: window as f64 * WINDOW_S,
            span_s: WINDOW_S,
            kind: WindowKind::Sample { power_w, job: None },
        }
    }

    /// `windows` in-order windows of steady `power_w` on every GPU slot of
    /// `nodes` nodes.
    fn steady_events(nodes: u32, windows: u64, power_w: f64) -> Vec<WindowEvent> {
        let mut evs = Vec::new();
        for w in 0..windows {
            for n in 0..nodes {
                for s in 0..GPUS_PER_NODE as u8 {
                    evs.push(sample(n, s, w, power_w));
                }
            }
        }
        evs
    }

    fn resolved(name: &str, nodes: usize) -> ResolvedPlan {
        GovernorPlan::preset(name)
            .unwrap()
            .resolve(nodes, CapSetting::FreqMhz(700.0))
            .unwrap()
    }

    fn run(name: &str, nodes: usize, events: &[WindowEvent]) -> GovernOutcome {
        let sched = schedule(nodes);
        run_governor(
            &sched,
            events,
            StreamConfig::for_plan(None),
            &resolved(name, nodes),
            &table(),
            WINDOW_S,
        )
        .unwrap()
    }

    #[test]
    fn static_policy_caps_everything_from_round_zero() {
        let evs = steady_events(2, 8, 300.0); // memory-intensive
        let out = run("static", 2, &evs);
        let mi = &out.regions[Region::MemoryIntensive.index()];
        assert_eq!(mi.capped_j, mi.joules);
        assert_eq!(out.mi_capture_pct(), 100.0);
        // mb energy factor 88 % → 12 % realized on an all-MI fleet.
        assert!((out.realized_pct() - 12.0).abs() < 1e-9);
        assert_eq!(out.slowdown_pct(), 0.0);
        assert!(!out.budget_exceeded);
    }

    #[test]
    fn greedy_converges_after_one_sync_window() {
        let evs = steady_events(1, 12, 300.0);
        let out = run("greedy", 1, &evs);
        // The first sync window runs uncapped while the classifier warms
        // up; everything after is captured.
        let mi = &out.regions[Region::MemoryIntensive.index()];
        assert!(mi.capped_j > 0.0 && mi.capped_j < mi.joules);
        assert!(out.mi_capture_pct() > 60.0);
        assert!(out.realized_pct() > 0.0);
        assert_eq!(out.stream.late_rejects, 0);
    }

    #[test]
    fn greedy_leaves_compute_intensive_channels_alone() {
        let evs = steady_events(1, 12, 500.0); // compute-intensive
        let out = run("greedy", 1, &evs);
        let ci = &out.regions[Region::ComputeIntensive.index()];
        assert_eq!(ci.capped_j, 0.0);
        assert_eq!(out.realized_pct(), 0.0);
        assert_eq!(out.slowdown_pct(), 0.0);
    }

    #[test]
    fn polimer_hysteresis_defers_the_first_flip() {
        let evs = steady_events(1, 12, 300.0);
        let greedy = run("greedy", 1, &evs);
        let polimer = run("polimer", 1, &evs);
        // One extra round of deferral per channel: polimer captures less.
        assert!(polimer.hysteresis_suppressions > 0);
        assert!(polimer.mi_capture_pct() < greedy.mi_capture_pct());
        assert!(polimer.mi_capture_pct() > 0.0);
    }

    #[test]
    fn polimer_reclaims_slack_and_respects_the_budget() {
        let mut plan = GovernorPlan::preset("polimer").unwrap();
        // Scarce budget: 2 nodes sharing less than 2 ceilings.
        plan.budget_w = Some(3000.0);
        let r = plan.resolve(2, CapSetting::FreqMhz(700.0)).unwrap();
        // Node 0 idles at 100 W/GPU, node 1 runs hot at 520 W/GPU.
        let mut evs = Vec::new();
        for w in 0..16u64 {
            for s in 0..GPUS_PER_NODE as u8 {
                evs.push(sample(0, s, w, 100.0));
                evs.push(sample(1, s, w, 520.0));
            }
        }
        let out = run_governor(
            &schedule(2),
            &evs,
            StreamConfig::for_plan(None),
            &r,
            &table(),
            WINDOW_S,
        )
        .unwrap();
        assert!(out.rebalances > 0);
        assert!(!out.budget_exceeded);
        assert!(out.peak_budget_utilization <= 1.0 + 1e-9);
        // The hot node starts over-cap (1500 W split) and gets throttled
        // until the idle node's slack is reclaimed and granted over.
        assert!(out.throttled_node_rounds > 0);
    }

    #[test]
    fn outcomes_are_deterministic_across_repeat_runs() {
        let evs = steady_events(3, 10, 300.0);
        let a = run("polimer", 3, &evs);
        let b = run("polimer", 3, &evs);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_cap_is_a_typed_error_not_a_panic() {
        let mut plan = GovernorPlan::preset("static").unwrap();
        plan.cap = Some(CapSetting::FreqMhz(123.0));
        let r = plan.resolve(1, CapSetting::FreqMhz(700.0)).unwrap();
        let err = run_governor(
            &schedule(1),
            &[],
            StreamConfig::for_plan(None),
            &r,
            &table(),
            WINDOW_S,
        )
        .unwrap_err();
        assert!(err.to_string().contains("governor cap"));
    }

    #[test]
    fn metrics_publish_under_the_policy_prefix() {
        let evs = steady_events(1, 6, 300.0);
        let out = run("polimer", 1, &evs);
        let mut m = Metrics::new();
        out.publish_metrics(&mut m);
        assert_eq!(m.counter("govern.polimer.rounds"), out.rounds);
        assert!(m.gauge("govern.polimer.realized_pct").is_some());
    }
}
