//! Governor configuration: typed, validated, preset-backed.

use pmss_error::PmssError;
use pmss_gpu::consts::GPUS_PER_NODE;
use pmss_workloads::sweep::CapSetting;

/// Named governor policy presets accepted by `GovernorPlan::preset`.
pub const PRESETS: [&str; 3] = ["static", "greedy", "polimer"];

/// The control policy a governor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's scenario: one cap on every channel, all the time.  No
    /// sensing, no rebalancing — the static reference the online policies
    /// are measured against.
    Static,
    /// Cap exactly the channels classified memory-intensive in the last
    /// sync window, immediately.  No budget machinery.
    Greedy,
    /// The PoLiMEr discipline: greedy mode capping plus hysteresis and
    /// slack-driven reallocation of a cluster-wide power budget across
    /// per-node caps.
    Polimer,
}

impl Policy {
    /// All policies, in presentation order.
    pub fn all() -> [Policy; 3] {
        [Policy::Static, Policy::Greedy, Policy::Polimer]
    }

    /// Canonical preset name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::Greedy => "greedy",
            Policy::Polimer => "polimer",
        }
    }

    /// Parses a preset name; unrecognized names are an explicit error.
    pub fn from_name(name: &str) -> Result<Policy, PmssError> {
        Policy::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                PmssError::invalid_value("governor policy", name, "static | greedy | polimer")
            })
    }
}

/// A validated, serializable governor configuration.
///
/// The defaults follow the PoLiMEr power manager's published constants
/// (30 s balance interval, 0.1 increase/decrease rates, 0.95 thresholds),
/// translated to this repo's 15-second telemetry windows.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorPlan {
    /// The control policy.
    pub policy: Policy,
    /// Cluster-wide GPU power budget, watts; `None` resolves to
    /// `nodes x node_ceiling_w` (no scarcity — budget pressure off).
    pub budget_w: Option<f64>,
    /// Sync-window length in telemetry windows (2 x 15 s = the PoLiMEr
    /// 30 s balance interval).
    pub interval_windows: u32,
    /// Fraction of headroom granted to a node observed above its cap's
    /// upper threshold at each rebalance.
    pub increase_rate: f64,
    /// Fraction of observed slack reclaimed from a node below its cap's
    /// lower threshold at each rebalance.
    pub decrease_rate: f64,
    /// A node observed below `lower_thresh x cap` donates slack.
    pub lower_thresh: f64,
    /// A node observed above `upper_thresh x cap` requests power.
    pub upper_thresh: f64,
    /// Consecutive disagreeing sync windows required before a channel's
    /// mode cap flips (0 = flip immediately).
    pub hysteresis_rounds: u32,
    /// Per-node power-cap floor, watts.
    pub node_floor_w: f64,
    /// Per-node power-cap ceiling, watts.
    pub node_ceiling_w: f64,
    /// The cap applied to memory-intensive channels (every channel under
    /// `static`); `None` resolves to the projection's best no-slowdown
    /// setting, so the governor chases exactly the ceiling it is measured
    /// against.
    pub cap: Option<CapSetting>,
}

impl GovernorPlan {
    /// The plan of a named preset.
    pub fn preset(name: &str) -> Result<GovernorPlan, PmssError> {
        let policy = Policy::from_name(name)?;
        Ok(GovernorPlan {
            policy,
            budget_w: None,
            interval_windows: 2,
            increase_rate: 0.1,
            decrease_rate: 0.1,
            lower_thresh: 0.95,
            upper_thresh: 0.95,
            hysteresis_rounds: match policy {
                Policy::Polimer => 1,
                _ => 0,
            },
            node_floor_w: 300.0 * GPUS_PER_NODE as f64,
            node_ceiling_w: 560.0 * GPUS_PER_NODE as f64,
            cap: None,
        })
    }

    /// Validates every field; returns the first violation as a typed error.
    pub fn validate(&self) -> Result<(), PmssError> {
        let frac = |what: &'static str, v: f64| -> Result<(), PmssError> {
            if !(v.is_finite() && v > 0.0 && v <= 1.0) {
                return Err(PmssError::invalid_value(
                    what,
                    format!("{v}"),
                    "a fraction in (0, 1]",
                ));
            }
            Ok(())
        };
        if self.interval_windows == 0 {
            return Err(PmssError::invalid_value(
                "governor interval_windows",
                "0",
                "at least one telemetry window per sync interval",
            ));
        }
        frac("governor increase_rate", self.increase_rate)?;
        frac("governor decrease_rate", self.decrease_rate)?;
        frac("governor lower_thresh", self.lower_thresh)?;
        frac("governor upper_thresh", self.upper_thresh)?;
        if self.lower_thresh > self.upper_thresh {
            return Err(PmssError::invalid_value(
                "governor thresholds",
                format!("lower {} > upper {}", self.lower_thresh, self.upper_thresh),
                "lower_thresh <= upper_thresh",
            ));
        }
        if !(self.node_floor_w.is_finite() && self.node_floor_w > 0.0) {
            return Err(PmssError::invalid_value(
                "governor node_floor_w",
                format!("{}", self.node_floor_w),
                "a finite positive per-node floor",
            ));
        }
        if !(self.node_ceiling_w.is_finite() && self.node_ceiling_w >= self.node_floor_w) {
            return Err(PmssError::invalid_value(
                "governor node_ceiling_w",
                format!("{}", self.node_ceiling_w),
                "a finite ceiling at or above node_floor_w",
            ));
        }
        if let Some(b) = self.budget_w {
            if !(b.is_finite() && b > 0.0) {
                return Err(PmssError::invalid_value(
                    "governor budget_w",
                    format!("{b}"),
                    "a finite positive cluster budget",
                ));
            }
        }
        if let Some(c) = self.cap {
            if !(c.value().is_finite() && c.value() > 0.0) {
                return Err(PmssError::invalid_value(
                    "governor cap",
                    format!("{}", c.value()),
                    "a finite positive cap value",
                ));
            }
        }
        Ok(())
    }

    /// Resolves the plan against a concrete fleet: fills the automatic
    /// budget and cap, and rejects budgets too small to grant every node
    /// its floor (the invariant `sum(caps) <= budget` would be violated
    /// from round zero).
    pub fn resolve(&self, nodes: usize, auto_cap: CapSetting) -> Result<ResolvedPlan, PmssError> {
        self.validate()?;
        if nodes == 0 {
            return Err(PmssError::invalid_value(
                "governor fleet",
                "0 nodes",
                "at least one node to govern",
            ));
        }
        let budget_w = self.budget_w.unwrap_or(nodes as f64 * self.node_ceiling_w);
        if budget_w < nodes as f64 * self.node_floor_w {
            return Err(PmssError::invalid_value(
                "governor budget_w",
                format!("{budget_w}"),
                format!(
                    "at least nodes x node_floor_w = {} W",
                    nodes as f64 * self.node_floor_w
                ),
            ));
        }
        Ok(ResolvedPlan {
            plan: self.clone(),
            nodes,
            budget_w,
            cap: self.cap.unwrap_or(auto_cap),
        })
    }
}

/// A plan resolved against a concrete fleet, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPlan {
    /// The validated source plan.
    pub plan: GovernorPlan,
    /// Fleet size, nodes.
    pub nodes: usize,
    /// The concrete cluster budget, watts.
    pub budget_w: f64,
    /// The concrete cap applied to governed channels.
    pub cap: CapSetting,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_validate() {
        for name in PRESETS {
            let p = GovernorPlan::preset(name).unwrap();
            p.validate().unwrap();
            assert_eq!(p.policy.name(), name);
        }
        assert!(Policy::from_name("pid").is_err());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut p = GovernorPlan::preset("greedy").unwrap();
        p.interval_windows = 0;
        assert!(p.validate().is_err());

        let mut p = GovernorPlan::preset("polimer").unwrap();
        p.increase_rate = 0.0;
        assert!(p.validate().is_err());
        p.increase_rate = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = GovernorPlan::preset("polimer").unwrap();
        p.lower_thresh = 0.99;
        p.upper_thresh = 0.5;
        assert!(p.validate().is_err());

        let mut p = GovernorPlan::preset("static").unwrap();
        p.node_ceiling_w = p.node_floor_w - 1.0;
        assert!(p.validate().is_err());

        let mut p = GovernorPlan::preset("static").unwrap();
        p.budget_w = Some(-5.0);
        assert!(p.validate().is_err());

        let mut p = GovernorPlan::preset("static").unwrap();
        p.cap = Some(CapSetting::FreqMhz(f64::INFINITY));
        assert!(p.validate().is_err());
    }

    #[test]
    fn resolve_fills_budget_and_cap() {
        let p = GovernorPlan::preset("polimer").unwrap();
        let r = p.resolve(16, CapSetting::FreqMhz(700.0)).unwrap();
        assert_eq!(r.budget_w, 16.0 * p.node_ceiling_w);
        assert_eq!(r.cap, CapSetting::FreqMhz(700.0));
        assert_eq!(r.nodes, 16);
    }

    #[test]
    fn resolve_rejects_infeasible_budgets() {
        let mut p = GovernorPlan::preset("polimer").unwrap();
        p.budget_w = Some(p.node_floor_w * 3.0);
        assert!(p.resolve(4, CapSetting::FreqMhz(700.0)).is_err());
        assert!(p.resolve(0, CapSetting::FreqMhz(700.0)).is_err());
    }
}
