//! Property-based tests of the GPU model's physical invariants.

use pmss_gpu::{Engine, Freq, GpuSettings, KernelProfile, PowerModel, Utilization, VoltageCurve};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelProfile> {
    (
        1e9..1e14f64, // flops
        1e8..1e13f64, // hbm bytes
        0.05..1.0f64, // flop efficiency
        0.5..4.0f64,  // bw oversub
        0.0..0.9f64,  // divergence
        0.0..30.0f64, // serial at fmax
        0.0..30.0f64, // stall
    )
        .prop_map(|(flops, hbm, eff, ov, div, serial, stall)| {
            KernelProfile::builder("prop")
                .flops(flops)
                .hbm_bytes(hbm)
                .flop_efficiency(eff)
                .bw_oversub(ov)
                .divergence(div)
                .serial_at_fmax(serial)
                .stall(stall)
                .build()
        })
}

fn arb_freq() -> impl Strategy<Value = Freq> {
    (500.0..=1700.0f64).prop_map(Freq::from_mhz)
}

proptest! {
    /// Lowering the frequency cap never shortens execution.
    #[test]
    fn runtime_monotone_in_frequency_cap(k in arb_kernel(), lo in 500.0..1700.0f64, hi in 500.0..1700.0f64) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let eng = Engine::default();
        let t_lo = eng.execute(&k, GpuSettings::freq_capped(lo)).time_s;
        let t_hi = eng.execute(&k, GpuSettings::freq_capped(hi)).time_s;
        // Tolerance covers the cap controller's 0.01 MHz bisection grid.
        prop_assert!(t_lo >= t_hi * (1.0 - 1e-4));
    }

    /// Tightening a power cap never increases steady-state busy power, and
    /// the chosen power respects the cap unless it is breached.
    #[test]
    fn power_cap_respected_or_breached(k in arb_kernel(), cap in 100.0..600.0f64) {
        let eng = Engine::default();
        let ex = eng.execute(&k, GpuSettings::power_capped(cap));
        if ex.cap_breached {
            prop_assert!(ex.busy_power_w > cap);
            prop_assert_eq!(ex.freq.mhz(), Freq::MIN.mhz());
        } else if ex.perf.roofline_s > 0.0 {
            prop_assert!(ex.busy_power_w <= cap.min(eng.ppt_w()) + 1e-6);
        }
    }

    /// Energy equals average power times wall time.
    #[test]
    fn energy_consistency(k in arb_kernel(), f in arb_freq()) {
        let eng = Engine::default();
        let ex = eng.execute(&k, GpuSettings::freq_capped(f.mhz()));
        prop_assert!((ex.energy_j - ex.avg_power_w * ex.time_s).abs() <= 1e-6 * ex.energy_j.max(1.0));
        prop_assert!(ex.energy_j >= 0.0);
    }

    /// Busy power always sits between idle and the boost ceiling, and never
    /// exceeds the firmware sustained limit when unbreached.
    #[test]
    fn busy_power_within_physical_bounds(k in arb_kernel(), f in arb_freq()) {
        let eng = Engine::default();
        let ex = eng.execute(&k, GpuSettings::freq_capped(f.mhz()));
        prop_assert!(ex.busy_power_w >= pmss_gpu::consts::GPU_IDLE_W - 1e-9);
        prop_assert!(ex.busy_power_w <= eng.ppt_w() + 1e-6);
    }

    /// Achieved rates never exceed the hardware roofs.
    #[test]
    fn achieved_rates_below_roofs(k in arb_kernel(), f in arb_freq()) {
        let eng = Engine::default();
        let ex = eng.execute(&k, GpuSettings::freq_capped(f.mhz()));
        prop_assert!(ex.perf.hbm_bw <= pmss_gpu::consts::GPU_HBM_BW * (1.0 + 1e-9));
        prop_assert!(ex.perf.flops_per_s <= pmss_gpu::consts::GPU_PEAK_FLOPS * (1.0 + 1e-9));
    }

    /// Power demand is monotone in frequency for any utilization vector
    /// (the invariant the cap controller's bisection relies on).
    #[test]
    fn demand_monotone_in_frequency(alu in 0.0..1.0f64, ondie in 0.0..1.0f64, hbm in 0.0..1.0f64) {
        let pm = PowerModel::default();
        let u = Utilization { alu, ondie, hbm, active: 1.0 };
        let mut prev = -1.0;
        for mhz in [500.0, 800.0, 1100.0, 1400.0, 1700.0] {
            let p = pm.demand_w(u, Freq::from_mhz(mhz));
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// The voltage curve's dynamic scale stays within (0, 1] over the DVFS
    /// range for any plausible curve shape.
    #[test]
    fn dyn_scale_bounded(intercept in 0.3..0.8f64, f in arb_freq()) {
        let curve = VoltageCurve { v_intercept: intercept, v_slope: 1.0 - intercept };
        let s = curve.dyn_scale(f);
        prop_assert!(s > 0.0 && s <= 1.0 + 1e-12);
    }

    /// Scaling a kernel's work scales time and energy proportionally
    /// (steady-state linearity).
    #[test]
    fn work_scaling_is_linear(k in arb_kernel(), factor in 1.5..4.0f64) {
        let eng = Engine::default();
        let a = eng.execute(&k, GpuSettings::uncapped());
        let b = eng.execute(&k.scaled(factor), GpuSettings::uncapped());
        prop_assert!((b.time_s / a.time_s - factor).abs() < 1e-6 * factor);
        prop_assert!((b.energy_j / a.energy_j - factor).abs() < 1e-6 * factor);
    }
}
