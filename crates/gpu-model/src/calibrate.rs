//! Power-model calibration: least-squares fitting of the component
//! coefficients from measured (utilization, frequency, power) points.
//!
//! The default [`PowerModel`] is hand-calibrated
//! to the paper's anchors; this module automates the process so the model
//! can be re-fit to a different GPU (or to better measurements) — the
//! "assessments have to be re-evaluated based on technology developments"
//! direction of the paper's discussion.
//!
//! The model is linear in its five coefficients once the voltage curve is
//! fixed:
//!
//! ```text
//! P = c_idle·1 + c_clock·(a·dyn) + c_alu·(u_alu·dyn)
//!   + c_ondie·(u_ondie·dyn) + c_hbm·u_hbm
//! ```
//!
//! so ordinary least squares on those five features recovers it.

use crate::freq::{Freq, VoltageCurve};
use crate::power::{PowerModel, Utilization};

/// One calibration measurement.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Datapath utilizations during the measurement.
    pub util: Utilization,
    /// Core frequency during the measurement.
    pub freq: Freq,
    /// Measured package power, in watts.
    pub power_w: f64,
}

/// Error from a calibration attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer observations than coefficients.
    TooFewObservations,
    /// The normal equations are singular (degenerate design, e.g. all
    /// observations at identical operating points).
    SingularSystem,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewObservations => {
                write!(f, "need at least 5 observations to fit 5 coefficients")
            }
            CalibrationError::SingularSystem => {
                write!(
                    f,
                    "degenerate observation set: normal equations are singular"
                )
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

const N_COEFFS: usize = 5;

fn features(util: Utilization, freq: Freq, curve: &VoltageCurve) -> [f64; N_COEFFS] {
    let dyn_scale = curve.dyn_scale(freq);
    [
        1.0,
        dyn_scale * util.active,
        util.alu * dyn_scale,
        util.ondie * dyn_scale,
        util.hbm,
    ]
}

/// Solves `A x = b` for a small dense symmetric positive-definite system
/// via Gaussian elimination with partial pivoting.
fn solve(mut a: [[f64; N_COEFFS]; N_COEFFS], mut b: [f64; N_COEFFS]) -> Option<[f64; N_COEFFS]> {
    for col in 0..N_COEFFS {
        // Pivot.
        let pivot = (col..N_COEFFS).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("no NaN")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in (col + 1)..N_COEFFS {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (x, &p) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0; N_COEFFS];
    for col in (0..N_COEFFS).rev() {
        let mut acc = b[col];
        for k in (col + 1)..N_COEFFS {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Fits a [`PowerModel`] to `observations` under a fixed voltage curve.
pub fn fit(
    observations: &[Observation],
    curve: VoltageCurve,
) -> Result<PowerModel, CalibrationError> {
    if observations.len() < N_COEFFS {
        return Err(CalibrationError::TooFewObservations);
    }

    // Normal equations: (XᵀX) c = Xᵀy.
    let mut xtx = [[0.0; N_COEFFS]; N_COEFFS];
    let mut xty = [0.0; N_COEFFS];
    for obs in observations {
        let f = features(obs.util, obs.freq, &curve);
        for i in 0..N_COEFFS {
            for j in 0..N_COEFFS {
                xtx[i][j] += f[i] * f[j];
            }
            xty[i] += f[i] * obs.power_w;
        }
    }

    let c = solve(xtx, xty).ok_or(CalibrationError::SingularSystem)?;
    Ok(PowerModel {
        idle_w: c[0],
        clock_w: c[1],
        alu_max_w: c[2],
        ondie_max_w: c[3],
        hbm_max_w: c[4],
        curve,
    })
}

/// Root-mean-square error of `model` against `observations`, in watts.
pub fn rmse(model: &PowerModel, observations: &[Observation]) -> f64 {
    if observations.is_empty() {
        return 0.0;
    }
    let sse: f64 = observations
        .iter()
        .map(|o| (model.demand_w(o.util, o.freq) - o.power_w).powi(2))
        .sum();
    (sse / observations.len() as f64).sqrt()
}

/// Synthesizes a calibration set from a reference model: the anchor
/// operating points the paper's benchmarks visit (idle, streaming, ridge
/// constituents, compute tail — across the frequency ladder).
pub fn anchor_observations(reference: &PowerModel) -> Vec<Observation> {
    let mut out = Vec::new();
    let anchors = [
        Utilization::idle(),
        // Memory-bound streaming.
        Utilization {
            alu: 0.016,
            ondie: 0.25,
            hbm: 1.0,
            active: 1.0,
        },
        // Compute-bound tail.
        Utilization {
            alu: 1.0,
            ondie: 0.003,
            hbm: 0.003,
            active: 1.0,
        },
        // L2-resident bandwidth.
        Utilization {
            alu: 0.0,
            ondie: 1.0,
            hbm: 0.01,
            active: 1.0,
        },
        // Balanced mid-intensity point.
        Utilization {
            alu: 0.5,
            ondie: 0.12,
            hbm: 0.5,
            active: 1.0,
        },
    ];
    for u in anchors {
        for mhz in [1700.0, 1300.0, 900.0, 500.0] {
            let f = Freq::from_mhz(mhz);
            out.push(Observation {
                util: u,
                freq: f,
                power_w: reference.demand_w(u, f),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_recovers_reference_model_exactly_from_clean_data() {
        let reference = PowerModel::default();
        let obs = anchor_observations(&reference);
        let fitted = fit(&obs, reference.curve).expect("fit");
        assert!((fitted.idle_w - reference.idle_w).abs() < 1e-6);
        assert!((fitted.clock_w - reference.clock_w).abs() < 1e-6);
        assert!((fitted.alu_max_w - reference.alu_max_w).abs() < 1e-6);
        assert!((fitted.ondie_max_w - reference.ondie_max_w).abs() < 1e-6);
        assert!((fitted.hbm_max_w - reference.hbm_max_w).abs() < 1e-6);
        assert!(rmse(&fitted, &obs) < 1e-6);
    }

    #[test]
    fn fit_is_robust_to_measurement_noise() {
        let reference = PowerModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy: Vec<Observation> = anchor_observations(&reference)
            .into_iter()
            .map(|mut o| {
                o.power_w += rng.gen_range(-4.0..4.0);
                o
            })
            .collect();
        let fitted = fit(&noisy, reference.curve).expect("fit");
        assert!((fitted.idle_w - reference.idle_w).abs() < 8.0);
        assert!((fitted.hbm_max_w - reference.hbm_max_w).abs() < 15.0);
        assert!(rmse(&fitted, &noisy) < 6.0);
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let reference = PowerModel::default();
        let obs = &anchor_observations(&reference)[..3];
        assert_eq!(
            fit(obs, reference.curve).unwrap_err(),
            CalibrationError::TooFewObservations
        );
    }

    #[test]
    fn degenerate_design_is_an_error() {
        let reference = PowerModel::default();
        let one = Observation {
            util: Utilization::idle(),
            freq: Freq::MAX,
            power_w: 89.0,
        };
        let obs = vec![one; 10];
        assert_eq!(
            fit(&obs, reference.curve).unwrap_err(),
            CalibrationError::SingularSystem
        );
    }

    #[test]
    fn fitted_model_generalizes_beyond_anchors() {
        let reference = PowerModel::default();
        let fitted = fit(&anchor_observations(&reference), reference.curve).expect("fit");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let u = Utilization {
                alu: rng.gen_range(0.0..1.0),
                ondie: rng.gen_range(0.0..1.0),
                hbm: rng.gen_range(0.0..1.0),
                active: 1.0,
            };
            let f = Freq::from_mhz(rng.gen_range(500.0..1700.0));
            let err = (fitted.demand_w(u, f) - reference.demand_w(u, f)).abs();
            assert!(err < 1e-6, "generalization error {err}");
        }
    }
}
