//! Stateful device wrappers: a GPU with its power-management settings and
//! boost budget, and a compute node holding four of them (paper Fig. 1).

use rand::Rng;

use crate::boost::BoostBudget;
use crate::consts::{GPUS_PER_NODE, NODE_CPU_DYN_W, NODE_REST_IDLE_W};
use crate::engine::{Engine, Execution, GpuSettings};
use crate::kernel::KernelProfile;
use crate::trace::{sample_execution, PowerSample, TraceConfig};

/// One MI250X-class GPU with sticky power-management settings.
#[derive(Debug, Clone, Default)]
pub struct GpuDevice {
    engine: Engine,
    settings: GpuSettings,
    boost: BoostBudget,
}

impl GpuDevice {
    /// Device with a custom engine (e.g. a re-calibrated power model).
    pub fn with_engine(engine: Engine) -> Self {
        GpuDevice {
            engine,
            ..Default::default()
        }
    }

    /// Current power-management settings.
    pub fn settings(&self) -> GpuSettings {
        self.settings
    }

    /// Applies new power-management settings (sticky across runs).
    pub fn apply(&mut self, settings: GpuSettings) {
        self.settings = settings;
    }

    /// The underlying execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs a kernel under the current settings.
    pub fn run(&self, kernel: &KernelProfile) -> Execution {
        self.engine.execute(kernel, self.settings)
    }

    /// Runs a kernel and synthesizes its sensor trace, advancing the boost
    /// budget.
    pub fn run_traced<R: Rng + ?Sized>(
        &mut self,
        kernel: &KernelProfile,
        cfg: TraceConfig,
        rng: &mut R,
    ) -> (Execution, Vec<PowerSample>) {
        let ex = self.engine.execute(kernel, self.settings);
        let trace = sample_execution(&ex, &mut self.boost, cfg, rng);
        (ex, trace)
    }
}

/// Rest-of-node power model (CPU package, DIMMs, NIC, cooling share).
///
/// The paper's analysis is GPU-centric — "the other components are dwarfed
/// (< 20 %) by the GPU power consumption on a fully utilized node" — but the
/// node-level telemetry stream (Table II a) reports the whole node, so the
/// fleet simulation needs this term for Fig. 2(b).
#[derive(Debug, Clone, Copy)]
pub struct NodeRestModel {
    /// Baseline non-GPU node power, in watts.
    pub idle_w: f64,
    /// Additional CPU package power at full host utilization, in watts.
    pub cpu_dyn_w: f64,
}

impl Default for NodeRestModel {
    fn default() -> Self {
        NodeRestModel {
            idle_w: NODE_REST_IDLE_W,
            cpu_dyn_w: NODE_CPU_DYN_W,
        }
    }
}

impl NodeRestModel {
    /// Non-GPU node power at the given host CPU utilization in `[0, 1]`.
    pub fn power_w(&self, cpu_util: f64) -> f64 {
        self.idle_w + self.cpu_dyn_w * cpu_util.clamp(0.0, 1.0)
    }
}

/// A Frontier-like compute node: four GPUs plus the rest-of-node model.
#[derive(Debug, Clone)]
pub struct Node {
    gpus: Vec<GpuDevice>,
    rest: NodeRestModel,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            gpus: (0..GPUS_PER_NODE).map(|_| GpuDevice::default()).collect(),
            rest: NodeRestModel::default(),
        }
    }
}

impl Node {
    /// The node's GPUs.
    pub fn gpus(&self) -> &[GpuDevice] {
        &self.gpus
    }

    /// Mutable access to the node's GPUs.
    pub fn gpus_mut(&mut self) -> &mut [GpuDevice] {
        &mut self.gpus
    }

    /// Applies the same settings to every GPU in the node.
    pub fn apply_all(&mut self, settings: GpuSettings) {
        for g in &mut self.gpus {
            g.apply(settings);
        }
    }

    /// Rest-of-node power model.
    pub fn rest(&self) -> NodeRestModel {
        self.rest
    }

    /// Whole-node power given per-GPU powers and host CPU utilization.
    pub fn node_power_w(&self, gpu_powers_w: &[f64], cpu_util: f64) -> f64 {
        debug_assert_eq!(gpu_powers_w.len(), self.gpus.len());
        gpu_powers_w.iter().sum::<f64>() + self.rest.power_w(cpu_util)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn settings_are_sticky() {
        let mut g = GpuDevice::default();
        g.apply(GpuSettings::freq_capped(1100.0));
        let k = KernelProfile::builder("k")
            .flops(1e13)
            .hbm_bytes(1e10)
            .build();
        let ex = g.run(&k);
        assert_eq!(ex.freq.mhz(), 1100.0);
    }

    #[test]
    fn node_has_four_gpus() {
        let n = Node::default();
        assert_eq!(n.gpus().len(), 4);
    }

    #[test]
    fn node_power_sums_components() {
        let n = Node::default();
        let p = n.node_power_w(&[400.0, 400.0, 400.0, 400.0], 0.5);
        assert_eq!(p, 1600.0 + NODE_REST_IDLE_W + 0.5 * NODE_CPU_DYN_W);
    }

    #[test]
    fn gpu_dominates_busy_node_power() {
        // Paper Sec. VI: non-GPU components are < 20 % of a busy node.
        let n = Node::default();
        let gpu = [500.0; 4];
        let total = n.node_power_w(&gpu, 1.0);
        let non_gpu = total - 2000.0;
        assert!(non_gpu / total < 0.2, "non-GPU share {}", non_gpu / total);
    }

    #[test]
    fn run_traced_produces_samples() {
        let mut g = GpuDevice::default();
        let k = KernelProfile::builder("long")
            .hbm_bytes(3.2e12 * 60.0)
            .flops(1.0)
            .build();
        let mut rng = StdRng::seed_from_u64(2);
        let (ex, trace) = g.run_traced(&k, TraceConfig::default(), &mut rng);
        assert!(ex.time_s >= 59.0);
        assert!(!trace.is_empty());
    }
}
