//! Execution engine: combines the roofline performance model, the power
//! model, and the cap controller into a single steady-state execution
//! estimate — the model analog of "run the benchmark and read runtime and
//! sustained power".
//!
//! Like the paper's measurements, the engine reports *steady-state* power:
//! boost excursions above the sustained firmware limit are a telemetry-side
//! phenomenon (see [`crate::boost`] and [`crate::trace`]) and do not affect
//! time-to-solution here.

use crate::cap::{solve_freq_for_cap, CapOutcome};
use crate::consts::GPU_PPT_W;
use crate::freq::Freq;
use crate::kernel::KernelProfile;
use crate::perf::{self, Bottleneck, PerfEstimate};
use crate::power::{PowerBreakdown, PowerModel, Utilization};
use pmss_error::PmssError;

/// Software power-management settings applied to a GPU, i.e. the paper's
/// two knobs: a DVFS frequency cap and a package power cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSettings {
    /// Maximum allowed core clock.
    pub freq_cap: Freq,
    /// Software package power cap, in watts; `None` leaves only the firmware
    /// sustained limit in force.
    pub power_cap_w: Option<f64>,
}

impl Default for GpuSettings {
    fn default() -> Self {
        GpuSettings {
            freq_cap: Freq::MAX,
            power_cap_w: None,
        }
    }
}

impl GpuSettings {
    /// Uncapped operation.
    pub fn uncapped() -> Self {
        Self::default()
    }

    /// Frequency cap at `mhz`, no power cap.
    pub fn freq_capped(mhz: f64) -> Self {
        GpuSettings {
            freq_cap: Freq::from_mhz(mhz),
            power_cap_w: None,
        }
    }

    /// Power cap at `watts`, frequency uncapped.
    pub fn power_capped(watts: f64) -> Self {
        GpuSettings {
            freq_cap: Freq::MAX,
            power_cap_w: Some(watts),
        }
    }

    /// The effective package power limit: the software cap if set, clamped
    /// from above by the firmware sustained limit.
    pub fn effective_limit_w(&self, ppt_w: f64) -> f64 {
        self.power_cap_w.map_or(ppt_w, |c| c.min(ppt_w))
    }
}

/// Utilization assumed during latency-bound serial phases: pipelines mostly
/// idle, a trickle of dependent instructions and memory traffic.  Yields
/// ~150 W at the maximum clock — inside the paper's region-1 band (< 200 W).
const SERIAL_UTIL: Utilization = Utilization {
    alu: 0.05,
    ondie: 0.03,
    hbm: 0.04,
    active: 1.0,
};

/// Completed (estimated) execution of one kernel.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Kernel label.
    pub kernel_name: String,
    /// Settings in force.
    pub settings: GpuSettings,
    /// Operating frequency chosen by the cap controller.
    pub freq: Freq,
    /// Total wall time, in seconds.
    pub time_s: f64,
    /// Total GPU package energy, in joules.
    pub energy_j: f64,
    /// Mean package power over the whole execution, in watts.
    pub avg_power_w: f64,
    /// Package power during the throughput-bound portion, in watts.
    pub busy_power_w: f64,
    /// Package power during latency-bound serial phases, in watts.
    pub serial_power_w: f64,
    /// Package power while stalled (GPU idle), in watts.
    pub idle_power_w: f64,
    /// Power breakdown during the throughput-bound portion.
    pub breakdown: PowerBreakdown,
    /// Performance detail at the operating point.
    pub perf: PerfEstimate,
    /// True when the power limit could not be met even at the frequency
    /// floor (observed power exceeds the cap, paper Fig. 6d).
    pub cap_breached: bool,
    /// True when the firmware sustained limit (not the software cap) is what
    /// throttled the kernel — only happens near the roofline ridge.
    pub ppt_throttled: bool,
    /// Demand evaluations spent by the two cap solves (throughput-bound and
    /// serial phases) that produced this execution; observability only.
    pub solver_iters: u32,
}

impl Execution {
    /// Energy in the paper's reporting unit.
    pub fn energy_mwh(&self) -> f64 {
        self.energy_j / crate::consts::JOULES_PER_MWH
    }

    /// Dominant bottleneck shorthand.
    pub fn bottleneck(&self) -> Bottleneck {
        self.perf.bottleneck
    }
}

/// The execution engine: owns a calibrated power model and the firmware
/// sustained power limit.
#[derive(Debug, Clone)]
pub struct Engine {
    power: PowerModel,
    ppt_w: f64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            power: PowerModel::default(),
            ppt_w: GPU_PPT_W,
        }
    }
}

impl Engine {
    /// Engine with a custom power model and firmware limit.
    pub fn new(power: PowerModel, ppt_w: f64) -> Self {
        Engine { power, ppt_w }
    }

    /// The calibrated power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The firmware sustained power limit, in watts.
    pub fn ppt_w(&self) -> f64 {
        self.ppt_w
    }

    /// 64-bit FNV-1a fingerprint of the engine's calibration — the PPT
    /// limit, every power-model coefficient, and the voltage curve, each
    /// taken through [`f64::to_bits`].  Two engines with the same
    /// fingerprint execute every kernel bit-identically, so [`ExecCache`]
    /// folds it into the key to keep differently-calibrated SKUs from
    /// sharing executions.
    ///
    /// [`ExecCache`]: crate::cache::ExecCache
    pub fn calibration_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [
            self.ppt_w.to_bits(),
            self.power.idle_w.to_bits(),
            self.power.clock_w.to_bits(),
            self.power.alu_max_w.to_bits(),
            self.power.ondie_max_w.to_bits(),
            self.power.hbm_max_w.to_bits(),
            self.power.curve.v_intercept.to_bits(),
            self.power.curve.v_slope.to_bits(),
        ] {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Package power demand of `kernel`'s throughput phase at frequency `f`.
    pub fn busy_demand_w(&self, kernel: &KernelProfile, f: Freq) -> f64 {
        let est = perf::estimate(kernel, f);
        if est.roofline_s > 0.0 {
            self.power.demand_w(est.util, f)
        } else {
            self.power.demand_w(SERIAL_UTIL, f)
        }
    }

    /// Runs `kernel` under `settings`, returning the steady-state estimate.
    ///
    /// # Panics
    /// Panics if the kernel profile fails validation; use
    /// [`Engine::try_execute`] for a fallible variant.
    pub fn execute(&self, kernel: &KernelProfile, settings: GpuSettings) -> Execution {
        self.try_execute(kernel, settings)
            .unwrap_or_else(|e| panic!("invalid kernel profile: {e}"))
    }

    /// Fallible variant of [`Engine::execute`]: returns the validation
    /// error instead of panicking on a malformed kernel profile.
    pub fn try_execute(
        &self,
        kernel: &KernelProfile,
        settings: GpuSettings,
    ) -> Result<Execution, PmssError> {
        kernel.validate()?;

        let limit = settings.effective_limit_w(self.ppt_w);

        // The DVFS controller tracks phases: the throughput-bound portion
        // and the latency-bound serial portion throttle independently, each
        // to the highest frequency that satisfies the limit for *its* power
        // draw.  (A 140 W cap must also bind during a ~150 W serial phase.)
        let roof_outcome: CapOutcome =
            solve_freq_for_cap(limit, settings.freq_cap, |f| self.busy_demand_w(kernel, f));
        let serial_outcome: CapOutcome = solve_freq_for_cap(limit, settings.freq_cap, |f| {
            self.power.demand_w(SERIAL_UTIL, f)
        });

        let freq = roof_outcome.freq;
        let mut est = perf::estimate(kernel, freq);
        if kernel.serial_at_fmax_s > 0.0 {
            let serial_s = kernel.serial_at_fmax_s / serial_outcome.freq.ratio();
            est.time_s += serial_s - est.serial_s;
            est.serial_s = serial_s;
        }

        let breakdown = if est.roofline_s > 0.0 {
            self.power.demand(est.util, freq)
        } else {
            PowerBreakdown::default()
        };
        let busy_power_w = breakdown.total();
        let serial_power_w = self.power.demand_w(SERIAL_UTIL, serial_outcome.freq);
        let idle_power_w = self.power.demand_w(Utilization::idle(), freq);

        let energy_j = busy_power_w * est.roofline_s
            + serial_power_w * est.serial_s
            + idle_power_w * est.stall_s;
        let avg_power_w = if est.time_s > 0.0 {
            energy_j / est.time_s
        } else {
            idle_power_w
        };

        let cap_breached = (est.roofline_s > 0.0 && roof_outcome.breached)
            || (est.serial_s > 0.0 && serial_outcome.breached);

        // The firmware limit throttled (rather than the software cap) when
        // demand at the settings' frequency cap exceeds the PPT even though
        // the software cap alone would have allowed it.
        let unconstrained = self.busy_demand_w(kernel, settings.freq_cap);
        let ppt_throttled =
            unconstrained > self.ppt_w && settings.power_cap_w.is_none_or(|c| c >= self.ppt_w);

        Ok(Execution {
            kernel_name: kernel.name.clone(),
            settings,
            freq,
            time_s: est.time_s,
            energy_j,
            avg_power_w,
            busy_power_w: if est.roofline_s > 0.0 {
                busy_power_w
            } else {
                serial_power_w
            },
            serial_power_w,
            idle_power_w,
            breakdown,
            perf: est,
            cap_breached,
            ppt_throttled,
            solver_iters: roof_outcome.iters + serial_outcome.iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{GPU_HBM_BW, GPU_TDP_W};

    fn vai(ai: f64) -> KernelProfile {
        let bytes = 64e9;
        KernelProfile::builder(format!("vai-{ai}"))
            .flops(ai * bytes)
            .hbm_bytes(bytes)
            .flop_efficiency(0.268)
            .bw_oversub(1.0)
            .build()
    }

    #[test]
    fn uncapped_streaming_matches_anchor() {
        let eng = Engine::default();
        let ex = eng.execute(&vai(1.0 / 16.0), GpuSettings::uncapped());
        assert!(
            (375.0..=392.0).contains(&ex.busy_power_w),
            "streaming power {}",
            ex.busy_power_w
        );
        assert!(!ex.cap_breached);
        assert!(!ex.ppt_throttled);
        // >90% of HBM peak, like the paper's ">90% performance" claim.
        assert!(ex.perf.hbm_bw > 0.9 * GPU_HBM_BW);
    }

    #[test]
    fn ridge_saturates_at_the_firmware_limit() {
        let eng = Engine::default();
        let ex = eng.execute(&vai(4.0), GpuSettings::uncapped());
        assert!(ex.ppt_throttled, "ridge must hit the PPT");
        assert!(
            (ex.busy_power_w - GPU_PPT_W).abs() < 2.0,
            "ridge power {} vs PPT",
            ex.busy_power_w
        );
        assert!(ex.busy_power_w < GPU_TDP_W);
    }

    #[test]
    fn power_peaks_at_the_ridge_across_intensities() {
        let eng = Engine::default();
        let power_at = |ai: f64| eng.execute(&vai(ai), GpuSettings::uncapped()).busy_power_w;
        let ridge = power_at(4.0);
        for ai in [1.0 / 16.0, 0.25, 1.0, 64.0, 1024.0] {
            assert!(power_at(ai) <= ridge + 1e-9, "ai {ai} exceeds ridge power");
        }
        // Compute-bound tail settles near 420 W (paper: "decreases to 420").
        let tail = power_at(1024.0);
        assert!((410.0..=430.0).contains(&tail), "tail {tail}");
    }

    #[test]
    fn frequency_cap_reduces_power_and_stretches_runtime() {
        let eng = Engine::default();
        let k = vai(1024.0);
        let base = eng.execute(&k, GpuSettings::uncapped());
        let capped = eng.execute(&k, GpuSettings::freq_capped(900.0));
        assert!(capped.busy_power_w < base.busy_power_w);
        assert!(capped.time_s > base.time_s);
        assert_eq!(capped.freq.mhz(), 900.0);
    }

    #[test]
    fn compute_bound_energy_is_u_shaped_in_frequency() {
        // Paper Fig. 5 / Table III: energy-to-solution improves at moderate
        // caps and regresses at 700 MHz (106.3 % average).
        let eng = Engine::default();
        let k = vai(1024.0);
        let e = |mhz: f64| eng.execute(&k, GpuSettings::freq_capped(mhz)).energy_j;
        let e1700 = e(1700.0);
        let e1300 = e(1300.0);
        let e700 = e(700.0);
        assert!(e1300 < e1700, "moderate cap saves energy");
        assert!(
            e700 > e1300,
            "deep cap regresses toward the idle-energy wall"
        );
    }

    #[test]
    fn power_cap_only_affects_kernels_that_exceed_it() {
        // Paper Sec. IV-A: "a power limit only affects codes surpassing the
        // limit, while a set frequency affects all".
        let eng = Engine::default();
        let mem = vai(1.0 / 16.0); // ~380 W uncapped
        let base = eng.execute(&mem, GpuSettings::uncapped());
        let capped_high = eng.execute(&mem, GpuSettings::power_capped(500.0));
        assert!((capped_high.time_s - base.time_s).abs() / base.time_s < 1e-9);
        let capped_low = eng.execute(&mem, GpuSettings::power_capped(300.0));
        assert!(capped_low.time_s > base.time_s);
        assert!(capped_low.busy_power_w <= 300.0 + 1e-6);
    }

    #[test]
    fn hbm_heavy_kernel_breaches_low_caps() {
        // Paper Fig. 6d: 140 W / 200 W caps are breached by HBM-resident
        // loads because HBM power cannot be shed by the core clock.
        let eng = Engine::default();
        let mb = KernelProfile::builder("mb-hbm")
            .hbm_bytes(64e9)
            .bw_oversub(3.0)
            .flops(1.0)
            .build();
        let ex = eng.execute(&mb, GpuSettings::power_capped(200.0));
        assert!(ex.cap_breached);
        assert!(ex.busy_power_w > 200.0);
        assert_eq!(ex.freq.mhz(), Freq::MIN.mhz());
    }

    #[test]
    fn energy_integrates_phases() {
        let eng = Engine::default();
        let k = KernelProfile::builder("phased")
            .flops(1e13)
            .hbm_bytes(1e11)
            .serial_at_fmax(2.0)
            .stall(3.0)
            .build();
        let ex = eng.execute(&k, GpuSettings::uncapped());
        assert!(ex.perf.stall_s == 3.0);
        assert!(ex.energy_j > 0.0);
        assert!((ex.avg_power_w * ex.time_s - ex.energy_j).abs() < 1e-6);
        // Average power must sit below the busy power because of the
        // low-power serial and stall phases.
        assert!(ex.avg_power_w < ex.busy_power_w);
    }

    #[test]
    fn stalled_kernel_draws_idle_power() {
        let eng = Engine::default();
        let k = KernelProfile::builder("io").stall(10.0).build();
        let ex = eng.execute(&k, GpuSettings::uncapped());
        assert!((ex.avg_power_w - 89.0).abs() < 1.0, "{}", ex.avg_power_w);
    }
}

#[cfg(test)]
mod combined_cap_tests {
    use super::*;
    use crate::kernel::KernelProfile;

    fn streaming() -> KernelProfile {
        KernelProfile::builder("s")
            .hbm_bytes(64e9)
            .flops(4e9)
            .bw_oversub(1.0)
            .build()
    }

    #[test]
    fn both_caps_together_bind_at_the_tighter_one() {
        let eng = Engine::default();
        let k = streaming();
        // Frequency cap that alone gives ~200 W, power cap far above it:
        // frequency binds.
        let both = GpuSettings {
            freq_cap: Freq::from_mhz(700.0),
            power_cap_w: Some(500.0),
        };
        let freq_only = eng.execute(&k, GpuSettings::freq_capped(700.0));
        let combined = eng.execute(&k, both);
        assert!((combined.time_s - freq_only.time_s).abs() < 1e-9);

        // Power cap tighter than what the frequency cap alone reaches:
        // power binds.
        let tight = GpuSettings {
            freq_cap: Freq::from_mhz(1500.0),
            power_cap_w: Some(200.0),
        };
        let ex = eng.execute(&k, tight);
        assert!(ex.busy_power_w <= 200.0 + 1e-6);
        assert!(ex.freq.mhz() < 1500.0);
    }

    #[test]
    fn effective_limit_combines_software_cap_and_ppt() {
        let s = GpuSettings::power_capped(900.0);
        // A software cap above the firmware limit is clamped by it.
        assert_eq!(s.effective_limit_w(540.0), 540.0);
        let s = GpuSettings::power_capped(300.0);
        assert_eq!(s.effective_limit_w(540.0), 300.0);
    }

    #[test]
    fn execution_reports_paper_units() {
        let eng = Engine::default();
        let ex = eng.execute(&streaming(), GpuSettings::uncapped());
        let mwh = ex.energy_mwh();
        assert!((mwh - ex.energy_j / 3.6e9).abs() < 1e-18);
    }
}

#[cfg(test)]
mod try_execute_tests {
    use super::*;
    use crate::kernel::KernelProfile;

    #[test]
    fn invalid_kernel_is_an_error_not_a_panic() {
        let mut k = KernelProfile::builder("bad")
            .flops(1e9)
            .hbm_bytes(1e9)
            .build();
        k.flop_efficiency = 2.0;
        let err = Engine::default()
            .try_execute(&k, GpuSettings::uncapped())
            .unwrap_err();
        assert!(err.to_string().contains("flop_efficiency"), "{err}");
    }

    #[test]
    fn valid_kernel_matches_infallible_path() {
        let k = KernelProfile::builder("ok")
            .flops(1e12)
            .hbm_bytes(1e10)
            .build();
        let eng = Engine::default();
        let a = eng.execute(&k, GpuSettings::uncapped());
        let b = eng.try_execute(&k, GpuSettings::uncapped()).unwrap();
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }
}
