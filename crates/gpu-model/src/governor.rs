//! DVFS governors: software frequency-selection policies on top of the
//! device model.
//!
//! The paper's projection assumes one *static* cap for everything; its
//! discussion motivates smarter software-driven policies ("empowering HPC
//! professionals to optimize the power-performance trade-off").  This
//! module implements the classic per-kernel policies as an extension:
//!
//! * [`Governor::Fixed`] — a static frequency cap (the paper's Table V
//!   scenario);
//! * [`Governor::EnergyOptimal`] — per-kernel argmin of energy-to-solution
//!   over the ladder (the oracle the paper's upper bound approximates);
//! * [`Governor::SlowdownBudget`] — minimum-energy frequency subject to a
//!   time-to-solution constraint, the policy production systems actually
//!   deploy (GEOPM-style "≤ x % slowdown");
//! * [`Governor::PowerBudget`] — a static package power cap.

use pmss_error::PmssError;

use crate::engine::{Engine, Execution, GpuSettings};
use crate::freq::DvfsLadder;
use crate::kernel::KernelProfile;

/// A frequency-selection policy.
#[derive(Debug, Clone)]
pub enum Governor {
    /// Static frequency cap, in MHz.
    Fixed(f64),
    /// Per-kernel energy-to-solution minimizer over the DVFS ladder.
    EnergyOptimal,
    /// Per-kernel energy minimizer subject to `time <= (1 + budget) *
    /// time_uncapped`.
    SlowdownBudget {
        /// Tolerated fractional slowdown (0.05 = 5 %).
        budget: f64,
    },
    /// Static package power cap, in watts.
    PowerBudget(f64),
}

/// Outcome of governing one kernel.
#[derive(Debug, Clone)]
pub struct Governed {
    /// The chosen operating settings.
    pub settings: GpuSettings,
    /// The execution under those settings.
    pub execution: Execution,
    /// The uncapped reference execution.
    pub baseline: Execution,
}

impl Governed {
    /// Fractional energy saving versus uncapped (positive = saved).
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.execution.energy_j / self.baseline.energy_j
    }

    /// Fractional slowdown versus uncapped (positive = slower).
    pub fn slowdown(&self) -> f64 {
        self.execution.time_s / self.baseline.time_s - 1.0
    }
}

impl Governor {
    /// Validates the policy's parameters; the first violation is returned
    /// as a typed error.
    pub fn validate(&self) -> Result<(), PmssError> {
        match self {
            Governor::Fixed(mhz) => {
                if !(mhz.is_finite() && *mhz > 0.0) {
                    return Err(PmssError::invalid_value(
                        "governor frequency cap",
                        format!("{mhz}"),
                        "a finite positive frequency in MHz",
                    ));
                }
            }
            Governor::PowerBudget(watts) => {
                if !(watts.is_finite() && *watts > 0.0) {
                    return Err(PmssError::invalid_value(
                        "governor power budget",
                        format!("{watts}"),
                        "a finite positive power cap in watts",
                    ));
                }
            }
            Governor::EnergyOptimal => {}
            Governor::SlowdownBudget { budget } => {
                if !(budget.is_finite() && *budget >= 0.0) {
                    return Err(PmssError::invalid_value(
                        "governor slowdown budget",
                        format!("{budget}"),
                        "a finite non-negative fractional slowdown",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Applies the policy to `kernel` on `engine`, scanning `ladder` for
    /// the search-based policies.  Invalid policy parameters (a negative
    /// slowdown budget, a non-finite cap) are a typed error, not a panic.
    pub fn govern(
        &self,
        engine: &Engine,
        kernel: &KernelProfile,
        ladder: &DvfsLadder,
    ) -> Result<Governed, PmssError> {
        self.validate()?;
        let baseline = engine.execute(kernel, GpuSettings::uncapped());
        let settings = match self {
            Governor::Fixed(mhz) => GpuSettings::freq_capped(*mhz),
            Governor::PowerBudget(watts) => GpuSettings::power_capped(*watts),
            Governor::EnergyOptimal => {
                let best = ladder
                    .steps()
                    .iter()
                    .map(|f| {
                        let s = GpuSettings::freq_capped(f.mhz());
                        (s, engine.execute(kernel, s).energy_j)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN energy"))
                    .expect("non-empty ladder");
                best.0
            }
            Governor::SlowdownBudget { budget } => {
                let limit = baseline.time_s * (1.0 + budget);
                ladder
                    .steps()
                    .iter()
                    .filter_map(|f| {
                        let s = GpuSettings::freq_capped(f.mhz());
                        let ex = engine.execute(kernel, s);
                        (ex.time_s <= limit + 1e-12).then_some((s, ex.energy_j))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN energy"))
                    .map(|(s, _)| s)
                    // The uncapped point always satisfies the budget.
                    .unwrap_or_else(GpuSettings::uncapped)
            }
        };
        let execution = engine.execute(kernel, settings);
        Ok(Governed {
            settings,
            execution,
            baseline,
        })
    }

    /// Governs a phase sequence, returning per-phase outcomes.  This is
    /// where per-kernel policies beat the paper's static cap: each phase
    /// gets its own operating point.
    pub fn govern_phases(
        &self,
        engine: &Engine,
        phases: &[KernelProfile],
        ladder: &DvfsLadder,
    ) -> Result<Vec<Governed>, PmssError> {
        phases
            .iter()
            .map(|k| self.govern(engine, k, ladder))
            .collect()
    }
}

/// Aggregate energy/time of a governed phase sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct GovernedTotals {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Total time, seconds.
    pub time_s: f64,
    /// Uncapped totals for comparison.
    pub base_energy_j: f64,
    /// Uncapped time.
    pub base_time_s: f64,
}

impl GovernedTotals {
    /// Sums a set of per-phase outcomes.
    pub fn from_governed(outcomes: &[Governed]) -> Self {
        let mut t = GovernedTotals::default();
        for g in outcomes {
            t.energy_j += g.execution.energy_j;
            t.time_s += g.execution.time_s;
            t.base_energy_j += g.baseline.energy_j;
            t.base_time_s += g.baseline.time_s;
        }
        t
    }

    /// Fractional energy saving.
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.energy_j / self.base_energy_j
    }

    /// Fractional slowdown.
    pub fn slowdown(&self) -> f64 {
        self.time_s / self.base_time_s - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Freq;

    fn engine() -> Engine {
        Engine::default()
    }

    fn ladder() -> DvfsLadder {
        DvfsLadder::default()
    }

    fn mem_kernel() -> KernelProfile {
        KernelProfile::builder("mem")
            .hbm_bytes(3.2e12 * 30.0)
            .flops(1e10)
            .bw_oversub(3.0)
            .build()
    }

    fn compute_kernel() -> KernelProfile {
        KernelProfile::builder("cpu")
            .flops(12.8e12 * 30.0)
            .hbm_bytes(1e10)
            .flop_efficiency(0.268)
            .build()
    }

    #[test]
    fn energy_optimal_never_loses_to_fixed_caps() {
        let eng = engine();
        let lad = ladder();
        for k in [mem_kernel(), compute_kernel()] {
            let opt = Governor::EnergyOptimal.govern(&eng, &k, &lad).unwrap();
            for mhz in [1700.0, 1300.0, 900.0, 700.0] {
                let fixed = Governor::Fixed(mhz).govern(&eng, &k, &lad).unwrap();
                assert!(
                    opt.execution.energy_j <= fixed.execution.energy_j + 1e-9,
                    "{}: optimal loses to {mhz} MHz",
                    k.name
                );
            }
        }
    }

    #[test]
    fn energy_optimal_drops_clock_for_memory_bound_work() {
        let g = Governor::EnergyOptimal
            .govern(&engine(), &mem_kernel(), &ladder())
            .unwrap();
        assert!(g.settings.freq_cap.mhz() < 1000.0, "{:?}", g.settings);
        assert!(g.energy_saving() > 0.1);
        assert!(
            g.slowdown() < 0.02,
            "memory-bound slowdown {}",
            g.slowdown()
        );
    }

    #[test]
    fn slowdown_budget_is_respected() {
        let eng = engine();
        let lad = ladder();
        for budget in [0.0, 0.05, 0.2, 0.5] {
            let g = Governor::SlowdownBudget { budget }
                .govern(&eng, &compute_kernel(), &lad)
                .unwrap();
            assert!(
                g.slowdown() <= budget + 1e-9,
                "budget {budget}: slowdown {}",
                g.slowdown()
            );
        }
    }

    #[test]
    fn larger_budgets_never_save_less_energy() {
        let eng = engine();
        let lad = ladder();
        let k = compute_kernel();
        let mut prev = f64::NEG_INFINITY;
        for budget in [0.0, 0.1, 0.3, 0.6, 1.0] {
            let g = Governor::SlowdownBudget { budget }
                .govern(&eng, &k, &lad)
                .unwrap();
            let saving = g.energy_saving();
            assert!(saving >= prev - 1e-12, "budget {budget}");
            prev = saving;
        }
    }

    #[test]
    fn zero_budget_on_compute_bound_work_stays_uncapped() {
        let g = Governor::SlowdownBudget { budget: 0.0 }
            .govern(&engine(), &compute_kernel(), &ladder())
            .unwrap();
        assert_eq!(g.settings.freq_cap.mhz(), Freq::MAX.mhz());
    }

    #[test]
    fn per_phase_governing_beats_static_cap_on_mixed_apps() {
        // The extension's headline: a per-phase energy-optimal governor
        // saves more than any single static frequency on a mixed workload.
        let eng = engine();
        let lad = ladder();
        let phases = vec![mem_kernel(), compute_kernel(), mem_kernel()];
        let opt = GovernedTotals::from_governed(
            &Governor::EnergyOptimal
                .govern_phases(&eng, &phases, &lad)
                .unwrap(),
        );
        for mhz in [1700.0, 1300.0, 1100.0, 900.0, 700.0] {
            let fixed = GovernedTotals::from_governed(
                &Governor::Fixed(mhz)
                    .govern_phases(&eng, &phases, &lad)
                    .unwrap(),
            );
            assert!(
                opt.energy_j <= fixed.energy_j + 1e-9,
                "static {mhz} MHz beats the per-phase governor"
            );
        }
        assert!(opt.energy_saving() > 0.05);
    }

    #[test]
    fn invalid_policy_parameters_are_typed_errors_not_panics() {
        let eng = engine();
        let lad = ladder();
        let k = compute_kernel();
        for bad in [
            Governor::SlowdownBudget { budget: -0.1 },
            Governor::SlowdownBudget { budget: f64::NAN },
            Governor::Fixed(0.0),
            Governor::Fixed(f64::INFINITY),
            Governor::PowerBudget(-300.0),
        ] {
            let err = bad.govern(&eng, &k, &lad).unwrap_err();
            assert!(err.to_string().contains("governor"), "{err}");
            assert!(bad
                .govern_phases(&eng, std::slice::from_ref(&k), &lad)
                .is_err());
        }
    }

    #[test]
    fn power_budget_governor_wraps_power_caps() {
        let g = Governor::PowerBudget(300.0)
            .govern(&engine(), &mem_kernel(), &ladder())
            .unwrap();
        assert!(g.execution.busy_power_w <= 300.0 + 1e-6);
    }
}
