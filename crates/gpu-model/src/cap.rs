//! Power-cap controller: finds the operating frequency that keeps package
//! power under a limit.
//!
//! The hardware mechanism on the modeled device (like RAPL on CPUs or the
//! MI250X PPT loop) sheds power exclusively by lowering the core clock and
//! voltage.  Components outside the core voltage domain — the idle floor and
//! HBM — cannot be shed, so a sufficiently low cap combined with heavy HBM
//! traffic is *breached*: the device bottoms out at the frequency floor with
//! power still above the limit.  The paper observes exactly this for 140 W
//! and 200 W caps on the memory benchmark (Fig. 6d).

use crate::freq::Freq;

/// Result of a power-cap solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapOutcome {
    /// Chosen operating frequency.
    pub freq: Freq,
    /// Power demand at that frequency, in watts.
    pub power_w: f64,
    /// True when even the frequency floor exceeds the limit (the observed
    /// power breaches the cap).
    pub breached: bool,
    /// Demand evaluations the solve cost: 1 when the limit never binds,
    /// 2 on a breach, and the bisection count otherwise.  Purely
    /// observability — it never feeds back into the result.
    pub iters: u32,
}

/// Maximum frequency `f` in `[F_MIN, f_max_allowed]` such that
/// `demand(f) <= limit_w`, assuming `demand` is non-decreasing in `f`.
///
/// `demand` takes the candidate frequency and returns package watts;
/// callers close over the kernel's utilization profile.
pub fn solve_freq_for_cap(
    limit_w: f64,
    f_max_allowed: Freq,
    mut demand: impl FnMut(Freq) -> f64,
) -> CapOutcome {
    let hi = f_max_allowed;
    let lo = Freq::MIN;

    let demand_hi = demand(hi);
    if demand_hi <= limit_w {
        return CapOutcome {
            freq: hi,
            power_w: demand_hi,
            breached: false,
            iters: 1,
        };
    }
    let demand_lo = demand(lo);
    if demand_lo > limit_w {
        return CapOutcome {
            freq: lo,
            power_w: demand_lo,
            breached: true,
            iters: 2,
        };
    }

    // Bisection: invariant demand(lo) <= limit < demand(hi).
    let mut iters = 2u32;
    let (mut lo_mhz, mut hi_mhz) = (lo.mhz(), hi.mhz());
    for _ in 0..60 {
        let mid = Freq::from_mhz(0.5 * (lo_mhz + hi_mhz));
        iters += 1;
        if demand(mid) <= limit_w {
            lo_mhz = mid.mhz();
        } else {
            hi_mhz = mid.mhz();
        }
        if hi_mhz - lo_mhz < 0.01 {
            break;
        }
    }
    let freq = Freq::from_mhz(lo_mhz);
    iters += 1;
    CapOutcome {
        freq,
        power_w: demand(freq),
        breached: false,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{F_MAX_MHZ, F_MIN_MHZ};

    /// Toy monotone demand: 80 W floor + 400 W scaled by f/f_max.
    fn linear_demand(f: Freq) -> f64 {
        80.0 + 400.0 * f.ratio()
    }

    #[test]
    fn uncapped_when_limit_above_max_demand() {
        let out = solve_freq_for_cap(1000.0, Freq::MAX, linear_demand);
        assert!(!out.breached);
        assert_eq!(out.freq.mhz(), F_MAX_MHZ);
    }

    #[test]
    fn breach_when_floor_exceeds_limit() {
        let out = solve_freq_for_cap(100.0, Freq::MAX, linear_demand);
        assert!(out.breached);
        assert_eq!(out.freq.mhz(), F_MIN_MHZ);
        assert!(out.power_w > 100.0);
    }

    #[test]
    fn solves_interior_limit_to_tolerance() {
        let out = solve_freq_for_cap(280.0, Freq::MAX, linear_demand);
        assert!(!out.breached);
        // 80 + 400*r = 280 -> r = 0.5 -> 850 MHz.
        assert!((out.freq.mhz() - 850.0).abs() < 1.0, "{}", out.freq.mhz());
        assert!(out.power_w <= 280.0 + 1e-6);
    }

    #[test]
    fn iteration_counts_reflect_the_solve_shape() {
        // Limit never binds: one evaluation, no bisection.
        let hi = solve_freq_for_cap(1000.0, Freq::MAX, linear_demand);
        assert_eq!(hi.iters, 1);
        // Breach: both endpoints evaluated, nothing else.
        let lo = solve_freq_for_cap(100.0, Freq::MAX, linear_demand);
        assert_eq!(lo.iters, 2);
        // Interior solve: endpoints + bisection steps + the final probe,
        // bounded by the 60-iteration budget.
        let mid = solve_freq_for_cap(280.0, Freq::MAX, linear_demand);
        assert!(mid.iters > 3 && mid.iters <= 63, "iters {}", mid.iters);
        // The count mirrors the actual demand() calls.
        let mut calls = 0u32;
        let counted = solve_freq_for_cap(280.0, Freq::MAX, |f| {
            calls += 1;
            linear_demand(f)
        });
        assert_eq!(counted.iters, calls);
    }

    #[test]
    fn respects_software_frequency_cap() {
        let out = solve_freq_for_cap(1000.0, Freq::from_mhz(900.0), linear_demand);
        assert_eq!(out.freq.mhz(), 900.0);
    }

    #[test]
    fn chosen_power_never_exceeds_limit_unless_breached() {
        for limit in [150.0, 200.0, 300.0, 450.0, 600.0] {
            let out = solve_freq_for_cap(limit, Freq::MAX, linear_demand);
            if !out.breached {
                assert!(
                    out.power_w <= limit + 1e-6,
                    "limit {limit}: {}",
                    out.power_w
                );
            }
        }
    }
}
