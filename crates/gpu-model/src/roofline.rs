//! Roofline helper: attainable performance curves for plotting and for the
//! Fig. 4 reproduction.
//!
//! Unlike [`crate::perf`], which estimates a *specific kernel*, this module
//! answers the classic roofline question: given an arithmetic intensity and
//! an operating point, what performance can any kernel attain?

use crate::consts::{GPU_HBM_BW, GPU_PEAK_FLOPS};
use crate::freq::Freq;

/// One point on a roofline curve.
#[derive(Debug, Clone, Copy)]
pub struct RooflinePoint {
    /// Arithmetic intensity, in FLOP/byte.
    pub ai: f64,
    /// Attainable performance, in FLOP/s.
    pub flops: f64,
    /// Implied bandwidth at that performance, in bytes/s.
    pub bw: f64,
}

/// Parameters of a roofline: an effective compute peak and memory peak,
/// both already scaled for the kernel family and operating frequency.
#[derive(Debug, Clone, Copy)]
pub struct Roofline {
    /// Attainable FLOP/s plateau.
    pub peak_flops: f64,
    /// Attainable memory bandwidth, in bytes/s.
    pub peak_bw: f64,
}

impl Roofline {
    /// Roofline for a kernel family at frequency `f`.
    ///
    /// * `flop_efficiency` — fraction of the hardware FLOP peak the family
    ///   reaches (the paper's VAI kernel: ~0.268, putting the ridge at 4).
    /// * `bw_oversub` — memory-level-parallelism oversubscription (see
    ///   [`crate::kernel::KernelProfile::bw_oversub`]).
    pub fn at(f: Freq, flop_efficiency: f64, bw_oversub: f64) -> Self {
        Roofline {
            peak_flops: GPU_PEAK_FLOPS * flop_efficiency * f.ratio(),
            peak_bw: GPU_HBM_BW.min(GPU_HBM_BW * f.ratio() * bw_oversub),
        }
    }

    /// Roofline for a specific kernel profile at frequency `f`.
    pub fn for_kernel(f: Freq, kernel: &crate::kernel::KernelProfile) -> Self {
        Roofline {
            peak_flops: GPU_PEAK_FLOPS * kernel.flop_efficiency * f.ratio(),
            peak_bw: crate::perf::deliverable_hbm_bw(f, kernel.bw_oversub, kernel.bw_sustain),
        }
    }

    /// The ridge point (FLOP/byte) where the memory slope meets the plateau.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_flops / self.peak_bw
    }

    /// Attainable performance at arithmetic intensity `ai`, in FLOP/s.
    pub fn attainable_flops(&self, ai: f64) -> f64 {
        (ai * self.peak_bw).min(self.peak_flops)
    }

    /// Samples the roofline at the given intensities.
    pub fn trace(&self, ais: &[f64]) -> Vec<RooflinePoint> {
        ais.iter()
            .map(|&ai| {
                let flops = self.attainable_flops(ai);
                let bw = if ai > 0.0 { flops / ai } else { self.peak_bw };
                RooflinePoint { ai, flops, bw }
            })
            .collect()
    }
}

/// The paper's VAI arithmetic-intensity sweep: 1/16 to 1024 in powers of
/// two (Fig. 5), FLOP/byte.
pub fn vai_intensity_sweep() -> Vec<f64> {
    (0..=14).map(|i| 2f64.powi(i - 4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vai_roofline_ridge_is_four() {
        let r = Roofline::at(Freq::MAX, 0.268, 1.0);
        assert!((r.ridge_ai() - 4.0).abs() < 0.05, "{}", r.ridge_ai());
    }

    #[test]
    fn attainable_is_min_of_slopes() {
        let r = Roofline::at(Freq::MAX, 0.268, 1.0);
        assert_eq!(r.attainable_flops(1.0), r.peak_bw);
        assert_eq!(r.attainable_flops(1e6), r.peak_flops);
    }

    #[test]
    fn lower_frequency_lowers_both_roofs_for_issue_limited_kernels() {
        let hi = Roofline::at(Freq::MAX, 0.268, 1.0);
        let lo = Roofline::at(Freq::from_mhz(850.0), 0.268, 1.0);
        assert!(lo.peak_flops < hi.peak_flops);
        assert!(lo.peak_bw < hi.peak_bw);
        // Ridge location is invariant when both roofs scale together
        // (paper Sec. IV-A: "both memory and FLOPS-bound parts are affected
        // by frequency throttling similarly on the given architecture").
        assert!((lo.ridge_ai() - hi.ridge_ai()).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_bandwidth_survives_moderate_caps() {
        let hi = Roofline::at(Freq::MAX, 1.0, 3.0);
        let lo = Roofline::at(Freq::from_mhz(700.0), 1.0, 3.0);
        assert_eq!(hi.peak_bw, lo.peak_bw);
    }

    #[test]
    fn sweep_covers_paper_range() {
        let s = vai_intensity_sweep();
        assert_eq!(s.first().copied(), Some(0.0625));
        assert_eq!(s.last().copied(), Some(1024.0));
        assert_eq!(s.len(), 15);
    }
}
