//! Boost model: short excursions above the sustained power limit.
//!
//! The paper's Table IV region 4 ("boosted frequency", ≥ 560 W, 1.1 % of
//! GPU hours) exists only in the *telemetry*: steady-state benchmark runs
//! never sustain it, but the 15-second out-of-band samples occasionally
//! catch the device drawing boost power while thermal headroom lasts.
//!
//! The model is a thermal token bucket: headroom accumulates while the
//! device runs below the sustained limit and is spent during excursions.

/// Thermal/boost budget for one GPU.
#[derive(Debug, Clone)]
pub struct BoostBudget {
    /// Maximum stored boost time, in seconds.
    capacity_s: f64,
    /// Currently stored boost time, in seconds.
    stored_s: f64,
    /// Seconds of headroom gained per second spent below the sustained
    /// limit.
    recharge_rate: f64,
}

impl Default for BoostBudget {
    fn default() -> Self {
        BoostBudget {
            capacity_s: 10.0,
            stored_s: 10.0,
            recharge_rate: 0.12,
        }
    }
}

impl BoostBudget {
    /// Creates a budget with the given capacity and recharge rate.
    pub fn new(capacity_s: f64, recharge_rate: f64) -> Self {
        assert!(capacity_s >= 0.0 && recharge_rate >= 0.0);
        BoostBudget {
            capacity_s,
            stored_s: capacity_s,
            recharge_rate,
        }
    }

    /// Remaining boost time, in seconds.
    pub fn stored_s(&self) -> f64 {
        self.stored_s
    }

    /// Advances time by `dt` seconds with the device *below* the sustained
    /// limit; headroom recharges.
    pub fn recharge(&mut self, dt: f64) {
        self.stored_s = (self.stored_s + dt * self.recharge_rate).min(self.capacity_s);
    }

    /// Requests `dt` seconds of boost; returns the granted duration (may be
    /// shorter when the budget runs dry).
    pub fn spend(&mut self, dt: f64) -> f64 {
        let granted = dt.min(self.stored_s);
        self.stored_s -= granted;
        granted
    }

    /// Long-run fraction of time a PPT-saturated workload can spend boosted:
    /// the steady-state duty cycle of the token bucket.
    pub fn duty_cycle(&self) -> f64 {
        self.recharge_rate / (1.0 + self.recharge_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_is_limited_by_stored_budget() {
        let mut b = BoostBudget::new(5.0, 0.1);
        assert_eq!(b.spend(3.0), 3.0);
        assert_eq!(b.spend(3.0), 2.0);
        assert_eq!(b.spend(1.0), 0.0);
    }

    #[test]
    fn recharge_caps_at_capacity() {
        let mut b = BoostBudget::new(5.0, 0.5);
        b.spend(5.0);
        b.recharge(100.0);
        assert_eq!(b.stored_s(), 5.0);
    }

    #[test]
    fn duty_cycle_matches_token_bucket_steady_state() {
        let b = BoostBudget::new(10.0, 0.12);
        let d = b.duty_cycle();
        // Spend d of the time, recharge (1-d) of the time at `rate`:
        // balance requires d = rate * (1 - d).
        assert!((d - 0.12 * (1.0 - d)).abs() < 1e-12);
        // Near the paper's ~1% boosted GPU hours once diluted by the fleet's
        // non-saturated workloads.
        assert!((0.05..0.2).contains(&d));
    }

    #[test]
    fn alternating_spend_recharge_converges() {
        let mut b = BoostBudget::new(10.0, 0.12);
        let mut boosted = 0.0;
        let mut total = 0.0;
        for _ in 0..100_000 {
            let got = b.spend(0.5);
            boosted += got;
            total += 0.5;
            b.recharge(2.0);
            total += 2.0;
        }
        let frac = boosted / total;
        assert!((0.08..0.12).contains(&frac), "boost fraction {frac}");
    }
}
