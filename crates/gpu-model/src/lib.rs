//! # pmss-gpu — analytic MI250X-class GPU device model
//!
//! Substrate crate for the PMSS reproduction of *"Exploring the Frontiers
//! of Energy Efficiency using Power Management at System Scale"* (SC 2024).
//! The paper's measurements were taken on physical Frontier MI250X GPUs;
//! this crate replaces that hardware with an analytic model that reproduces
//! the power/performance surface the paper's methodology depends on:
//!
//! * a **roofline performance engine** ([`perf`]) with frequency-scaled
//!   compute and on-die bandwidth roofs and an oversubscription-aware HBM
//!   roof (the membench-vs-VAI frequency-sensitivity split of Table III);
//! * a **decomposed power model** ([`power`]) calibrated to the paper's
//!   anchors (idle 88–90 W, streaming ≈ 380 W, compute tail ≈ 420 W, ridge
//!   saturating the 540 W firmware limit);
//! * a **power-cap controller** ([`cap`]) that sheds power via DVFS only and
//!   therefore *breaches* low caps under HBM-heavy load (Fig. 6d);
//! * a **boost model** ([`boost`]) and **trace synthesis** ([`trace`]) that
//!   generate the ≥ 560 W telemetry excursions of Table IV region 4;
//! * **device wrappers** ([`device`]) composing GPUs into Frontier-like
//!   nodes for the fleet simulation.
//!
//! ## Quick example
//!
//! ```
//! use pmss_gpu::{Engine, GpuSettings, KernelProfile};
//!
//! // A memory-bound streaming kernel: 64 GB of HBM traffic, AI = 1/16.
//! let kernel = KernelProfile::builder("stream")
//!     .flops(4e9)
//!     .hbm_bytes(64e9)
//!     .flop_efficiency(0.268)
//!     .bw_oversub(1.0)
//!     .build();
//!
//! let engine = Engine::default();
//! let base = engine.execute(&kernel, GpuSettings::uncapped());
//! let capped = engine.execute(&kernel, GpuSettings::freq_capped(900.0));
//! assert!(capped.busy_power_w < base.busy_power_w);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boost;
pub mod cache;
pub mod calibrate;
pub mod cap;
pub mod consts;
pub mod device;
pub mod engine;
pub mod freq;
pub mod governor;
pub mod kernel;
pub mod perf;
pub mod power;
pub mod roofline;
pub mod sku;
pub mod thermal;
pub mod trace;
pub mod tuner;

pub use boost::BoostBudget;
pub use cache::{CacheStats, EngineStats, ExecCache, ExecKey, FxBuildHasher, FxHasher};
pub use cap::{solve_freq_for_cap, CapOutcome};
pub use device::{GpuDevice, Node, NodeRestModel};
pub use engine::{Engine, Execution, GpuSettings};
pub use freq::{DvfsLadder, Freq, VoltageCurve};
pub use governor::{Governed, GovernedTotals, Governor};
pub use kernel::{KernelBuilder, KernelProfile};
pub use perf::{Bottleneck, PerfEstimate};
pub use power::{PowerBreakdown, PowerModel, Utilization};
pub use roofline::Roofline;
pub use sku::{Component, FleetMix, SkuCatalog, SkuSpec, MAX_SKUS};
pub use thermal::ThermalModel;
pub use trace::{PowerSample, TraceConfig};
pub use tuner::{sweet_spot_for, sweet_spots, SweetSpot};
