//! Kernel descriptors: the workload abstraction executed on the GPU model.
//!
//! A [`KernelProfile`] summarizes a GPU workload by the quantities the
//! paper's methodology actually depends on — total FLOPs, bytes moved at
//! each level of the memory hierarchy, and a few efficiency parameters that
//! capture *how* the kernel exercises the machine (issue-limited vs.
//! latency-hiding memory access, SIMD divergence, serial/latency-bound and
//! stalled phases).  Everything else about the paper's benchmarks and fleet
//! workloads is expressed through these descriptors.

use pmss_error::PmssError;

/// Work description for one kernel (or one phase of an application).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Human-readable label carried into results and telemetry.
    pub name: String,
    /// Useful double-precision floating-point operations.
    pub flops: f64,
    /// Bytes transferred to/from HBM.
    pub hbm_bytes: f64,
    /// Bytes moved on-die (L2/LSU datapath traffic).  For a streaming kernel
    /// this equals `hbm_bytes`; for a cache-resident kernel it is the full
    /// reuse traffic while `hbm_bytes` only covers compulsory misses.
    pub ondie_bytes: f64,
    /// Fraction of the hardware's peak FLOP rate this kernel can reach when
    /// compute-bound, in `(0, 1]`.  The paper's VAI kernel (a dependent FMA
    /// chain without packed math) tops out well below the Table I peak --
    /// its observed roofline ridge sits at AI = 4 FLOP/byte rather than the
    /// hardware ridge near 15 (paper Fig. 4).
    pub flop_efficiency: f64,
    /// Memory-level-parallelism oversubscription.  Deliverable HBM bandwidth
    /// is `peak * min(bw_sustain, (f/f_max) * bw_oversub)`: a kernel with
    /// enough outstanding loads (`bw_oversub` > 1) keeps HBM at its
    /// sustainable rate even when the core clock is capped — the paper's
    /// L2/membench case (Table III, MB columns) — while an issue-limited
    /// kernel (`bw_oversub` ~ 1) loses bandwidth proportionally with
    /// frequency, the paper's VAI case.
    pub bw_oversub: f64,
    /// Fraction of peak HBM bandwidth this kernel can sustain regardless of
    /// frequency, in `(0, 1]`.  Irregular access patterns (graph kernels,
    /// strided reads) cap out below the STREAM rate even with abundant
    /// memory-level parallelism.
    pub bw_sustain: f64,
    /// Fraction of issued SIMD lanes that do no useful work, in `[0, 1)`.
    /// Irregular graph workloads on bounded-degree networks waste lanes to
    /// divergence; the wasted lanes still consume issue slots and power
    /// (paper Sec. IV-C).
    pub divergence: f64,
    /// Serial / latency-bound execution time at the maximum clock, in
    /// seconds.  Scales as `1/f`: capping frequency proportionally stretches
    /// it while power stays low — the paper's "latency, network & I/O bound"
    /// region where capping saves nothing (Table IV region 1).
    pub serial_at_fmax_s: f64,
    /// GPU-idle wait (network, file I/O, host) in seconds.  Unaffected by
    /// GPU frequency or power caps.
    pub stall_s: f64,
}

impl KernelProfile {
    /// Starts a builder with neutral defaults (fully efficient, latency
    /// hiding, no divergence, no serial or stalled phases).
    pub fn builder(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            profile: KernelProfile {
                name: name.into(),
                flops: 0.0,
                hbm_bytes: 0.0,
                ondie_bytes: 0.0,
                flop_efficiency: 1.0,
                bw_oversub: 2.0,
                bw_sustain: 1.0,
                divergence: 0.0,
                serial_at_fmax_s: 0.0,
                stall_s: 0.0,
            },
        }
    }

    /// Arithmetic intensity against HBM traffic, in FLOP/byte.
    ///
    /// Returns `f64::INFINITY` for compute-only kernels.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.hbm_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.hbm_bytes
        }
    }

    /// FLOPs issued including divergence waste.
    pub fn issued_flops(&self) -> f64 {
        self.flops / (1.0 - self.divergence)
    }

    /// Scales all work (flops, bytes, serial and stall time) by `factor`,
    /// e.g. to repeat a kernel or to slice a fraction of it.
    pub fn scaled(&self, factor: f64) -> KernelProfile {
        KernelProfile {
            name: self.name.clone(),
            flops: self.flops * factor,
            hbm_bytes: self.hbm_bytes * factor,
            ondie_bytes: self.ondie_bytes * factor,
            serial_at_fmax_s: self.serial_at_fmax_s * factor,
            stall_s: self.stall_s * factor,
            ..*self
        }
    }

    /// Validates parameter ranges; the engine calls this before execution.
    pub fn validate(&self) -> Result<(), PmssError> {
        let invalid = |reason: String| PmssError::InvalidKernel {
            kernel: self.name.clone(),
            reason,
        };
        if !(self.flops >= 0.0 && self.hbm_bytes >= 0.0 && self.ondie_bytes >= 0.0) {
            return Err(invalid("negative work".into()));
        }
        if !(self.flop_efficiency > 0.0 && self.flop_efficiency <= 1.0) {
            return Err(invalid(format!(
                "flop_efficiency {} outside (0,1]",
                self.flop_efficiency
            )));
        }
        if self.bw_oversub.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(invalid("bw_oversub must be positive".into()));
        }
        if !(self.bw_sustain > 0.0 && self.bw_sustain <= 1.0) {
            return Err(invalid(format!(
                "bw_sustain {} outside (0,1]",
                self.bw_sustain
            )));
        }
        if !(0.0..1.0).contains(&self.divergence) {
            return Err(invalid(format!(
                "divergence {} outside [0,1)",
                self.divergence
            )));
        }
        if self.serial_at_fmax_s < 0.0 || self.stall_s < 0.0 {
            return Err(invalid("negative phase time".into()));
        }
        if self.flops == 0.0
            && self.hbm_bytes == 0.0
            && self.ondie_bytes == 0.0
            && self.serial_at_fmax_s == 0.0
            && self.stall_s == 0.0
        {
            return Err(invalid("empty kernel".into()));
        }
        Ok(())
    }
}

/// Fluent builder for [`KernelProfile`].
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    profile: KernelProfile,
}

impl KernelBuilder {
    /// Useful FLOPs performed by the kernel.
    pub fn flops(mut self, flops: f64) -> Self {
        self.profile.flops = flops;
        self
    }

    /// Bytes to/from HBM; on-die traffic defaults to the same volume unless
    /// [`Self::ondie_bytes`] is called afterwards.
    pub fn hbm_bytes(mut self, bytes: f64) -> Self {
        self.profile.hbm_bytes = bytes;
        if self.profile.ondie_bytes < bytes {
            self.profile.ondie_bytes = bytes;
        }
        self
    }

    /// On-die (L2/LSU) traffic in bytes.
    pub fn ondie_bytes(mut self, bytes: f64) -> Self {
        self.profile.ondie_bytes = bytes;
        self
    }

    /// Achievable fraction of peak FLOP rate, in `(0, 1]`.
    pub fn flop_efficiency(mut self, eff: f64) -> Self {
        self.profile.flop_efficiency = eff;
        self
    }

    /// Memory-level-parallelism oversubscription factor.
    pub fn bw_oversub(mut self, oversub: f64) -> Self {
        self.profile.bw_oversub = oversub;
        self
    }

    /// Sustainable fraction of peak HBM bandwidth, in `(0, 1]`.
    pub fn bw_sustain(mut self, sustain: f64) -> Self {
        self.profile.bw_sustain = sustain;
        self
    }

    /// Wasted-lane fraction from SIMD divergence, in `[0, 1)`.
    pub fn divergence(mut self, d: f64) -> Self {
        self.profile.divergence = d;
        self
    }

    /// Serial / latency-bound time at maximum clock, in seconds.
    pub fn serial_at_fmax(mut self, secs: f64) -> Self {
        self.profile.serial_at_fmax_s = secs;
        self
    }

    /// GPU-idle stall time (I/O, network, host), in seconds.
    pub fn stall(mut self, secs: f64) -> Self {
        self.profile.stall_s = secs;
        self
    }

    /// Finalizes the profile, panicking on invalid parameters.
    pub fn build(self) -> KernelProfile {
        self.profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid kernel profile: {e}"));
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> KernelProfile {
        KernelProfile::builder("k")
            .flops(1e12)
            .hbm_bytes(1e11)
            .build()
    }

    #[test]
    fn builder_defaults_ondie_to_hbm_traffic() {
        let k = simple();
        assert_eq!(k.ondie_bytes, 1e11);
        assert_eq!(k.arithmetic_intensity(), 10.0);
    }

    #[test]
    fn compute_only_kernel_has_infinite_ai() {
        let k = KernelProfile::builder("c").flops(1e12).build();
        assert!(k.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn scaling_scales_work_linearly() {
        let k = simple().scaled(2.5);
        assert_eq!(k.flops, 2.5e12);
        assert_eq!(k.hbm_bytes, 2.5e11);
        assert_eq!(k.ondie_bytes, 2.5e11);
    }

    #[test]
    fn divergence_inflates_issued_flops() {
        let k = KernelProfile::builder("d")
            .flops(1e12)
            .hbm_bytes(1e10)
            .divergence(0.5)
            .build();
        assert_eq!(k.issued_flops(), 2e12);
    }

    #[test]
    #[should_panic(expected = "empty kernel")]
    fn empty_kernel_rejected() {
        let _ = KernelProfile::builder("nothing").build();
    }

    #[test]
    fn validate_catches_bad_efficiency() {
        let mut k = simple();
        k.flop_efficiency = 0.0;
        assert!(k.validate().is_err());
        k.flop_efficiency = 1.5;
        assert!(k.validate().is_err());
    }
}
