//! Roofline performance model: time-to-solution for a kernel descriptor at
//! a given core frequency.
//!
//! Execution time is the max of three throughput bottlenecks plus two
//! additive phases:
//!
//! ```text
//! T(f) = max( flops_issued / (eff · PEAK · f/f_max),          -- compute
//!             ondie_bytes / (L2_BW · f/f_max),                -- on-die
//!             hbm_bytes   / min(HBM_BW, HBM_BW · f/f_max · oversub) )
//!      + serial_at_fmax / (f/f_max)                           -- latency-bound
//!      + stall                                                -- GPU-idle wait
//! ```
//!
//! The `oversub` term is what separates the paper's two benchmark families:
//! the membench keeps HBM saturated across the DVFS range (runtime column
//! "MB" in Table III stays at ~99 %), while the issue-limited VAI kernel
//! slows proportionally with frequency.

use crate::consts::{GPU_HBM_BW, GPU_L2_BW, GPU_PEAK_FLOPS};
use crate::freq::Freq;
use crate::kernel::KernelProfile;
use crate::power::Utilization;

/// Which roofline ceiling bound the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// SIMD FLOP throughput.
    Compute,
    /// On-die (L2/LSU) bandwidth.
    OnDie,
    /// HBM bandwidth (or issue-limited HBM access).
    Hbm,
    /// Serial / latency-bound execution.
    Serial,
    /// GPU-idle stall (I/O, network, host).
    Stall,
}

/// Performance estimate for one kernel at one frequency.
#[derive(Debug, Clone, Copy)]
pub struct PerfEstimate {
    /// Total wall time, in seconds.
    pub time_s: f64,
    /// Time in the throughput-bound (roofline) portion, in seconds.
    pub roofline_s: f64,
    /// Time in the latency-bound serial portion, in seconds.
    pub serial_s: f64,
    /// Time stalled with the GPU idle, in seconds.
    pub stall_s: f64,
    /// Dominant constraint.
    pub bottleneck: Bottleneck,
    /// Achieved useful FLOP rate during the roofline portion, in FLOP/s.
    pub flops_per_s: f64,
    /// Achieved HBM bandwidth during the roofline portion, in bytes/s.
    pub hbm_bw: f64,
    /// Achieved on-die bandwidth during the roofline portion, in bytes/s.
    pub ondie_bw: f64,
    /// Datapath utilizations during the roofline portion.
    pub util: Utilization,
}

/// Deliverable HBM bandwidth at frequency `f` for a kernel with the given
/// memory-level-parallelism oversubscription and sustainable-rate ceiling,
/// in bytes/s.
pub fn deliverable_hbm_bw(f: Freq, bw_oversub: f64, bw_sustain: f64) -> f64 {
    GPU_HBM_BW * bw_sustain.min(f.ratio() * bw_oversub)
}

/// Effective compute ceiling at frequency `f` for a kernel, in FLOP/s
/// (issued, i.e. including divergence waste).
pub fn compute_ceiling(f: Freq, flop_efficiency: f64) -> f64 {
    GPU_PEAK_FLOPS * flop_efficiency * f.ratio()
}

/// On-die bandwidth ceiling at frequency `f`, in bytes/s.
pub fn ondie_ceiling(f: Freq) -> f64 {
    GPU_L2_BW * f.ratio()
}

/// Estimates execution of `kernel` at frequency `f`.
pub fn estimate(kernel: &KernelProfile, f: Freq) -> PerfEstimate {
    let compute_roof = compute_ceiling(f, kernel.flop_efficiency);
    let ondie_roof = ondie_ceiling(f);
    let hbm_roof = deliverable_hbm_bw(f, kernel.bw_oversub, kernel.bw_sustain);

    let t_compute = kernel.issued_flops() / compute_roof;
    let t_ondie = kernel.ondie_bytes / ondie_roof;
    let t_hbm = kernel.hbm_bytes / hbm_roof;

    let roofline_s = t_compute.max(t_ondie).max(t_hbm);
    let serial_s = kernel.serial_at_fmax_s / f.ratio();
    let stall_s = kernel.stall_s;
    let time_s = roofline_s + serial_s + stall_s;

    let bottleneck = if roofline_s >= serial_s && roofline_s >= stall_s {
        if t_compute >= t_ondie && t_compute >= t_hbm {
            Bottleneck::Compute
        } else if t_hbm >= t_ondie {
            Bottleneck::Hbm
        } else {
            Bottleneck::OnDie
        }
    } else if serial_s >= stall_s {
        Bottleneck::Serial
    } else {
        Bottleneck::Stall
    };

    let (flops_per_s, hbm_bw, ondie_bw, util) = if roofline_s > 0.0 {
        let flops_per_s = kernel.flops / roofline_s;
        let issued_per_s = kernel.issued_flops() / roofline_s;
        let hbm_bw = kernel.hbm_bytes / roofline_s;
        let ondie_bw = kernel.ondie_bytes / roofline_s;
        let util = Utilization {
            alu: (issued_per_s / compute_roof).min(1.0),
            ondie: (ondie_bw / ondie_roof).min(1.0),
            hbm: (hbm_bw / GPU_HBM_BW).min(1.0),
            active: 1.0,
        };
        (flops_per_s, hbm_bw, ondie_bw, util)
    } else {
        (0.0, 0.0, 0.0, Utilization::idle())
    };

    PerfEstimate {
        time_s,
        roofline_s,
        serial_s,
        stall_s,
        bottleneck,
        flops_per_s,
        hbm_bw,
        ondie_bw,
        util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelProfile;

    fn vai_like(ai: f64) -> KernelProfile {
        // 1 GB of HBM traffic at the requested arithmetic intensity, with
        // the VAI kernel's calibration (issue-limited, ~27 % flop efficiency
        // so the observed ridge lands at AI = 4 like the paper's Fig. 4).
        let bytes = 1e9;
        KernelProfile::builder(format!("vai-{ai}"))
            .flops(ai * bytes)
            .hbm_bytes(bytes)
            .flop_efficiency(0.268)
            .bw_oversub(1.0)
            .build()
    }

    #[test]
    fn memory_bound_kernel_scales_with_frequency_when_issue_limited() {
        let k = vai_like(0.0625);
        let t_hi = estimate(&k, Freq::MAX).time_s;
        let t_lo = estimate(&k, Freq::from_mhz(850.0)).time_s;
        assert!((t_lo / t_hi - 2.0).abs() < 0.05, "ratio {}", t_lo / t_hi);
    }

    #[test]
    fn oversubscribed_kernel_is_frequency_insensitive() {
        let k = KernelProfile::builder("mb")
            .hbm_bytes(1e9)
            .bw_oversub(3.0)
            .flops(1.0)
            .build();
        let t_hi = estimate(&k, Freq::MAX).time_s;
        let t_lo = estimate(&k, Freq::from_mhz(700.0)).time_s;
        assert!((t_lo / t_hi - 1.0).abs() < 1e-9, "membench stays HBM-bound");
        // ... until the oversubscription runs out near the frequency floor.
        let t_min = estimate(&k, Freq::from_mhz(500.0)).time_s;
        assert!(t_min > t_hi * 1.05);
    }

    #[test]
    fn ridge_sits_at_ai_4_for_vai_calibration() {
        // flop_efficiency 0.268 * 47.8 TF = 12.8 TF; 12.8 TF / 3.2 TB/s = 4.
        let below = estimate(&vai_like(3.0), Freq::MAX);
        let above = estimate(&vai_like(5.0), Freq::MAX);
        assert_eq!(below.bottleneck, Bottleneck::Hbm);
        assert_eq!(above.bottleneck, Bottleneck::Compute);
    }

    #[test]
    fn achieved_flops_follow_roofline_shape() {
        let mut prev = 0.0;
        for ai in [0.0625, 0.25, 1.0, 4.0] {
            let e = estimate(&vai_like(ai), Freq::MAX);
            assert!(e.flops_per_s > prev, "rising part of the roof");
            prev = e.flops_per_s;
        }
        let plateau = estimate(&vai_like(64.0), Freq::MAX).flops_per_s;
        assert!((plateau - prev).abs() / plateau < 0.02, "flat roof");
    }

    #[test]
    fn serial_time_stretches_with_frequency_cap() {
        let k = KernelProfile::builder("latency")
            .serial_at_fmax(10.0)
            .build();
        let t = estimate(&k, Freq::from_mhz(850.0));
        assert!((t.time_s - 20.0).abs() < 1e-9);
        assert_eq!(t.bottleneck, Bottleneck::Serial);
    }

    #[test]
    fn stall_time_is_frequency_independent() {
        let k = KernelProfile::builder("io").stall(30.0).build();
        assert_eq!(estimate(&k, Freq::MAX).time_s, 30.0);
        assert_eq!(estimate(&k, Freq::MIN).time_s, 30.0);
        assert_eq!(estimate(&k, Freq::MIN).bottleneck, Bottleneck::Stall);
    }

    #[test]
    fn utilizations_stay_in_unit_interval() {
        for ai in [0.0, 0.0625, 1.0, 4.0, 64.0, 1024.0] {
            let k = if ai == 0.0 {
                KernelProfile::builder("copy")
                    .hbm_bytes(1e9)
                    .bw_oversub(1.0)
                    .build()
            } else {
                vai_like(ai)
            };
            for mhz in [500.0, 900.0, 1300.0, 1700.0] {
                let u = estimate(&k, Freq::from_mhz(mhz)).util;
                for v in [u.alu, u.ondie, u.hbm] {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}
