//! Sweet-spot auto-tuner: per-SKU, per-mode frequency selection by model
//! search instead of the paper's fixed 900/1100/1600 MHz grid.
//!
//! Afzal et al. observe that the energy-efficiency sweet spot of a GPU
//! kernel moves with both the part and the workload balance; a frequency
//! grid tuned on one SKU leaves savings on the table on another.  The
//! tuner runs each mode's representative kernel through the execution
//! engine across a fine frequency grid and picks the cap minimizing
//! energy-to-solution subject to a slowdown bound — the model analog of
//! the paper's "no slowdown" constraint.

use crate::engine::{Engine, GpuSettings};
use crate::freq::Freq;
use crate::kernel::KernelProfile;

/// Search grid pitch, MHz.  Fine enough to beat the paper's 200 MHz grid,
/// coarse enough that a full catalog tunes in microseconds.
const GRID_STEP_MHZ: f64 = 25.0;

/// A tuned operating point for one power-managed mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweetSpot {
    /// Mode label (`"memory-intensive"`, `"compute-intensive"`).
    pub mode: &'static str,
    /// Chosen frequency cap.
    pub freq: Freq,
    /// Energy at the chosen cap relative to uncapped (1.0 = no change).
    pub energy_ratio: f64,
    /// Runtime at the chosen cap relative to uncapped (1.0 = no change).
    pub slowdown: f64,
}

/// Memory-intensive representative: a membench-style kernel with enough
/// memory-level parallelism to keep HBM saturated across most of the DVFS
/// range (Table III's "MB" column stays at ~99 % runtime).
fn mi_kernel() -> KernelProfile {
    KernelProfile::builder("tuner-mi")
        .hbm_bytes(64e9)
        .bw_oversub(3.0)
        .flops(1.0)
        .build()
}

/// Compute-intensive representative: a VAI-tail profile at the given
/// arithmetic intensity (FLOP per HBM byte), matching the calibration
/// kernels used throughout the model.
fn mode_kernel(name: &str, ai: f64) -> KernelProfile {
    let bytes = 64e9;
    KernelProfile::builder(name)
        .flops(ai * bytes)
        .hbm_bytes(bytes)
        .flop_efficiency(0.268)
        .bw_oversub(1.0)
        .build()
}

/// Finds the energy-minimizing frequency cap for `kernel` on `engine`
/// subject to `slowdown <= max_slowdown` relative to uncapped execution.
///
/// The grid is walked from the maximum clock downward in
/// 25 MHz steps; ties keep the higher frequency, so the
/// result is deterministic and never slower than it needs to be.
pub fn sweet_spot_for(
    engine: &Engine,
    mode: &'static str,
    kernel: &KernelProfile,
    max_slowdown: f64,
) -> SweetSpot {
    let base = engine.execute(kernel, GpuSettings::uncapped());
    let mut best = SweetSpot {
        mode,
        freq: Freq::MAX,
        energy_ratio: 1.0,
        slowdown: 1.0,
    };
    let mut mhz = Freq::MAX.mhz();
    while mhz >= Freq::MIN.mhz() - 1e-9 {
        let ex = engine.execute(kernel, GpuSettings::freq_capped(mhz));
        let slowdown = ex.time_s / base.time_s;
        let energy_ratio = ex.energy_j / base.energy_j;
        if slowdown <= max_slowdown && energy_ratio < best.energy_ratio {
            best = SweetSpot {
                mode,
                freq: ex.freq,
                energy_ratio,
                slowdown,
            };
        }
        mhz -= GRID_STEP_MHZ;
    }
    best
}

/// Tunes the two throughput modes for one SKU's engine: the
/// memory-intensive mode (streaming kernel, AI = 1/16) and the
/// compute-intensive mode (tail kernel, AI = 1024).
///
/// `max_slowdown` is the admissible runtime stretch (e.g. `1.01` for the
/// paper's no-slowdown regime with 1 % tolerance).
pub fn sweet_spots(engine: &Engine, max_slowdown: f64) -> [SweetSpot; 2] {
    [
        sweet_spot_for(engine, "memory-intensive", &mi_kernel(), max_slowdown),
        sweet_spot_for(
            engine,
            "compute-intensive",
            &mode_kernel("tuner-ci", 1024.0),
            max_slowdown,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mode_tunes_deep_without_slowdown() {
        // Memory-bound work is insensitive to the core clock until the
        // effective bandwidth ceiling bites: the tuner should find a cap
        // well below max that saves energy at ~no slowdown.
        let [mi, _] = sweet_spots(&Engine::default(), 1.01);
        assert!(mi.freq.mhz() < Freq::MAX.mhz(), "found {}", mi.freq.mhz());
        assert!(mi.energy_ratio < 0.95, "energy {}", mi.energy_ratio);
        assert!(mi.slowdown <= 1.01);
    }

    #[test]
    fn compute_mode_respects_the_slowdown_bound() {
        let [_, ci] = sweet_spots(&Engine::default(), 1.10);
        assert!(ci.slowdown <= 1.10);
        assert!(ci.energy_ratio <= 1.0);
        // The compute sweet spot sits above the memory one: ALU-bound work
        // pays linearly in runtime for every MHz shed.
        let [mi, _] = sweet_spots(&Engine::default(), 1.10);
        assert!(ci.freq.mhz() >= mi.freq.mhz());
    }

    #[test]
    fn tighter_bound_never_chooses_a_slower_point() {
        let eng = Engine::default();
        let [loose, _] = sweet_spots(&eng, 1.25);
        let [tight, _] = sweet_spots(&eng, 1.001);
        assert!(tight.freq.mhz() >= loose.freq.mhz());
        assert!(tight.slowdown <= 1.001);
    }

    #[test]
    fn sweet_spots_differ_across_skus() {
        use crate::sku::SkuCatalog;
        let cat = SkuCatalog::standard();
        let spots: Vec<_> = cat
            .skus()
            .iter()
            .map(|s| sweet_spots(&s.engine, 1.01))
            .collect();
        // At least one SKU lands a different MI-mode frequency than the
        // MI250X baseline — the whole point of per-SKU search.
        assert!(
            spots[1..].iter().any(|sp| sp[0].freq != spots[0][0].freq)
                || spots[1..].iter().any(|sp| sp[1].freq != spots[0][1].freq),
            "all SKUs tuned identically: {spots:?}"
        );
    }

    #[test]
    fn no_admissible_point_falls_back_to_uncapped() {
        // With an impossible bound (< 1.0) nothing beats uncapped.
        let spot = sweet_spot_for(
            &Engine::default(),
            "compute-intensive",
            &mode_kernel("x", 1024.0),
            0.5,
        );
        assert_eq!(spot.freq, Freq::MAX);
        assert_eq!(spot.energy_ratio, 1.0);
    }
}
