//! Power-trace synthesis: turns a steady-state [`Execution`] estimate into
//! the time series a physical power sensor would have reported.
//!
//! This is where boost excursions enter the picture: an execution that is
//! throttled by the firmware sustained limit oscillates between the limit
//! and short boosted bursts above the TDP, governed by the thermal token
//! bucket in [`crate::boost`].  Out-of-band sampling then catches some of
//! those bursts — the origin of the paper's ≥ 560 W telemetry region
//! (Table IV region 4, 1.1 % of GPU hours).

use rand::Rng;

use crate::boost::BoostBudget;
use crate::consts::{GPU_BOOST_W, GPU_TDP_W};
use crate::engine::Execution;

/// One instantaneous power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Offset from the start of the execution, in seconds.
    pub t_s: f64,
    /// Package power, in watts.
    pub power_w: f64,
}

/// Sensor/sampling parameters for trace synthesis.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Sampling period, in seconds (Frontier's out-of-band loggers: 2 s).
    pub sample_period_s: f64,
    /// Gaussian measurement noise, standard deviation in watts.
    pub noise_sd_w: f64,
    /// Sensor quantization step, in watts (0 disables quantization).
    pub quantum_w: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_period_s: 2.0,
            noise_sd_w: 4.0,
            quantum_w: 1.0,
        }
    }
}

/// x-coordinate of the bottom ziggurat layer (Marsaglia–Tsang, 128 layers).
const ZIG_R: f64 = 3.442_619_855_899;

/// Precomputed ziggurat acceptance tables for the standard normal.
struct ZigTables {
    kn: [u32; 128],
    wn: [f64; 128],
    fx: [f64; 128],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let m1 = 2_147_483_648.0f64; // 2^31: scale of the 32-bit draws
        let vn = 9.912_563_035_262_17e-3; // per-layer area
        let mut dn = ZIG_R;
        let mut tn = dn;
        let q = vn / (-0.5 * dn * dn).exp();
        let mut kn = [0u32; 128];
        let mut wn = [0.0f64; 128];
        let mut fx = [0.0f64; 128];
        kn[0] = ((dn / q) * m1) as u32;
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fx[0] = 1.0;
        fx[127] = (-0.5 * dn * dn).exp();
        for i in (1..=126).rev() {
            dn = (-2.0 * (vn / dn + (-0.5 * dn * dn).exp()).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * m1) as u32;
            tn = dn;
            fx[i] = (-0.5 * dn * dn).exp();
            wn[i] = dn / m1;
        }
        ZigTables { kn, wn, fx }
    })
}

/// Standard-normal sample via the Marsaglia–Tsang ziggurat (keeps the
/// dependency surface at `rand` alone; `rand_distr` is not needed).
///
/// The fleet simulation draws one of these per 15-second telemetry window —
/// billions per campaign — so the common path must be a table lookup and a
/// multiply, not transcendentals: ~98 % of draws take one `u64` from the
/// RNG and never touch `exp`/`ln`.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    loop {
        let hz = rng.next_u64() as u32 as i32;
        let i = (hz & 127) as usize;
        if hz.unsigned_abs() < t.kn[i] {
            return hz as f64 * t.wn[i];
        }
        if i == 0 {
            // Base layer: sample the tail beyond ZIG_R (Marsaglia's method).
            loop {
                let x = -(rng.gen_range(f64::EPSILON..1.0)).ln() / ZIG_R;
                let y = -(rng.gen_range(f64::EPSILON..1.0)).ln();
                if y + y >= x * x {
                    return if hz > 0 { ZIG_R + x } else { -(ZIG_R + x) };
                }
            }
        }
        // Layer-edge rejection against the true density.
        let x = hz as f64 * t.wn[i];
        if t.fx[i] + rng.gen_range(0.0..1.0) * (t.fx[i - 1] - t.fx[i]) < (-0.5 * x * x).exp() {
            return x;
        }
    }
}

/// Synthesizes the power trace of `ex`, spending boost headroom from
/// `boost` when the execution is PPT-throttled.
pub fn sample_execution<R: Rng + ?Sized>(
    ex: &Execution,
    boost: &mut BoostBudget,
    cfg: TraceConfig,
    rng: &mut R,
) -> Vec<PowerSample> {
    assert!(cfg.sample_period_s > 0.0, "non-positive sample period");
    let n = (ex.time_s / cfg.sample_period_s).floor() as usize;
    let mut out = Vec::with_capacity(n);

    let roofline_end = ex.perf.roofline_s;
    let serial_end = roofline_end + ex.perf.serial_s;

    for i in 0..n {
        let t = (i as f64 + 0.5) * cfg.sample_period_s;
        let base = if t < roofline_end {
            if ex.ppt_throttled {
                // Try to boost for this sample interval; partial grants mean
                // the sensor reads a blend of boosted and throttled power.
                let granted = boost.spend(cfg.sample_period_s);
                let frac = granted / cfg.sample_period_s;
                if granted == 0.0 {
                    boost.recharge(cfg.sample_period_s);
                }
                let boosted = GPU_TDP_W + rng.gen_range(0.0..(GPU_BOOST_W - GPU_TDP_W));
                frac * boosted + (1.0 - frac) * ex.busy_power_w
            } else {
                boost.recharge(cfg.sample_period_s);
                ex.busy_power_w
            }
        } else if t < serial_end {
            boost.recharge(cfg.sample_period_s);
            ex.serial_power_w
        } else {
            boost.recharge(cfg.sample_period_s);
            ex.idle_power_w
        };

        let mut p = base + cfg.noise_sd_w * standard_normal(rng);
        if cfg.quantum_w > 0.0 {
            p = (p / cfg.quantum_w).round() * cfg.quantum_w;
        }
        out.push(PowerSample {
            t_s: t,
            power_w: p.max(0.0),
        });
    }
    out
}

/// Mean power of a trace, in watts; `None` for an empty trace.
pub fn trace_mean_w(samples: &[PowerSample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().map(|s| s.power_w).sum::<f64>() / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GpuSettings};
    use crate::kernel::KernelProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn long_streaming() -> Execution {
        let k = KernelProfile::builder("stream")
            .hbm_bytes(3.2e12 * 120.0) // ~2 minutes at peak bandwidth
            .flops(1.0)
            .bw_oversub(1.0)
            .build();
        Engine::default().execute(&k, GpuSettings::uncapped())
    }

    #[test]
    fn trace_mean_matches_steady_state_power() {
        let ex = long_streaming();
        let mut rng = StdRng::seed_from_u64(7);
        let mut boost = BoostBudget::default();
        let trace = sample_execution(&ex, &mut boost, TraceConfig::default(), &mut rng);
        let mean = trace_mean_w(&trace).unwrap();
        assert!(
            (mean - ex.busy_power_w).abs() < 3.0,
            "mean {mean} vs busy {}",
            ex.busy_power_w
        );
    }

    #[test]
    fn ppt_throttled_trace_shows_boost_excursions() {
        let k = KernelProfile::builder("ridge")
            .flops(4.0 * 3.2e12 * 300.0)
            .hbm_bytes(3.2e12 * 300.0)
            .flop_efficiency(0.268)
            .bw_oversub(1.0)
            .build();
        let ex = Engine::default().execute(&k, GpuSettings::uncapped());
        assert!(ex.ppt_throttled);
        let mut rng = StdRng::seed_from_u64(42);
        let mut boost = BoostBudget::default();
        let trace = sample_execution(&ex, &mut boost, TraceConfig::default(), &mut rng);
        let boosted = trace.iter().filter(|s| s.power_w >= GPU_TDP_W).count();
        assert!(boosted > 0, "expected some boosted samples");
        let frac = boosted as f64 / trace.len() as f64;
        assert!(frac < 0.35, "boost must be a minority of samples: {frac}");
        assert!(trace.iter().all(|s| s.power_w <= GPU_BOOST_W + 20.0));
    }

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let ex = long_streaming();
        let mut rng = StdRng::seed_from_u64(3);
        let mut boost = BoostBudget::default();
        let cfg = TraceConfig {
            quantum_w: 5.0,
            ..Default::default()
        };
        let trace = sample_execution(&ex, &mut boost, cfg, &mut rng);
        for s in &trace {
            let rem = s.power_w % 5.0;
            assert!(rem.abs() < 1e-9 || (5.0 - rem).abs() < 1e-9);
        }
    }

    #[test]
    fn phased_execution_traces_each_phase_power() {
        let k = KernelProfile::builder("phased")
            .flops(47.8e12 * 60.0)
            .hbm_bytes(1e9)
            .serial_at_fmax(60.0)
            .stall(60.0)
            .build();
        let ex = Engine::default().execute(&k, GpuSettings::uncapped());
        let mut rng = StdRng::seed_from_u64(5);
        let mut boost = BoostBudget::default();
        let cfg = TraceConfig {
            noise_sd_w: 0.0,
            quantum_w: 0.0,
            ..Default::default()
        };
        let trace = sample_execution(&ex, &mut boost, cfg, &mut rng);
        let first = trace.first().unwrap().power_w;
        let last = trace.last().unwrap().power_w;
        assert!(first > 300.0, "busy phase first: {first}");
        assert!((last - ex.idle_power_w).abs() < 1e-6, "stall phase last");
    }
}
