//! Memoized kernel execution: a sharded, concurrent
//! (kernel, settings) → [`Execution`] cache.
//!
//! The fleet simulation executes synthesized phase kernels under a handful
//! of [`GpuSettings`] over and over — per phase, per cycle, per GPU slot,
//! per node, and again for every repeated simulation of the same schedule
//! (one run per observer, benchmark iterations, what-if sweeps).
//! [`Engine::execute`] is pure (no RNG, no state), so the map from its
//! inputs to its output is a perfect memoization target.
//!
//! ## Key quantization
//!
//! The cache key ([`ExecKey`]) is the *exact bit pattern* of every numeric
//! input: all nine `f64` fields of [`KernelProfile`] plus the frequency cap
//! and power cap of [`GpuSettings`], each taken through [`f64::to_bits`],
//! plus the executing [`Engine`]'s calibration fingerprint — heterogeneous
//! SKU catalogs run differently-calibrated engines through one shared
//! cache, and executions must never leak across calibrations.
//! Exact-bit keying is deliberately the *finest* possible quantization:
//! two inputs collide only when `execute` would compute bit-identical
//! outputs anyway, so a cached lookup is indistinguishable from a fresh
//! execution and the cached simulation path reproduces the uncached path
//! bit for bit.  An absent power cap is encoded as `u64::MAX` — a NaN bit
//! pattern no finite cap can produce.
//!
//! The kernel *name* (copied verbatim into [`Execution::kernel_name`]) is
//! folded into the hashed key only as a 64-bit FNV-1a fingerprint, keeping
//! the hot lookup allocation-free; the full string is compared on the slow
//! path via a tiny per-key bucket, so fingerprint collisions cost a probe,
//! never a wrong answer.
//!
//! ## Concurrency
//!
//! The map is split into power-of-two shards, each a
//! `CachePadded<RwLock<HashMap>>` so that shard locks never share a cache
//! line.  Readers take the shard read lock only; a miss computes the
//! execution inside the shard write lock so concurrent requests for the
//! same key deduplicate.  Hit/miss counters are relaxed atomics, padded
//! away from the shards.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::RwLock;

use crate::engine::{Engine, Execution, GpuSettings};
use crate::kernel::KernelProfile;

/// Number of `f64` inputs captured in the key: nine kernel fields, the
/// frequency cap, the power cap, and the engine calibration fingerprint.
const KEY_WORDS: usize = 12;

/// Exact-bit cache key for one (engine, kernel, settings) triple.
///
/// Carries the numeric inputs bit-for-bit and the kernel name as a 64-bit
/// fingerprint; building one never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecKey {
    name_fp: u64,
    bits: [u64; KEY_WORDS],
}

/// FNV-1a over the kernel name bytes.
fn name_fingerprint(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ExecKey {
    /// Builds the key from the exact bit patterns of every numeric input,
    /// including the engine's calibration fingerprint.
    pub fn new(engine: &Engine, kernel: &KernelProfile, settings: GpuSettings) -> Self {
        ExecKey {
            name_fp: name_fingerprint(&kernel.name),
            bits: [
                kernel.flops.to_bits(),
                kernel.hbm_bytes.to_bits(),
                kernel.ondie_bytes.to_bits(),
                kernel.flop_efficiency.to_bits(),
                kernel.bw_oversub.to_bits(),
                kernel.bw_sustain.to_bits(),
                kernel.divergence.to_bits(),
                kernel.serial_at_fmax_s.to_bits(),
                kernel.stall_s.to_bits(),
                settings.freq_cap.mhz().to_bits(),
                settings.power_cap_w.map_or(u64::MAX, f64::to_bits),
                engine.calibration_fingerprint(),
            ],
        }
    }
}

/// Hit/miss/insert counters of an [`ExecCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the engine.
    pub misses: u64,
    /// Entries actually added.  Equal to `misses` for [`ExecCache`] (a
    /// miss computes under the shard write lock, so it always inserts);
    /// caches whose miss path computes outside the lock may lose a race
    /// and insert fewer entries than they missed.
    pub inserts: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups were made).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// FxHash-style multiply-xor hasher: a few nanoseconds per [`ExecKey`]
/// where SipHash costs ~100.  Keys come from the trusted simulation, not
/// adversarial input, so DoS hardness is not a concern here.
///
/// Public so downstream memo tables (the fleet template cache) can key
/// their own maps the same way.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// [`BuildHasher`] for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Totals over every engine execution a cache performed on its miss path.
///
/// Tallied only when the engine actually runs (the cold path), so the hot
/// hit path stays two relaxed counter increments; warm runs add nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Engine executions performed (one per cache miss).
    pub executions: u64,
    /// Total cap-solver demand evaluations across those executions
    /// (see [`crate::cap::CapOutcome::iters`]).
    pub solver_iters: u64,
    /// Executions whose software power cap was breached even at the
    /// frequency floor (paper Fig. 6d).
    pub cap_breaches: u64,
    /// Executions throttled by the firmware sustained limit rather than
    /// the software cap.
    pub ppt_throttled: u64,
}

/// Miss-path tallies, grouped behind one cache-line pad: they are only
/// touched when the engine runs, so contention is not a concern.
#[derive(Debug, Default)]
struct MissTallies {
    inserts: AtomicU64,
    solver_iters: AtomicU64,
    cap_breaches: AtomicU64,
    ppt_throttled: AtomicU64,
}

/// Entries whose keys share a fingerprint: the owned name disambiguates.
/// Almost always length 1.
type Bucket = Vec<(String, Arc<Execution>)>;

type Shard = CachePadded<RwLock<HashMap<ExecKey, Bucket, BuildHasherDefault<FxHasher>>>>;

/// Sharded concurrent memo table for [`Engine::execute`] results.
///
/// One cache must only be shared between engines with *identical*
/// calibration (power model and firmware limit): the key covers the kernel
/// and the settings, not the engine, because the fleet simulation runs a
/// single engine across all rayon workers.
#[derive(Debug)]
pub struct ExecCache {
    shards: Box<[Shard]>,
    /// log2 of the shard count; shards are selected by the hash's *top*
    /// bits because the in-shard `HashMap` consumes the low bits.
    shard_bits: u32,
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    tallies: CachePadded<MissTallies>,
}

impl Default for ExecCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecCache {
    /// Default shard count: enough to keep a machine-full of rayon workers
    /// off each other's locks while staying cheap to construct per run.
    const DEFAULT_SHARDS: usize = 64;

    /// Creates a cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a cache with at least `shards` shards (rounded up to a power
    /// of two so shard selection is a mask).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ExecCache {
            shards: (0..n)
                .map(|_| CachePadded::new(RwLock::new(HashMap::default())))
                .collect(),
            shard_bits: n.trailing_zeros(),
            hits: CachePadded::new(AtomicU64::new(0)),
            misses: CachePadded::new(AtomicU64::new(0)),
            tallies: CachePadded::new(MissTallies::default()),
        }
    }

    fn shard(&self, key: &ExecKey) -> &Shard {
        let h = BuildHasherDefault::<FxHasher>::default().hash_one(key);
        // Top bits: the in-shard map indexes by the low bits of the same
        // hash, so using them twice would cluster every shard's entries.
        let shift = (u64::BITS - self.shard_bits) % u64::BITS;
        &self.shards[(h >> shift) as usize & (self.shards.len() - 1)]
    }

    /// Looks up `(engine, kernel, settings)`, running `compute` under the
    /// shard write lock on a miss so concurrent requests for the same key
    /// run it once.  The hit path performs no allocation.
    pub fn get_or_insert_with(
        &self,
        engine: &Engine,
        kernel: &KernelProfile,
        settings: GpuSettings,
        compute: impl FnOnce() -> Execution,
    ) -> Arc<Execution> {
        let key = ExecKey::new(engine, kernel, settings);
        let shard = self.shard(&key);
        if let Some(bucket) = shard.read().get(&key) {
            if let Some((_, ex)) = bucket.iter().find(|(n, _)| *n == kernel.name) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(ex);
            }
        }
        let mut guard = shard.write();
        let bucket = match guard.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(Bucket::new()),
        };
        if let Some((_, ex)) = bucket.iter().find(|(n, _)| *n == kernel.name) {
            // Raced with another worker that filled it first.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ex);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ex = Arc::new(compute());
        let t = &*self.tallies;
        t.inserts.fetch_add(1, Ordering::Relaxed);
        t.solver_iters
            .fetch_add(ex.solver_iters as u64, Ordering::Relaxed);
        t.cap_breaches
            .fetch_add(ex.cap_breached as u64, Ordering::Relaxed);
        t.ppt_throttled
            .fetch_add(ex.ppt_throttled as u64, Ordering::Relaxed);
        bucket.push((kernel.name.clone(), Arc::clone(&ex)));
        ex
    }

    /// Number of distinct (kernel, settings) pairs cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Current hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.tallies.inserts.load(Ordering::Relaxed),
        }
    }

    /// Totals over the engine executions this cache performed on misses:
    /// execution count, cap-solver demand evaluations, cap breaches, and
    /// firmware throttling events.
    pub fn engine_stats(&self) -> EngineStats {
        let t = &*self.tallies;
        EngineStats {
            executions: self.misses.load(Ordering::Relaxed),
            solver_iters: t.solver_iters.load(Ordering::Relaxed),
            cap_breaches: t.cap_breaches.load(Ordering::Relaxed),
            ppt_throttled: t.ppt_throttled.load(Ordering::Relaxed),
        }
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        let t = &*self.tallies;
        t.inserts.store(0, Ordering::Relaxed);
        t.solver_iters.store(0, Ordering::Relaxed);
        t.cap_breaches.store(0, Ordering::Relaxed);
        t.ppt_throttled.store(0, Ordering::Relaxed);
    }
}

impl Engine {
    /// Memoized [`Engine::execute`]: answers from `cache` when the exact
    /// (kernel, settings) bit pattern was executed before, otherwise runs
    /// the engine and caches the result.
    ///
    /// The returned execution is shared; it is bit-identical to what
    /// [`Engine::execute`] would produce because the key is exact
    /// (see the module docs on quantization).
    ///
    /// # Panics
    /// Panics if the kernel profile fails validation, like
    /// [`Engine::execute`].
    pub fn execute_cached(
        &self,
        cache: &ExecCache,
        kernel: &KernelProfile,
        settings: GpuSettings,
    ) -> Arc<Execution> {
        cache.get_or_insert_with(self, kernel, settings, || self.execute(kernel, settings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Freq;

    fn kernel(ai: f64) -> KernelProfile {
        let bytes = 64e9;
        KernelProfile::builder(format!("k-{ai}"))
            .flops(ai * bytes)
            .hbm_bytes(bytes)
            .build()
    }

    #[test]
    fn cached_execution_matches_uncached_bit_for_bit() {
        let eng = Engine::default();
        let cache = ExecCache::new();
        for settings in [
            GpuSettings::uncapped(),
            GpuSettings::freq_capped(900.0),
            GpuSettings::power_capped(300.0),
        ] {
            for ai in [0.0625, 1.0, 64.0] {
                let k = kernel(ai);
                let direct = eng.execute(&k, settings);
                let cached = eng.execute_cached(&cache, &k, settings);
                assert_eq!(direct.time_s.to_bits(), cached.time_s.to_bits());
                assert_eq!(direct.energy_j.to_bits(), cached.energy_j.to_bits());
                assert_eq!(direct.busy_power_w.to_bits(), cached.busy_power_w.to_bits());
                assert_eq!(direct.freq.mhz().to_bits(), cached.freq.mhz().to_bits());
                assert_eq!(direct.kernel_name, cached.kernel_name);
                assert_eq!(direct.ppt_throttled, cached.ppt_throttled);
            }
        }
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let eng = Engine::default();
        let cache = ExecCache::new();
        let k = kernel(1.0);
        for _ in 0..5 {
            eng.execute_cached(&cache, &k, GpuSettings::uncapped());
        }
        eng.execute_cached(&cache, &k, GpuSettings::freq_capped(1200.0));
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "two distinct keys");
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.lookups(), 6);
        assert!((stats.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn miss_path_tallies_inserts_and_engine_work() {
        let eng = Engine::default();
        let cache = ExecCache::new();
        let k = kernel(1.0);
        // Uncapped: the solver exits after one probe per phase solve.
        eng.execute_cached(&cache, &k, GpuSettings::uncapped());
        // Power-capped: the throughput solve bisects.
        eng.execute_cached(&cache, &k, GpuSettings::power_capped(300.0));
        eng.execute_cached(&cache, &k, GpuSettings::power_capped(300.0)); // hit
        let stats = cache.stats();
        assert_eq!(stats.inserts, stats.misses, "every exec-cache miss inserts");
        let eng_stats = cache.engine_stats();
        assert_eq!(eng_stats.executions, 2);
        assert!(
            eng_stats.solver_iters > 2 * 2,
            "the capped execution bisects: {eng_stats:?}"
        );
        // A breaching kernel (HBM power that the clock cannot shed) bumps
        // the breach tally.
        let mb = KernelProfile::builder("mb-hbm")
            .hbm_bytes(64e9)
            .bw_oversub(3.0)
            .flops(1.0)
            .build();
        eng.execute_cached(&cache, &mb, GpuSettings::power_capped(200.0));
        assert_eq!(cache.engine_stats().cap_breaches, 1);
        cache.clear();
        assert_eq!(cache.engine_stats(), EngineStats::default());
    }

    #[test]
    fn hits_share_one_allocation() {
        let eng = Engine::default();
        let cache = ExecCache::new();
        let k = kernel(4.0);
        let a = eng.execute_cached(&cache, &k, GpuSettings::uncapped());
        let b = eng.execute_cached(&cache, &k, GpuSettings::uncapped());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn key_distinguishes_every_numeric_field() {
        let eng = Engine::default();
        let base = kernel(1.0);
        let s = GpuSettings::uncapped();
        let k0 = ExecKey::new(&eng, &base, s);
        assert_eq!(k0, ExecKey::new(&eng, &base.clone(), s));

        let mut variants = Vec::new();
        for f in 0..9 {
            let mut k = base.clone();
            match f {
                0 => k.flops += 1.0,
                1 => k.hbm_bytes += 1.0,
                2 => k.ondie_bytes += 1.0,
                3 => k.flop_efficiency *= 0.5,
                4 => k.bw_oversub *= 0.5,
                5 => k.bw_sustain *= 0.5,
                6 => k.divergence = 0.1,
                7 => k.serial_at_fmax_s = 1.0,
                _ => k.stall_s = 1.0,
            }
            variants.push(ExecKey::new(&eng, &k, s));
        }
        variants.push(ExecKey::new(
            &eng,
            &base,
            GpuSettings {
                freq_cap: Freq::from_mhz(900.0),
                power_cap_w: None,
            },
        ));
        variants.push(ExecKey::new(&eng, &base, GpuSettings::power_capped(300.0)));
        // A differently-calibrated engine keys separately too: the SKU
        // catalog shares one cache across node classes.
        let hot = Engine::new(crate::power::PowerModel::default(), eng.ppt_w() + 10.0);
        variants.push(ExecKey::new(&hot, &base, s));
        for v in &variants {
            assert_ne!(&k0, v);
        }
    }

    #[test]
    fn same_numerics_different_names_stay_distinct() {
        // Two kernels that differ only in their label must come back with
        // their own names even though the numeric key words agree.
        let eng = Engine::default();
        let cache = ExecCache::new();
        let a = KernelProfile::builder("alpha")
            .flops(1e12)
            .hbm_bytes(1e10)
            .build();
        let mut b = a.clone();
        b.name = "beta".into();
        let ea = eng.execute_cached(&cache, &a, GpuSettings::uncapped());
        let eb = eng.execute_cached(&cache, &b, GpuSettings::uncapped());
        assert_eq!(ea.kernel_name, "alpha");
        assert_eq!(eb.kernel_name, "beta");
        assert_eq!(cache.len(), 2);
        assert_eq!(ea.time_s.to_bits(), eb.time_s.to_bits());
    }

    #[test]
    fn none_power_cap_cannot_collide_with_a_finite_cap() {
        let eng = Engine::default();
        let k = kernel(1.0);
        let none = ExecKey::new(&eng, &k, GpuSettings::uncapped());
        let some = ExecKey::new(
            &eng,
            &k,
            GpuSettings::power_capped(f64::from_bits(u64::MAX - 1)),
        );
        // Any *finite* cap differs from the None sentinel by construction;
        // even this NaN-pattern cap differs because the sentinel is MAX.
        assert_ne!(none, some);
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let eng = Engine::default();
        let cache = ExecCache::with_shards(3); // rounds up to 4
        eng.execute_cached(&cache, &kernel(1.0), GpuSettings::uncapped());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn shared_across_threads() {
        let eng = Engine::default();
        let cache = std::sync::Arc::new(ExecCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let eng = eng.clone();
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for ai in [0.0625, 1.0, 4.0, 64.0] {
                        eng.execute_cached(&cache, &kernel(ai), GpuSettings::uncapped());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(cache.len(), 4, "four distinct keys");
        assert_eq!(stats.lookups(), 16);
        assert!(stats.misses >= 4 && stats.misses <= 16);
    }
}
