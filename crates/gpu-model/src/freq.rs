//! Core-clock frequency domain: the DVFS ladder and the voltage/frequency
//! curve that drives dynamic-power scaling.
//!
//! Dynamic CMOS power scales as `C · V² · f`.  The model normalizes this to
//! the maximum operating point and exposes it as [`VoltageCurve::dyn_scale`],
//! the factor by which per-operation switching energy and clock-tree power
//! shrink when the core clock is capped.

use crate::consts::{F_MAX_MHZ, F_MIN_MHZ};

/// A core-clock frequency in MHz.
///
/// Newtype so that frequencies cannot be accidentally mixed with other
/// scalar quantities (powers, bandwidths) flowing through the model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Freq(f64);

impl Freq {
    /// Maximum (uncapped) operating frequency.
    pub const MAX: Freq = Freq(F_MAX_MHZ);
    /// Minimum sustainable operating frequency.
    pub const MIN: Freq = Freq(F_MIN_MHZ);

    /// Creates a frequency from MHz, clamped to the device's valid range.
    pub fn from_mhz(mhz: f64) -> Self {
        Freq(mhz.clamp(F_MIN_MHZ, F_MAX_MHZ))
    }

    /// Creates a frequency from MHz without clamping.
    ///
    /// Returns `None` when outside `[F_MIN, F_MAX]`.
    pub fn try_from_mhz(mhz: f64) -> Option<Self> {
        (F_MIN_MHZ..=F_MAX_MHZ).contains(&mhz).then_some(Freq(mhz))
    }

    /// The frequency in MHz.
    pub fn mhz(self) -> f64 {
        self.0
    }

    /// The frequency as a fraction of the maximum clock, in `(0, 1]`.
    pub fn ratio(self) -> f64 {
        self.0 / F_MAX_MHZ
    }
}

impl std::fmt::Display for Freq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} MHz", self.0)
    }
}

/// Piecewise-linear voltage/frequency relationship, normalized so that
/// `v(F_MAX) = 1`.
///
/// AMD GPUs reduce the core voltage together with frequency along a fused
/// V/f curve; the published curves are close to linear over the DVFS range.
/// The slope is a calibration parameter: a steeper curve deepens the energy
/// savings available from frequency capping (paper Table III).
#[derive(Debug, Clone, Copy)]
pub struct VoltageCurve {
    /// Normalized voltage at zero frequency (linear intercept).
    pub v_intercept: f64,
    /// Normalized voltage slope per unit `f/F_MAX`.
    pub v_slope: f64,
}

impl Default for VoltageCurve {
    fn default() -> Self {
        // Calibrated: gives VAI-average power ratios close to the paper's
        // Table III column (a) when combined with the power model defaults.
        VoltageCurve {
            v_intercept: 0.55,
            v_slope: 0.45,
        }
    }
}

impl VoltageCurve {
    /// Normalized voltage at frequency `f`, in `(0, 1]`.
    pub fn voltage(&self, f: Freq) -> f64 {
        self.v_intercept + self.v_slope * f.ratio()
    }

    /// Per-operation switching-energy scale `V(f)² / V(F_MAX)²`, in `(0, 1]`.
    pub fn energy_scale(&self, f: Freq) -> f64 {
        let v = self.voltage(f) / self.voltage(Freq::MAX);
        v * v
    }

    /// Dynamic-power scale `(f/F_MAX) · V(f)²/V(F_MAX)²` for components whose
    /// activity rate follows the core clock (clock tree, busy pipelines).
    pub fn dyn_scale(&self, f: Freq) -> f64 {
        f.ratio() * self.energy_scale(f)
    }
}

/// The discrete DVFS ladder exposed to software, mirroring the frequency
/// caps swept in the paper (1700 down to 700 MHz in 200 MHz steps, plus the
/// 500 MHz floor used by the Louvain case study).
#[derive(Debug, Clone)]
pub struct DvfsLadder {
    steps: Vec<Freq>,
}

impl Default for DvfsLadder {
    fn default() -> Self {
        let steps = [1700.0, 1500.0, 1300.0, 1100.0, 900.0, 700.0, 500.0]
            .iter()
            .map(|&m| Freq::from_mhz(m))
            .collect();
        DvfsLadder { steps }
    }
}

impl DvfsLadder {
    /// Creates a ladder from explicit MHz steps (sorted descending).
    pub fn new(mut mhz: Vec<f64>) -> Self {
        mhz.sort_by(|a, b| b.partial_cmp(a).expect("non-NaN frequency"));
        mhz.dedup();
        DvfsLadder {
            steps: mhz.into_iter().map(Freq::from_mhz).collect(),
        }
    }

    /// All steps, highest first.
    pub fn steps(&self) -> &[Freq] {
        &self.steps
    }

    /// The highest ladder step that does not exceed `f`; falls back to the
    /// lowest step when `f` is below the whole ladder.
    pub fn quantize_down(&self, f: Freq) -> Freq {
        self.steps
            .iter()
            .copied()
            .find(|s| s.mhz() <= f.mhz() + 1e-9)
            .unwrap_or_else(|| *self.steps.last().expect("non-empty ladder"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_clamps_to_device_range() {
        assert_eq!(Freq::from_mhz(2000.0).mhz(), F_MAX_MHZ);
        assert_eq!(Freq::from_mhz(100.0).mhz(), F_MIN_MHZ);
        assert_eq!(Freq::from_mhz(1300.0).mhz(), 1300.0);
        assert!(Freq::try_from_mhz(100.0).is_none());
        assert!(Freq::try_from_mhz(900.0).is_some());
    }

    #[test]
    fn voltage_curve_is_normalized_and_monotone() {
        let vc = VoltageCurve::default();
        assert!((vc.voltage(Freq::MAX) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for mhz in [500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0, 1700.0] {
            let s = vc.dyn_scale(Freq::from_mhz(mhz));
            assert!(s > prev, "dyn_scale must increase with f");
            assert!(s <= 1.0 + 1e-12);
            prev = s;
        }
        assert!((vc.dyn_scale(Freq::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dyn_scale_is_superlinear_in_frequency() {
        // Halving the clock should save more than half the dynamic power,
        // because voltage drops too -- this is what makes intermediate
        // frequencies an energy-to-solution optimum (paper Fig. 5).
        let vc = VoltageCurve::default();
        let half = Freq::from_mhz(F_MAX_MHZ / 2.0);
        assert!(vc.dyn_scale(half) < 0.5 * vc.dyn_scale(Freq::MAX));
    }

    #[test]
    fn ladder_quantizes_downward() {
        let l = DvfsLadder::default();
        assert_eq!(l.quantize_down(Freq::from_mhz(1400.0)).mhz(), 1300.0);
        assert_eq!(l.quantize_down(Freq::from_mhz(1700.0)).mhz(), 1700.0);
        assert_eq!(l.quantize_down(Freq::from_mhz(500.0)).mhz(), 500.0);
        assert_eq!(l.quantize_down(Freq::from_mhz(650.0)).mhz(), 500.0);
    }

    #[test]
    fn custom_ladder_sorts_and_dedups() {
        let l = DvfsLadder::new(vec![900.0, 1700.0, 900.0, 1300.0]);
        let mhz: Vec<f64> = l.steps().iter().map(|f| f.mhz()).collect();
        assert_eq!(mhz, vec![1700.0, 1300.0, 900.0]);
    }
}
