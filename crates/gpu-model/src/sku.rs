//! SKU catalog: typed heterogeneous fleets.
//!
//! The paper measures a homogeneous fleet of identical 4×MI250X blades.
//! Mixed procurement generations break that assumption: each node class
//! ("SKU") carries its own calibrated [`PowerModel`], firmware sustained
//! limit, boost headroom, and CPU-side rest-of-node power domain.  A
//! [`SkuCatalog`] holds one [`SkuSpec`] per class and a [`FleetMix`]
//! assigns a class to every node deterministically.
//!
//! SKU 0 is always the paper's MI250X blade, constructed from exactly the
//! same defaults the homogeneous simulation uses — a fleet whose mix maps
//! every node to SKU 0 must be bit-identical to the legacy code path.
//!
//! Per-component attribution follows McDaniel et al.: package energy is
//! split across `HBM`, `L2` (on-die datapath), `ALU`, and the clock
//! tree/uncore (which here also absorbs the always-on idle floor, so the
//! four components sum exactly to the device total).

use crate::consts::{GPU_BOOST_W, GPU_TDP_W};
use crate::device::NodeRestModel;
use crate::engine::Engine;
use crate::freq::Freq;
use crate::power::{PowerModel, Utilization};

/// Hard ceiling on catalog size: the resident wire codec packs the SKU
/// index into the high nibble of the slot byte.
pub const MAX_SKUS: usize = 16;

/// A per-component energy lane (McDaniel et al. granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// HBM stacks and PHY (own voltage domain).
    Hbm,
    /// On-die L2/LSU datapath movement.
    L2,
    /// SIMD pipelines.
    Alu,
    /// Clock tree / uncore, plus the always-on idle floor.
    ClockTree,
}

impl Component {
    /// All components, in lane order.
    pub fn all() -> [Component; 4] {
        [
            Component::Hbm,
            Component::L2,
            Component::Alu,
            Component::ClockTree,
        ]
    }

    /// Stable lane index.
    pub fn index(self) -> usize {
        match self {
            Component::Hbm => 0,
            Component::L2 => 1,
            Component::Alu => 2,
            Component::ClockTree => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::Hbm => "HBM",
            Component::L2 => "L2",
            Component::Alu => "ALU",
            Component::ClockTree => "clock-tree",
        }
    }
}

/// Representative operating points per Table IV region, used to split a
/// region's device energy across components.  Region 1 (latency-bound)
/// uses the engine's serial-phase utilization; region 2 (memory-intensive)
/// the streaming anchor; region 3 (compute-intensive) the compute anchor;
/// region 4 (boost) every datapath saturated.
const REGION_UTIL: [Utilization; 4] = [
    Utilization {
        alu: 0.05,
        ondie: 0.03,
        hbm: 0.04,
        active: 1.0,
    },
    Utilization {
        alu: 0.016,
        ondie: 0.25,
        hbm: 1.0,
        active: 1.0,
    },
    Utilization {
        alu: 1.0,
        ondie: 0.003,
        hbm: 0.003,
        active: 1.0,
    },
    Utilization {
        alu: 1.0,
        ondie: 1.0,
        hbm: 1.0,
        active: 1.0,
    },
];

/// One node class: a GPU model plus the node's CPU-side power domain.
#[derive(Debug, Clone)]
pub struct SkuSpec {
    /// Display name, e.g. `"mi250x"`.
    pub name: &'static str,
    /// Execution engine calibrated for this SKU's GPU.
    pub engine: Engine,
    /// CPU-side rest-of-node power domain.
    pub rest: NodeRestModel,
    /// Sustained thermal design power, in watts (boost-burst baseline).
    pub tdp_w: f64,
    /// Short-excursion boost ceiling, in watts.
    pub boost_w: f64,
}

impl SkuSpec {
    /// Fraction of device energy attributed to each component lane
    /// (`[HBM, L2, ALU, clock-tree]`) for Table IV region `region`
    /// (0 = latency-bound … 3 = boost), evaluated at the region's
    /// representative operating point at the maximum clock.
    ///
    /// The clock-tree lane is the exact remainder — it absorbs the idle
    /// floor and uncore — so the four fractions always sum to 1.
    pub fn region_component_fractions(&self, region: usize) -> [f64; 4] {
        let util = REGION_UTIL[region.min(3)];
        let b = self.engine.power_model().demand(util, Freq::MAX);
        let total = b.total();
        if total <= 0.0 {
            return [0.0, 0.0, 0.0, 1.0];
        }
        let hbm = b.hbm_w / total;
        let l2 = b.ondie_w / total;
        let alu = b.alu_w / total;
        [hbm, l2, alu, 1.0 - (hbm + l2 + alu)]
    }

    /// Steady power drawn during a granted boost burst, in watts: halfway
    /// between the sustained TDP and the boost ceiling (the telemetry
    /// model's excursion midpoint).
    pub fn boosted_w(&self) -> f64 {
        self.tdp_w + 0.5 * (self.boost_w - self.tdp_w)
    }
}

/// The set of node classes a fleet may be built from.  Index 0 is always
/// the paper's MI250X blade with the default models.
#[derive(Debug, Clone)]
pub struct SkuCatalog {
    skus: Vec<SkuSpec>,
}

impl Default for SkuCatalog {
    fn default() -> Self {
        SkuCatalog::standard()
    }
}

impl SkuCatalog {
    /// The standard three-class catalog:
    ///
    /// * `0 — mi250x`: the paper's blade, bit-identical to the default
    ///   homogeneous models;
    /// * `1 — mi300a`: a hotter APU-class part (higher floors and ceilings,
    ///   560 W sustained limit);
    /// * `2 — mi210`: a cooler PCIe-class part (300 W sustained limit).
    pub fn standard() -> Self {
        let mi250x = SkuSpec {
            name: "mi250x",
            engine: Engine::default(),
            rest: NodeRestModel::default(),
            tdp_w: GPU_TDP_W,
            boost_w: GPU_BOOST_W,
        };
        let mi300a = SkuSpec {
            name: "mi300a",
            engine: Engine::new(
                PowerModel {
                    idle_w: 95.0,
                    clock_w: 48.0,
                    alu_max_w: 340.0,
                    ondie_max_w: 350.0,
                    hbm_max_w: 190.0,
                    curve: Default::default(),
                },
                560.0,
            ),
            rest: NodeRestModel {
                idle_w: 240.0,
                cpu_dyn_w: 190.0,
            },
            tdp_w: 600.0,
            boost_w: 640.0,
        };
        let mi210 = SkuSpec {
            name: "mi210",
            engine: Engine::new(
                PowerModel {
                    idle_w: 65.0,
                    clock_w: 30.0,
                    alu_max_w: 220.0,
                    ondie_max_w: 240.0,
                    hbm_max_w: 130.0,
                    curve: Default::default(),
                },
                300.0,
            ),
            rest: NodeRestModel {
                idle_w: 180.0,
                cpu_dyn_w: 140.0,
            },
            tdp_w: 300.0,
            boost_w: 330.0,
        };
        SkuCatalog {
            skus: vec![mi250x, mi300a, mi210],
        }
    }

    /// All SKUs, in index order.
    pub fn skus(&self) -> &[SkuSpec] {
        &self.skus
    }

    /// Number of classes in the catalog.
    pub fn len(&self) -> usize {
        self.skus.len()
    }

    /// Whether the catalog is empty (never true for [`standard`]).
    ///
    /// [`standard`]: SkuCatalog::standard
    pub fn is_empty(&self) -> bool {
        self.skus.is_empty()
    }

    /// The spec for SKU index `sku`, wrapping out-of-range indices back
    /// into the catalog so arbitrary mixes can never panic.
    pub fn spec(&self, sku: u8) -> &SkuSpec {
        &self.skus[sku as usize % self.skus.len().max(1)]
    }
}

/// Deterministic node-class assignment: node `n` gets
/// `pattern[n % pattern.len()]`.  The default mix maps every node to
/// SKU 0, which reproduces the homogeneous fleet exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMix {
    pattern: Vec<u8>,
}

impl Default for FleetMix {
    fn default() -> Self {
        FleetMix::homogeneous()
    }
}

impl FleetMix {
    /// Every node is SKU 0 — the legacy homogeneous fleet.
    pub fn homogeneous() -> Self {
        FleetMix { pattern: vec![0] }
    }

    /// A mix cycling through `pattern` across node indices.  Empty
    /// patterns collapse to the homogeneous mix; indices are clamped to
    /// [`MAX_SKUS`].
    pub fn new(pattern: Vec<u8>) -> Self {
        if pattern.is_empty() {
            return FleetMix::homogeneous();
        }
        FleetMix {
            pattern: pattern.into_iter().map(|s| s % MAX_SKUS as u8).collect(),
        }
    }

    /// The repeating assignment pattern.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// SKU index for node `node`.
    pub fn sku_of(&self, node: usize) -> u8 {
        self.pattern[node % self.pattern.len()]
    }

    /// True when every node maps to SKU 0 (the byte-identical legacy path).
    pub fn is_homogeneous(&self) -> bool {
        self.pattern.iter().all(|&s| s == 0)
    }

    /// Named preset mixes accepted by the CLI and scenario specs.
    pub fn preset(name: &str) -> Option<FleetMix> {
        match name {
            "single-sku" => Some(FleetMix::homogeneous()),
            "mixed-50-50" => Some(FleetMix::new(vec![0, 1])),
            "mixed-datacenter" => Some(FleetMix::new(vec![0, 0, 1, 2])),
            _ => None,
        }
    }

    /// Names accepted by [`FleetMix::preset`], for help text.
    pub fn preset_names() -> &'static [&'static str] {
        &["single-sku", "mixed-50-50", "mixed-datacenter"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::GPU_PPT_W;
    use crate::power::Utilization;

    #[test]
    fn sku_zero_is_the_default_blade_exactly() {
        let cat = SkuCatalog::standard();
        let s0 = cat.spec(0);
        let dflt = Engine::default();
        // Same idle demand, same PPT, same rest-of-node, same boost params
        // — every number the fleet simulation derives from the engine.
        let idle = |e: &Engine| e.power_model().demand_w(Utilization::idle(), Freq::MAX);
        assert_eq!(idle(&s0.engine).to_bits(), idle(&dflt).to_bits());
        assert_eq!(s0.engine.ppt_w(), GPU_PPT_W);
        assert_eq!(s0.rest.power_w(0.5), NodeRestModel::default().power_w(0.5));
        assert_eq!(s0.tdp_w, GPU_TDP_W);
        assert_eq!(s0.boost_w, GPU_BOOST_W);
        assert_eq!(s0.boosted_w(), GPU_TDP_W + 0.5 * (GPU_BOOST_W - GPU_TDP_W));
    }

    #[test]
    fn component_fractions_sum_to_one_in_every_region() {
        let cat = SkuCatalog::standard();
        for sku in cat.skus() {
            for region in 0..4 {
                let f = sku.region_component_fractions(region);
                let sum: f64 = f.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{} r{region}: {sum}", sku.name);
                assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn memory_region_is_hbm_heavy_compute_region_is_alu_heavy() {
        let s0 = SkuCatalog::standard();
        let mi = s0.spec(0).region_component_fractions(1);
        let ci = s0.spec(0).region_component_fractions(2);
        assert!(mi[Component::Hbm.index()] > ci[Component::Hbm.index()]);
        assert!(ci[Component::Alu.index()] > mi[Component::Alu.index()]);
    }

    #[test]
    fn mix_assignment_cycles_and_wraps() {
        let mix = FleetMix::new(vec![0, 0, 1, 2]);
        assert_eq!(mix.sku_of(0), 0);
        assert_eq!(mix.sku_of(2), 1);
        assert_eq!(mix.sku_of(3), 2);
        assert_eq!(mix.sku_of(4), 0);
        assert!(!mix.is_homogeneous());
        assert!(FleetMix::homogeneous().is_homogeneous());
        assert!(FleetMix::new(vec![0, 0, 0]).is_homogeneous());
        assert!(FleetMix::new(Vec::new()).is_homogeneous());
    }

    #[test]
    fn presets_resolve_and_catalog_wraps_out_of_range() {
        for name in FleetMix::preset_names() {
            assert!(FleetMix::preset(name).is_some(), "{name}");
        }
        assert!(FleetMix::preset("nope").is_none());
        assert!(FleetMix::preset("single-sku").unwrap().is_homogeneous());
        let cat = SkuCatalog::standard();
        assert_eq!(cat.spec(3).name, cat.spec(0).name);
        assert_eq!(cat.spec(15).name, cat.skus()[15 % cat.len()].name);
    }

    #[test]
    fn skus_differ_where_it_matters() {
        let cat = SkuCatalog::standard();
        let idle = |s: &SkuSpec| {
            s.engine
                .power_model()
                .demand_w(Utilization::idle(), Freq::MAX)
        };
        assert!(idle(cat.spec(1)) > idle(cat.spec(0)));
        assert!(idle(cat.spec(2)) < idle(cat.spec(0)));
        assert!(cat.spec(1).engine.ppt_w() > cat.spec(0).engine.ppt_w());
        assert!(cat.spec(2).engine.ppt_w() < cat.spec(0).engine.ppt_w());
    }
}
