//! Decomposed GPU package power model.
//!
//! Package power is the sum of five components:
//!
//! ```text
//! P = P_idle                                   (board, leakage, HBM refresh)
//!   + P_clock · dyn(f)                         (clock tree / uncore, while busy)
//!   + P_alu_max   · u_alu   · dyn(f)           (SIMD pipelines)
//!   + P_ondie_max · u_ondie · dyn(f)           (L2 / LSU datapath movement)
//!   + P_hbm_max   · u_hbm                      (HBM stacks + PHY, own voltage domain)
//! ```
//!
//! where `dyn(f) = (f/f_max)·(V(f)/V_max)²` and every `u` is the achieved
//! rate relative to the *current-frequency* ceiling, so a component at full
//! utilization scales exactly as rate × energy-per-op × V².  HBM deliberately
//! does **not** scale with the core clock: its voltage domain is independent,
//! which is why low power caps are *breached* by HBM-heavy kernels in the
//! paper (Fig. 6d) — the controller runs out of core frequency to shed.
//!
//! Default coefficients are calibrated against the paper's measured anchors
//! on the MI250X (Sec. IV-A):
//!
//! * idle: 88–90 W;
//! * streaming, memory-bound VAI (AI = 1/16) at 1700 MHz: ≈ 380 W;
//! * compute-bound VAI tail (AI ≥ 512) at 1700 MHz: ≈ 420 W;
//! * roofline ridge (AI = 4): demand exceeds the firmware sustained limit,
//!   observed power saturates at ≈ 540 W — "only when stressing both the
//!   memory subsystem and the ALUs is the TDP reached".

use crate::consts::{GPU_HBM_BW, GPU_IDLE_W, GPU_L2_BW};
use crate::freq::{Freq, VoltageCurve};

/// Achieved utilizations of the three dynamic datapaths, each in `[0, 1]`
/// relative to its ceiling at the *current* operating frequency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Utilization {
    /// SIMD pipeline occupancy (issued FLOP rate over effective ceiling).
    pub alu: f64,
    /// On-die datapath (L2/LSU) traffic rate over its ceiling.
    pub ondie: f64,
    /// HBM interface traffic rate over peak HBM bandwidth.
    pub hbm: f64,
    /// 1.0 while a kernel occupies the device, 0.0 when fully idle/stalled.
    pub active: f64,
}

impl Utilization {
    /// Fully idle device.
    pub fn idle() -> Self {
        Utilization::default()
    }

    fn validate(&self) {
        for (v, name) in [
            (self.alu, "alu"),
            (self.ondie, "ondie"),
            (self.hbm, "hbm"),
            (self.active, "active"),
        ] {
            debug_assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "{name} utilization {v} out of range"
            );
        }
    }
}

/// Per-component power at one operating point, in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Always-on floor (board, leakage, HBM refresh).
    pub idle_w: f64,
    /// Clock tree / uncore while busy.
    pub clock_w: f64,
    /// SIMD pipelines.
    pub alu_w: f64,
    /// On-die (L2/LSU) data movement.
    pub ondie_w: f64,
    /// HBM stacks and PHY.
    pub hbm_w: f64,
}

impl PowerBreakdown {
    /// Total package power, in watts.
    pub fn total(&self) -> f64 {
        self.idle_w + self.clock_w + self.alu_w + self.ondie_w + self.hbm_w
    }
}

/// Calibrated package power model.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Always-on floor, in watts.
    pub idle_w: f64,
    /// Clock tree / uncore power at maximum frequency while busy, in watts.
    pub clock_w: f64,
    /// SIMD pipeline power at full occupancy and maximum frequency, in watts.
    pub alu_max_w: f64,
    /// On-die movement power at full L2-rate and maximum frequency, in watts.
    pub ondie_max_w: f64,
    /// HBM power at peak bandwidth, in watts (frequency-independent).
    pub hbm_max_w: f64,
    /// Voltage/frequency curve used for dynamic scaling.
    pub curve: VoltageCurve,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            idle_w: GPU_IDLE_W,
            clock_w: 40.0,
            alu_max_w: 291.0,
            // Calibrated so that streaming at full HBM rate (on-die traffic
            // = 3.2 TB/s of the 12.8 TB/s L2 ceiling, i.e. u = 0.25) costs
            // ~79 W on the on-die datapath: 380 W total streaming anchor.
            ondie_max_w: 316.0,
            hbm_max_w: 172.0,
            curve: VoltageCurve::default(),
        }
    }
}

impl PowerModel {
    /// Package power demand for the given utilizations at frequency `f`.
    ///
    /// "Demand" is the unconstrained draw; the engine clamps it against the
    /// firmware sustained limit and any software power cap by lowering `f`.
    pub fn demand(&self, util: Utilization, f: Freq) -> PowerBreakdown {
        util.validate();
        let dyn_scale = self.curve.dyn_scale(f);
        PowerBreakdown {
            idle_w: self.idle_w,
            clock_w: self.clock_w * dyn_scale * util.active,
            alu_w: self.alu_max_w * util.alu.clamp(0.0, 1.0) * dyn_scale,
            ondie_w: self.ondie_max_w * util.ondie.clamp(0.0, 1.0) * dyn_scale,
            hbm_w: self.hbm_max_w * util.hbm.clamp(0.0, 1.0),
        }
    }

    /// Convenience: total demand in watts.
    pub fn demand_w(&self, util: Utilization, f: Freq) -> f64 {
        self.demand(util, f).total()
    }

    /// Maximum possible demand at frequency `f` (every datapath saturated).
    pub fn max_demand_w(&self, f: Freq) -> f64 {
        self.demand_w(
            Utilization {
                alu: 1.0,
                ondie: 1.0,
                hbm: 1.0,
                active: 1.0,
            },
            f,
        )
    }

    /// Energy per byte moved on-die at maximum frequency, in joules/byte.
    pub fn ondie_energy_per_byte(&self) -> f64 {
        self.ondie_max_w / GPU_L2_BW
    }

    /// Energy per byte moved over HBM, in joules/byte.
    pub fn hbm_energy_per_byte(&self) -> f64 {
        self.hbm_max_w / GPU_HBM_BW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{GPU_PPT_W, GPU_TDP_W};

    fn streaming_util() -> Utilization {
        // Memory-bound streaming: HBM saturated, on-die carrying the same
        // 3.2 TB/s against a 12.8 TB/s ceiling, negligible FLOPs.
        Utilization {
            alu: 0.016,
            ondie: 0.25,
            hbm: 1.0,
            active: 1.0,
        }
    }

    #[test]
    fn idle_matches_paper_band() {
        let pm = PowerModel::default();
        let p = pm.demand_w(Utilization::idle(), Freq::MAX);
        assert!((88.0..=90.0).contains(&p), "idle {p} W");
    }

    #[test]
    fn streaming_anchor_near_380w() {
        let pm = PowerModel::default();
        let p = pm.demand_w(streaming_util(), Freq::MAX);
        assert!((375.0..=390.0).contains(&p), "streaming {p} W");
    }

    #[test]
    fn compute_anchor_near_420w() {
        let pm = PowerModel::default();
        let u = Utilization {
            alu: 1.0,
            ondie: 0.003,
            hbm: 0.003,
            active: 1.0,
        };
        let p = pm.demand_w(u, Freq::MAX);
        assert!((415.0..=425.0).contains(&p), "compute-bound {p} W");
    }

    #[test]
    fn ridge_demand_exceeds_sustained_limit() {
        // At the ridge both the memory system and the ALUs are saturated;
        // unconstrained demand must exceed the firmware limit so the device
        // throttles and the observed power saturates near 540 W (paper).
        let pm = PowerModel::default();
        let demand = pm.max_demand_w(Freq::MAX);
        assert!(demand > GPU_TDP_W, "ridge demand {demand} W");
        assert!(demand > GPU_PPT_W);
    }

    #[test]
    fn demand_monotone_in_frequency() {
        let pm = PowerModel::default();
        let u = streaming_util();
        let mut prev = 0.0;
        for mhz in [500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0, 1700.0] {
            let p = pm.demand_w(u, Freq::from_mhz(mhz));
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn hbm_power_is_frequency_insensitive() {
        let pm = PowerModel::default();
        let u = Utilization {
            hbm: 1.0,
            active: 1.0,
            ..Default::default()
        };
        let hi = pm.demand(u, Freq::MAX).hbm_w;
        let lo = pm.demand(u, Freq::MIN).hbm_w;
        assert_eq!(hi, lo, "HBM sits in its own voltage domain");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let pm = PowerModel::default();
        let b = pm.demand(streaming_util(), Freq::from_mhz(1100.0));
        let sum = b.idle_w + b.clock_w + b.alu_w + b.ondie_w + b.hbm_w;
        assert!((sum - b.total()).abs() < 1e-12);
    }

    #[test]
    fn energy_per_byte_is_physically_plausible() {
        let pm = PowerModel::default();
        // HBM2e reads land in the single-digit pJ/bit range.
        let pj_per_bit = pm.hbm_energy_per_byte() * 1e12 / 8.0;
        assert!((2.0..=12.0).contains(&pj_per_bit), "{pj_per_bit} pJ/bit");
    }
}
