//! Device constants for the modeled MI250X-class GPU (paper Table I).
//!
//! The model operates at **GPU granularity** (one MI250X package = two
//! Graphics Compute Dies).  This matches the paper: per-GPU power is what
//! the Frontier out-of-band telemetry reports, the benchmark figures are
//! captured "for a single GPU, while running all tiles of an MI250X", and
//! the modal decomposition (Table IV) bins per-GPU samples.
//!
//! Where the paper's Table I has an obvious typo (HBM bandwidth listed as
//! "1.6 GB/s") we use the documented MI250X value (1.6 TB/s per GCD,
//! 3.2 TB/s per GPU).

/// Number of Graphics Compute Dies per MI250X package.
pub const GCDS_PER_GPU: usize = 2;

/// Number of MI250X packages per Frontier compute node.
pub const GPUS_PER_NODE: usize = 4;

/// Number of compute nodes in the full Frontier system.
pub const FRONTIER_NODES: usize = 9408;

/// Peak FP64 vector throughput of a single GCD at maximum frequency, in
/// FLOP/s (paper: 23.9 TFLOP/s per GCD).
pub const GCD_PEAK_FLOPS: f64 = 23.9e12;

/// Peak FP64 vector throughput of the whole GPU (two GCDs), in FLOP/s.
pub const GPU_PEAK_FLOPS: f64 = GCD_PEAK_FLOPS * GCDS_PER_GPU as f64;

/// Peak HBM2e bandwidth of a single GCD, in bytes/s.
pub const GCD_HBM_BW: f64 = 1.6e12;

/// Peak HBM2e bandwidth of the whole GPU, in bytes/s.
pub const GPU_HBM_BW: f64 = GCD_HBM_BW * GCDS_PER_GPU as f64;

/// Peak aggregate L2 bandwidth of the whole GPU at maximum frequency, in
/// bytes/s.  The L2 sits in the core clock domain, so unlike HBM its
/// deliverable bandwidth scales with frequency (paper Fig. 6, left column).
/// The 4x-HBM ratio keeps the on-die path non-binding for HBM streaming
/// even at the bottom of the DVFS range (Table III: the membench runtime is
/// frequency-insensitive down to 700 MHz).
pub const GPU_L2_BW: f64 = 4.0 * GPU_HBM_BW;

/// Effective L2 capacity seen by a GPU-wide benchmark, in bytes (paper
/// Sec. IV-B: "the size of the data is less than 16 MB (size of L2-cache)").
pub const GPU_L2_BYTES: u64 = 16 * 1024 * 1024;

/// HBM capacity per GCD, in bytes (64 GiB).
pub const GCD_HBM_BYTES: u64 = 64 * 1024 * 1024 * 1024;

/// Maximum (default) core clock, in MHz (paper: "GCD max frequency 1700 MHz").
pub const F_MAX_MHZ: f64 = 1700.0;

/// Minimum sustainable core clock, in MHz.
pub const F_MIN_MHZ: f64 = 500.0;

/// Thermal design power of the GPU package, in watts (paper: 560 W).  This
/// is also the boundary of the "boosted frequency" telemetry region.
pub const GPU_TDP_W: f64 = 560.0;

/// Sustained package power target enforced by the device's own firmware
/// power manager, in watts.  The paper observes a steady-state maximum of
/// 540 W ("the maximum power consumption of the GPU is 540 W"), reached only
/// near the roofline ridge; short boost excursions above it up to the TDP
/// and slightly beyond appear in the 15 s telemetry (Table IV region 4).
pub const GPU_PPT_W: f64 = 540.0;

/// Maximum transient (boost) package power, in watts.
pub const GPU_BOOST_W: f64 = 600.0;

/// Idle package power band, in watts (paper Sec. V-A: "the idle power of a
/// GPU is between 88 to 90 W").
pub const GPU_IDLE_W: f64 = 89.0;

/// Baseline node power outside the GPUs (CPU package idle, DIMMs, NIC,
/// fans/pumps share), in watts.  Only used for whole-node telemetry, which
/// the paper notes is dwarfed (<20 %) by GPU power on a busy node.
pub const NODE_REST_IDLE_W: f64 = 220.0;

/// Peak additional CPU package power under full load, in watts.
pub const NODE_CPU_DYN_W: f64 = 170.0;

/// Joules per megawatt-hour, for reporting in the paper's units.
pub const JOULES_PER_MWH: f64 = 3.6e9;

/// Arithmetic intensity (FLOP/byte) of the roofline ridge point at maximum
/// frequency: peak FLOPs divided by peak HBM bandwidth.
pub const RIDGE_AI: f64 = GPU_PEAK_FLOPS / GPU_HBM_BW;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_sits_near_four_flops_per_byte() {
        // Paper Sec. IV-A: power peaks at AI = 4, the memory/compute ridge.
        assert!((RIDGE_AI - 14.9).abs() < 0.1, "ridge {RIDGE_AI}");
        // NOTE: the *hardware* ridge (47.8 TF / 3.2 TB/s ~ 14.9) differs from
        // the paper's observed power peak at AI = 4; the power peak location
        // is reproduced by the power model (see power.rs tests), not by the
        // roofline ridge itself.
    }

    #[test]
    fn totals_scale_from_gcd() {
        assert_eq!(GPU_PEAK_FLOPS, 47.8e12);
        assert_eq!(GPU_HBM_BW, 3.2e12);
        assert_eq!(GCDS_PER_GPU * GPUS_PER_NODE, 8);
    }

    #[test]
    fn power_ordering_is_sane() {
        // Compile-time ordering guarantees (clippy flags runtime asserts
        // on constants, so enforce the invariant in const context).
        const _: () = assert!(GPU_IDLE_W < GPU_PPT_W);
        const _: () = assert!(GPU_PPT_W < GPU_TDP_W);
        const _: () = assert!(GPU_TDP_W < GPU_BOOST_W);
    }
}
