//! First-order RC thermal model of the GPU package.
//!
//! Frontier's direct liquid cooling (paper Sec. II-A: "medium or
//! high-temperature water in their cooling loops") keeps the junction a
//! fixed thermal resistance above the coolant.  The model is a single RC
//! stage:
//!
//! ```text
//! dT/dt = (T_ambient + R_jc * P - T) / tau
//! ```
//!
//! Its purpose here is to *derive* the boost budget of
//! [`crate::boost::BoostBudget`] from physical constants: boost ends when
//! the junction reaches the throttle point, and headroom recovers as the
//! package cools back toward its sustained-power steady state.

use crate::boost::BoostBudget;
use crate::consts::{GPU_BOOST_W, GPU_PPT_W};

/// RC thermal parameters of the package + cold plate.
#[derive(Debug, Clone, Copy)]
pub struct ThermalModel {
    /// Coolant (ambient) temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-coolant thermal resistance, K/W.
    pub r_jc: f64,
    /// Thermal time constant, seconds.
    pub tau_s: f64,
    /// Junction temperature at which the firmware throttles, °C.
    pub throttle_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            ambient_c: 32.0,
            r_jc: 0.085,
            tau_s: 19.0,
            throttle_c: 80.0,
        }
    }
}

impl ThermalModel {
    /// Steady-state junction temperature at constant power, °C.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.r_jc * power_w
    }

    /// Advances a junction temperature by `dt` seconds at constant power.
    pub fn step(&self, t_c: f64, power_w: f64, dt_s: f64) -> f64 {
        let target = self.steady_state_c(power_w);
        target + (t_c - target) * (-dt_s / self.tau_s).exp()
    }

    /// Time until the junction reaches the throttle point from `t0_c` at
    /// constant power; `None` if it never does (steady state below the
    /// throttle point).
    pub fn time_to_throttle_s(&self, t0_c: f64, power_w: f64) -> Option<f64> {
        let target = self.steady_state_c(power_w);
        if target <= self.throttle_c {
            return None;
        }
        if t0_c >= self.throttle_c {
            return Some(0.0);
        }
        // throttle = target + (t0 - target) e^{-t/tau}
        let ratio = (self.throttle_c - target) / (t0_c - target);
        Some(-self.tau_s * ratio.ln())
    }

    /// Time to cool from the throttle point back to within `epsilon_k` of
    /// the sustained-power steady state.
    pub fn recovery_time_s(&self, sustained_w: f64, epsilon_k: f64) -> f64 {
        let target = self.steady_state_c(sustained_w);
        let gap = self.throttle_c - target;
        if gap <= epsilon_k {
            return 0.0;
        }
        self.tau_s * (gap / epsilon_k).ln()
    }

    /// Derives a [`BoostBudget`] from the thermal constants: capacity is
    /// the boost duration from the sustained steady state, and the
    /// recharge rate refills it over the thermal recovery time.
    pub fn derive_boost_budget(&self) -> BoostBudget {
        let t_sustained = self.steady_state_c(GPU_PPT_W);
        let capacity = self
            .time_to_throttle_s(t_sustained, GPU_BOOST_W)
            .unwrap_or(f64::INFINITY)
            .min(60.0);
        let recovery = self.recovery_time_s(GPU_PPT_W, 0.25).max(1.0);
        BoostBudget::new(capacity, capacity / recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::default()
    }

    #[test]
    fn steady_state_is_linear_in_power() {
        let m = model();
        assert_eq!(m.steady_state_c(0.0), 32.0);
        let t540 = m.steady_state_c(540.0);
        assert!((75.0..82.0).contains(&t540), "{t540}");
        // The sustained point sits below, the boost point above, the
        // throttle temperature — the premise of time-limited boost.
        assert!(m.steady_state_c(GPU_PPT_W) < m.throttle_c);
        assert!(m.steady_state_c(GPU_BOOST_W) > m.throttle_c);
    }

    #[test]
    fn step_converges_exponentially() {
        let m = model();
        let mut t = m.ambient_c;
        for _ in 0..1000 {
            t = m.step(t, 400.0, 1.0);
        }
        assert!((t - m.steady_state_c(400.0)).abs() < 1e-6);
        // One time constant covers ~63% of the gap.
        let one_tau = m.step(m.ambient_c, 400.0, m.tau_s);
        let frac = (one_tau - m.ambient_c) / (m.steady_state_c(400.0) - m.ambient_c);
        assert!((frac - 0.632).abs() < 0.01, "{frac}");
    }

    #[test]
    fn throttle_time_matches_closed_form_stepping() {
        let m = model();
        let t0 = m.steady_state_c(GPU_PPT_W);
        let analytic = m.time_to_throttle_s(t0, GPU_BOOST_W).expect("throttles");
        // Numerically integrate.
        let mut t = t0;
        let mut elapsed = 0.0;
        while t < m.throttle_c {
            t = m.step(t, GPU_BOOST_W, 0.01);
            elapsed += 0.01;
            assert!(elapsed < 120.0, "never throttled");
        }
        assert!((elapsed - analytic).abs() < 0.05, "{elapsed} vs {analytic}");
    }

    #[test]
    fn no_throttle_below_the_limit() {
        let m = model();
        assert!(m.time_to_throttle_s(50.0, GPU_PPT_W).is_none());
        assert_eq!(
            m.time_to_throttle_s(m.throttle_c + 1.0, GPU_BOOST_W),
            Some(0.0)
        );
    }

    #[test]
    fn derived_budget_matches_default_boost_parameters() {
        // The hand-tuned BoostBudget defaults (10 s capacity, 0.12
        // recharge) should be consistent with the thermal constants to
        // within a factor of ~2 — they were chosen to reproduce the
        // paper's ~1% boosted GPU hours.
        let b = model().derive_boost_budget();
        assert!(
            (5.0..25.0).contains(&b.stored_s()),
            "capacity {}",
            b.stored_s()
        );
        let d = b.duty_cycle();
        assert!((0.05..0.35).contains(&d), "duty {d}");
    }

    #[test]
    fn recovery_takes_a_few_time_constants() {
        let m = model();
        let r = m.recovery_time_s(GPU_PPT_W, 0.25);
        assert!((m.tau_s..4.0 * m.tau_s).contains(&r), "{r}");
    }
}
