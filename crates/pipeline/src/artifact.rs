//! Typed artifact values for every paper figure and table.
//!
//! Each artifact is a plain data struct computed by the [`Pipeline`] from
//! its memoized stages, carrying exactly the numbers the original
//! per-artifact binaries printed.  Rendering lives in [`crate::render`]:
//! every artifact renders both to the byte-identical ASCII of the old
//! binaries and to structured JSON.

use pmss_core::heatmap::{energy_saved, energy_used, Heatmap};
use pmss_core::project::{project, Projection, ProjectionInput};
use pmss_core::sensitivity::{boundary_sweep, input_from_histogram, Boundaries};
use pmss_core::whatif::{best_uniform, optimize_per_domain};
use pmss_core::{Coverage, EnergyLedger, Region, SavingsBounds};
use pmss_econ::{shift, EconTrace, ShiftOutcome};
use pmss_error::PmssError;
use pmss_faults::{FaultPlan, GapPolicy, PRESETS};
use pmss_govern::{run_governor, GovernOutcome, GovernorPlan};
use pmss_gpu::{
    sweet_spots, DvfsLadder, GovernedTotals, Governor, GpuSettings, SkuCatalog, SweetSpot,
};
use pmss_graph::case_study::{networks, CaseStudy};
use pmss_obs::{edges, Stopwatch};
use pmss_sched::{catalog, generate, log, JobSizeClass, TraceParams};
use pmss_stream::{StreamConfig, StreamEngine, StreamState};
use pmss_telemetry::export::sample_storage_bytes;
use pmss_telemetry::{
    compare_sensors, delivery_ordered_events, FleetConfig, FleetPowerSeries, GpuCpuEnergy,
};
use pmss_workloads::membench::{self, chunk_for_block, MembenchParams};
use pmss_workloads::phases::synthesize_app;
use pmss_workloads::sweep::{normalize, sweep_kernel, CapSetting, MEMBENCH_POWER_CAPS_W};
use pmss_workloads::table3::Table3;
use pmss_workloads::vai::{self, VaiParams};
use pmss_workloads::{AppClass, NormalizedPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::json::Json;
use crate::render;
use crate::spec::ScenarioSpec;
use crate::stage::{metered_sim, metered_sim_stats, Pipeline};

/// Identifies one reproducible paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactId {
    /// Fig. 2: out-of-band vs in-band telemetry; GPU vs CPU energy.
    Fig2,
    /// Fig. 3: the L2-cache benchmark access pattern and knee.
    Fig3,
    /// Fig. 4: roofline under frequency and power caps.
    Fig4,
    /// Fig. 5: normalized VAI runtime/power/energy per cap ladder.
    Fig5,
    /// Fig. 6: membench power/bandwidth/time across working sets.
    Fig6,
    /// Fig. 7: Louvain case study across networks and frequencies.
    Fig7,
    /// Fig. 8: system-wide power distribution with region masses.
    Fig8,
    /// Fig. 9: per-science-domain power distributions.
    Fig9,
    /// Fig. 10: domain x job-size energy heatmaps.
    Fig10,
    /// Table I: the Frontier system summary.
    Table1,
    /// Table II: the three dataset products.
    Table2,
    /// Table III: benchmark factors under caps.
    Table3,
    /// Table IV: the modal decomposition.
    Table4,
    /// Table V: projected system-wide savings.
    Table5,
    /// Table VI: selective savings on hot domains.
    Table6,
    /// Table VII: the Frontier scheduling policy.
    Table7,
    /// Extension: projection vs measured ground truth.
    Validate,
    /// Extension: per-domain mixed-cap what-if.
    Whatif,
    /// Extension: per-phase DVFS governors vs static caps.
    Governor,
    /// Extension: facility peak-demand shaving.
    PeakPower,
    /// Ablation: region-boundary sensitivity.
    Sensitivity,
    /// Ablation: fault-injection sensitivity of the decomposition.
    Faults,
    /// Extension: the trace replayed as a timed stream through the
    /// incremental ingest engine, with periodic snapshots.
    Stream,
    /// Extension: online cluster power governor measured against the
    /// projection's static no-slowdown ceiling.
    Govern,
    /// Extension: per-SKU, per-component energy attribution with tuned
    /// sweet-spot frequencies for heterogeneous fleets.
    Components,
    /// Extension: price- and carbon-aware economics of the fleet energy,
    /// with the temporal-shifting what-if.
    Econ,
}

impl ArtifactId {
    /// Every artifact, in paper order.
    pub fn all() -> [ArtifactId; 26] {
        use ArtifactId::*;
        [
            Fig2,
            Fig3,
            Fig4,
            Fig5,
            Fig6,
            Fig7,
            Fig8,
            Fig9,
            Fig10,
            Table1,
            Table2,
            Table3,
            Table4,
            Table5,
            Table6,
            Table7,
            Validate,
            Whatif,
            Governor,
            PeakPower,
            Sensitivity,
            Faults,
            Stream,
            Govern,
            Components,
            Econ,
        ]
    }

    /// Canonical CLI name (`fig2` … `table7`, `validate`, …).
    pub fn name(self) -> &'static str {
        use ArtifactId::*;
        match self {
            Fig2 => "fig2",
            Fig3 => "fig3",
            Fig4 => "fig4",
            Fig5 => "fig5",
            Fig6 => "fig6",
            Fig7 => "fig7",
            Fig8 => "fig8",
            Fig9 => "fig9",
            Fig10 => "fig10",
            Table1 => "table1",
            Table2 => "table2",
            Table3 => "table3",
            Table4 => "table4",
            Table5 => "table5",
            Table6 => "table6",
            Table7 => "table7",
            Validate => "validate",
            Whatif => "whatif",
            Governor => "governor",
            PeakPower => "peakpower",
            Sensitivity => "sensitivity",
            Faults => "faults",
            Stream => "stream",
            Govern => "govern",
            Components => "components",
            Econ => "econ",
        }
    }

    /// One-line description, shown by `pmss list`.
    pub fn title(self) -> &'static str {
        use ArtifactId::*;
        match self {
            Fig2 => "telemetry vs ROCm SMI; GPU vs rest-of-node energy",
            Fig3 => "L2-cache benchmark access pattern and knee",
            Fig4 => "roofline under frequency and power caps",
            Fig5 => "normalized VAI runtime/power/energy per cap",
            Fig6 => "membench across working sets under caps",
            Fig7 => "Louvain case study across networks",
            Fig8 => "system-wide GPU power distribution",
            Fig9 => "per-science-domain power distributions",
            Fig10 => "domain x job-size energy heatmaps",
            Table1 => "Frontier system summary",
            Table2 => "dataset products and storage economics",
            Table3 => "benchmark factors under caps",
            Table4 => "modal decomposition of fleet telemetry",
            Table5 => "projected system-wide energy savings",
            Table6 => "selective savings on hot domains",
            Table7 => "Frontier job scheduling policy",
            Validate => "projection vs measured ground truth",
            Whatif => "per-domain mixed-cap what-if analysis",
            Governor => "per-phase DVFS governors vs static caps",
            PeakPower => "facility peak-demand shaving",
            Sensitivity => "region-boundary sensitivity ablation",
            Faults => "telemetry fault-injection sensitivity sweep",
            Stream => "streaming ingest replay with periodic snapshots",
            Govern => "online cluster governor vs the static savings ceiling",
            Components => "per-SKU component energy attribution and tuned sweet spots",
            Econ => {
                "cost and CO2 of the fleet energy by price/carbon trace, with temporal shifting"
            }
        }
    }

    /// Parses a canonical artifact name.
    pub fn from_name(name: &str) -> Result<ArtifactId, PmssError> {
        ArtifactId::all()
            .into_iter()
            .find(|id| id.name() == name)
            .ok_or_else(|| {
                PmssError::invalid_value(
                    "artifact",
                    name,
                    "fig2..fig10 | table1..table7 | validate | whatif | governor | peakpower | sensitivity | faults | stream | govern | components | econ",
                )
            })
    }
}

/// One aligned out-of-band / in-band sample pair (Fig. 2a).
#[derive(Debug, Clone, Copy)]
pub struct SensorPairSample {
    /// Window start, seconds.
    pub t_s: f64,
    /// Out-of-band telemetry reading, watts.
    pub oob_w: f64,
    /// In-band (SMI) reading, watts.
    pub smi_w: f64,
}

/// Fig. 2 data: sensor agreement and the GPU/CPU energy split.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Number of 15 s windows compared.
    pub windows: usize,
    /// Mean out-of-band power, watts.
    pub mean_power_w: f64,
    /// Mean |telemetry − smi|, watts.
    pub mean_abs_diff_w: f64,
    /// First sample pairs shown in the figure.
    pub pairs: Vec<SensorPairSample>,
    /// GPU share of node energy, 0..1.
    pub gpu_share: f64,
    /// GPU power histogram density.
    pub gpu_density: Vec<f64>,
    /// Rest-of-node power histogram density.
    pub rest_density: Vec<f64>,
}

/// One membench working-set row (Fig. 3).
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Working-set size, bytes.
    pub bytes: u64,
    /// `"L2"` or `"HBM"`.
    pub served_from: &'static str,
    /// Achieved bandwidth, GB/s.
    pub gb_s: f64,
    /// Busy power, watts.
    pub power_w: f64,
}

/// Fig. 3 data: the access pattern and the residency knee.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// `(block, chunk)` pairs for the first blocks against 5 chunks.
    pub pattern: Vec<(u64, u64)>,
    /// Size-sweep rows.
    pub rows: Vec<Fig3Row>,
}

/// One roofline row (Fig. 4) at a single arithmetic intensity.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
    /// Achieved TFLOP/s.
    pub tflops: f64,
    /// Achieved HBM bandwidth, GB/s.
    pub gb_s: f64,
    /// Busy power, watts.
    pub power_w: f64,
    /// Time relative to uncapped.
    pub t_rel: f64,
}

/// All intensities at one cap setting (Fig. 4).
#[derive(Debug, Clone)]
pub struct Fig4Section {
    /// The cap applied.
    pub setting: CapSetting,
    /// One row per arithmetic intensity.
    pub rows: Vec<Fig4Row>,
}

/// One knob column of Fig. 4 (fixed frequency / power cap).
#[derive(Debug, Clone)]
pub struct Fig4Block {
    /// Column title.
    pub title: &'static str,
    /// One section per cap setting.
    pub sections: Vec<Fig4Section>,
}

/// Fig. 4 data.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Left and right columns.
    pub blocks: Vec<Fig4Block>,
}

/// One VAI intensity's normalized sweep (Fig. 5).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
    /// Normalized point per ladder setting.
    pub points: Vec<NormalizedPoint>,
}

/// One cap-ladder block of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Block {
    /// Block title.
    pub title: &'static str,
    /// The ladder swept.
    pub settings: Vec<CapSetting>,
    /// One row per arithmetic intensity.
    pub rows: Vec<Fig5Row>,
}

/// Fig. 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Frequency and power ladder blocks.
    pub blocks: Vec<Fig5Block>,
}

/// One membench working-set row under a cap (Fig. 6).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Working-set size, bytes.
    pub bytes: u64,
    /// Achieved bandwidth, GB/s.
    pub gb_s: f64,
    /// Busy power, watts.
    pub power_w: f64,
    /// Time relative to uncapped.
    pub t_rel: f64,
    /// Whether the power cap was breached.
    pub breached: bool,
}

/// All sizes at one cap setting (Fig. 6).
#[derive(Debug, Clone)]
pub struct Fig6Section {
    /// The cap applied.
    pub setting: CapSetting,
    /// One row per working-set size.
    pub rows: Vec<Fig6Row>,
}

/// One knob column of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Block {
    /// Column title.
    pub title: &'static str,
    /// One section per cap setting.
    pub sections: Vec<Fig6Section>,
}

/// Fig. 6 data.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Frequency and power cap columns.
    pub blocks: Vec<Fig6Block>,
}

/// One frequency point of the Louvain sweep (Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct Fig7SweepRow {
    /// Knob value (MHz or watts).
    pub knob: f64,
    /// Runtime, seconds.
    pub runtime_s: f64,
    /// Average power, watts.
    pub avg_power_w: f64,
    /// Peak power, watts.
    pub peak_power_w: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// One road-network power-cap row (Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct Fig7RoadRow {
    /// Power cap, watts.
    pub cap_w: f64,
    /// Runtime relative to uncapped.
    pub runtime_ratio: f64,
    /// Energy saving, percent.
    pub saving_pct: f64,
    /// Whether the cap was breached.
    pub breached: bool,
}

/// One network case of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Case {
    /// Network name.
    pub name: String,
    /// Edge count.
    pub edges: usize,
    /// Maximum degree.
    pub d_max: usize,
    /// Mean degree.
    pub d_avg: f64,
    /// Final modularity.
    pub modularity: f64,
    /// Louvain level count.
    pub levels: usize,
    /// Frequency sweep rows.
    pub freq_rows: Vec<Fig7SweepRow>,
    /// Energy saving at 900 MHz, percent.
    pub saving_900_pct: f64,
    /// Runtime increase at 900 MHz, percent.
    pub slowdown_900_pct: f64,
    /// Power-cap sweep for road networks.
    pub road_caps: Option<Vec<Fig7RoadRow>>,
}

/// Fig. 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// One case per network.
    pub cases: Vec<Fig7Case>,
}

/// One region's share of GPU-hours (Fig. 8).
#[derive(Debug, Clone)]
pub struct RegionMass {
    /// Region label.
    pub label: &'static str,
    /// Share of samples, percent.
    pub pct: f64,
}

/// Fig. 8 data: the system-wide power distribution.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Sample count.
    pub samples: u64,
    /// Mean power, watts.
    pub mean_w: f64,
    /// Histogram density.
    pub density: Vec<f64>,
    /// Per-region sample mass.
    pub regions: Vec<RegionMass>,
    /// Distribution peak locations, watts.
    pub peaks_w: Vec<f64>,
}

/// One science domain's distribution (Fig. 9).
#[derive(Debug, Clone)]
pub struct Fig9Domain {
    /// Domain code.
    pub code: String,
    /// Domain name.
    pub name: String,
    /// Mean power, watts.
    pub mean_w: f64,
    /// Histogram density.
    pub density: Vec<f64>,
}

/// Fig. 9 data.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One entry per domain with samples.
    pub domains: Vec<Fig9Domain>,
}

/// Fig. 10 data: energy used / saved heatmaps.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Domain codes, row order.
    pub labels: Vec<String>,
    /// (a) energy used, MWh.
    pub used: Heatmap,
    /// (b) energy saved at the 1100 MHz cap, MWh.
    pub saved: Heatmap,
    /// Share of savings from job sizes A–C, percent.
    pub concentration_pct: f64,
}

/// Table I data: system summary rows.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// `(label, value)` pairs.
    pub rows: Vec<(&'static str, String)>,
}

/// One per-node placement shown in Table II(c).
#[derive(Debug, Clone)]
pub struct Table2Placement {
    /// Job id.
    pub job_id: u64,
    /// Project id.
    pub project_id: String,
    /// Placement start, seconds.
    pub begin_s: f64,
    /// Placement end, seconds.
    pub end_s: f64,
}

/// Table II data: dataset products.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Raw 2 s telemetry at Frontier scale, terabytes.
    pub raw_tb: f64,
    /// Aggregated 15 s product, terabytes.
    pub agg_tb: f64,
    /// Job count of the demo schedule.
    pub jobs: usize,
    /// First job-log lines.
    pub log_lines: Vec<String>,
    /// First placements on node 0.
    pub placements: Vec<Table2Placement>,
}

/// Table III artifact: the benchmark factor table.
#[derive(Debug, Clone)]
pub struct Table3Artifact {
    /// The computed factors.
    pub table: Table3,
}

/// Table IV data: modal decomposition shares.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// GPU-hour share per region (paper order), percent.
    pub gpu_hours_pct: [f64; 4],
}

/// Table V artifact: the savings projection at Frontier scale.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// The projection.
    pub projection: Projection,
}

/// Table VI artifact: selective savings on hot domains.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Selected domain codes.
    pub hot_codes: Vec<String>,
    /// The filtered projection.
    pub projection: Projection,
}

/// One scheduling-policy row (Table VII).
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Size-class label.
    pub label: char,
    /// Minimum node count.
    pub min_nodes: usize,
    /// Maximum node count.
    pub max_nodes: usize,
    /// Maximum walltime, hours.
    pub max_walltime_h: f64,
}

/// Table VII data.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// One row per size class.
    pub rows: Vec<Table7Row>,
}

/// One cap's projection-vs-measured comparison (validate extension).
#[derive(Debug, Clone, Copy)]
pub struct ValidateRow {
    /// Frequency cap, MHz.
    pub cap_mhz: f64,
    /// Projected savings, percent.
    pub projected_sav_pct: f64,
    /// Measured savings, percent.
    pub measured_sav_pct: f64,
    /// Projected runtime increase, percent.
    pub projected_dt_pct: f64,
    /// Measured runtime increase, percent.
    pub measured_dt_pct: f64,
}

/// Validate-extension data.
#[derive(Debug, Clone)]
pub struct Validate {
    /// Number of jobs re-executed.
    pub jobs: usize,
    /// One row per cap.
    pub rows: Vec<ValidateRow>,
}

/// One slowdown-budget row of the what-if analysis.
#[derive(Debug, Clone, Copy)]
pub struct WhatifBudgetRow {
    /// Per-domain slowdown budget, percent.
    pub budget_pct: f64,
    /// Mixed per-domain savings, percent of total.
    pub mixed_saves_pct: f64,
    /// Best uniform-cap savings, percent of total.
    pub uniform_saves_pct: f64,
    /// The best uniform cap.
    pub uniform_cap: CapSetting,
}

/// One domain's cap assignment at the 10 % budget.
#[derive(Debug, Clone)]
pub struct WhatifAssignment {
    /// Domain code.
    pub code: String,
    /// `(cap MHz, ΔT %)`, or `None` for uncapped.
    pub choice: Option<(f64, f64)>,
}

/// One slowdown budget's savings valued under the spec's econ trace.
#[derive(Debug, Clone, Copy)]
pub struct WhatifEconRow {
    /// Per-domain slowdown budget, percent.
    pub budget_pct: f64,
    /// The mixed assignment's savings valued at the trace, dollars.
    pub mixed_saving_usd: f64,
    /// The mixed assignment's carbon avoidance, tonnes CO₂.
    pub mixed_saving_t: f64,
}

/// Econ valuation of the what-if (present only when the scenario carries
/// an active econ trace, so historical artifacts keep their bytes).
#[derive(Debug, Clone)]
pub struct WhatifEcon {
    /// The trace the savings are valued under.
    pub trace: String,
    /// Total GPU energy cost under the trace, dollars at Frontier scale.
    pub total_cost_usd: f64,
    /// Total GPU carbon under the trace, tonnes at Frontier scale.
    pub total_carbon_t: f64,
    /// One valuation per budget row.
    pub rows: Vec<WhatifEconRow>,
}

/// What-if extension data.
#[derive(Debug, Clone)]
pub struct Whatif {
    /// One row per budget.
    pub budget_rows: Vec<WhatifBudgetRow>,
    /// Assignment at the 10 % budget.
    pub assignment: Vec<WhatifAssignment>,
    /// Econ valuation of each budget's savings, when a trace is active.
    pub econ: Option<WhatifEcon>,
}

/// One governor policy's outcome on a workload class.
#[derive(Debug, Clone)]
pub struct GovernorPolicyRow {
    /// Policy name.
    pub policy: &'static str,
    /// Energy saved, percent.
    pub energy_saved_pct: f64,
    /// Slowdown, percent (negative = speedup).
    pub slowdown_pct: f64,
}

/// One workload class of the governor extension.
#[derive(Debug, Clone)]
pub struct GovernorClass {
    /// Workload class name.
    pub class: String,
    /// Phase count of the synthesized application.
    pub phases: usize,
    /// One row per policy.
    pub rows: Vec<GovernorPolicyRow>,
}

/// Governor-extension data.
#[derive(Debug, Clone)]
pub struct GovernorArtifact {
    /// One entry per workload class.
    pub classes: Vec<GovernorClass>,
}

/// One frequency cap's fleet power envelope (peak-power extension).
#[derive(Debug, Clone, Copy)]
pub struct PeakPowerRow {
    /// Frequency cap, MHz.
    pub cap_mhz: f64,
    /// Extrapolated peak, MW.
    pub peak_mw: f64,
    /// Extrapolated mean, MW.
    pub mean_mw: f64,
    /// Load factor (mean / peak).
    pub load_factor: f64,
    /// Peak shaved vs uncapped, percent.
    pub shaved_pct: f64,
}

/// Peak-power extension data.
#[derive(Debug, Clone)]
pub struct PeakPower {
    /// One row per cap.
    pub rows: Vec<PeakPowerRow>,
}

/// One perturbed-boundary projection (sensitivity ablation).
#[derive(Debug, Clone, Copy)]
pub struct SensitivityVariant {
    /// Latency/MI boundary, watts.
    pub latency_mi_w: f64,
    /// MI/CI boundary, watts.
    pub mi_ci_w: f64,
    /// Best no-slowdown savings, percent.
    pub best_free_pct: f64,
    /// Best total savings, percent.
    pub best_total_pct: f64,
}

/// Sensitivity-ablation data.
#[derive(Debug, Clone)]
pub struct SensitivityArtifact {
    /// Reference no-slowdown headline, percent.
    pub reference_free_pct: f64,
    /// Number of perturbation points swept.
    pub points: usize,
    /// Spread of the headline across perturbations, percentage points.
    pub spread_pp: f64,
    /// Named boundary variants.
    pub variants: Vec<SensitivityVariant>,
}

/// One severity x gap-policy row of the fault-sensitivity sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultsRow {
    /// Severity preset name (`none`, `mild`, …).
    pub preset: &'static str,
    /// Gap policy the decomposition ran under.
    pub policy: GapPolicy,
    /// GPU samples lost to drops and node dropouts.
    pub dropped: u64,
    /// GPU samples delivered twice.
    pub duplicated: u64,
    /// GPU samples glitched to NaN or spiked.
    pub glitched: u64,
    /// Samples delivered behind a later window.
    pub reordered: u64,
    /// Whole-node windows silenced by dropout intervals.
    pub dropout_windows: u64,
    /// Per-mode GPU-seconds accounting of the decomposition.
    pub coverage: Coverage,
    /// Coverage-adjusted bounds on the best no-slowdown savings.
    pub bounds: SavingsBounds,
}

/// Fault-sensitivity artifact: the decomposition and its headline savings
/// re-derived under every severity preset and gap policy.
#[derive(Debug, Clone)]
pub struct FaultsArtifact {
    /// Best no-slowdown savings of the clean run, percent.
    pub nominal_free_pct: f64,
    /// One row per severity preset x gap policy.
    pub rows: Vec<FaultsRow>,
}

/// One periodic snapshot row of the streaming replay.
#[derive(Debug, Clone, Copy)]
pub struct StreamRow {
    /// Stream clock at the snapshot: end of the last delivered window's
    /// delivery slot, seconds.
    pub t_s: f64,
    /// Events ingested so far.
    pub events: u64,
    /// Windows released to channel partials so far.
    pub released: u64,
    /// Windows parked in reorder buffers at the snapshot.
    pub buffered: usize,
    /// Coverage fraction of the snapshot ledger (0..1).
    pub coverage: f64,
    /// Frontier-scaled total energy ingested so far, MWh.
    pub total_mwh: f64,
    /// Coverage-adjusted bounds on the best no-slowdown savings; `None`
    /// until enough energy has accumulated to project.
    pub bounds: Option<SavingsBounds>,
}

/// Streaming-ingest artifact: the scenario's telemetry replayed in
/// delivery order through the incremental `pmss-stream` engine, with
/// periodic snapshots and a final self-check against the batch ledger.
#[derive(Debug, Clone)]
pub struct StreamArtifact {
    /// Ingest shards the replay ran with.
    pub shards: usize,
    /// Reorder horizon, windows (derived from the active fault plan).
    pub reorder_horizon: u64,
    /// Declared reorder-buffer bound, windows (channels x horizon).
    pub buffer_bound: usize,
    /// Periodic snapshots, ending with the flushed final state.
    pub rows: Vec<StreamRow>,
    /// Total events ingested.
    pub events: u64,
    /// GPU power samples among them.
    pub samples: u64,
    /// Explicit gap windows among them.
    pub gaps: u64,
    /// Rest-of-node windows among them.
    pub rest_samples: u64,
    /// Events rejected for arriving beyond the horizon.
    pub late_rejects: u64,
    /// Peak windows parked across all reorder buffers.
    pub peak_buffered_windows: usize,
    /// Peak windows parked in any single channel's buffer.
    pub peak_channel_windows: usize,
    /// Whether the flushed stream ledger equals the batch-path ledger.
    pub batch_identical: bool,
}

/// One governed replay row: a policy's realized savings and its costs.
#[derive(Debug, Clone)]
pub struct GovernRow {
    /// Policy label (`static` | `greedy` | `polimer`, or `custom:<policy>`
    /// for a spec-supplied plan).
    pub policy: String,
    /// The cap the governor applied to governed channels.
    pub cap: CapSetting,
    /// The cluster power budget, watts.
    pub budget_w: f64,
    /// Realized savings, percent of delivered GPU energy.
    pub realized_pct: f64,
    /// Realized savings as a percentage of the projection ceiling.
    pub of_ceiling_pct: f64,
    /// Fleet-wide time-weighted slowdown, percent.
    pub slowdown_pct: f64,
    /// Slowdown within the memory-intensive region, percent.
    pub mi_slowdown_pct: f64,
    /// Slowdown within the compute-intensive region, percent.
    pub ci_slowdown_pct: f64,
    /// Share of memory-intensive energy captured under a cap, percent.
    pub mi_capture_pct: f64,
    /// Sync windows elapsed.
    pub rounds: u64,
    /// Rounds in which the budget rebalancer adjusted caps.
    pub rebalances: u64,
    /// Mode-cap and throttle transitions.
    pub cap_churn: u64,
    /// Mode-cap flips deferred by hysteresis.
    pub hysteresis_suppressions: u64,
    /// Node-rounds spent power-throttled.
    pub throttled_node_rounds: u64,
    /// Peak `sum(node caps) / budget`.
    pub peak_budget_utilization: f64,
    /// Whether the cluster budget was ever exceeded (must stay `false`).
    pub budget_exceeded: bool,
    /// Events the sensing engine rejected as late.
    pub late_rejects: u64,
}

/// Online-governor artifact: every policy preset (plus the spec's custom
/// plan, when present) replayed over the scenario's delivery-ordered
/// telemetry and measured against the projection's best no-slowdown
/// ceiling.
#[derive(Debug, Clone)]
pub struct GovernArtifact {
    /// The projection's best no-slowdown savings, percent (the ceiling).
    pub ceiling_pct: f64,
    /// The setting achieving that ceiling (the governors' auto cap).
    pub ceiling_setting: CapSetting,
    /// Sync-window length, seconds.
    pub interval_s: f64,
    /// Fleet size, nodes.
    pub nodes: usize,
    /// Reorder horizon of the sensing engine, windows.
    pub reorder_horizon: u64,
    /// One row per policy, in `static`, `greedy`, `polimer` order.
    pub rows: Vec<GovernRow>,
}

/// One SKU's share of the fleet and its component-level energy split.
#[derive(Debug, Clone)]
pub struct ComponentsRow {
    /// Catalog index of the node class.
    pub sku: u8,
    /// Catalog display name (`mi250x`, …).
    pub name: &'static str,
    /// Nodes of this class in the scenario fleet.
    pub nodes: usize,
    /// Device (GPU) energy attributed to this class, MWh at Frontier scale.
    pub gpu_mwh: f64,
    /// HBM-lane share of the device energy, MWh.
    pub hbm_mwh: f64,
    /// L2/on-die-lane share, MWh.
    pub l2_mwh: f64,
    /// ALU-lane share, MWh.
    pub alu_mwh: f64,
    /// Clock-tree + uncore remainder lane, MWh.
    pub clock_mwh: f64,
    /// CPU-side (rest-of-node) power-domain energy, MWh.
    pub rest_mwh: f64,
    /// `|sum(component lanes) − device| / device`; pinned near zero by the
    /// property suite (the clock lane is an exact remainder).
    pub conservation_err: f64,
    /// Auto-tuned per-mode sweet spots for this class's engine.
    pub sweet_spots: Vec<SweetSpot>,
}

/// Component-attribution artifact: the fleet decomposition re-cut along
/// the SKU lanes the ledger records, split into per-component energies by
/// each class's power model, with the sweet-spot tuner replacing the
/// paper's fixed frequency grid.
#[derive(Debug, Clone)]
pub struct ComponentsArtifact {
    /// Resolved mix preset name (`single-sku` for homogeneous runs).
    pub mix: String,
    /// Fleet size, nodes.
    pub nodes: usize,
    /// Tuner slowdown bound (1.01 = the paper's no-slowdown regime with
    /// 1 % tolerance).
    pub max_slowdown: f64,
    /// Projected best no-slowdown savings under this mix, percent — the
    /// headline that moves with the SKU mix.
    pub best_free_pct: f64,
    /// The cap achieving that projection row.
    pub best_free_setting: CapSetting,
    /// Device energy summed over every class, MWh.
    pub total_gpu_mwh: f64,
    /// CPU-domain energy summed over every class, MWh.
    pub total_rest_mwh: f64,
    /// One row per node class present in the fleet, by catalog index.
    pub rows: Vec<ComponentsRow>,
}

/// One price/carbon trace's view of the fleet energy (econ extension).
#[derive(Debug, Clone)]
pub struct EconTraceRow {
    /// Trace label (`flat`, `diurnal`, …, or `custom:<name>`).
    pub trace: String,
    /// GPU energy cost under this trace, dollars at Frontier scale.
    pub cost_usd: f64,
    /// GPU carbon under this trace, tonnes CO₂ at Frontier scale.
    pub carbon_t: f64,
    /// Cost delta versus the flat reference price, dollars.
    pub delta_cost_usd: f64,
    /// Carbon delta versus the flat reference intensity, tonnes.
    pub delta_carbon_t: f64,
    /// Dollars saved by the temporal-shifting what-if under this trace.
    pub shift_saving_usd: f64,
    /// Tonnes of CO₂ avoided by the shift.
    pub shift_saving_t: f64,
    /// The shift's edge over the uniform-placement strawman, dollars.
    pub shift_edge_usd: f64,
    /// Boosted energy the shift deferred, MWh.
    pub moved_mwh: f64,
}

/// One SKU lane priced under the econ artifact's focus trace.
#[derive(Debug, Clone)]
pub struct EconSkuRow {
    /// Catalog index of the node class.
    pub sku: u8,
    /// Catalog display name (`mi250x`, …).
    pub name: &'static str,
    /// GPU energy in this lane, MWh at Frontier scale.
    pub gpu_mwh: f64,
    /// Its cost under the focus trace, dollars.
    pub cost_usd: f64,
    /// Its carbon under the focus trace, tonnes.
    pub carbon_t: f64,
}

/// The focus trace's temporal-shifting what-if in full.
#[derive(Debug, Clone)]
pub struct EconShiftDetail {
    /// Deferral deadline, 15-minute slots.
    pub deadline_slots: usize,
    /// Cluster power budget the shift honored, megawatts.
    pub budget_mw: f64,
    /// Boosted energy deferred, MWh.
    pub moved_mwh: f64,
    /// Deferral decisions made.
    pub moves: usize,
    /// Unshifted placement cost, dollars.
    pub baseline_cost_usd: f64,
    /// Price-aware shifted cost, dollars.
    pub shifted_cost_usd: f64,
    /// Uniform-placement strawman cost, dollars.
    pub uniform_cost_usd: f64,
    /// Unshifted carbon, tonnes.
    pub baseline_carbon_t: f64,
    /// Shifted carbon, tonnes.
    pub shifted_carbon_t: f64,
}

/// Economics artifact: the fleet energy integrated against price/carbon
/// traces, with the temporal-shifting what-if under the focus trace.
#[derive(Debug, Clone)]
pub struct EconArtifact {
    /// The focus trace (the spec's active trace, else `diurnal`).
    pub focus: String,
    /// 15-minute accounting slots the campaign spans.
    pub slots: usize,
    /// GPU energy across all slots, MWh at Frontier scale.
    pub total_gpu_mwh: f64,
    /// Rest-of-node energy across all slots, MWh at Frontier scale.
    pub total_rest_mwh: f64,
    /// Reference (flat-trace) GPU cost, dollars.
    pub ref_cost_usd: f64,
    /// Reference GPU carbon, tonnes.
    pub ref_carbon_t: f64,
    /// One row per preset trace, plus `custom:<name>` when the spec's
    /// active trace is not a preset.
    pub rows: Vec<EconTraceRow>,
    /// Per-SKU lanes priced under the focus trace.
    pub sku_rows: Vec<EconSkuRow>,
    /// The focus trace's shift what-if in full.
    pub shift: EconShiftDetail,
}

/// One computed artifact value.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Fig. 2.
    Fig2(Fig2),
    /// Fig. 3.
    Fig3(Fig3),
    /// Fig. 4.
    Fig4(Fig4),
    /// Fig. 5.
    Fig5(Fig5),
    /// Fig. 6.
    Fig6(Fig6),
    /// Fig. 7.
    Fig7(Fig7),
    /// Fig. 8.
    Fig8(Fig8),
    /// Fig. 9.
    Fig9(Fig9),
    /// Fig. 10.
    Fig10(Fig10),
    /// Table I.
    Table1(Table1),
    /// Table II.
    Table2(Table2),
    /// Table III.
    Table3(Table3Artifact),
    /// Table IV.
    Table4(Table4),
    /// Table V.
    Table5(Table5),
    /// Table VI.
    Table6(Table6),
    /// Table VII.
    Table7(Table7),
    /// Validate extension.
    Validate(Validate),
    /// What-if extension.
    Whatif(Whatif),
    /// Governor extension.
    Governor(GovernorArtifact),
    /// Peak-power extension.
    PeakPower(PeakPower),
    /// Sensitivity ablation.
    Sensitivity(SensitivityArtifact),
    /// Fault-injection sensitivity sweep.
    Faults(FaultsArtifact),
    /// Streaming ingest replay.
    Stream(StreamArtifact),
    /// Online cluster governor.
    Govern(GovernArtifact),
    /// Per-SKU component energy attribution.
    Components(ComponentsArtifact),
    /// Price/carbon economics with temporal shifting.
    Econ(EconArtifact),
}

impl Artifact {
    /// The artifact's identity.
    pub fn id(&self) -> ArtifactId {
        match self {
            Artifact::Fig2(_) => ArtifactId::Fig2,
            Artifact::Fig3(_) => ArtifactId::Fig3,
            Artifact::Fig4(_) => ArtifactId::Fig4,
            Artifact::Fig5(_) => ArtifactId::Fig5,
            Artifact::Fig6(_) => ArtifactId::Fig6,
            Artifact::Fig7(_) => ArtifactId::Fig7,
            Artifact::Fig8(_) => ArtifactId::Fig8,
            Artifact::Fig9(_) => ArtifactId::Fig9,
            Artifact::Fig10(_) => ArtifactId::Fig10,
            Artifact::Table1(_) => ArtifactId::Table1,
            Artifact::Table2(_) => ArtifactId::Table2,
            Artifact::Table3(_) => ArtifactId::Table3,
            Artifact::Table4(_) => ArtifactId::Table4,
            Artifact::Table5(_) => ArtifactId::Table5,
            Artifact::Table6(_) => ArtifactId::Table6,
            Artifact::Table7(_) => ArtifactId::Table7,
            Artifact::Validate(_) => ArtifactId::Validate,
            Artifact::Whatif(_) => ArtifactId::Whatif,
            Artifact::Governor(_) => ArtifactId::Governor,
            Artifact::PeakPower(_) => ArtifactId::PeakPower,
            Artifact::Sensitivity(_) => ArtifactId::Sensitivity,
            Artifact::Faults(_) => ArtifactId::Faults,
            Artifact::Stream(_) => ArtifactId::Stream,
            Artifact::Govern(_) => ArtifactId::Govern,
            Artifact::Components(_) => ArtifactId::Components,
            Artifact::Econ(_) => ArtifactId::Econ,
        }
    }

    /// Renders the artifact to the byte-identical ASCII of the original
    /// per-artifact binary.
    pub fn render_ascii(&self) -> String {
        render::ascii(self)
    }

    /// Renders the artifact to structured JSON.
    pub fn to_json(&self) -> Json {
        render::json(self)
    }
}

/// A bundle of computed artifacts for one scenario.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The scenario that produced the bundle.
    pub spec: ScenarioSpec,
    /// The computed artifacts, in request order.
    pub items: Vec<Artifact>,
}

impl Artifacts {
    /// Finds an artifact by id.
    pub fn get(&self, id: ArtifactId) -> Option<&Artifact> {
        self.items.iter().find(|a| a.id() == id)
    }

    /// Serializes the whole bundle (spec + every artifact) to JSON.
    pub fn to_json(&self) -> Json {
        let mut arts = Json::obj();
        for a in &self.items {
            arts = arts.field(a.id().name(), a.to_json());
        }
        Json::obj()
            .field("spec", self.spec.to_json())
            .field("artifacts", arts)
    }
}

impl Pipeline {
    /// Computes one artifact, reusing memoized stages.
    pub fn artifact(&mut self, id: ArtifactId) -> Result<Artifact, PmssError> {
        let sw = Stopwatch::start();
        let art = match id {
            ArtifactId::Fig2 => Artifact::Fig2(fig2(self)?),
            ArtifactId::Fig3 => Artifact::Fig3(fig3(self)),
            ArtifactId::Fig4 => Artifact::Fig4(fig4(self)),
            ArtifactId::Fig5 => Artifact::Fig5(fig5(self)?),
            ArtifactId::Fig6 => Artifact::Fig6(fig6(self)),
            ArtifactId::Fig7 => Artifact::Fig7(fig7(self)),
            ArtifactId::Fig8 => Artifact::Fig8(fig8(self)?),
            ArtifactId::Fig9 => Artifact::Fig9(fig9(self)?),
            ArtifactId::Fig10 => Artifact::Fig10(fig10(self)?),
            ArtifactId::Table1 => Artifact::Table1(table1()),
            ArtifactId::Table2 => Artifact::Table2(table2()?),
            ArtifactId::Table3 => Artifact::Table3(Table3Artifact {
                table: self.table3()?.clone(),
            }),
            ArtifactId::Table4 => Artifact::Table4(table4(self)?),
            ArtifactId::Table5 => Artifact::Table5(Table5 {
                projection: self.projection()?,
            }),
            ArtifactId::Table6 => Artifact::Table6(table6(self)?),
            ArtifactId::Table7 => Artifact::Table7(table7()),
            ArtifactId::Validate => Artifact::Validate(validate(self)?),
            ArtifactId::Whatif => Artifact::Whatif(whatif(self)?),
            ArtifactId::Governor => Artifact::Governor(governor(self)?),
            ArtifactId::PeakPower => Artifact::PeakPower(peakpower(self)),
            ArtifactId::Sensitivity => Artifact::Sensitivity(sensitivity(self)?),
            ArtifactId::Faults => Artifact::Faults(faults(self)?),
            ArtifactId::Stream => Artifact::Stream(stream(self)?),
            ArtifactId::Govern => Artifact::Govern(govern(self)?),
            ArtifactId::Components => Artifact::Components(components(self)?),
            ArtifactId::Econ => Artifact::Econ(econ(self)?),
        };
        if let Some(m) = self.metrics.as_mut() {
            m.inc("artifacts.computed");
            m.observe("artifact.wall_s", edges::WALL_S, sw.elapsed_s());
        }
        Ok(art)
    }

    /// Computes a bundle of artifacts, sharing every memoized stage.
    pub fn artifacts(&mut self, ids: &[ArtifactId]) -> Result<Artifacts, PmssError> {
        let items = ids
            .iter()
            .map(|&id| self.artifact(id))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Artifacts {
            spec: self.spec().clone(),
            items,
        })
    }
}

fn fig2(p: &mut Pipeline) -> Result<Fig2, PmssError> {
    // (a) sensor agreement on a 20-minute mixed application.
    let mut rng = StdRng::seed_from_u64(2);
    let phases = synthesize_app(AppClass::Mixed, 1200.0, &mut rng);
    let c = compare_sensors(&phases, GpuSettings::uncapped(), 7);
    let pairs = c
        .telemetry
        .iter()
        .zip(&c.smi)
        .take(12)
        .map(|(t, s)| SensorPairSample {
            t_s: t.t_s,
            oob_w: t.power_w,
            smi_w: s.power_w,
        })
        .collect();

    // (b) GPU vs CPU energy on the fleet.  Disjoint field borrows: the
    // schedule is read from the memoized stage while the shared cache and
    // the metrics registry are passed alongside.
    p.ensure_fleet()?;
    let cfg = p.fleet_config();
    let Pipeline {
        fleet,
        cache,
        metrics,
        ..
    } = p;
    let fleet = fleet.as_ref().expect("fleet stage ran");
    let split: GpuCpuEnergy = metered_sim(&fleet.schedule, &cfg, cache, metrics.as_mut());
    Ok(Fig2 {
        windows: c.telemetry.len(),
        mean_power_w: c.mean_power_w,
        mean_abs_diff_w: c.mean_abs_diff_w,
        pairs,
        gpu_share: split.gpu_share(),
        gpu_density: split.gpu_hist.density(),
        rest_density: split.rest_hist.density(),
    })
}

fn fig3(p: &Pipeline) -> Fig3 {
    let pattern = (0..12u64).map(|b| (b, chunk_for_block(b, 5))).collect();
    let rows = membench::size_sweep()
        .into_iter()
        .map(|bytes| {
            let params = MembenchParams::sized_for(bytes, 5.0);
            let k = membench::kernel(params);
            let ex = p.engine.execute(&k, GpuSettings::uncapped());
            Fig3Row {
                bytes,
                served_from: if params.l2_hit_fraction() > 0.5 {
                    "L2"
                } else {
                    "HBM"
                },
                gb_s: ex.perf.ondie_bw.max(ex.perf.hbm_bw) / 1e9,
                power_w: ex.busy_power_w,
            }
        })
        .collect();
    Fig3 { pattern, rows }
}

fn fig4(p: &Pipeline) -> Fig4 {
    let freqs: Vec<CapSetting> = [1700.0, 1300.0, 900.0, 700.0]
        .iter()
        .map(|&m| CapSetting::FreqMhz(m))
        .collect();
    let caps: Vec<CapSetting> = [560.0, 400.0, 300.0, 200.0]
        .iter()
        .map(|&w| CapSetting::PowerW(w))
        .collect();
    let block = |title: &'static str, settings: &[CapSetting]| -> Fig4Block {
        let sections = settings
            .iter()
            .map(|&setting| {
                let rows = vai::intensity_sweep()
                    .into_iter()
                    .map(|ai| {
                        let k = vai::kernel(VaiParams::for_intensity(ai, 1 << 28, 4));
                        let base = p
                            .engine
                            .execute(&k, CapSetting::FreqMhz(1700.0).to_settings());
                        let ex = p.engine.execute(&k, setting.to_settings());
                        Fig4Row {
                            ai,
                            tflops: ex.perf.flops_per_s / 1e12,
                            gb_s: ex.perf.hbm_bw / 1e9,
                            power_w: ex.busy_power_w,
                            t_rel: ex.time_s / base.time_s,
                        }
                    })
                    .collect();
                Fig4Section { setting, rows }
            })
            .collect();
        Fig4Block { title, sections }
    };
    Fig4 {
        blocks: vec![
            block("Fig. 4 left: fixed frequency", &freqs),
            block("Fig. 4 right: power cap", &caps),
        ],
    }
}

fn fig5(p: &mut Pipeline) -> Result<Fig5, PmssError> {
    let ladders = [
        ("Fig. 5 left: frequency caps (MHz)", p.freq_ladder()),
        ("Fig. 5 right: power caps (W)", p.power_ladder()),
    ];
    let mut blocks = Vec::new();
    for (title, settings) in ladders {
        let rows = vai::intensity_sweep()
            .into_iter()
            .map(|ai| {
                let k = vai::kernel(VaiParams::for_intensity(ai, 1 << 28, 4));
                let points = normalize(&sweep_kernel(&p.engine, &k, &settings)?)?;
                Ok(Fig5Row { ai, points })
            })
            .collect::<Result<Vec<_>, PmssError>>()?;
        blocks.push(Fig5Block {
            title,
            settings,
            rows,
        });
    }
    Ok(Fig5 { blocks })
}

fn fig6(p: &Pipeline) -> Fig6 {
    let freqs: Vec<CapSetting> = [1700.0, 1300.0, 900.0, 700.0]
        .iter()
        .map(|&m| CapSetting::FreqMhz(m))
        .collect();
    let caps: Vec<CapSetting> = MEMBENCH_POWER_CAPS_W
        .iter()
        .map(|&w| CapSetting::PowerW(w))
        .collect();
    let block = |title: &'static str, settings: &[CapSetting]| -> Fig6Block {
        let sections = settings
            .iter()
            .map(|&setting| {
                let rows = membench::size_sweep()
                    .into_iter()
                    .map(|bytes| {
                        let k = membench::kernel(MembenchParams::sized_for(bytes, 5.0));
                        let base = p
                            .engine
                            .execute(&k, CapSetting::FreqMhz(1700.0).to_settings());
                        let ex = p.engine.execute(&k, setting.to_settings());
                        Fig6Row {
                            bytes,
                            gb_s: ex.perf.ondie_bw.max(ex.perf.hbm_bw) / 1e9,
                            power_w: ex.busy_power_w,
                            t_rel: ex.time_s / base.time_s,
                            breached: ex.cap_breached,
                        }
                    })
                    .collect();
                Fig6Section { setting, rows }
            })
            .collect();
        Fig6Block { title, sections }
    };
    Fig6 {
        blocks: vec![
            block("Fig. 6 left: frequency caps", &freqs),
            block("Fig. 6 right: power caps", &caps),
        ],
    }
}

fn fig7(p: &Pipeline) -> Fig7 {
    let cases = networks(p.spec.case_scale(), 77);
    let cases = cases
        .iter()
        .map(|case| {
            let stats = case.graph.degree_stats();
            let study = CaseStudy::prepare(case, 3);
            let freq_rows = study
                .frequency_sweep()
                .into_iter()
                .map(|pt| Fig7SweepRow {
                    knob: pt.knob,
                    runtime_s: pt.runtime_s,
                    avg_power_w: pt.avg_power_w,
                    peak_power_w: pt.peak_power_w,
                    energy_j: pt.energy_j,
                })
                .collect();
            let s = study.savings(GpuSettings::freq_capped(900.0));
            let road_caps = if case.name.starts_with("road") {
                let base = study.run(GpuSettings::uncapped());
                Some(
                    study
                        .power_cap_sweep()
                        .into_iter()
                        .map(|pt| Fig7RoadRow {
                            cap_w: pt.knob,
                            runtime_ratio: pt.runtime_s / base.runtime_s,
                            saving_pct: 100.0 * (1.0 - pt.energy_j / base.energy_j),
                            breached: pt.cap_breached,
                        })
                        .collect(),
                )
            } else {
                None
            };
            Fig7Case {
                name: case.name.clone(),
                edges: case.graph.num_edges(),
                d_max: stats.d_max,
                d_avg: stats.d_avg,
                modularity: study.result.modularity,
                levels: study.result.levels.len(),
                freq_rows,
                saving_900_pct: 100.0 * s.energy_saving,
                slowdown_900_pct: 100.0 * s.runtime_increase,
                road_caps,
            }
        })
        .collect();
    Fig7 { cases }
}

fn fig8(p: &mut Pipeline) -> Result<Fig8, PmssError> {
    p.ensure_fleet()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let hist = &fleet.system.hist;
    let regions = Region::all()
        .iter()
        .map(|r| {
            let (lo, hi) = r.range_w();
            RegionMass {
                label: r.label(),
                pct: 100.0 * hist.fraction_between(lo, hi.min(700.0)),
            }
        })
        .collect();
    Ok(Fig8 {
        samples: hist.total(),
        mean_w: hist.mean_w().unwrap_or(0.0),
        density: hist.density(),
        regions,
        peaks_w: hist.peaks_w(2.0, 0.01),
    })
}

fn fig9(p: &mut Pipeline) -> Result<Fig9, PmssError> {
    p.ensure_fleet()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let domains = fleet
        .domains
        .iter()
        .enumerate()
        .filter_map(|(d, spec)| {
            fleet.per_domain.domain(d).map(|h| Fig9Domain {
                code: spec.code.to_string(),
                name: spec.name.to_string(),
                mean_w: h.mean_w().unwrap_or(0.0),
                density: h.density(),
            })
        })
        .collect();
    Ok(Fig9 { domains })
}

fn fig10(p: &mut Pipeline) -> Result<Fig10, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let t3 = p.table3.as_ref().expect("benchmark stage ran");
    let ledger = fleet.ledger.scaled(fleet.frontier_factor)?;
    let used = energy_used(&ledger);
    let row_1100 = t3.freq_row(1100.0).ok_or_else(|| {
        PmssError::missing("Table III row", "1100 MHz (not in the spec's freq ladder)")
    })?;
    let saved = energy_saved(&ledger, row_1100);
    let concentration_pct =
        100.0 * saved.rows.iter().map(|r| r[0] + r[1] + r[2]).sum::<f64>() / saved.total();
    Ok(Fig10 {
        labels: fleet.domains.iter().map(|d| d.code.to_string()).collect(),
        used,
        saved,
        concentration_pct,
    })
}

fn table1() -> Table1 {
    use pmss_gpu::consts as c;
    Table1 {
        rows: vec![
            ("Compute node", c::FRONTIER_NODES.to_string()),
            (
                "Each Compute node",
                format!("{} AMD MI250X", c::GPUS_PER_NODE),
            ),
            ("Each GPU", format!("{} GCD", c::GCDS_PER_GPU)),
            (
                "Each GCD",
                format!("{} GB HBM2E", c::GCD_HBM_BYTES / (1 << 30)),
            ),
            ("GCD max power (pkg TDP)", format!("{:.0} W", c::GPU_TDP_W)),
            ("GCD max frequency", format!("{:.0} MHz", c::F_MAX_MHZ)),
            (
                "GCD peak FP64",
                format!("{:.1} TFLOP/s", c::GCD_PEAK_FLOPS / 1e12),
            ),
            (
                "HBM bandwidth per GCD",
                format!("{:.1} TB/s", c::GCD_HBM_BW / 1e12),
            ),
            ("GPU idle power", format!("{:.0} W", c::GPU_IDLE_W)),
            ("Firmware sustained limit", format!("{:.0} W", c::GPU_PPT_W)),
        ],
    }
}

fn table2() -> Result<Table2, PmssError> {
    let cat = catalog();
    let schedule = generate(
        TraceParams {
            nodes: 8,
            duration_s: 86_400.0,
            seed: 6,
            min_job_s: 900.0,
        },
        &cat,
    );
    let mut buf = Vec::new();
    log::write_log(&mut buf, &schedule.jobs)?;
    let text = String::from_utf8(buf)
        .map_err(|e| PmssError::malformed("job-log", format!("non-UTF-8 output: {e}")))?;
    let log_lines = text.lines().take(5).map(|l| l.to_string()).collect();
    let placements = schedule.per_node[0]
        .iter()
        .take(4)
        .map(|pl| {
            let j = &schedule.jobs[pl.job];
            Table2Placement {
                job_id: j.id,
                project_id: j.project_id.clone(),
                begin_s: pl.begin_s,
                end_s: pl.end_s,
            }
        })
        .collect();
    Ok(Table2 {
        raw_tb: sample_storage_bytes(9408, 4, 90.0, 2.0, 16.0) / 1e12,
        agg_tb: sample_storage_bytes(9408, 4, 90.0, 15.0, 16.0) / 1e12,
        jobs: schedule.jobs.len(),
        log_lines,
        placements,
    })
}

fn table4(p: &mut Pipeline) -> Result<Table4, PmssError> {
    let fleet = p.fleet()?;
    let fractions = fleet.ledger.gpu_hours_fractions();
    let mut gpu_hours_pct = [0.0; 4];
    for (out, region) in gpu_hours_pct.iter_mut().zip(Region::all()) {
        *out = 100.0 * fractions[region.index()];
    }
    Ok(Table4 { gpu_hours_pct })
}

fn table6(p: &mut Pipeline) -> Result<Table6, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let t3 = p.table3.as_ref().expect("benchmark stage ran");
    let ledger = fleet.ledger.scaled(fleet.frontier_factor)?;
    let row_1100 = t3.freq_row(1100.0).ok_or_else(|| {
        PmssError::missing("Table III row", "1100 MHz (not in the spec's freq ladder)")
    })?;
    let saved = energy_saved(&ledger, row_1100);
    let threshold = 0.35
        * saved
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .cloned()
            .fold(0.0, f64::max);
    let hot = saved.hot_domains(threshold);
    let input = ProjectionInput::from_ledger_filtered(&ledger, |d, size| {
        hot.contains(&d) && size <= JobSizeClass::C
    });
    Ok(Table6 {
        hot_codes: hot
            .iter()
            .map(|&d| fleet.domains[d].code.to_string())
            .collect(),
        projection: project(input, t3)?,
    })
}

fn table7() -> Table7 {
    Table7 {
        rows: JobSizeClass::all()
            .into_iter()
            .map(|class| {
                let (lo, hi) = class.node_range();
                Table7Row {
                    label: class.label(),
                    min_nodes: lo,
                    max_nodes: hi,
                    max_walltime_h: class.max_walltime_h(),
                }
            })
            .collect(),
    }
}

fn validate(p: &mut Pipeline) -> Result<Validate, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let t3 = p.table3.as_ref().expect("benchmark stage ran");
    let projection = project(ProjectionInput::from_ledger(&fleet.ledger), t3)?;
    let engine = &p.engine;

    let jobs: Vec<_> = fleet.schedule.jobs.iter().take(400).collect();
    let rows = [1500.0, 1300.0, 1100.0, 900.0, 700.0]
        .iter()
        .map(|&mhz| {
            let (e_b, e_c, t_b, t_c) = jobs
                .par_iter()
                .map(|job| {
                    let mut rng = StdRng::seed_from_u64(job.seed);
                    let mut acc = (0.0, 0.0, 0.0, 0.0);
                    for phase in synthesize_app(job.app_class, job.duration_s(), &mut rng) {
                        let b = engine.execute(&phase, GpuSettings::uncapped());
                        let c = engine.execute(&phase, GpuSettings::freq_capped(mhz));
                        acc.0 += b.energy_j;
                        acc.1 += c.energy_j;
                        acc.2 += b.time_s;
                        acc.3 += c.time_s;
                    }
                    acc
                })
                .reduce(
                    || (0.0, 0.0, 0.0, 0.0),
                    |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3),
                );
            let row = projection.freq_row(mhz).ok_or_else(|| {
                PmssError::missing(
                    "projection row",
                    format!("{mhz:.0} MHz (not in the spec's freq ladder)"),
                )
            })?;
            Ok(ValidateRow {
                cap_mhz: mhz,
                projected_sav_pct: row.savings_pct,
                measured_sav_pct: 100.0 * (1.0 - e_c / e_b),
                projected_dt_pct: row.delta_t_pct,
                measured_dt_pct: 100.0 * (t_c / t_b - 1.0),
            })
        })
        .collect::<Result<Vec<_>, PmssError>>()?;
    Ok(Validate {
        jobs: jobs.len(),
        rows,
    })
}

fn whatif(p: &mut Pipeline) -> Result<Whatif, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let t3 = p.table3.as_ref().expect("benchmark stage ran");
    let total_j = fleet.ledger.total().joules;

    let budget_rows = [1.0, 2.0, 5.0, 10.0, 20.0, 40.0]
        .iter()
        .map(|&budget| {
            let mixed = optimize_per_domain(&fleet.ledger, t3, budget);
            let (setting, uniform_j) = best_uniform(&fleet.ledger, t3, budget)?;
            Ok(WhatifBudgetRow {
                budget_pct: budget,
                mixed_saves_pct: 100.0 * mixed.savings_fraction(total_j),
                uniform_saves_pct: 100.0 * uniform_j / total_j,
                uniform_cap: setting,
            })
        })
        .collect::<Result<Vec<_>, PmssError>>()?;

    let mixed = optimize_per_domain(&fleet.ledger, t3, 10.0);
    let assignment = mixed
        .assignment
        .iter()
        .enumerate()
        .map(|(d, choice)| WhatifAssignment {
            code: fleet.domains[d].code.to_string(),
            choice: choice.as_ref().map(|e| (e.setting.value(), e.delta_t_pct)),
        })
        .collect();
    // Value each budget's savings under the active econ trace.  Savings
    // scale the whole placement, so a saved fraction of the energy is the
    // same fraction of the trace-priced cost.
    let econ = match p.spec.active_econ() {
        None => None,
        Some(trace) => {
            let series = fleet.econ.scaled(fleet.frontier_factor)?;
            let total_cost_usd = series.cost_usd(trace);
            let total_carbon_t = series.carbon_kg(trace) / 1e3;
            Some(WhatifEcon {
                trace: trace.name.clone(),
                total_cost_usd,
                total_carbon_t,
                rows: budget_rows
                    .iter()
                    .map(|r| WhatifEconRow {
                        budget_pct: r.budget_pct,
                        mixed_saving_usd: r.mixed_saves_pct / 100.0 * total_cost_usd,
                        mixed_saving_t: r.mixed_saves_pct / 100.0 * total_carbon_t,
                    })
                    .collect(),
            })
        }
    };
    Ok(Whatif {
        budget_rows,
        assignment,
        econ,
    })
}

fn governor(p: &Pipeline) -> Result<GovernorArtifact, PmssError> {
    let ladder = DvfsLadder::default();
    let policies: Vec<(&'static str, Governor)> = vec![
        ("static 1100 MHz", Governor::Fixed(1100.0)),
        ("static 900 MHz", Governor::Fixed(900.0)),
        ("energy-optimal", Governor::EnergyOptimal),
        (
            "5% slowdown budget",
            Governor::SlowdownBudget { budget: 0.05 },
        ),
    ];
    let classes = AppClass::all()
        .into_iter()
        .map(|class| {
            let mut rng = StdRng::seed_from_u64(17);
            let phases = synthesize_app(class, 3600.0, &mut rng);
            let rows = policies
                .iter()
                .map(|(name, policy)| {
                    let t = GovernedTotals::from_governed(
                        &policy.govern_phases(&p.engine, &phases, &ladder)?,
                    );
                    Ok(GovernorPolicyRow {
                        policy: name,
                        energy_saved_pct: 100.0 * t.energy_saving(),
                        slowdown_pct: 100.0 * t.slowdown(),
                    })
                })
                .collect::<Result<Vec<_>, PmssError>>()?;
            Ok(GovernorClass {
                class: format!("{class:?}"),
                phases: phases.len(),
                rows,
            })
        })
        .collect::<Result<Vec<_>, PmssError>>()?;
    Ok(GovernorArtifact { classes })
}

fn peakpower(p: &mut Pipeline) -> PeakPower {
    let params = p.spec.trace_params();
    let schedule = generate(params, &catalog());
    // Extrapolate fleet power to the full 9408-node system.
    let node_factor = 9408.0 / params.nodes as f64;
    let mut rows = Vec::new();
    let mut base_peak = 0.0;
    let base_cfg = p.fleet_config();
    let Pipeline { cache, metrics, .. } = p;
    for mhz in [1700.0, 1500.0, 1300.0, 1100.0, 900.0] {
        let fp: FleetPowerSeries = metered_sim(
            &schedule,
            &FleetConfig {
                settings: GpuSettings::freq_capped(mhz),
                ..base_cfg.clone()
            },
            cache,
            metrics.as_mut(),
        );
        let peak_mw = fp.peak_w() * node_factor / 1e6;
        let mean_mw = fp.mean_w() * node_factor / 1e6;
        if mhz == 1700.0 {
            base_peak = peak_mw;
        }
        rows.push(PeakPowerRow {
            cap_mhz: mhz,
            peak_mw,
            mean_mw,
            load_factor: fp.load_factor(),
            shaved_pct: 100.0 * (1.0 - peak_mw / base_peak),
        });
    }
    PeakPower { rows }
}

fn sensitivity(p: &mut Pipeline) -> Result<SensitivityArtifact, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let t3 = p.table3.as_ref().expect("benchmark stage ran");
    let total_j = fleet.ledger.total().joules;

    let report = boundary_sweep(&fleet.system.hist, total_j, t3, 40.0, 8)?;
    let variants = [
        Boundaries {
            latency_mi_w: 160.0,
            mi_ci_w: 420.0,
            ci_boost_w: 560.0,
        },
        Boundaries {
            latency_mi_w: 240.0,
            mi_ci_w: 420.0,
            ci_boost_w: 560.0,
        },
        Boundaries {
            latency_mi_w: 200.0,
            mi_ci_w: 380.0,
            ci_boost_w: 560.0,
        },
        Boundaries {
            latency_mi_w: 200.0,
            mi_ci_w: 460.0,
            ci_boost_w: 560.0,
        },
    ]
    .into_iter()
    .map(|b| {
        let proj = project(input_from_histogram(&fleet.system.hist, b, total_j)?, t3)?;
        Ok(SensitivityVariant {
            latency_mi_w: b.latency_mi_w,
            mi_ci_w: b.mi_ci_w,
            best_free_pct: proj.best_free().savings_dt0_pct,
            best_total_pct: proj.best_total().savings_pct,
        })
    })
    .collect::<Result<Vec<_>, PmssError>>()?;
    Ok(SensitivityArtifact {
        reference_free_pct: report.reference.best_free_pct,
        points: report.points.len(),
        spread_pp: report.free_savings_spread(),
        variants,
    })
}

fn faults(p: &mut Pipeline) -> Result<FaultsArtifact, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let base_cfg = p.fleet_config();
    let Pipeline {
        fleet,
        table3,
        cache,
        metrics,
        ..
    } = p;
    let fleet = fleet.as_ref().expect("fleet stage ran");
    let t3 = table3.as_ref().expect("benchmark stage ran");

    let mut rows = Vec::new();
    for preset in PRESETS {
        let base = FaultPlan::preset(preset)?;
        // The clean baseline needs no gap policy; every faulted severity is
        // re-decomposed under all three so their biases can be compared.
        let policies: Vec<GapPolicy> = if base.is_noop() {
            vec![base.gap_policy]
        } else {
            GapPolicy::all().to_vec()
        };
        for policy in policies {
            let plan = FaultPlan {
                gap_policy: policy,
                ..base.clone()
            };
            let cfg = FleetConfig {
                faults: Some(plan),
                ..base_cfg.clone()
            };
            let (ledger, stats): (EnergyLedger, _) =
                metered_sim_stats(&fleet.schedule, &cfg, cache, metrics.as_mut());
            let coverage = ledger.coverage();
            let proj = project(
                ProjectionInput::from_ledger(&ledger.scaled(fleet.frontier_factor)?),
                t3,
            )?;
            rows.push(FaultsRow {
                preset,
                policy,
                dropped: stats.faults_dropped,
                duplicated: stats.faults_duplicated,
                glitched: stats.faults_glitched,
                reordered: stats.faults_reordered,
                dropout_windows: stats.faults_dropout_windows,
                coverage,
                bounds: proj.best_free().coverage_bounds_dt0(coverage.fraction()),
            });
        }
    }
    // The `none` preset row is bit-identical to a clean run, so its (fully
    // covered) bound is the nominal headline every other row degrades from.
    let nominal_free_pct = rows
        .first()
        .map(|r| r.bounds.hi_pct)
        .expect("PRESETS is non-empty");
    Ok(FaultsArtifact {
        nominal_free_pct,
        rows,
    })
}

/// How many periodic snapshots the stream replay takes before the final
/// flushed one.
const STREAM_SNAPSHOTS: usize = 4;

fn stream(p: &mut Pipeline) -> Result<StreamArtifact, PmssError> {
    p.ensure_fleet()?;
    p.ensure_table3()?;
    let cfg = p.fleet_config();
    let Pipeline {
        fleet,
        table3,
        metrics,
        ..
    } = p;
    let fleet = fleet.as_ref().expect("fleet stage ran");
    let t3 = table3.as_ref().expect("benchmark stage ran");
    let window_s = cfg.window_s;

    // Replay the trace as a timed stream: the generator emits each channel
    // contiguously, so the replay driver materializes and interleaves all
    // channels by delivery rank — the order a collection fabric would hand
    // windows to an ingest tier.  (Only the driver holds the trace; the
    // engine itself stays O(channels x horizon).)
    let events = delivery_ordered_events(&fleet.schedule, &cfg);

    let stream_cfg = StreamConfig::for_plan(cfg.faults.as_ref()).with_shards(4);
    let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&fleet.schedule, stream_cfg)?;
    let sw = Stopwatch::start();

    // Snapshot row from the engine's current (possibly mid-stream) state.
    let capture = |eng: &StreamEngine<'_, EnergyLedger>,
                   t_s: f64|
     -> Result<StreamRow, PmssError> {
        let state = StreamState::capture(eng, fleet.frontier_factor);
        let stats = eng.stats();
        Ok(StreamRow {
            t_s,
            events: stats.events,
            released: stats.released_windows,
            buffered: stats.buffered_windows,
            coverage: state.coverage().fraction(),
            total_mwh: ProjectionInput::from_ledger(&state.ledger().scaled(fleet.frontier_factor)?)
                .total_mwh(),
            bounds: state.coverage_bounds(t3).ok(),
        })
    };

    // Deterministic snapshot cadence: evenly spaced cuts of the delivery
    // sequence, then the flushed final state.  Simulated time only — no
    // wall clock reaches the pinned bytes.
    let mut rows = Vec::new();
    let n = events.len();
    let mut next_cut = 1;
    for (i, ev) in events.iter().enumerate() {
        eng.ingest(*ev)?;
        if next_cut <= STREAM_SNAPSHOTS && (i + 1) == n * next_cut / (STREAM_SNAPSHOTS + 1) {
            rows.push(capture(&eng, (ev.rank + 1) as f64 * window_s)?);
            next_cut += 1;
        }
    }
    eng.flush();
    let last_rank = events.iter().map(|ev| ev.rank).max().unwrap_or(0);
    rows.push(capture(&eng, (last_rank + 1) as f64 * window_s)?);

    if let Some(m) = metrics.as_mut() {
        eng.publish_metrics(m);
        let wall = sw.elapsed_s();
        if wall > 0.0 {
            m.gauge_set(
                "stream.windows_per_s",
                eng.stats().released_windows as f64 / wall,
            );
        }
    }
    let buffer_bound = eng.buffer_bound();
    let (ledger, stats) = eng.finish();
    Ok(StreamArtifact {
        shards: stream_cfg.shards,
        reorder_horizon: stream_cfg.reorder_horizon,
        buffer_bound,
        rows,
        events: stats.events,
        samples: stats.samples,
        gaps: stats.gaps,
        rest_samples: stats.rest_samples,
        late_rejects: stats.late_rejects,
        peak_buffered_windows: stats.peak_buffered_windows,
        peak_channel_windows: stats.peak_channel_windows,
        batch_identical: ledger == fleet.ledger,
    })
}

fn govern(p: &mut Pipeline) -> Result<GovernArtifact, PmssError> {
    // The ceiling the governors chase: the projection's best no-slowdown
    // row.  Its setting doubles as the auto cap for plans that name none.
    let projection = p.projection()?;
    let best = projection.best_free();
    let ceiling_pct = best.savings_dt0_pct;
    let auto_cap = best.setting;

    let cfg = p.fleet_config();
    let nodes = p.spec.nodes;
    let custom = p.spec.govern.clone();
    let Pipeline {
        fleet,
        table3,
        metrics,
        ..
    } = p;
    let fleet = fleet.as_ref().expect("fleet stage ran");
    let t3 = table3.as_ref().expect("benchmark stage ran");

    // One delivery-ordered event trace shared by every policy replay, the
    // same ordering discipline the stream artifact uses.
    let events = delivery_ordered_events(&fleet.schedule, &cfg);
    let stream_cfg = StreamConfig::for_plan(cfg.faults.as_ref());

    let mut interval_s = 0.0;
    let mut rows = Vec::new();
    let mut replay = |label: String, plan: &GovernorPlan| -> Result<(), PmssError> {
        let resolved = plan.resolve(nodes, auto_cap)?;
        let outcome: GovernOutcome = run_governor(
            &fleet.schedule,
            &events,
            stream_cfg,
            &resolved,
            t3,
            cfg.window_s,
        )?;
        if let Some(m) = metrics.as_mut() {
            outcome.publish_metrics(m);
        }
        // The header reports the presets' shared sync window; a custom
        // row may use its own interval without relabeling the header.
        if rows.is_empty() {
            interval_s = outcome.interval_s;
        }
        rows.push(GovernRow {
            policy: label,
            cap: outcome.cap,
            budget_w: outcome.budget_w,
            realized_pct: outcome.realized_pct(),
            of_ceiling_pct: outcome.of_ceiling_pct(ceiling_pct),
            slowdown_pct: outcome.slowdown_pct(),
            mi_slowdown_pct: outcome.region_slowdown_pct(Region::MemoryIntensive),
            ci_slowdown_pct: outcome.region_slowdown_pct(Region::ComputeIntensive),
            mi_capture_pct: outcome.mi_capture_pct(),
            rounds: outcome.rounds,
            rebalances: outcome.rebalances,
            cap_churn: outcome.cap_churn,
            hysteresis_suppressions: outcome.hysteresis_suppressions,
            throttled_node_rounds: outcome.throttled_node_rounds,
            peak_budget_utilization: outcome.peak_budget_utilization,
            budget_exceeded: outcome.budget_exceeded,
            late_rejects: outcome.stream.late_rejects,
        });
        Ok(())
    };
    for preset in pmss_govern::PRESETS {
        replay(preset.to_string(), &GovernorPlan::preset(preset)?)?;
    }
    // A spec-supplied plan rides along as an extra labelled row so custom
    // budgets/rates can be compared against the presets.
    if let Some(plan) = &custom {
        replay(format!("custom:{}", plan.policy.name()), plan)?;
    }

    Ok(GovernArtifact {
        ceiling_pct,
        ceiling_setting: auto_cap,
        interval_s,
        nodes,
        reorder_horizon: stream_cfg.reorder_horizon,
        rows,
    })
}

/// Tuner slowdown bound for the components artifact: the paper's
/// no-slowdown regime with 1 % tolerance.
const TUNER_MAX_SLOWDOWN: f64 = 1.01;

/// Joules per megawatt-hour.
const J_PER_MWH: f64 = 3.6e9;

fn components(p: &mut Pipeline) -> Result<ComponentsArtifact, PmssError> {
    // The savings headline under this mix: mixed fleets shift the region
    // masses, so the projection's best no-slowdown row moves with the mix.
    let projection = p.projection()?;
    let best = projection.best_free();

    let mix = p.spec.resolved_mix();
    let mix_name = p.spec.active_mix().unwrap_or("single-sku").to_string();
    let nodes = p.spec.nodes;
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let catalog = SkuCatalog::standard();
    let ledger = fleet.ledger.scaled(fleet.frontier_factor)?;

    // The fleet simulation folds every node's SKU into catalog range, so
    // counting through the same reduction keeps rows and lanes aligned.
    let mut node_counts = vec![0usize; catalog.len()];
    for node in 0..nodes {
        node_counts[mix.sku_of(node) as usize % catalog.len()] += 1;
    }

    let mut rows = Vec::new();
    let mut total_gpu_mwh = 0.0;
    let mut total_rest_mwh = 0.0;
    for (sku, &count) in node_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let spec = catalog.spec(sku as u8);
        let regions = ledger.sku_gpu_totals(sku);
        let gpu_j: f64 = regions.iter().map(|c| c.joules).sum();
        // Split each region's energy by the class's component fractions at
        // the region's representative operating point; the clock-tree lane
        // is the exact remainder, so the four lanes conserve the device
        // total by construction (pinned by the property suite).
        let mut lanes = [0.0f64; 4];
        for (region, cell) in regions.iter().enumerate() {
            let frac = spec.region_component_fractions(region);
            for (lane, f) in lanes.iter_mut().zip(frac) {
                *lane += cell.joules * f;
            }
        }
        let rest_j = ledger.sku_rest_total(sku).joules;
        let conservation_err = if gpu_j > 0.0 {
            (lanes.iter().sum::<f64>() - gpu_j).abs() / gpu_j
        } else {
            0.0
        };
        total_gpu_mwh += gpu_j / J_PER_MWH;
        total_rest_mwh += rest_j / J_PER_MWH;
        rows.push(ComponentsRow {
            sku: sku as u8,
            name: spec.name,
            nodes: count,
            gpu_mwh: gpu_j / J_PER_MWH,
            hbm_mwh: lanes[0] / J_PER_MWH,
            l2_mwh: lanes[1] / J_PER_MWH,
            alu_mwh: lanes[2] / J_PER_MWH,
            clock_mwh: lanes[3] / J_PER_MWH,
            rest_mwh: rest_j / J_PER_MWH,
            conservation_err,
            sweet_spots: sweet_spots(&spec.engine, TUNER_MAX_SLOWDOWN).to_vec(),
        });
    }

    Ok(ComponentsArtifact {
        mix: mix_name,
        nodes,
        max_slowdown: TUNER_MAX_SLOWDOWN,
        best_free_pct: best.savings_dt0_pct,
        best_free_setting: best.setting,
        total_gpu_mwh,
        total_rest_mwh,
        rows,
    })
}

fn econ(p: &mut Pipeline) -> Result<EconArtifact, PmssError> {
    p.ensure_fleet()?;
    let active = p.spec.active_econ().cloned();
    let fleet = p.fleet.as_ref().expect("fleet stage ran");
    let series = fleet.econ.scaled(fleet.frontier_factor)?;
    let flat = EconTrace::flat();
    let ref_cost_usd = series.cost_usd(&flat);
    let ref_carbon_t = series.carbon_kg(&flat) / 1e3;

    // The preset sweep, plus the active trace as `custom:<name>` when it
    // is not one of the presets verbatim.
    let mut traces: Vec<(String, EconTrace)> = EconTrace::preset_names()
        .iter()
        .map(|&n| {
            (
                n.to_string(),
                EconTrace::preset(n).expect("preset names resolve"),
            )
        })
        .collect();
    if let Some(t) = &active {
        if !traces.iter().any(|(_, preset)| preset == t) {
            traces.push((format!("custom:{}", t.name), t.clone()));
        }
    }
    let rows = traces
        .iter()
        .map(|(label, trace)| {
            let out = shift(&series, trace)?;
            Ok(EconTraceRow {
                trace: label.clone(),
                cost_usd: out.baseline_cost_usd,
                carbon_t: out.baseline_carbon_kg / 1e3,
                delta_cost_usd: out.baseline_cost_usd - ref_cost_usd,
                delta_carbon_t: out.baseline_carbon_kg / 1e3 - ref_carbon_t,
                shift_saving_usd: out.cost_saving_usd(),
                shift_saving_t: out.carbon_saving_kg() / 1e3,
                shift_edge_usd: out.edge_over_uniform_usd(),
                moved_mwh: out.moved_mwh,
            })
        })
        .collect::<Result<Vec<_>, PmssError>>()?;

    // Per-SKU lanes and the full shift detail are reported under the
    // focus trace: the spec's active trace when set, else `diurnal`.
    let (focus, focus_trace) = match &active {
        Some(t) => (t.name.clone(), t.clone()),
        None => (
            "diurnal".to_string(),
            EconTrace::preset("diurnal").expect("diurnal is a preset"),
        ),
    };
    let catalog = SkuCatalog::standard();
    let sku_rows = (0..series.num_skus().min(catalog.len()))
        .filter(|&sku| series.sku_gpu_j(sku) > 0.0)
        .map(|sku| EconSkuRow {
            sku: sku as u8,
            name: catalog.spec(sku as u8).name,
            gpu_mwh: series.sku_gpu_j(sku) / J_PER_MWH,
            cost_usd: series.sku_cost_usd(sku, &focus_trace),
            carbon_t: series.sku_carbon_kg(sku, &focus_trace) / 1e3,
        })
        .collect();
    let out: ShiftOutcome = shift(&series, &focus_trace)?;
    let shift_detail = EconShiftDetail {
        deadline_slots: out.deadline_slots,
        budget_mw: out.budget_w / 1e6,
        moved_mwh: out.moved_mwh,
        moves: out.moves.len(),
        baseline_cost_usd: out.baseline_cost_usd,
        shifted_cost_usd: out.shifted_cost_usd,
        uniform_cost_usd: out.uniform_cost_usd,
        baseline_carbon_t: out.baseline_carbon_kg / 1e3,
        shifted_carbon_t: out.shifted_carbon_kg / 1e3,
    };

    Ok(EconArtifact {
        focus,
        slots: series.num_slots(),
        total_gpu_mwh: series.total_gpu_j() / J_PER_MWH,
        total_rest_mwh: series.total_rest_j() / J_PER_MWH,
        ref_cost_usd,
        ref_carbon_t,
        rows,
        sku_rows,
        shift: shift_detail,
    })
}
