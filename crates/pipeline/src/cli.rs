//! The `pmss` command-line front end.
//!
//! One binary replaces the 21 per-artifact binaries: `pmss fig 2`,
//! `pmss table 3`, `pmss validate`, … each rendering the byte-identical
//! ASCII of the binary it replaced, or structured JSON with `--json`.
//! [`run`] takes argv (minus the program name) and returns the full
//! output text, which keeps the CLI itself testable.

use std::time::Instant;

use pmss_core::EnergyLedger;
use pmss_econ::{EconSeries, EconTrace};
use pmss_error::PmssError;
use pmss_faults::{FaultPlan, PRESETS};
use pmss_gpu::{FleetMix, GpuSettings};
use pmss_obs::Stopwatch;
use pmss_sched::{catalog, generate, TraceParams};
use pmss_stream::{StreamConfig, StreamEngine, StreamState};
use pmss_telemetry::{
    fleet_window_blocks, simulate_fleet, simulate_fleet_with_cache, FleetCache, FleetConfig,
    FleetObserver, Pair, ResidentFleet,
};

use crate::artifact::ArtifactId;
use crate::json::Json;
use crate::metrics::{manifest, manifest_to_json, metrics_env_enabled, metrics_to_json};
use crate::render::{bounds_json, coverage_json};
use crate::spec::{
    econ_trace_from_json, econ_trace_to_json, fault_plan_from_json, fault_plan_to_json,
    ScalePreset, ScenarioSpec, SCALE_ENV,
};
use crate::stage::Pipeline;

/// Runs the CLI for `args` (argv without the program name) and returns
/// everything that should be printed to stdout.
///
/// Errors are [`PmssError`]s; [`PmssError::Usage`] marks bad invocations.
pub fn run(args: &[String]) -> Result<String, PmssError> {
    let mut json = false;
    let mut metrics_flag = false;
    let mut scale: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut faults_arg: Option<String> = None;
    let mut mix_arg: Option<String> = None;
    let mut econ_arg: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--metrics" => metrics_flag = true,
            "--scale" => scale = Some(flag_value(&mut it, "--scale")?),
            "--spec" => spec_path = Some(flag_value(&mut it, "--spec")?),
            "--faults" => faults_arg = Some(flag_value(&mut it, "--faults")?),
            "--mix" => mix_arg = Some(flag_value(&mut it, "--mix")?),
            "--econ" => econ_arg = Some(flag_value(&mut it, "--econ")?),
            "-h" | "--help" | "help" => return Ok(help_text()),
            other if other.starts_with('-') => {
                return Err(PmssError::Usage(format!(
                    "unknown option {other:?}; try `pmss --help`"
                )))
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.is_empty() {
        return Ok(help_text());
    }
    match positional[0].as_str() {
        "list" => return Ok(list_text()),
        "bench-fleet" => return bench_fleet(positional.get(1).map(String::as_str)),
        _ => {}
    }

    let mut spec = resolve_spec(scale.as_deref(), spec_path.as_deref())?;
    if let Some(value) = faults_arg.as_deref() {
        spec.faults = Some(resolve_fault_plan(value)?);
    }
    if let Some(value) = mix_arg {
        if FleetMix::preset(&value).is_none() {
            return Err(PmssError::invalid_value(
                "--mix",
                &value,
                FleetMix::preset_names().join(" | "),
            ));
        }
        spec.fleet_mix = Some(value);
    }
    if let Some(value) = econ_arg.as_deref() {
        spec.econ = Some(resolve_econ_trace(value)?);
    }
    if positional[0] == "query" {
        return query_cmd(&positional[1..], spec);
    }
    if positional[0] == "spec" {
        return Ok(if json {
            spec.to_json().to_string_pretty()
        } else {
            render_spec(&spec)
        });
    }
    if positional[0] == "stats" {
        if positional.len() > 1 {
            return Err(PmssError::Usage(format!(
                "stats takes no arguments, got {:?}",
                positional[1..].join(" ")
            )));
        }
        return stats(spec, json);
    }

    let id = parse_artifact(&positional)?;
    // `--metrics` turns on both collection and reporting; `PMSS_METRICS`
    // turns on collection only, leaving every output byte unchanged (the
    // golden suite runs with it set to pin that equivalence).
    let collect = metrics_flag || metrics_env_enabled();
    let mut pipeline = if collect {
        Pipeline::with_metrics(spec)?
    } else {
        Pipeline::new(spec)?
    };
    let sw = Stopwatch::start();
    let artifact = pipeline.artifact(id)?;
    let faults_section = if json {
        faults_envelope(&mut pipeline)?
    } else {
        None
    };
    let econ_section = if json {
        econ_envelope(&mut pipeline)?
    } else {
        None
    };
    let report = metrics_flag.then(|| {
        let man = manifest(&positional.join(" "), pipeline.spec(), sw.elapsed_s());
        let m = pipeline.metrics_report().expect("metrics enabled");
        (man, m)
    });
    Ok(if json {
        let mut envelope = Json::obj()
            .field("artifact", id.name())
            .field("spec", pipeline.spec().to_json())
            .field("data", artifact.to_json());
        if let Some(f) = faults_section {
            envelope = envelope.field("faults", f);
        }
        if let Some(e) = econ_section {
            envelope = envelope.field("econ", e);
        }
        if let Some((man, m)) = &report {
            envelope = envelope
                .field("run", manifest_to_json(man))
                .field("metrics", metrics_to_json(m));
        }
        envelope.to_string_pretty()
    } else {
        let mut out = artifact.render_ascii();
        if let Some((man, m)) = &report {
            out.push('\n');
            out.push_str(&crate::metrics::render_ascii(man, m));
        }
        out
    })
}

/// The `pmss query` subcommand: the batch comparator for the `pmssd`
/// differential guard.  The campaign is captured into the resident store
/// — exactly the frames a daemon tenant would be fed — then *batch*
/// replayed (block-at-a-time fold, no streaming engine) into a
/// [`StreamState`], and the answer rendered through the same
/// [`crate::query::answer`] path the daemon uses.  Byte-equality of the
/// two outputs is therefore a real cross-implementation check: different
/// accumulation order, same bytes.
fn query_cmd(rest: &[String], spec: ScenarioSpec) -> Result<String, PmssError> {
    let q = crate::query::Query::from_args(rest)?;
    let econ = spec.active_econ().cloned();
    let mut p = Pipeline::new(spec)?;
    p.fleet()?;
    p.table3()?;
    let cfg = p.fleet_config();
    let fleet = p.fleet.as_ref().expect("fleet stage just ran");
    let resident = ResidentFleet::capture(&fleet.schedule, &cfg)?;
    // Replay into the same paired observer the daemon's ingest engine
    // runs: the ledger member's fold is unchanged by pairing, and the
    // econ series rides along so `pmss query econ` answers from the
    // identical per-slot accumulation the daemon snapshots.
    let pair: Pair<EnergyLedger, EconSeries> = resident.replay(&fleet.schedule)?;
    let state = StreamState::with_econ(pair.a, pair.b, fleet.frontier_factor);
    let t3 = p.table3.as_ref().expect("table3 stage just ran");
    Ok(crate::query::answer(&state, t3, econ.as_ref(), &q)?.to_string_pretty())
}

/// The `stats` subcommand: run the full staged pipeline (fleet, benchmark,
/// projection) with metering on and report only the manifest + metrics.
fn stats(spec: ScenarioSpec, json: bool) -> Result<String, PmssError> {
    let mut p = Pipeline::with_metrics(spec)?;
    let sw = Stopwatch::start();
    p.fleet()?;
    p.table3()?;
    p.projection()?;
    let man = manifest("stats", p.spec(), sw.elapsed_s());
    let m = p.metrics_report().expect("metrics enabled");
    Ok(if json {
        Json::obj()
            .field("run", manifest_to_json(&man))
            .field("metrics", metrics_to_json(&m))
            .to_string_pretty()
    } else {
        crate::metrics::render_ascii(&man, &m)
    })
}

/// Resolves a `--faults` value: a severity preset name, or the path of a
/// JSON file holding a full [`FaultPlan`].  Shared with the `pmssd`
/// client so both front ends accept the same vocabulary.
pub fn resolve_fault_plan(value: &str) -> Result<FaultPlan, PmssError> {
    if PRESETS.contains(&value) {
        return FaultPlan::preset(value);
    }
    let text = std::fs::read_to_string(value).map_err(|_| {
        PmssError::invalid_value(
            "--faults",
            value,
            "none | mild | frontier-typical | harsh | a readable FaultPlan JSON file",
        )
    })?;
    fault_plan_from_json(&Json::parse(&text)?)
}

/// Resolves an `--econ` value: a trace preset name, or the path of a
/// JSON file holding a full [`EconTrace`].  Shared with the `pmssd`
/// client so both front ends accept the same vocabulary.
pub fn resolve_econ_trace(value: &str) -> Result<EconTrace, PmssError> {
    if let Some(trace) = EconTrace::preset(value) {
        return Ok(trace);
    }
    let text = std::fs::read_to_string(value).map_err(|_| {
        PmssError::invalid_value(
            "--econ",
            value,
            "flat | diurnal | duck-curve | grid-2024 | a readable EconTrace JSON file",
        )
    })?;
    econ_trace_from_json(&Json::parse(&text)?)
}

/// The JSON envelope's `econ` section: the active trace and the
/// trace-priced cost/carbon of the fleet energy, next to the flat-trace
/// reference.  `None` when no active trace is set (or it is a no-op
/// flat trace) or the artifact never ran the fleet stage — omission
/// keeps every historical JSON envelope byte-identical.
fn econ_envelope(p: &mut Pipeline) -> Result<Option<Json>, PmssError> {
    let Some(trace) = p.spec().active_econ().cloned() else {
        return Ok(None);
    };
    let Some((series, factor)) = p
        .fleet
        .as_ref()
        .map(|f| (f.econ.clone(), f.frontier_factor))
    else {
        return Ok(None);
    };
    let scaled = series.scaled(factor)?;
    let flat = EconTrace::flat();
    Ok(Some(
        Json::obj()
            .field("trace", econ_trace_to_json(&trace))
            .field("cost_usd", scaled.cost_usd(&trace))
            .field("carbon_t", scaled.carbon_kg(&trace) / 1e3)
            .field("ref_cost_usd", scaled.cost_usd(&flat))
            .field("ref_carbon_t", scaled.carbon_kg(&flat) / 1e3),
    ))
}

/// The JSON envelope's `faults` section: the active plan, the per-mode
/// coverage of the decomposition, and coverage-adjusted savings bounds.
/// `None` for clean runs or when the artifact never ran the fleet stage.
fn faults_envelope(p: &mut Pipeline) -> Result<Option<Json>, PmssError> {
    let Some(plan) = p.spec().active_faults().cloned() else {
        return Ok(None);
    };
    let Some(cov) = p.fleet.as_ref().map(|f| f.ledger.coverage()) else {
        return Ok(None);
    };
    let bounds = p
        .projection()?
        .best_free()
        .coverage_bounds_dt0(cov.fraction());
    Ok(Some(
        Json::obj()
            .field("plan", fault_plan_to_json(&plan))
            .field("coverage", coverage_json(&cov))
            .field("best_free_bounds", bounds_json(&bounds)),
    ))
}

fn flag_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<String, PmssError> {
    it.next()
        .map(|s| s.to_string())
        .ok_or_else(|| PmssError::Usage(format!("{flag} requires a value")))
}

/// Resolves `--scale` / `--spec` into a [`ScenarioSpec`] exactly like the
/// batch CLI (mutual exclusion, `PMSS_SCALE` fallback).  Shared with the
/// `pmssd` client so a daemon campaign and its batch comparator resolve
/// the identical scenario.
pub fn resolve_spec(
    scale: Option<&str>,
    spec_path: Option<&str>,
) -> Result<ScenarioSpec, PmssError> {
    match (spec_path, scale) {
        (Some(_), Some(_)) => Err(PmssError::Usage(
            "--spec and --scale are mutually exclusive (the spec file already fixes the scale)"
                .to_string(),
        )),
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)?;
            ScenarioSpec::from_json(&Json::parse(&text)?)
        }
        (None, Some(name)) => Ok(ScenarioSpec::preset(ScalePreset::from_name(name)?)),
        (None, None) => ScenarioSpec::from_env(),
    }
}

fn parse_artifact(positional: &[String]) -> Result<ArtifactId, PmssError> {
    let name = match positional {
        [single] => single.clone(),
        [kind, num] if kind == "fig" || kind == "table" => format!("{kind}{num}"),
        _ => {
            return Err(PmssError::Usage(format!(
                "unexpected arguments {:?}; try `pmss --help`",
                positional[1..].join(" ")
            )))
        }
    };
    ArtifactId::from_name(&name)
}

fn render_spec(spec: &ScenarioSpec) -> String {
    let caps = |v: &[f64]| {
        v.iter()
            .map(|c| format!("{c:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = format!(
        "scenario: {}\n  nodes: {}, days: {}, seed: {}, min job: {} s\n  \
         freq caps (MHz): {}\n  power caps (W):  {}\n  \
         boundaries (W):  latency/MI {:.0}, MI/CI {:.0}, CI/boost {:.0}\n",
        spec.name,
        spec.nodes,
        spec.days,
        spec.seed,
        spec.min_job_s,
        caps(&spec.freq_caps_mhz),
        caps(&spec.power_caps_w),
        spec.boundaries.latency_mi_w,
        spec.boundaries.mi_ci_w,
        spec.boundaries.ci_boost_w,
    );
    if let Some(name) = spec.active_mix() {
        let pattern = spec
            .resolved_mix()
            .pattern()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  fleet mix: {name} (SKU pattern [{pattern}])\n"));
    }
    if let Some(p) = spec.active_faults() {
        out.push_str(&format!(
            "  faults: seed {}, drop {:.4}, dup {:.4}, glitch {:.4}, \
             dropout {:.4}, reorder {}, skew {:.1} s, policy {}\n",
            p.seed,
            p.drop_prob,
            p.dup_prob,
            p.nan_prob + p.spike_prob,
            p.dropout_prob,
            p.reorder_depth,
            p.clock_skew_max_s,
            p.gap_policy.name(),
        ));
    }
    out
}

fn help_text() -> String {
    format!(
        "pmss — reproduce the paper's figures, tables, and extensions\n\
         \n\
         USAGE:\n\
         \x20   pmss fig <2..10> [OPTIONS]       a paper figure\n\
         \x20   pmss table <1..7> [OPTIONS]      a paper table\n\
         \x20   pmss <EXTENSION> [OPTIONS]       validate | whatif | governor | peakpower | sensitivity | faults | stream | govern | components | econ\n\
         \x20   pmss list                        list every artifact\n\
         \x20   pmss spec [OPTIONS]              print the resolved scenario\n\
         \x20   pmss stats [OPTIONS]             run the full pipeline, report metrics only\n\
         \x20   pmss query <WHAT> [OPTIONS]      batch-replay query (the pmssd differential\n\
         \x20                                    comparator): projection | coverage | ledger |\n\
         \x20                                    econ | whatif <freq_mhz|power_w> <VALUE>\n\
         \x20   pmss serve [OPTIONS]             run the pmssd analysis daemon (see pmss serve --help)\n\
         \x20   pmss client <CMD> [OPTIONS]      drive a running daemon (ingest, query, metrics)\n\
         \x20   pmss bench-fleet [PATH]          fleet-simulation throughput benchmark\n\
         \n\
         OPTIONS:\n\
         \x20   --json           structured JSON output instead of ASCII\n\
         \x20   --metrics        append the run manifest + metrics report\n\
         \x20                    (collection alone: PMSS_METRICS=1, output unchanged)\n\
         \x20   --scale <NAME>   scenario preset: quick | medium | large\n\
         \x20                    (default: quick, or the {SCALE_ENV} environment variable)\n\
         \x20   --spec <FILE>    load a full ScenarioSpec from a JSON file\n\
         \x20   --faults <PLAN>  inject seeded telemetry faults into every fleet run:\n\
         \x20                    none | mild | frontier-typical | harsh, or a FaultPlan\n\
         \x20                    JSON file (`none` is bit-identical to omitting the flag)\n\
         \x20   --mix <NAME>     heterogeneous SKU mix for every fleet run:\n\
         \x20                    single-sku | mixed-50-50 | mixed-datacenter\n\
         \x20                    (`single-sku` is bit-identical to omitting the flag)\n\
         \x20   --econ <TRACE>   price/carbon trace for cost and CO2 accounting:\n\
         \x20                    flat | diurnal | duck-curve | grid-2024, or an\n\
         \x20                    EconTrace JSON file (`flat` is bit-identical to\n\
         \x20                    omitting the flag)\n\
         \x20   -h, --help       this help\n"
    )
}

fn list_text() -> String {
    let mut out = String::new();
    for id in ArtifactId::all() {
        out.push_str(&format!("{:<12} {}\n", id.name(), id.title()));
    }
    out
}

/// Best-of-`reps` wall time of `f`, in seconds (after one warm-up call).
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct BenchRow {
    scenario: &'static str,
    nodes: usize,
    node_hours: f64,
    uncached_s: f64,
    cached_s: f64,
    templates: usize,
    exec_entries: usize,
    hit_rate: f64,
}

/// Fleet-simulation throughput benchmark (the former `bench_fleet`
/// binary): simulated node-hours per wall-second at 64/256/1024 nodes,
/// memoized vs unmemoized, written to `out_path` as JSON.
fn bench_fleet(out_path: Option<&str>) -> Result<String, PmssError> {
    let out_path = out_path.unwrap_or("BENCH_fleet.json");
    let hours = 2.0;
    let reps = 3;
    let domains = catalog();
    let scenarios: [(&str, GpuSettings); 2] = [
        ("uncapped", GpuSettings::uncapped()),
        ("cap300", GpuSettings::power_capped(300.0)),
    ];
    let mut rows = Vec::new();

    for (scenario, settings) in scenarios {
        for nodes in [64usize, 256, 1024] {
            let schedule = generate(
                TraceParams {
                    nodes,
                    duration_s: hours * 3600.0,
                    seed: 9,
                    min_job_s: 900.0,
                },
                &domains,
            );
            let uncached_cfg = FleetConfig {
                settings,
                use_exec_cache: false,
                ..Default::default()
            };
            let cfg = FleetConfig {
                settings,
                ..Default::default()
            };

            let uncached_s = time_best(reps, || {
                let l: EnergyLedger = simulate_fleet(&schedule, &uncached_cfg);
                std::hint::black_box(l);
            });

            // The warm-up call inside `time_best` fills the cache; the
            // timed runs then measure the memoized steady state.
            let cache = FleetCache::new();
            let cached_s = time_best(reps, || {
                let l: EnergyLedger = simulate_fleet_with_cache(&schedule, &cfg, &cache);
                std::hint::black_box(l);
            });

            rows.push(BenchRow {
                scenario,
                nodes,
                node_hours: nodes as f64 * hours,
                uncached_s,
                cached_s,
                templates: cache.template_len(),
                exec_entries: cache.exec().len(),
                hit_rate: cache.template_stats().hit_rate(),
            });
        }
    }

    let mut out = String::new();
    let mut row_json = Vec::new();
    out.push_str(&format!(
        "{:>9} {:>6} {:>8} {:>14} {:>14} {:>8} {:>10} {:>9} {:>9}\n",
        "scenario",
        "nodes",
        "node-h",
        "uncached nh/s",
        "cached nh/s",
        "speedup",
        "templates",
        "kernels",
        "hit-rate"
    ));
    for r in &rows {
        let un = r.node_hours / r.uncached_s;
        let ca = r.node_hours / r.cached_s;
        let speedup = ca / un;
        out.push_str(&format!(
            "{:>9} {:>6} {:>8.0} {:>14.0} {:>14.0} {:>7.2}x {:>10} {:>9} {:>9.3}\n",
            r.scenario,
            r.nodes,
            r.node_hours,
            un,
            ca,
            speedup,
            r.templates,
            r.exec_entries,
            r.hit_rate
        ));
        row_json.push(
            Json::obj()
                .field("scenario", r.scenario)
                .field("nodes", r.nodes)
                .field("node_hours", r.node_hours)
                .field("uncached_wall_s", r.uncached_s)
                .field("cached_wall_s", r.cached_s)
                .field("uncached_node_hours_per_s", un)
                .field("cached_node_hours_per_s", ca)
                .field("speedup", speedup)
                .field("cached_templates", r.templates)
                .field("cached_kernels", r.exec_entries)
                .field("template_hit_rate", r.hit_rate),
        );
    }
    // Windows/s section: throughput of the columnar paths over one
    // stream-bench-scale trace (16 nodes x 12 h by default;
    // `PMSS_BENCH_SCALE` in (0, 1] shrinks the trace duration for CI
    // smoke runs).  `simulate` is generation + fold; `block_ingest` is
    // generation + the streaming engine's in-order block fast path;
    // `resident_replay` is compressed-store decode + fold (generation out
    // of the loop); `fold_blocks` is the pure columnar fold over
    // materialized blocks — the asymptotic rate once telemetry is
    // resident.
    let scale = std::env::var("PMSS_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0);
    let w_nodes = 16usize;
    let w_hours = (12.0 * scale).max(0.5);
    let w_sched = generate(
        TraceParams {
            nodes: w_nodes,
            duration_s: w_hours * 3600.0,
            seed: 9,
            min_job_s: 900.0,
        },
        &domains,
    );
    let w_cfg = FleetConfig::default();
    let resident = ResidentFleet::capture(&w_sched, &w_cfg)?;
    let window_events = resident.rows();
    let mut blocks = Vec::new();
    fleet_window_blocks(&w_sched, &w_cfg, |b| blocks.push(b.clone()));

    let simulate_s = time_best(reps, || {
        let l: EnergyLedger = simulate_fleet(&w_sched, &w_cfg);
        std::hint::black_box(l);
    });
    let ingest_s = time_best(reps, || {
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&w_sched, StreamConfig::for_plan(None)).expect("valid config");
        fleet_window_blocks(&w_sched, &w_cfg, |b| {
            eng.ingest_block(b).expect("in-order arrival");
        });
        std::hint::black_box(eng.finish().0);
    });
    let replay_s = time_best(reps, || {
        let l: EnergyLedger = resident.replay(&w_sched).expect("replay");
        std::hint::black_box(l);
    });
    let fold_s = time_best(reps, || {
        let mut ledger = EnergyLedger::default();
        for block in &blocks {
            let mut chan = EnergyLedger::default();
            chan.fold_block(&w_sched, block);
            ledger.merge(chan);
        }
        std::hint::black_box(ledger);
    });

    const CAMPAIGN_WINDOWS: f64 = 2.0e9;
    let replay_rate = window_events as f64 / replay_s;
    let campaign_replay_s = CAMPAIGN_WINDOWS / replay_rate;
    let window_rows = [
        ("simulate", simulate_s),
        ("block_ingest", ingest_s),
        ("resident_replay", replay_s),
        ("fold_blocks", fold_s),
    ];
    out.push_str(&format!(
        "\nwindows/s ({w_nodes} nodes x {w_hours:.1} h, {window_events} window-events, \
         best of {reps}):\n"
    ));
    let mut windows_json = Vec::new();
    for (path, wall_s) in window_rows {
        let rate = window_events as f64 / wall_s;
        out.push_str(&format!(
            "{path:>16} {:>10.3} ms {:>8.1} M windows/s\n",
            wall_s * 1e3,
            rate / 1e6
        ));
        windows_json.push(
            Json::obj()
                .field("path", path)
                .field("wall_s", wall_s)
                .field("windows_per_s", rate),
        );
    }
    out.push_str(&format!(
        "resident store: {:.1}x compressed; full campaign ({CAMPAIGN_WINDOWS:.1e} \
         window-events) replays in ~{campaign_replay_s:.0} s\n",
        resident.compression_ratio()
    ));

    // Per-scenario minimum speedup across node counts: the memoization
    // acceptance headline.  The what-if (capped) regime is where engine
    // execution dominates and the cache pays off hardest; uncapped runs
    // are bounded by telemetry emission itself and gain less.
    let mut summary = Json::obj();
    for (scenario, _) in scenarios {
        let min_speedup = rows
            .iter()
            .filter(|r| r.scenario == scenario)
            .map(|r| (r.node_hours / r.cached_s) / (r.node_hours / r.uncached_s))
            .fold(f64::INFINITY, f64::min);
        summary = summary.field(&format!("{scenario}_min_speedup"), min_speedup);
    }
    let json = Json::obj()
        .field("benchmark", "fleet_throughput")
        .field("unit", "simulated node-hours per wall-second")
        .field(
            "baseline",
            "unmemoized reference path (re-executes each phase every cycle)",
        )
        .field("schedule_hours", hours)
        .field("rows", Json::Arr(row_json))
        .field(
            "windows",
            Json::obj()
                .field("nodes", w_nodes)
                .field("hours", w_hours)
                .field("scale", scale)
                .field("window_events", window_events)
                .field("rows", Json::Arr(windows_json))
                .field("resident_compression_ratio", resident.compression_ratio())
                .field(
                    "full_campaign",
                    Json::obj()
                        .field("window_events", CAMPAIGN_WINDOWS)
                        .field("replay_path", "resident_replay")
                        .field("extrapolated_replay_s", campaign_replay_s),
                ),
        )
        .field("summary", summary);
    std::fs::write(out_path, json.to_string_pretty())?;
    out.push_str(&format!("wrote {out_path}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_list_need_no_pipeline() {
        assert!(run(&args(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&args(&[])).unwrap().contains("USAGE"));
        let list = run(&args(&["list"])).unwrap();
        for id in ArtifactId::all() {
            assert!(list.contains(id.name()), "{list}");
        }
    }

    #[test]
    fn unknown_artifacts_and_options_are_usage_errors() {
        assert!(matches!(
            run(&args(&["fig", "99"])),
            Err(PmssError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&args(&["--frobnicate"])),
            Err(PmssError::Usage(_))
        ));
        assert!(matches!(run(&args(&["--scale"])), Err(PmssError::Usage(_))));
        assert!(matches!(
            run(&args(&["--scale", "huge", "table", "7"])),
            Err(PmssError::InvalidValue { .. })
        ));
    }

    #[test]
    fn table7_renders_both_ways() {
        let ascii = run(&args(&["table", "7", "--scale", "quick"])).unwrap();
        assert!(ascii.contains("Max. Walltime"));
        let json = run(&args(&["table", "7", "--scale", "quick", "--json"])).unwrap();
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("table7"));
        assert_eq!(
            v.get("data")
                .unwrap()
                .get("rows")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn econ_artifact_and_query_share_the_trace_vocabulary() {
        let ascii = run(&args(&["econ", "--scale", "quick", "--econ", "diurnal"])).unwrap();
        assert!(ascii.contains("diurnal"), "{ascii}");
        let q = run(&args(&[
            "query", "econ", "--scale", "quick", "--econ", "diurnal",
        ]))
        .unwrap();
        let v = Json::parse(&q).unwrap();
        assert_eq!(v.get("trace").unwrap().as_str(), Some("diurnal"));
        // No active trace: the query is a typed error, not a panic.
        assert!(matches!(
            run(&args(&["query", "econ", "--scale", "quick"])),
            Err(PmssError::Missing { .. })
        ));
        // Unknown trace vocabulary is rejected up front.
        assert!(matches!(
            run(&args(&["econ", "--scale", "quick", "--econ", "bogus"])),
            Err(PmssError::InvalidValue { .. })
        ));
    }

    #[test]
    fn spec_subcommand_round_trips_through_json() {
        let text = run(&args(&["spec", "--scale", "medium", "--json"])).unwrap();
        let spec = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(spec.nodes, 64);
        let ascii = run(&args(&["spec", "--scale", "medium"])).unwrap();
        assert!(ascii.contains("nodes: 64"));
    }
}
