//! Artifact rendering: byte-identical ASCII and structured JSON.
//!
//! The ASCII renderers are exact ports of the retired per-artifact
//! binaries (`crates/bench/src/bin/*`): every `println!` became one line
//! here, so `pmss fig 8` prints the same bytes `fig8` did.  Golden tests
//! under `tests/golden/` hold the pre-refactor outputs and assert the
//! equivalence.  The JSON renderers expose the same numbers structurally
//! for `--json`.

use pmss_core::project::Projection;
use pmss_core::report::{render_heatmap, render_projection, Table};
use pmss_core::Region;
use pmss_workloads::membench::{BLOCKS, THREADS_PER_BLOCK};
use pmss_workloads::sweep::CapSetting;
use pmss_workloads::table3::Table3Row;

use crate::artifact::*;
use crate::json::Json;

/// Appends one output line (a former `println!`).
macro_rules! wl {
    ($out:expr) => {
        $out.push('\n')
    };
    ($out:expr, $($arg:tt)*) => {{
        $out.push_str(&format!($($arg)*));
        $out.push('\n');
    }};
}

/// Renders a crude ASCII sparkline of a density vector (for distribution
/// artifacts to show shape in a terminal).
pub fn sparkline(density: &[f64], buckets: usize) -> String {
    const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let chunk = (density.len() / buckets).max(1);
    let sums: Vec<f64> = density
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>())
        .collect();
    let max = sums.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    sums.iter()
        .map(|&s| {
            let idx = ((s / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Renders any artifact to the original binary's exact ASCII.
pub(crate) fn ascii(a: &Artifact) -> String {
    match a {
        Artifact::Fig2(v) => ascii_fig2(v),
        Artifact::Fig3(v) => ascii_fig3(v),
        Artifact::Fig4(v) => ascii_fig4(v),
        Artifact::Fig5(v) => ascii_fig5(v),
        Artifact::Fig6(v) => ascii_fig6(v),
        Artifact::Fig7(v) => ascii_fig7(v),
        Artifact::Fig8(v) => ascii_fig8(v),
        Artifact::Fig9(v) => ascii_fig9(v),
        Artifact::Fig10(v) => ascii_fig10(v),
        Artifact::Table1(v) => ascii_table1(v),
        Artifact::Table2(v) => ascii_table2(v),
        Artifact::Table3(v) => ascii_table3(v),
        Artifact::Table4(v) => ascii_table4(v),
        Artifact::Table5(v) => ascii_table5(v),
        Artifact::Table6(v) => ascii_table6(v),
        Artifact::Table7(v) => ascii_table7(v),
        Artifact::Validate(v) => ascii_validate(v),
        Artifact::Whatif(v) => ascii_whatif(v),
        Artifact::Governor(v) => ascii_governor(v),
        Artifact::PeakPower(v) => ascii_peakpower(v),
        Artifact::Sensitivity(v) => ascii_sensitivity(v),
        Artifact::Faults(v) => ascii_faults(v),
        Artifact::Stream(v) => ascii_stream(v),
        Artifact::Govern(v) => ascii_govern(v),
        Artifact::Components(v) => ascii_components(v),
        Artifact::Econ(v) => ascii_econ(v),
    }
}

/// Renders any artifact to structured JSON.
pub(crate) fn json(a: &Artifact) -> Json {
    match a {
        Artifact::Fig2(v) => json_fig2(v),
        Artifact::Fig3(v) => json_fig3(v),
        Artifact::Fig4(v) => json_fig4(v),
        Artifact::Fig5(v) => json_fig5(v),
        Artifact::Fig6(v) => json_fig6(v),
        Artifact::Fig7(v) => json_fig7(v),
        Artifact::Fig8(v) => json_fig8(v),
        Artifact::Fig9(v) => json_fig9(v),
        Artifact::Fig10(v) => json_fig10(v),
        Artifact::Table1(v) => json_table1(v),
        Artifact::Table2(v) => json_table2(v),
        Artifact::Table3(v) => json_table3(v),
        Artifact::Table4(v) => json_table4(v),
        Artifact::Table5(v) => json_table5(v),
        Artifact::Table6(v) => json_table6(v),
        Artifact::Table7(v) => json_table7(v),
        Artifact::Validate(v) => json_validate(v),
        Artifact::Whatif(v) => json_whatif(v),
        Artifact::Governor(v) => json_governor(v),
        Artifact::PeakPower(v) => json_peakpower(v),
        Artifact::Sensitivity(v) => json_sensitivity(v),
        Artifact::Faults(v) => json_faults(v),
        Artifact::Stream(v) => json_stream(v),
        Artifact::Govern(v) => json_govern(v),
        Artifact::Components(v) => json_components(v),
        Artifact::Econ(v) => json_econ(v),
    }
}

fn cap_label(s: CapSetting) -> String {
    match s {
        CapSetting::FreqMhz(m) => format!("{m:.0} MHz"),
        CapSetting::PowerW(w) => format!("{w:.0} W cap"),
    }
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.1}GB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1u64 << 20) as f64)
    } else {
        format!("{}KB", bytes >> 10)
    }
}

fn ascii_fig2(a: &Fig2) -> String {
    let mut out = String::new();
    wl!(out, "(a) telemetry vs ROCm SMI, one application run");
    wl!(
        out,
        "    15s windows: {}; mean power {:.0} W; mean |telemetry - smi| = {:.1} W ({:.2}%)",
        a.windows,
        a.mean_power_w,
        a.mean_abs_diff_w,
        100.0 * a.mean_abs_diff_w / a.mean_power_w
    );
    for p in &a.pairs {
        wl!(
            out,
            "    t={:>5.0}s  oob={:>6.1} W  smi={:>6.1} W",
            p.t_s,
            p.oob_w,
            p.smi_w
        );
    }
    wl!(out);
    wl!(out, "(b) GPU vs rest-of-node energy");
    wl!(
        out,
        "    GPU energy share of node energy: {:.1}% (paper: GPUs dominate; others < 20% on busy nodes)",
        100.0 * a.gpu_share
    );
    wl!(
        out,
        "    GPU power distribution  : {}",
        sparkline(&a.gpu_density, 70)
    );
    wl!(
        out,
        "    rest-of-node distribution: {}",
        sparkline(&a.rest_density, 70)
    );
    out
}

fn ascii_fig3(a: &Fig3) -> String {
    let mut out = String::new();
    wl!(
        out,
        "Fig. 3: membench access pattern — {BLOCKS} blocks x {THREADS_PER_BLOCK} threads,"
    );
    wl!(
        out,
        "block b loads chunk (b % n_chunks), so small working sets are re-served"
    );
    wl!(out, "from the L2 while large ones stream from HBM.");
    wl!(out);
    wl!(out, "first 12 blocks against a 5-chunk working set:");
    for &(b, c) in &a.pattern {
        out.push_str(&format!(" b{b}->c{c}"));
    }
    wl!(out);
    wl!(out);
    let mut tb = Table::new(&["working set", "served from", "GB/s", "power (W)"]);
    for r in &a.rows {
        tb.row(vec![
            if r.bytes >= 1 << 20 {
                format!("{} MB", r.bytes >> 20)
            } else {
                format!("{} KB", r.bytes >> 10)
            },
            r.served_from.into(),
            format!("{:.0}", r.gb_s),
            format!("{:.0}", r.power_w),
        ]);
    }
    wl!(out, "{}", tb.render());
    wl!(out, "the knee at 16 MB is the paper's L2 capacity boundary");
    out
}

fn ascii_fig4(a: &Fig4) -> String {
    let mut out = String::new();
    for block in &a.blocks {
        wl!(out, "== {} ==", block.title);
        for section in &block.sections {
            let mut tb =
                Table::new(&["AI (F/B)", "TFLOP/s", "GB/s", "Power (W)", "t / t_uncapped"]);
            for r in &section.rows {
                tb.row(vec![
                    format!("{:.4}", r.ai),
                    format!("{:.2}", r.tflops),
                    format!("{:.0}", r.gb_s),
                    format!("{:.0}", r.power_w),
                    format!("{:.3}", r.t_rel),
                ]);
            }
            wl!(out, "-- {} --\n{}", cap_label(section.setting), tb.render());
        }
    }
    wl!(
        out,
        "paper checks: peak power ~540 W only near AI=4 at 1700 MHz; streaming ~380 W; compute tail ~420 W"
    );
    out
}

fn ascii_fig5(a: &Fig5) -> String {
    let mut out = String::new();
    for block in &a.blocks {
        wl!(out, "== {} ==", block.title);
        for metric in ["runtime", "power", "energy"] {
            let mut header = vec!["AI (F/B)".to_string()];
            header.extend(block.settings.iter().map(|s| format!("{:.0}", s.value())));
            let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let mut tb = Table::new(&hdr_refs);
            for r in &block.rows {
                let mut row = vec![format!("{:.4}", r.ai)];
                row.extend(r.points.iter().map(|p| {
                    let v = match metric {
                        "runtime" => p.runtime,
                        "power" => p.power,
                        _ => p.energy,
                    };
                    format!("{v:.3}")
                }));
                tb.row(row);
            }
            wl!(out, "-- normalized {metric} --\n{}", tb.render());
        }
    }
    wl!(
        out,
        "paper checks: best energy-to-solution near 1300 MHz; caps < 300 W inflate runtime sharply"
    );
    out
}

fn ascii_fig6(a: &Fig6) -> String {
    let mut out = String::new();
    for block in &a.blocks {
        wl!(out, "== {} ==", block.title);
        for section in &block.sections {
            let mut tb = Table::new(&["size", "GB/s", "Power (W)", "t / t_uncapped", "breached"]);
            for r in &section.rows {
                tb.row(vec![
                    human(r.bytes),
                    format!("{:.0}", r.gb_s),
                    format!("{:.0}", r.power_w),
                    format!("{:.3}", r.t_rel),
                    if r.breached { "yes".into() } else { "".into() },
                ]);
            }
            wl!(out, "-- {} --\n{}", cap_label(section.setting), tb.render());
        }
    }
    wl!(out, "paper checks: <16MB sizes frequency-sensitive; >16MB insensitive; 140/200 W caps breached by HBM-resident sets");
    out
}

fn ascii_fig7(a: &Fig7) -> String {
    let mut out = String::new();
    wl!(
        out,
        "Fig. 7: Louvain case study ({} networks)",
        a.cases.len()
    );
    for case in &a.cases {
        wl!(out);
        wl!(
            out,
            "{} — {} edges, d_max {}, d_avg {:.1}, Q = {:.3}, {} levels",
            case.name,
            case.edges,
            case.d_max,
            case.d_avg,
            case.modularity,
            case.levels
        );
        let mut tb = Table::new(&["MHz", "runtime (s)", "avg W", "peak W", "energy (J)"]);
        for p in &case.freq_rows {
            tb.row(vec![
                format!("{:.0}", p.knob),
                format!("{:.3}", p.runtime_s),
                format!("{:.0}", p.avg_power_w),
                format!("{:.0}", p.peak_power_w),
                format!("{:.1}", p.energy_j),
            ]);
        }
        wl!(out, "{}", tb.render());
        wl!(
            out,
            "900 MHz: energy saving {:.1}%, runtime +{:.1}%  (paper: up to 5.23% saving, <5% slowdown on social nets)",
            case.saving_900_pct,
            case.slowdown_900_pct
        );
        if let Some(road) = &case.road_caps {
            let mut tb = Table::new(&["cap (W)", "runtime x", "energy saving %", "breached"]);
            for p in road {
                tb.row(vec![
                    format!("{:.0}", p.cap_w),
                    format!("{:.3}", p.runtime_ratio),
                    format!("{:.1}", p.saving_pct),
                    if p.breached { "yes".into() } else { "".into() },
                ]);
            }
            wl!(
                out,
                "road-network power caps (paper: 220 W free, 140 W costs ~36% runtime):\n{}",
                tb.render()
            );
        }
    }
    out
}

fn ascii_fig8(a: &Fig8) -> String {
    let mut out = String::new();
    wl!(
        out,
        "Fig. 8: system-wide GPU power distribution ({} samples, mean {:.0} W)",
        a.samples,
        a.mean_w
    );
    wl!(out, "0 W {} 700 W", sparkline(&a.density, 100));
    wl!(out);
    wl!(out, "region mass:");
    for r in &a.regions {
        wl!(out, "  {:<30} {:>5.1} %", r.label, r.pct);
    }
    wl!(out);
    wl!(
        out,
        "distribution peaks (W): {:?}",
        a.peaks_w.iter().map(|p| p.round()).collect::<Vec<_>>()
    );
    wl!(out, "paper checks: peaks near idle/low power, mass concentrated in MI band, small boost tail >= 560 W");
    out
}

fn ascii_fig9(a: &Fig9) -> String {
    let mut out = String::new();
    wl!(
        out,
        "Fig. 9: GPU power distribution per science domain (0..700 W)"
    );
    for d in &a.domains {
        wl!(
            out,
            "{:<4} {:<34} mean {:>4.0} W  {}",
            d.code,
            format!("({})", d.name),
            d.mean_w,
            sparkline(&d.density, 70)
        );
    }
    wl!(out, "paper checks: CPH/MAT mass near 420-560 W; BIO/DAT below 200 W; CLI/CFD in 200-420 W; AST/FUS multi-modal");
    out
}

fn ascii_fig10(a: &Fig10) -> String {
    let labels: Vec<&str> = a.labels.iter().map(|s| s.as_str()).collect();
    let mut out = String::new();
    wl!(
        out,
        "{}",
        render_heatmap(
            &a.used,
            &labels,
            "(a) total energy used (MWh), domain x job size"
        )
    );
    wl!(
        out,
        "{}",
        render_heatmap(
            &a.saved,
            &labels,
            "(b) estimated energy saved @1100 MHz cap (MWh)"
        )
    );
    wl!(
        out,
        "savings concentration: {:.0}% of savings from job sizes A-C (paper: most savings from large jobs)",
        a.concentration_pct
    );
    out
}

fn ascii_table1(a: &Table1) -> String {
    let mut out = String::new();
    wl!(out, "Frontier System (model constants)");
    for (k, v) in &a.rows {
        wl!(out, "{k:<28} {v}");
    }
    out
}

fn ascii_table2(a: &Table2) -> String {
    let mut out = String::new();
    wl!(
        out,
        "(a) power telemetry: per-node per-GPU samples @15 s (out-of-band)"
    );
    wl!(
        out,
        "    raw 2 s capture, Frontier scale, 3 months: {:.1} TB",
        a.raw_tb
    );
    wl!(
        out,
        "    aggregated 15 s product:                   {:.1} TB",
        a.agg_tb
    );
    wl!(out);
    wl!(
        out,
        "(b) job-scheduler log ({} jobs for an 8-node day):",
        a.jobs
    );
    for line in &a.log_lines {
        wl!(out, "    {line}");
    }
    wl!(out);
    wl!(out, "(c) per-node scheduler data (placements on node 0):");
    for p in &a.placements {
        wl!(
            out,
            "    node 0: job {} [{}] {:.0}s..{:.0}s",
            p.job_id,
            p.project_id,
            p.begin_s,
            p.end_s
        );
    }
    out
}

fn table3_row_line(out: &mut String, r: &Table3Row) {
    wl!(
        out,
        "{:>8.0} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1}",
        r.setting.value(),
        r.vai.power_pct,
        r.mb.power_pct,
        r.vai.runtime_pct,
        r.mb.runtime_pct,
        r.vai.energy_pct,
        r.mb.energy_pct
    );
}

fn ascii_table3(a: &Table3Artifact) -> String {
    let mut out = String::new();
    wl!(out, "(a) Frequency Cap");
    wl!(
        out,
        "{:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "MHz",
        "P% VAI",
        "P% MB",
        "T% VAI",
        "T% MB",
        "E% VAI",
        "E% MB"
    );
    for r in &a.table.freq_rows {
        table3_row_line(&mut out, r);
    }
    wl!(out, "(b) Power Cap");
    for r in &a.table.power_rows {
        table3_row_line(&mut out, r);
    }
    out
}

fn ascii_table4(a: &Table4) -> String {
    let mut tb = Table::new(&[
        "Region",
        "Mode (region of operation)",
        "Range (W)",
        "GPU Hrs. (%)",
    ]);
    for (i, region) in Region::all().iter().enumerate() {
        let (lo, hi) = region.range_w();
        let range = if hi.is_infinite() {
            format!(">= {lo:.0}")
        } else if lo == 0.0 {
            format!("<= {hi:.0}")
        } else {
            format!("{lo:.0}-{hi:.0}")
        };
        tb.row(vec![
            format!("{}", i + 1),
            region.label().to_string(),
            range,
            format!("{:.1}", a.gpu_hours_pct[i]),
        ]);
    }
    let mut out = String::new();
    wl!(out, "{}", tb.render());
    wl!(
        out,
        "paper reference: 29.8 / 49.5 / 19.5 / 1.1 %  (3 months of Frontier)"
    );
    out
}

fn ascii_table5(a: &Table5) -> String {
    let mut out = String::new();
    wl!(out, "{}", render_projection(&a.projection, false));
    let best = a.projection.best_free();
    wl!(
        out,
        "headline: up to {:.1}% savings with no slowdown ({} cap {:.0}); paper: ~8.5% at 900 MHz",
        best.savings_dt0_pct,
        match best.setting {
            CapSetting::FreqMhz(_) => "frequency",
            _ => "power",
        },
        best.setting.value(),
    );
    out
}

fn ascii_table6(a: &Table6) -> String {
    let mut out = String::new();
    wl!(
        out,
        "selected domains (>=1 hot cell): {:?}",
        a.hot_codes.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );
    wl!(out, "{}", render_projection(&a.projection, true));
    wl!(out, "paper checks: selective savings are a significant share of the system-wide Table V numbers");
    out
}

fn ascii_table7(a: &Table7) -> String {
    let mut out = String::new();
    wl!(
        out,
        "{:<10} {:<14} Max. Walltime (Hrs.)",
        "Job size",
        "Num-nodes"
    );
    for r in &a.rows {
        wl!(
            out,
            "{:<10} {:<14} {}",
            r.label,
            format!("{} - {}", r.min_nodes, r.max_nodes),
            r.max_walltime_h
        );
    }
    out
}

fn ascii_validate(a: &Validate) -> String {
    let mut tb = Table::new(&[
        "cap (MHz)",
        "projected sav %",
        "measured sav %",
        "projected dT %",
        "measured dT %",
    ]);
    for r in &a.rows {
        tb.row(vec![
            format!("{:.0}", r.cap_mhz),
            format!("{:.1}", r.projected_sav_pct),
            format!("{:.1}", r.measured_sav_pct),
            format!("{:.1}", r.projected_dt_pct),
            format!("{:+.1}", r.measured_dt_pct),
        ]);
    }
    let mut out = String::new();
    wl!(
        out,
        "projection vs measured energy-to-solution ({} jobs re-executed):",
        a.jobs
    );
    wl!(out, "{}", tb.render());
    wl!(
        out,
        "The measured column pays the latency-region slowdown the projection"
    );
    wl!(
        out,
        "method deliberately excludes — the projection is an upper bound."
    );
    out
}

fn ascii_whatif(a: &Whatif) -> String {
    let mut tb = Table::new(&[
        "dT budget %",
        "mixed saves %",
        "uniform saves %",
        "uniform cap",
    ]);
    for r in &a.budget_rows {
        tb.row(vec![
            format!("{:.0}", r.budget_pct),
            format!("{:.2}", r.mixed_saves_pct),
            format!("{:.2}", r.uniform_saves_pct),
            format!("{:.0} MHz", r.uniform_cap.value()),
        ]);
    }
    let mut out = String::new();
    wl!(
        out,
        "per-domain mixed caps vs best uniform cap (per-domain dT budgets):"
    );
    wl!(out, "{}", tb.render());
    wl!(out, "assignment at a 10% budget:");
    for d in &a.assignment {
        match d.choice {
            Some((mhz, dt)) => wl!(out, "  {:<4} -> {:>5.0} MHz  (dT {:+.1}%)", d.code, mhz, dt),
            None => wl!(out, "  {:<4} -> uncapped", d.code),
        }
    }
    if let Some(e) = &a.econ {
        wl!(out);
        wl!(
            out,
            "savings valued under the `{}` trace (total ${:.0}, {:.1} t CO2):",
            e.trace,
            e.total_cost_usd,
            e.total_carbon_t
        );
        let mut tb = Table::new(&["dT budget %", "mixed saves $", "mixed saves t CO2"]);
        for r in &e.rows {
            tb.row(vec![
                format!("{:.0}", r.budget_pct),
                format!("{:.0}", r.mixed_saving_usd),
                format!("{:.1}", r.mixed_saving_t),
            ]);
        }
        wl!(out, "{}", tb.render());
    }
    out
}

fn ascii_governor(a: &GovernorArtifact) -> String {
    let mut out = String::new();
    for class in &a.classes {
        wl!(out);
        wl!(
            out,
            "{} application ({} phases):",
            class.class,
            class.phases
        );
        let mut tb = Table::new(&["policy", "energy saved %", "slowdown %"]);
        for r in &class.rows {
            tb.row(vec![
                r.policy.to_string(),
                format!("{:.1}", r.energy_saved_pct),
                format!("{:+.1}", r.slowdown_pct),
            ]);
        }
        wl!(out, "{}", tb.render());
    }
    wl!(
        out,
        "Extension result: per-phase policies dominate static caps — the upper"
    );
    wl!(
        out,
        "bound the paper derives for static capping is itself a lower bound on"
    );
    wl!(
        out,
        "what phase-aware software-driven management could reach."
    );
    out
}

fn ascii_peakpower(a: &PeakPower) -> String {
    let mut tb = Table::new(&[
        "cap (MHz)",
        "peak (MW)",
        "mean (MW)",
        "load factor",
        "peak shaved %",
    ]);
    for r in &a.rows {
        tb.row(vec![
            format!("{:.0}", r.cap_mhz),
            format!("{:.1}", r.peak_mw),
            format!("{:.1}", r.mean_mw),
            format!("{:.2}", r.load_factor),
            format!("{:.1}", r.shaved_pct),
        ]);
    }
    let mut out = String::new();
    wl!(
        out,
        "fleet power envelope, extrapolated to 9408 nodes (paper Table I: peak 29 MW):"
    );
    wl!(out, "{}", tb.render());
    wl!(
        out,
        "Frequency capping is also a peak-demand tool: the same knob that saves"
    );
    wl!(
        out,
        "energy shaves megawatts off the facility's required power envelope."
    );
    out
}

fn ascii_sensitivity(a: &SensitivityArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "boundary sensitivity (interior boundaries perturbed by +/- 40 W):"
    );
    wl!(
        out,
        "  reference no-slowdown headline: {:.2}% of total GPU energy",
        a.reference_free_pct
    );
    wl!(
        out,
        "  spread across {} perturbations: {:.2} percentage points",
        a.points,
        a.spread_pp
    );
    for v in &a.variants {
        wl!(
            out,
            "  bounds {:.0}/{:.0} W -> best free {:.2}%, best total {:.2}%",
            v.latency_mi_w,
            v.mi_ci_w,
            v.best_free_pct,
            v.best_total_pct
        );
    }
    wl!(out);
    wl!(
        out,
        "paper context: \"boundary regions may be diffused into one another and"
    );
    wl!(
        out,
        "may not be well defined\" — the projection must be robust to that."
    );
    out
}

fn ascii_faults(a: &FaultsArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "fault-injection sensitivity (seeded telemetry faults, decomposition re-derived):"
    );
    wl!(
        out,
        "  nominal no-slowdown headline: {:.2}% of total GPU energy",
        a.nominal_free_pct
    );
    wl!(out);
    wl!(
        out,
        "  {:<16} {:<15} {:>9} {:>8} {:>7} {:>7} {:>8} {:>8}  best-free bounds",
        "severity",
        "gap policy",
        "coverage",
        "dropped",
        "dup",
        "glitch",
        "reorder",
        "dropout"
    );
    for r in &a.rows {
        wl!(
            out,
            "  {:<16} {:<15} {:>8.2}% {:>8} {:>7} {:>7} {:>8} {:>8}  [{:.2}%, {:.2}%]",
            r.preset,
            r.policy.name(),
            100.0 * r.coverage.fraction(),
            r.dropped,
            r.duplicated,
            r.glitched,
            r.reordered,
            r.dropout_windows,
            r.bounds.lo_pct,
            r.bounds.hi_pct
        );
    }
    wl!(out);
    wl!(
        out,
        "lo assumes uncovered time saves nothing; hi assumes it mirrors covered time."
    );
    out
}

fn ascii_stream(a: &StreamArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "streaming ingest replay (delivery-ordered windows, incremental decomposition):"
    );
    wl!(
        out,
        "  shards {}, reorder horizon {} window(s), buffer bound {} windows",
        a.shards,
        a.reorder_horizon,
        a.buffer_bound
    );
    wl!(out);
    wl!(
        out,
        "  {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}  best-free bounds",
        "t (s)",
        "events",
        "released",
        "buffered",
        "coverage",
        "total MWh"
    );
    for r in &a.rows {
        let bounds = match &r.bounds {
            Some(b) => format!("[{:.2}%, {:.2}%]", b.lo_pct, b.hi_pct),
            None => "pending".to_string(),
        };
        wl!(
            out,
            "  {:>9.0} {:>9} {:>9} {:>9} {:>8.2}% {:>11.3}  {}",
            r.t_s,
            r.events,
            r.released,
            r.buffered,
            100.0 * r.coverage,
            r.total_mwh,
            bounds
        );
    }
    wl!(out);
    wl!(
        out,
        "  ingested {} events ({} samples, {} gaps, {} rest windows), {} late rejects",
        a.events,
        a.samples,
        a.gaps,
        a.rest_samples,
        a.late_rejects
    );
    wl!(
        out,
        "  peak reorder buffer {} windows total, {} in one channel",
        a.peak_buffered_windows,
        a.peak_channel_windows
    );
    wl!(
        out,
        "  final ledger vs batch decomposition: {}",
        if a.batch_identical {
            "identical"
        } else {
            "MISMATCH"
        }
    );
    out
}

fn ascii_govern(a: &GovernArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "online cluster governor vs the static no-slowdown ceiling:"
    );
    wl!(
        out,
        "  ceiling {:.2}% at {} (projection best-free row); {} nodes, sync window {:.0} s, reorder horizon {} window(s)",
        a.ceiling_pct,
        cap_label(a.ceiling_setting),
        a.nodes,
        a.interval_s,
        a.reorder_horizon
    );
    wl!(out);
    wl!(
        out,
        "  {:<16} {:>10} {:>10} {:>9} {:>11} {:>8} {:>8} {:>8} {:>9}",
        "policy",
        "cap",
        "budget kW",
        "realized",
        "of ceiling",
        "dT",
        "dT(MI)",
        "dT(CI)",
        "MI@cap"
    );
    for r in &a.rows {
        wl!(
            out,
            "  {:<16} {:>10} {:>10.1} {:>8.2}% {:>10.1}% {:>7.2}% {:>7.2}% {:>7.2}% {:>8.1}%",
            r.policy,
            cap_label(r.cap),
            r.budget_w / 1e3,
            r.realized_pct,
            r.of_ceiling_pct,
            r.slowdown_pct,
            r.mi_slowdown_pct,
            r.ci_slowdown_pct,
            r.mi_capture_pct
        );
    }
    wl!(out);
    wl!(out, "  control cost per policy:");
    for r in &a.rows {
        wl!(
            out,
            "  {:<16} {:>6} rounds, {:>5} rebalances, {:>6} cap changes, {:>4} hysteresis holds, {:>5} throttled node-rounds, peak budget use {:>5.1}%{}{}",
            r.policy,
            r.rounds,
            r.rebalances,
            r.cap_churn,
            r.hysteresis_suppressions,
            r.throttled_node_rounds,
            100.0 * r.peak_budget_utilization,
            if r.late_rejects > 0 {
                format!(", {} late rejects", r.late_rejects)
            } else {
                String::new()
            },
            if r.budget_exceeded {
                ", BUDGET EXCEEDED"
            } else {
                ""
            }
        );
    }
    out
}

fn ascii_components(a: &ComponentsArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "per-component energy attribution (heterogeneous SKU catalog):"
    );
    wl!(
        out,
        "  mix {}, {} nodes; projected best no-slowdown savings {:.2}% at {}",
        a.mix,
        a.nodes,
        a.best_free_pct,
        cap_label(a.best_free_setting)
    );
    wl!(out);
    wl!(
        out,
        "  {:<10} {:>5} {:>11} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "sku",
        "nodes",
        "GPU MWh",
        "HBM",
        "L2",
        "ALU",
        "clock",
        "rest MWh"
    );
    for r in &a.rows {
        wl!(
            out,
            "  {:<10} {:>5} {:>11.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            format!("{} {}", r.sku, r.name),
            r.nodes,
            r.gpu_mwh,
            r.hbm_mwh,
            r.l2_mwh,
            r.alu_mwh,
            r.clock_mwh,
            r.rest_mwh
        );
    }
    wl!(
        out,
        "  {:<10} {:>5} {:>11.3} {:>43} {:>10.3}",
        "fleet",
        a.nodes,
        a.total_gpu_mwh,
        "",
        a.total_rest_mwh
    );
    wl!(out);
    wl!(
        out,
        "  tuned sweet spots (max slowdown {:.0}%):",
        100.0 * (a.max_slowdown - 1.0)
    );
    for r in &a.rows {
        let spots = r
            .sweet_spots
            .iter()
            .map(|s| {
                format!(
                    "{} {:.0} MHz (energy {:.2}x, dT {:+.1}%)",
                    s.mode,
                    s.freq.mhz(),
                    s.energy_ratio,
                    100.0 * (s.slowdown - 1.0)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        wl!(out, "  {:<10} {}", format!("{} {}", r.sku, r.name), spots);
    }
    wl!(out);
    let max_err = a
        .rows
        .iter()
        .map(|r| r.conservation_err)
        .fold(0.0, f64::max);
    wl!(
        out,
        "  component lanes conserve device energy to max rel err {:.1e}",
        max_err
    );
    out
}

fn ascii_econ(a: &EconArtifact) -> String {
    let mut out = String::new();
    wl!(
        out,
        "price/carbon economics of the fleet energy (Frontier scale):"
    );
    wl!(
        out,
        "  {} GPU MWh + {} rest-of-node MWh over {} slots; flat reference ${:.0} / {:.1} t CO2",
        format!("{:.1}", a.total_gpu_mwh),
        format!("{:.1}", a.total_rest_mwh),
        a.slots,
        a.ref_cost_usd,
        a.ref_carbon_t
    );
    wl!(out);
    let mut tb = Table::new(&[
        "trace",
        "cost $",
        "d cost $",
        "CO2 t",
        "d CO2 t",
        "shift $",
        "shift t",
        "vs uniform $",
        "moved MWh",
    ]);
    for r in &a.rows {
        tb.row(vec![
            r.trace.clone(),
            format!("{:.0}", r.cost_usd),
            format!("{:+.0}", r.delta_cost_usd),
            format!("{:.1}", r.carbon_t),
            format!("{:+.1}", r.delta_carbon_t),
            format!("{:.0}", r.shift_saving_usd),
            format!("{:.1}", r.shift_saving_t),
            format!("{:+.0}", r.shift_edge_usd),
            format!("{:.1}", r.moved_mwh),
        ]);
    }
    wl!(out, "{}", tb.render());
    wl!(out, "per-SKU lanes under the `{}` trace:", a.focus);
    for r in &a.sku_rows {
        wl!(
            out,
            "  {:<10} {:>11.3} MWh  ${:>12.0}  {:>9.1} t CO2",
            format!("{} {}", r.sku, r.name),
            r.gpu_mwh,
            r.cost_usd,
            r.carbon_t
        );
    }
    wl!(out);
    wl!(
        out,
        "temporal shift under `{}` (deadline {} slots, budget {:.1} MW):",
        a.focus,
        a.shift.deadline_slots,
        a.shift.budget_mw
    );
    wl!(
        out,
        "  moved {:.1} MWh in {} moves: ${:.0} -> ${:.0} (uniform ${:.0}); {:.1} -> {:.1} t CO2",
        a.shift.moved_mwh,
        a.shift.moves,
        a.shift.baseline_cost_usd,
        a.shift.shifted_cost_usd,
        a.shift.uniform_cost_usd,
        a.shift.baseline_carbon_t,
        a.shift.shifted_carbon_t
    );
    wl!(
        out,
        "Extension result: the same MWh are worth different money by trace;"
    );
    wl!(
        out,
        "deferring boosted work inside its deadline beats uniform spreading."
    );
    out
}

// ---------------------------------------------------------------------------
// JSON renderers
// ---------------------------------------------------------------------------

pub(crate) fn setting_json(s: CapSetting) -> Json {
    match s {
        CapSetting::FreqMhz(m) => Json::obj().field("knob", "freq_mhz").field("value", m),
        CapSetting::PowerW(w) => Json::obj().field("knob", "power_w").field("value", w),
    }
}

fn json_fig2(a: &Fig2) -> Json {
    Json::obj()
        .field("windows", a.windows)
        .field("mean_power_w", a.mean_power_w)
        .field("mean_abs_diff_w", a.mean_abs_diff_w)
        .field(
            "pairs",
            Json::Arr(
                a.pairs
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .field("t_s", p.t_s)
                            .field("oob_w", p.oob_w)
                            .field("smi_w", p.smi_w)
                    })
                    .collect(),
            ),
        )
        .field("gpu_share", a.gpu_share)
        .field("gpu_density", a.gpu_density.as_slice())
        .field("rest_density", a.rest_density.as_slice())
}

fn json_fig3(a: &Fig3) -> Json {
    Json::obj()
        .field(
            "pattern",
            Json::Arr(
                a.pattern
                    .iter()
                    .map(|&(b, c)| Json::obj().field("block", b).field("chunk", c))
                    .collect(),
            ),
        )
        .field(
            "rows",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("bytes", r.bytes)
                            .field("served_from", r.served_from)
                            .field("gb_s", r.gb_s)
                            .field("power_w", r.power_w)
                    })
                    .collect(),
            ),
        )
}

fn json_fig4(a: &Fig4) -> Json {
    Json::obj().field(
        "blocks",
        Json::Arr(
            a.blocks
                .iter()
                .map(|b| {
                    Json::obj().field("title", b.title).field(
                        "sections",
                        Json::Arr(
                            b.sections
                                .iter()
                                .map(|s| {
                                    Json::obj().field("setting", setting_json(s.setting)).field(
                                        "rows",
                                        Json::Arr(
                                            s.rows
                                                .iter()
                                                .map(|r| {
                                                    Json::obj()
                                                        .field("ai", r.ai)
                                                        .field("tflops", r.tflops)
                                                        .field("gb_s", r.gb_s)
                                                        .field("power_w", r.power_w)
                                                        .field("t_rel", r.t_rel)
                                                })
                                                .collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        ),
    )
}

fn json_fig5(a: &Fig5) -> Json {
    Json::obj().field(
        "blocks",
        Json::Arr(
            a.blocks
                .iter()
                .map(|b| {
                    Json::obj()
                        .field("title", b.title)
                        .field(
                            "settings",
                            Json::Arr(b.settings.iter().map(|&s| setting_json(s)).collect()),
                        )
                        .field(
                            "rows",
                            Json::Arr(
                                b.rows
                                    .iter()
                                    .map(|r| {
                                        Json::obj().field("ai", r.ai).field(
                                            "points",
                                            Json::Arr(
                                                r.points
                                                    .iter()
                                                    .map(|p| {
                                                        Json::obj()
                                                            .field(
                                                                "setting",
                                                                setting_json(p.setting),
                                                            )
                                                            .field("runtime", p.runtime)
                                                            .field("power", p.power)
                                                            .field("energy", p.energy)
                                                    })
                                                    .collect(),
                                            ),
                                        )
                                    })
                                    .collect(),
                            ),
                        )
                })
                .collect(),
        ),
    )
}

fn json_fig6(a: &Fig6) -> Json {
    Json::obj().field(
        "blocks",
        Json::Arr(
            a.blocks
                .iter()
                .map(|b| {
                    Json::obj().field("title", b.title).field(
                        "sections",
                        Json::Arr(
                            b.sections
                                .iter()
                                .map(|s| {
                                    Json::obj().field("setting", setting_json(s.setting)).field(
                                        "rows",
                                        Json::Arr(
                                            s.rows
                                                .iter()
                                                .map(|r| {
                                                    Json::obj()
                                                        .field("bytes", r.bytes)
                                                        .field("gb_s", r.gb_s)
                                                        .field("power_w", r.power_w)
                                                        .field("t_rel", r.t_rel)
                                                        .field("breached", r.breached)
                                                })
                                                .collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        ),
    )
}

fn json_fig7(a: &Fig7) -> Json {
    Json::obj().field(
        "cases",
        Json::Arr(
            a.cases
                .iter()
                .map(|c| {
                    Json::obj()
                        .field("name", c.name.as_str())
                        .field("edges", c.edges)
                        .field("d_max", c.d_max)
                        .field("d_avg", c.d_avg)
                        .field("modularity", c.modularity)
                        .field("levels", c.levels)
                        .field(
                            "freq_sweep",
                            Json::Arr(
                                c.freq_rows
                                    .iter()
                                    .map(|p| {
                                        Json::obj()
                                            .field("mhz", p.knob)
                                            .field("runtime_s", p.runtime_s)
                                            .field("avg_power_w", p.avg_power_w)
                                            .field("peak_power_w", p.peak_power_w)
                                            .field("energy_j", p.energy_j)
                                    })
                                    .collect(),
                            ),
                        )
                        .field("saving_900_pct", c.saving_900_pct)
                        .field("slowdown_900_pct", c.slowdown_900_pct)
                        .field(
                            "road_power_caps",
                            match &c.road_caps {
                                Some(rows) => Json::Arr(
                                    rows.iter()
                                        .map(|p| {
                                            Json::obj()
                                                .field("cap_w", p.cap_w)
                                                .field("runtime_ratio", p.runtime_ratio)
                                                .field("saving_pct", p.saving_pct)
                                                .field("breached", p.breached)
                                        })
                                        .collect(),
                                ),
                                None => Json::Null,
                            },
                        )
                })
                .collect(),
        ),
    )
}

fn json_fig8(a: &Fig8) -> Json {
    Json::obj()
        .field("samples", a.samples)
        .field("mean_w", a.mean_w)
        .field("density", a.density.as_slice())
        .field(
            "regions",
            Json::Arr(
                a.regions
                    .iter()
                    .map(|r| Json::obj().field("label", r.label).field("pct", r.pct))
                    .collect(),
            ),
        )
        .field("peaks_w", a.peaks_w.as_slice())
}

fn json_fig9(a: &Fig9) -> Json {
    Json::obj().field(
        "domains",
        Json::Arr(
            a.domains
                .iter()
                .map(|d| {
                    Json::obj()
                        .field("code", d.code.as_str())
                        .field("name", d.name.as_str())
                        .field("mean_w", d.mean_w)
                        .field("density", d.density.as_slice())
                })
                .collect(),
        ),
    )
}

fn heatmap_json(h: &pmss_core::heatmap::Heatmap) -> Json {
    Json::Arr(
        h.rows
            .iter()
            .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
            .collect(),
    )
}

fn json_fig10(a: &Fig10) -> Json {
    Json::obj()
        .field(
            "labels",
            Json::Arr(a.labels.iter().map(|l| Json::Str(l.clone())).collect()),
        )
        .field("used_mwh", heatmap_json(&a.used))
        .field("saved_mwh", heatmap_json(&a.saved))
        .field("concentration_pct", a.concentration_pct)
}

fn json_table1(a: &Table1) -> Json {
    Json::obj().field(
        "rows",
        Json::Arr(
            a.rows
                .iter()
                .map(|(k, v)| Json::obj().field("item", *k).field("value", v.as_str()))
                .collect(),
        ),
    )
}

fn json_table2(a: &Table2) -> Json {
    Json::obj()
        .field("raw_2s_frontier_3mo_tb", a.raw_tb)
        .field("aggregated_15s_tb", a.agg_tb)
        .field("jobs", a.jobs)
        .field(
            "log_lines",
            Json::Arr(a.log_lines.iter().map(|l| Json::Str(l.clone())).collect()),
        )
        .field(
            "placements",
            Json::Arr(
                a.placements
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .field("job_id", p.job_id)
                            .field("project_id", p.project_id.as_str())
                            .field("begin_s", p.begin_s)
                            .field("end_s", p.end_s)
                    })
                    .collect(),
            ),
        )
}

fn table3_rows_json(rows: &[Table3Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                let factors = |f: &pmss_workloads::table3::Factors| {
                    Json::obj()
                        .field("power_pct", f.power_pct)
                        .field("runtime_pct", f.runtime_pct)
                        .field("energy_pct", f.energy_pct)
                };
                Json::obj()
                    .field("setting", setting_json(r.setting))
                    .field("vai", factors(&r.vai))
                    .field("mb", factors(&r.mb))
            })
            .collect(),
    )
}

fn json_table3(a: &Table3Artifact) -> Json {
    Json::obj()
        .field("freq_rows", table3_rows_json(&a.table.freq_rows))
        .field("power_rows", table3_rows_json(&a.table.power_rows))
}

fn json_table4(a: &Table4) -> Json {
    Json::obj().field(
        "regions",
        Json::Arr(
            Region::all()
                .iter()
                .enumerate()
                .map(|(i, region)| {
                    let (lo, hi) = region.range_w();
                    Json::obj()
                        .field("region", i + 1)
                        .field("label", region.label())
                        .field("lo_w", lo)
                        .field(
                            "hi_w",
                            if hi.is_finite() {
                                Json::Num(hi)
                            } else {
                                Json::Null
                            },
                        )
                        .field("gpu_hours_pct", a.gpu_hours_pct[i])
                })
                .collect(),
        ),
    )
}

pub(crate) fn projection_row_json(r: &pmss_core::project::ProjectionRow) -> Json {
    Json::obj()
        .field("setting", setting_json(r.setting))
        .field("ci_mwh", r.ci_mwh)
        .field("mi_mwh", r.mi_mwh)
        .field("ts_mwh", r.ts_mwh)
        .field("savings_pct", r.savings_pct)
        .field("delta_t_pct", r.delta_t_pct)
        .field("savings_dt0_pct", r.savings_dt0_pct)
}

pub(crate) fn projection_json(p: &Projection) -> Json {
    let rows = |rows: &[pmss_core::project::ProjectionRow]| {
        Json::Arr(rows.iter().map(projection_row_json).collect())
    };
    Json::obj()
        .field("total_mwh", p.input.total_mwh())
        .field("freq_rows", rows(&p.freq_rows))
        .field("power_rows", rows(&p.power_rows))
}

fn json_table5(a: &Table5) -> Json {
    let best = a.projection.best_free();
    projection_json(&a.projection).field(
        "headline",
        Json::obj()
            .field("savings_dt0_pct", best.savings_dt0_pct)
            .field("setting", setting_json(best.setting)),
    )
}

fn json_table6(a: &Table6) -> Json {
    Json::obj()
        .field(
            "hot_domains",
            Json::Arr(a.hot_codes.iter().map(|c| Json::Str(c.clone())).collect()),
        )
        .field("projection", projection_json(&a.projection))
}

fn json_table7(a: &Table7) -> Json {
    Json::obj().field(
        "rows",
        Json::Arr(
            a.rows
                .iter()
                .map(|r| {
                    Json::obj()
                        .field("label", r.label.to_string())
                        .field("min_nodes", r.min_nodes)
                        .field("max_nodes", r.max_nodes)
                        .field("max_walltime_h", r.max_walltime_h)
                })
                .collect(),
        ),
    )
}

fn json_validate(a: &Validate) -> Json {
    Json::obj().field("jobs", a.jobs).field(
        "rows",
        Json::Arr(
            a.rows
                .iter()
                .map(|r| {
                    Json::obj()
                        .field("cap_mhz", r.cap_mhz)
                        .field("projected_sav_pct", r.projected_sav_pct)
                        .field("measured_sav_pct", r.measured_sav_pct)
                        .field("projected_dt_pct", r.projected_dt_pct)
                        .field("measured_dt_pct", r.measured_dt_pct)
                })
                .collect(),
        ),
    )
}

fn json_whatif(a: &Whatif) -> Json {
    let j = Json::obj()
        .field(
            "budgets",
            Json::Arr(
                a.budget_rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("budget_pct", r.budget_pct)
                            .field("mixed_saves_pct", r.mixed_saves_pct)
                            .field("uniform_saves_pct", r.uniform_saves_pct)
                            .field("uniform_cap", setting_json(r.uniform_cap))
                    })
                    .collect(),
            ),
        )
        .field(
            "assignment_at_10pct",
            Json::Arr(
                a.assignment
                    .iter()
                    .map(|d| {
                        let base = Json::obj().field("domain", d.code.as_str());
                        match d.choice {
                            Some((mhz, dt)) => base.field("cap_mhz", mhz).field("delta_t_pct", dt),
                            None => base.field("cap_mhz", Json::Null),
                        }
                    })
                    .collect(),
            ),
        );
    // The econ section is emitted only when a trace was active, so the
    // historical whatif JSON keeps its exact bytes otherwise.
    match &a.econ {
        None => j,
        Some(e) => j.field(
            "econ",
            Json::obj()
                .field("trace", e.trace.as_str())
                .field("total_cost_usd", e.total_cost_usd)
                .field("total_carbon_t", e.total_carbon_t)
                .field(
                    "budgets",
                    Json::Arr(
                        e.rows
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("budget_pct", r.budget_pct)
                                    .field("mixed_saving_usd", r.mixed_saving_usd)
                                    .field("mixed_saving_t", r.mixed_saving_t)
                            })
                            .collect(),
                    ),
                ),
        ),
    }
}

fn json_governor(a: &GovernorArtifact) -> Json {
    Json::obj().field(
        "classes",
        Json::Arr(
            a.classes
                .iter()
                .map(|c| {
                    Json::obj()
                        .field("class", c.class.as_str())
                        .field("phases", c.phases)
                        .field(
                            "policies",
                            Json::Arr(
                                c.rows
                                    .iter()
                                    .map(|r| {
                                        Json::obj()
                                            .field("policy", r.policy)
                                            .field("energy_saved_pct", r.energy_saved_pct)
                                            .field("slowdown_pct", r.slowdown_pct)
                                    })
                                    .collect(),
                            ),
                        )
                })
                .collect(),
        ),
    )
}

fn json_peakpower(a: &PeakPower) -> Json {
    Json::obj().field(
        "rows",
        Json::Arr(
            a.rows
                .iter()
                .map(|r| {
                    Json::obj()
                        .field("cap_mhz", r.cap_mhz)
                        .field("peak_mw", r.peak_mw)
                        .field("mean_mw", r.mean_mw)
                        .field("load_factor", r.load_factor)
                        .field("peak_shaved_pct", r.shaved_pct)
                })
                .collect(),
        ),
    )
}

fn json_sensitivity(a: &SensitivityArtifact) -> Json {
    Json::obj()
        .field("reference_free_pct", a.reference_free_pct)
        .field("points", a.points)
        .field("spread_pp", a.spread_pp)
        .field(
            "variants",
            Json::Arr(
                a.variants
                    .iter()
                    .map(|v| {
                        Json::obj()
                            .field("latency_mi_w", v.latency_mi_w)
                            .field("mi_ci_w", v.mi_ci_w)
                            .field("best_free_pct", v.best_free_pct)
                            .field("best_total_pct", v.best_total_pct)
                    })
                    .collect(),
            ),
        )
}

/// Per-mode coverage accounting as JSON (shared with the CLI envelope).
pub(crate) fn coverage_json(c: &pmss_core::Coverage) -> Json {
    Json::obj()
        .field("observed_s", c.observed_s)
        .field("interpolated_s", c.interpolated_s)
        .field("attributed_idle_s", c.attributed_idle_s)
        .field("excluded_s", c.excluded_s)
        .field("discarded_s", c.discarded_s)
        .field("fraction", c.fraction())
}

/// Coverage-adjusted savings bounds as JSON (shared with the CLI envelope).
pub(crate) fn bounds_json(b: &pmss_core::SavingsBounds) -> Json {
    Json::obj()
        .field("coverage", b.coverage)
        .field("lo_pct", b.lo_pct)
        .field("hi_pct", b.hi_pct)
}

fn json_faults(a: &FaultsArtifact) -> Json {
    Json::obj()
        .field("nominal_free_pct", a.nominal_free_pct)
        .field(
            "rows",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("preset", r.preset)
                            .field("gap_policy", r.policy.name())
                            .field("dropped", r.dropped)
                            .field("duplicated", r.duplicated)
                            .field("glitched", r.glitched)
                            .field("reordered", r.reordered)
                            .field("dropout_windows", r.dropout_windows)
                            .field("coverage", coverage_json(&r.coverage))
                            .field("bounds", bounds_json(&r.bounds))
                    })
                    .collect(),
            ),
        )
}

fn json_stream(a: &StreamArtifact) -> Json {
    Json::obj()
        .field("shards", a.shards)
        .field("reorder_horizon", a.reorder_horizon)
        .field("buffer_bound", a.buffer_bound)
        .field("events", a.events)
        .field("samples", a.samples)
        .field("gaps", a.gaps)
        .field("rest_samples", a.rest_samples)
        .field("late_rejects", a.late_rejects)
        .field("peak_buffered_windows", a.peak_buffered_windows)
        .field("peak_channel_windows", a.peak_channel_windows)
        .field("batch_identical", a.batch_identical)
        .field(
            "snapshots",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        let mut o = Json::obj()
                            .field("t_s", r.t_s)
                            .field("events", r.events)
                            .field("released", r.released)
                            .field("buffered", r.buffered)
                            .field("coverage", r.coverage)
                            .field("total_mwh", r.total_mwh);
                        if let Some(b) = &r.bounds {
                            o = o.field("best_free_bounds", bounds_json(b));
                        }
                        o
                    })
                    .collect(),
            ),
        )
}

fn json_govern(a: &GovernArtifact) -> Json {
    Json::obj()
        .field("ceiling_pct", a.ceiling_pct)
        .field("ceiling_setting", setting_json(a.ceiling_setting))
        .field("interval_s", a.interval_s)
        .field("nodes", a.nodes)
        .field("reorder_horizon", a.reorder_horizon)
        .field(
            "policies",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("policy", r.policy.clone())
                            .field("cap", setting_json(r.cap))
                            .field("budget_w", r.budget_w)
                            .field("realized_pct", r.realized_pct)
                            .field("of_ceiling_pct", r.of_ceiling_pct)
                            .field("slowdown_pct", r.slowdown_pct)
                            .field("mi_slowdown_pct", r.mi_slowdown_pct)
                            .field("ci_slowdown_pct", r.ci_slowdown_pct)
                            .field("mi_capture_pct", r.mi_capture_pct)
                            .field("rounds", r.rounds)
                            .field("rebalances", r.rebalances)
                            .field("cap_churn", r.cap_churn)
                            .field("hysteresis_suppressions", r.hysteresis_suppressions)
                            .field("throttled_node_rounds", r.throttled_node_rounds)
                            .field("peak_budget_utilization", r.peak_budget_utilization)
                            .field("budget_exceeded", r.budget_exceeded)
                            .field("late_rejects", r.late_rejects)
                    })
                    .collect(),
            ),
        )
}

fn json_econ(a: &EconArtifact) -> Json {
    Json::obj()
        .field("focus", a.focus.as_str())
        .field("slots", a.slots)
        .field("total_gpu_mwh", a.total_gpu_mwh)
        .field("total_rest_mwh", a.total_rest_mwh)
        .field("ref_cost_usd", a.ref_cost_usd)
        .field("ref_carbon_t", a.ref_carbon_t)
        .field(
            "traces",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("trace", r.trace.as_str())
                            .field("cost_usd", r.cost_usd)
                            .field("delta_cost_usd", r.delta_cost_usd)
                            .field("carbon_t", r.carbon_t)
                            .field("delta_carbon_t", r.delta_carbon_t)
                            .field("shift_saving_usd", r.shift_saving_usd)
                            .field("shift_saving_t", r.shift_saving_t)
                            .field("shift_edge_over_uniform_usd", r.shift_edge_usd)
                            .field("moved_mwh", r.moved_mwh)
                    })
                    .collect(),
            ),
        )
        .field(
            "skus",
            Json::Arr(
                a.sku_rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("sku", r.sku as u64)
                            .field("name", r.name)
                            .field("gpu_mwh", r.gpu_mwh)
                            .field("cost_usd", r.cost_usd)
                            .field("carbon_t", r.carbon_t)
                    })
                    .collect(),
            ),
        )
        .field(
            "shift",
            Json::obj()
                .field("deadline_slots", a.shift.deadline_slots)
                .field("budget_mw", a.shift.budget_mw)
                .field("moved_mwh", a.shift.moved_mwh)
                .field("moves", a.shift.moves)
                .field("baseline_cost_usd", a.shift.baseline_cost_usd)
                .field("shifted_cost_usd", a.shift.shifted_cost_usd)
                .field("uniform_cost_usd", a.shift.uniform_cost_usd)
                .field("baseline_carbon_t", a.shift.baseline_carbon_t)
                .field("shifted_carbon_t", a.shift.shifted_carbon_t),
        )
}

fn json_components(a: &ComponentsArtifact) -> Json {
    Json::obj()
        .field("mix", a.mix.clone())
        .field("nodes", a.nodes)
        .field("max_slowdown", a.max_slowdown)
        .field("best_free_pct", a.best_free_pct)
        .field("best_free_setting", setting_json(a.best_free_setting))
        .field("total_gpu_mwh", a.total_gpu_mwh)
        .field("total_rest_mwh", a.total_rest_mwh)
        .field(
            "skus",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("sku", r.sku as u64)
                            .field("name", r.name)
                            .field("nodes", r.nodes)
                            .field("gpu_mwh", r.gpu_mwh)
                            .field(
                                "components_mwh",
                                Json::obj()
                                    .field("hbm", r.hbm_mwh)
                                    .field("l2", r.l2_mwh)
                                    .field("alu", r.alu_mwh)
                                    .field("clock_tree", r.clock_mwh),
                            )
                            .field("rest_mwh", r.rest_mwh)
                            .field("conservation_err", r.conservation_err)
                            .field(
                                "sweet_spots",
                                Json::Arr(
                                    r.sweet_spots
                                        .iter()
                                        .map(|s| {
                                            Json::obj()
                                                .field("mode", s.mode)
                                                .field("freq_mhz", s.freq.mhz())
                                                .field("energy_ratio", s.energy_ratio)
                                                .field("slowdown", s.slowdown)
                                        })
                                        .collect(),
                                ),
                            )
                    })
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_requested_buckets() {
        let d = vec![0.1; 100];
        let s = sparkline(&d, 20);
        assert_eq!(s.chars().count(), 20);
    }

    #[test]
    fn sparkline_marks_peaks_with_heavier_glyphs() {
        let mut d = vec![0.0; 100];
        d[50] = 1.0;
        let s = sparkline(&d, 100);
        assert_eq!(s.chars().nth(50), Some('@'));
        assert_eq!(s.chars().next(), Some('.'));
    }
}
