//! The typed scenario specification: one value that describes everything a
//! pipeline run needs.
//!
//! A [`ScenarioSpec`] carries the fleet shape (nodes, trace length, seed),
//! the cap ladders swept by the benchmark stage, and the modal-region
//! boundaries — validated at construction and round-trippable through
//! JSON.  The three named presets (`quick`, `medium`, `large`) reproduce
//! the historical `PMSS_SCALE` environment handling, but parsing is now
//! explicit: an unrecognized value is a [`PmssError::InvalidValue`], not a
//! silent fall back to `quick`.

use pmss_core::sensitivity::Boundaries;
use pmss_econ::EconTrace;
use pmss_error::PmssError;
use pmss_faults::{FaultPlan, GapPolicy};
use pmss_govern::{GovernorPlan, Policy};
use pmss_gpu::FleetMix;
use pmss_graph::case_study::CaseScale;
use pmss_sched::TraceParams;
use pmss_workloads::sweep::{CapSetting, FREQ_CAPS_MHZ, POWER_CAPS_W};

use crate::json::Json;

/// The environment variable selecting a scale preset.
pub const SCALE_ENV: &str = "PMSS_SCALE";

/// Named experiment scales (the former `pmss_bench::Scale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// 16 nodes x 2 days — seconds of runtime.
    Quick,
    /// 64 nodes x 7 days.
    Medium,
    /// 160 nodes x 14 days.
    Large,
}

impl ScalePreset {
    /// All presets.
    pub fn all() -> [ScalePreset; 3] {
        [ScalePreset::Quick, ScalePreset::Medium, ScalePreset::Large]
    }

    /// The preset's name as accepted by `PMSS_SCALE`.
    pub fn name(self) -> &'static str {
        match self {
            ScalePreset::Quick => "quick",
            ScalePreset::Medium => "medium",
            ScalePreset::Large => "large",
        }
    }

    /// Parses a preset name; unrecognized names are an explicit error.
    pub fn from_name(name: &str) -> Result<ScalePreset, PmssError> {
        match name {
            "quick" => Ok(ScalePreset::Quick),
            "medium" => Ok(ScalePreset::Medium),
            "large" => Ok(ScalePreset::Large),
            other => Err(PmssError::invalid_value(
                SCALE_ENV,
                other,
                "quick | medium | large",
            )),
        }
    }

    /// Fleet shape of the preset: `(nodes, days)`.
    pub fn shape(self) -> (usize, f64) {
        match self {
            ScalePreset::Quick => (16, 2.0),
            ScalePreset::Medium => (64, 7.0),
            ScalePreset::Large => (160, 14.0),
        }
    }
}

/// A validated, serializable description of one pipeline scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (a preset name, or free-form for custom scenarios).
    pub name: String,
    /// Fleet size in nodes.
    pub nodes: usize,
    /// Trace length in days.
    pub days: f64,
    /// Trace-generation seed.
    pub seed: u64,
    /// Minimum job duration, seconds.
    pub min_job_s: f64,
    /// Frequency-cap ladder, MHz; the first entry is the uncapped baseline.
    pub freq_caps_mhz: Vec<f64>,
    /// Power-cap ladder, watts; the first entry is the uncapped baseline.
    pub power_caps_w: Vec<f64>,
    /// Modal-decomposition region boundaries.
    pub boundaries: Boundaries,
    /// Deterministic telemetry-degradation plan applied to every fleet
    /// simulation of the scenario; `None` (the presets' value) leaves the
    /// stream untouched, bit for bit.
    pub faults: Option<FaultPlan>,
    /// Custom governor plan evaluated by the `govern` artifact alongside
    /// the built-in presets; `None` (the presets' value) runs the presets
    /// only.
    pub govern: Option<GovernorPlan>,
    /// Named [`FleetMix`] preset assigning a SKU-catalog node class to
    /// every node; `None` (the presets' value) is the homogeneous fleet —
    /// every node is SKU 0, bit-identical to the pre-catalog simulator.
    pub fleet_mix: Option<String>,
    /// Price/carbon trace the economics layer integrates fleet energy
    /// against; `None` (the presets' value) computes no economics, and a
    /// `flat` trace at the reference price is treated identically (it
    /// prices every slot the same, so every delta it reports is zero).
    pub econ: Option<EconTrace>,
}

impl ScenarioSpec {
    /// The spec of a named preset, with the paper's cap ladders and
    /// default boundaries.
    pub fn preset(preset: ScalePreset) -> ScenarioSpec {
        let (nodes, days) = preset.shape();
        ScenarioSpec {
            name: preset.name().to_string(),
            nodes,
            days,
            seed: 2024,
            min_job_s: 900.0,
            freq_caps_mhz: FREQ_CAPS_MHZ.to_vec(),
            power_caps_w: POWER_CAPS_W.to_vec(),
            boundaries: Boundaries::default(),
            faults: None,
            govern: None,
            fleet_mix: None,
            econ: None,
        }
    }

    /// Resolves the spec from the `PMSS_SCALE` environment variable.
    ///
    /// Unset selects `quick`; a set-but-unrecognized value is an explicit
    /// [`PmssError::InvalidValue`] (the historical behaviour silently fell
    /// back to `quick`).
    pub fn from_env() -> Result<ScenarioSpec, PmssError> {
        match std::env::var(SCALE_ENV) {
            Ok(value) => Ok(ScenarioSpec::preset(ScalePreset::from_name(&value)?)),
            Err(std::env::VarError::NotPresent) => Ok(ScenarioSpec::preset(ScalePreset::Quick)),
            Err(std::env::VarError::NotUnicode(_)) => Err(PmssError::invalid_value(
                SCALE_ENV,
                "<non-unicode>",
                "quick | medium | large",
            )),
        }
    }

    /// Validates every field; returns the first violation.
    pub fn validate(&self) -> Result<(), PmssError> {
        fn ladder(field: &'static str, caps: &[f64]) -> Result<(), PmssError> {
            if caps.is_empty() {
                return Err(PmssError::InvalidSpec {
                    field,
                    reason: "must contain the uncapped baseline".into(),
                });
            }
            for w in caps.windows(2) {
                if w[1] >= w[0] || w[1].is_nan() || w[0].is_nan() {
                    return Err(PmssError::InvalidSpec {
                        field,
                        reason: format!("must be strictly decreasing, got {caps:?}"),
                    });
                }
            }
            if caps.iter().any(|c| !c.is_finite() || *c <= 0.0) {
                return Err(PmssError::InvalidSpec {
                    field,
                    reason: format!("entries must be finite and positive, got {caps:?}"),
                });
            }
            Ok(())
        }
        if self.name.is_empty() {
            return Err(PmssError::InvalidSpec {
                field: "name",
                reason: "must not be empty".into(),
            });
        }
        if self.nodes == 0 {
            return Err(PmssError::InvalidSpec {
                field: "nodes",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.days.is_finite() && self.days > 0.0) {
            return Err(PmssError::InvalidSpec {
                field: "days",
                reason: format!("must be finite and positive, got {}", self.days),
            });
        }
        if !(self.min_job_s.is_finite() && self.min_job_s > 0.0) {
            return Err(PmssError::InvalidSpec {
                field: "min_job_s",
                reason: format!("must be finite and positive, got {}", self.min_job_s),
            });
        }
        ladder("freq_caps_mhz", &self.freq_caps_mhz)?;
        ladder("power_caps_w", &self.power_caps_w)?;
        self.boundaries.validate()?;
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(plan) = &self.govern {
            plan.validate()?;
        }
        if let Some(name) = &self.fleet_mix {
            if FleetMix::preset(name).is_none() {
                return Err(PmssError::invalid_value(
                    "spec field `fleet_mix`",
                    name,
                    FleetMix::preset_names().join(" | "),
                ));
            }
        }
        if let Some(trace) = &self.econ {
            trace.validate()?;
        }
        Ok(())
    }

    /// The fault plan in force, when it actually injects something.
    pub fn active_faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| !p.is_noop())
    }

    /// The fleet mix in force, when it actually mixes SKUs (the
    /// `single-sku` preset is spelled-out homogeneity, so it stays as
    /// inert as `None`).
    pub fn active_mix(&self) -> Option<&str> {
        self.fleet_mix
            .as_deref()
            .filter(|name| FleetMix::preset(name).is_some_and(|m| !m.is_homogeneous()))
    }

    /// The econ trace in force, when it actually varies price or carbon
    /// (a `flat` trace at the reference values is spelled-out inertness,
    /// so it stays as inert as `None`).
    pub fn active_econ(&self) -> Option<&EconTrace> {
        self.econ.as_ref().filter(|t| !t.is_noop())
    }

    /// Resolves the named mix to the node→SKU mapping the fleet stage
    /// simulates under; `None` and unknown names resolve homogeneous
    /// (unknown names never pass [`ScenarioSpec::validate`], so the
    /// fallback is belt and braces, not policy).
    pub fn resolved_mix(&self) -> FleetMix {
        self.fleet_mix
            .as_deref()
            .and_then(FleetMix::preset)
            .unwrap_or_default()
    }

    /// Trace-generation parameters for the fleet stage.
    pub fn trace_params(&self) -> TraceParams {
        TraceParams {
            nodes: self.nodes,
            duration_s: self.days * 86_400.0,
            seed: self.seed,
            min_job_s: self.min_job_s,
        }
    }

    /// Multiplier that extrapolates this scenario's energy to the paper's
    /// three months of the full 9408-node Frontier system.
    pub fn frontier_factor(&self) -> f64 {
        let frontier_node_seconds = 9408.0 * 90.0 * 86_400.0;
        frontier_node_seconds / (self.nodes as f64 * self.days * 86_400.0)
    }

    /// The Louvain case-study scale matching this scenario's fleet size.
    pub fn case_scale(&self) -> CaseScale {
        if self.nodes <= 16 {
            CaseScale::Small
        } else if self.nodes <= 64 {
            CaseScale::Medium
        } else {
            CaseScale::Large
        }
    }

    /// Serializes the spec to a JSON value.  The `faults` field is emitted
    /// only when a plan actually injects something, so fault-free specs
    /// keep their historical byte-exact JSON shape.
    pub fn to_json(&self) -> Json {
        let j = Json::obj()
            .field("name", self.name.as_str())
            .field("nodes", self.nodes)
            .field("days", self.days)
            .field("seed", self.seed)
            .field("min_job_s", self.min_job_s)
            .field("freq_caps_mhz", self.freq_caps_mhz.as_slice())
            .field("power_caps_w", self.power_caps_w.as_slice())
            .field(
                "boundaries_w",
                Json::obj()
                    .field("latency_mi", self.boundaries.latency_mi_w)
                    .field("mi_ci", self.boundaries.mi_ci_w)
                    .field("ci_boost", self.boundaries.ci_boost_w),
            );
        let j = match self.active_faults() {
            Some(plan) => j.field("faults", fault_plan_to_json(plan)),
            None => j,
        };
        let j = match &self.govern {
            Some(plan) => j.field("govern", governor_plan_to_json(plan)),
            None => j,
        };
        // Like `faults`, the mix is emitted only when it changes anything,
        // so homogeneous specs keep their historical byte-exact JSON shape.
        let j = match self.active_mix() {
            Some(name) => j.field("fleet_mix", name),
            None => j,
        };
        // Same rule for the econ trace: a no-op (flat reference) trace
        // serializes as omission.
        match self.active_econ() {
            Some(trace) => j.field("econ", econ_trace_to_json(trace)),
            None => j,
        }
    }

    /// Deserializes and validates a spec from a JSON value; missing fields
    /// fall back to the `quick` preset's values.
    pub fn from_json(v: &Json) -> Result<ScenarioSpec, PmssError> {
        let base = ScenarioSpec::preset(ScalePreset::Quick);
        let num = |key: &str, fallback: f64| -> Result<f64, PmssError> {
            match v.get(key) {
                None => Ok(fallback),
                Some(j) => j.as_f64().ok_or_else(|| {
                    PmssError::malformed("json", format!("spec field `{key}` must be a number"))
                }),
            }
        };
        // Integer fields must not go through a bare `as` cast: `-1` would
        // wrap to 18446744073709551615, `1.5` would silently truncate, and
        // anything past 2^53 was never exactly representable in JSON's f64
        // to begin with.  Reject all three explicitly.
        let int = |key: &str, fallback: u64| -> Result<u64, PmssError> {
            let n = num(key, fallback as f64)?;
            const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
            if !(n.fract() == 0.0 && (0.0..=MAX_EXACT).contains(&n)) {
                return Err(PmssError::invalid_value(
                    format!("spec field `{key}`"),
                    format!("{n}"),
                    "a non-negative integer representable exactly in JSON (<= 2^53)",
                ));
            }
            Ok(n as u64)
        };
        let arr = |key: &str, fallback: &[f64]| -> Result<Vec<f64>, PmssError> {
            match v.get(key) {
                None => Ok(fallback.to_vec()),
                Some(j) => j
                    .as_arr()
                    .and_then(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
                    .ok_or_else(|| {
                        PmssError::malformed(
                            "json",
                            format!("spec field `{key}` must be an array of numbers"),
                        )
                    }),
            }
        };
        let name = match v.get("name") {
            None => base.name.clone(),
            Some(j) => j
                .as_str()
                .ok_or_else(|| PmssError::malformed("json", "spec field `name` must be a string"))?
                .to_string(),
        };
        let bounds = v.get("boundaries_w");
        let bound = |key: &str, fallback: f64| -> Result<f64, PmssError> {
            match bounds.and_then(|b| b.get(key)) {
                None => Ok(fallback),
                Some(j) => j.as_f64().ok_or_else(|| {
                    PmssError::malformed(
                        "json",
                        format!("spec field `boundaries_w.{key}` must be a number"),
                    )
                }),
            }
        };
        let faults = match v.get("faults") {
            None => None,
            Some(j) => Some(fault_plan_from_json(j)?),
        };
        let govern = match v.get("govern") {
            None => None,
            Some(j) => Some(governor_plan_from_json(j)?),
        };
        let fleet_mix = match v.get("fleet_mix") {
            None => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| {
                        PmssError::malformed("json", "spec field `fleet_mix` must be a string")
                    })?
                    .to_string(),
            ),
        };
        let econ = match v.get("econ") {
            None => None,
            Some(j) => Some(econ_trace_from_json(j)?),
        };
        let spec = ScenarioSpec {
            name,
            nodes: int("nodes", base.nodes as u64)? as usize,
            days: num("days", base.days)?,
            seed: int("seed", base.seed)?,
            min_job_s: num("min_job_s", base.min_job_s)?,
            freq_caps_mhz: arr("freq_caps_mhz", &base.freq_caps_mhz)?,
            power_caps_w: arr("power_caps_w", &base.power_caps_w)?,
            boundaries: Boundaries {
                latency_mi_w: bound("latency_mi", base.boundaries.latency_mi_w)?,
                mi_ci_w: bound("mi_ci", base.boundaries.mi_ci_w)?,
                ci_boost_w: bound("ci_boost", base.boundaries.ci_boost_w)?,
            },
            faults,
            govern,
            fleet_mix,
            econ,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Serializes a fault plan to a JSON value.
pub fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    Json::obj()
        .field("seed", plan.seed)
        .field("drop_prob", plan.drop_prob)
        .field("dup_prob", plan.dup_prob)
        .field("reorder_depth", plan.reorder_depth as u64)
        .field("nan_prob", plan.nan_prob)
        .field("spike_prob", plan.spike_prob)
        .field("spike_w", plan.spike_w)
        .field("dropout_prob", plan.dropout_prob)
        .field("dropout_windows", plan.dropout_windows as u64)
        .field("clock_skew_max_s", plan.clock_skew_max_s)
        .field("gap_policy", plan.gap_policy.name())
}

/// Deserializes and validates a fault plan from a JSON value.  Missing
/// fields fall back to the empty plan's values, so a file may spell out
/// only the fault channels it wants.
pub fn fault_plan_from_json(v: &Json) -> Result<FaultPlan, PmssError> {
    let base = FaultPlan::none();
    let num = |key: &str, fallback: f64| -> Result<f64, PmssError> {
        match v.get(key) {
            None => Ok(fallback),
            Some(j) => j.as_f64().ok_or_else(|| {
                PmssError::malformed("json", format!("faults field `{key}` must be a number"))
            }),
        }
    };
    let int = |key: &str, fallback: u64| -> Result<u64, PmssError> {
        let n = num(key, fallback as f64)?;
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        if !(n.fract() == 0.0 && (0.0..=MAX_EXACT).contains(&n)) {
            return Err(PmssError::invalid_value(
                format!("faults field `{key}`"),
                format!("{n}"),
                "a non-negative integer representable exactly in JSON (<= 2^53)",
            ));
        }
        Ok(n as u64)
    };
    let gap_policy = match v.get("gap_policy") {
        None => base.gap_policy,
        Some(j) => GapPolicy::from_name(j.as_str().ok_or_else(|| {
            PmssError::malformed("json", "faults field `gap_policy` must be a string")
        })?)?,
    };
    // Bounded counts must not wrap through an `as u32` cast before
    // validation sees them.
    let small = |key: &str, fallback: u32| -> Result<u32, PmssError> {
        u32::try_from(int(key, fallback as u64)?).map_err(|_| {
            PmssError::invalid_value(format!("faults field `{key}`"), "overflow", "a u32 count")
        })
    };
    let plan = FaultPlan {
        seed: int("seed", base.seed)?,
        drop_prob: num("drop_prob", base.drop_prob)?,
        dup_prob: num("dup_prob", base.dup_prob)?,
        reorder_depth: small("reorder_depth", base.reorder_depth)?,
        nan_prob: num("nan_prob", base.nan_prob)?,
        spike_prob: num("spike_prob", base.spike_prob)?,
        spike_w: num("spike_w", base.spike_w)?,
        dropout_prob: num("dropout_prob", base.dropout_prob)?,
        dropout_windows: small("dropout_windows", base.dropout_windows)?,
        clock_skew_max_s: num("clock_skew_max_s", base.clock_skew_max_s)?,
        gap_policy,
    };
    plan.validate()?;
    Ok(plan)
}

/// Serializes an econ trace to a JSON value.
pub fn econ_trace_to_json(trace: &EconTrace) -> Json {
    Json::obj()
        .field("name", trace.name.as_str())
        .field("bucket_s", trace.bucket_s)
        .field("price_usd_per_mwh", trace.price_usd_per_mwh.as_slice())
        .field("carbon_g_per_kwh", trace.carbon_g_per_kwh.as_slice())
        .field("shift_deadline_slots", trace.shift_deadline_slots as u64)
        .field("shift_budget_frac", trace.shift_budget_frac)
}

/// Deserializes and validates an econ trace from a JSON value.  A bare
/// `{"preset": "diurnal"}` expands the named preset (shift knobs may
/// still be overridden alongside it); otherwise missing fields fall back
/// to the `flat` trace's values, so a file may spell out only the series
/// it changes.
pub fn econ_trace_from_json(v: &Json) -> Result<EconTrace, PmssError> {
    let base = match v.get("preset") {
        None => EconTrace::flat(),
        Some(j) => {
            let name = j.as_str().ok_or_else(|| {
                PmssError::malformed("json", "econ field `preset` must be a string")
            })?;
            EconTrace::preset(name).ok_or_else(|| {
                PmssError::invalid_value(
                    "econ field `preset`",
                    name,
                    EconTrace::preset_names().join(" | "),
                )
            })?
        }
    };
    let num = |key: &str, fallback: f64| -> Result<f64, PmssError> {
        match v.get(key) {
            None => Ok(fallback),
            Some(j) => j.as_f64().ok_or_else(|| {
                PmssError::malformed("json", format!("econ field `{key}` must be a number"))
            }),
        }
    };
    let arr = |key: &str, fallback: &[f64]| -> Result<Vec<f64>, PmssError> {
        match v.get(key) {
            None => Ok(fallback.to_vec()),
            Some(j) => j
                .as_arr()
                .and_then(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>())
                .ok_or_else(|| {
                    PmssError::malformed(
                        "json",
                        format!("econ field `{key}` must be an array of numbers"),
                    )
                }),
        }
    };
    // Counts must not wrap through an `as u32` cast before validation.
    let deadline = {
        let n = num("shift_deadline_slots", base.shift_deadline_slots as f64)?;
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        if !(n.fract() == 0.0 && (0.0..=MAX_EXACT).contains(&n)) {
            return Err(PmssError::invalid_value(
                "econ field `shift_deadline_slots`",
                format!("{n}"),
                "a non-negative integer representable exactly in JSON (<= 2^53)",
            ));
        }
        u32::try_from(n as u64).map_err(|_| {
            PmssError::invalid_value(
                "econ field `shift_deadline_slots`",
                "overflow",
                "a u32 count",
            )
        })?
    };
    let name = match v.get("name") {
        None => base.name.clone(),
        Some(j) => j
            .as_str()
            .ok_or_else(|| PmssError::malformed("json", "econ field `name` must be a string"))?
            .to_string(),
    };
    let trace = EconTrace {
        name,
        bucket_s: num("bucket_s", base.bucket_s)?,
        price_usd_per_mwh: arr("price_usd_per_mwh", &base.price_usd_per_mwh)?,
        carbon_g_per_kwh: arr("carbon_g_per_kwh", &base.carbon_g_per_kwh)?,
        shift_deadline_slots: deadline,
        shift_budget_frac: num("shift_budget_frac", base.shift_budget_frac)?,
    };
    trace.validate()?;
    Ok(trace)
}

/// Serializes a governor plan to a JSON value.  Optional fields (`budget_w`,
/// `cap`) are emitted only when set, so auto-resolved plans stay terse.
pub fn governor_plan_to_json(plan: &GovernorPlan) -> Json {
    let j = Json::obj()
        .field("policy", plan.policy.name())
        .field("interval_windows", plan.interval_windows as u64)
        .field("increase_rate", plan.increase_rate)
        .field("decrease_rate", plan.decrease_rate)
        .field("lower_thresh", plan.lower_thresh)
        .field("upper_thresh", plan.upper_thresh)
        .field("hysteresis_rounds", plan.hysteresis_rounds as u64)
        .field("node_floor_w", plan.node_floor_w)
        .field("node_ceiling_w", plan.node_ceiling_w);
    let j = match plan.budget_w {
        Some(b) => j.field("budget_w", b),
        None => j,
    };
    match plan.cap {
        Some(CapSetting::FreqMhz(m)) => j.field(
            "cap",
            Json::obj().field("knob", "freq_mhz").field("value", m),
        ),
        Some(CapSetting::PowerW(w)) => j.field(
            "cap",
            Json::obj().field("knob", "power_w").field("value", w),
        ),
        None => j,
    }
}

/// Deserializes and validates a governor plan from a JSON value.  Missing
/// fields fall back to the named policy's preset values (`policy` itself
/// defaults to `polimer`), so a file may spell out only what it changes.
pub fn governor_plan_from_json(v: &Json) -> Result<GovernorPlan, PmssError> {
    let policy = match v.get("policy") {
        None => Policy::Polimer,
        Some(j) => Policy::from_name(j.as_str().ok_or_else(|| {
            PmssError::malformed("json", "govern field `policy` must be a string")
        })?)?,
    };
    let base = GovernorPlan::preset(policy.name())?;
    let num = |key: &str, fallback: f64| -> Result<f64, PmssError> {
        match v.get(key) {
            None => Ok(fallback),
            Some(j) => j.as_f64().ok_or_else(|| {
                PmssError::malformed("json", format!("govern field `{key}` must be a number"))
            }),
        }
    };
    let int = |key: &str, fallback: u64| -> Result<u64, PmssError> {
        let n = num(key, fallback as f64)?;
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        if !(n.fract() == 0.0 && (0.0..=MAX_EXACT).contains(&n)) {
            return Err(PmssError::invalid_value(
                format!("govern field `{key}`"),
                format!("{n}"),
                "a non-negative integer representable exactly in JSON (<= 2^53)",
            ));
        }
        Ok(n as u64)
    };
    let small = |key: &str, fallback: u32| -> Result<u32, PmssError> {
        u32::try_from(int(key, fallback as u64)?).map_err(|_| {
            PmssError::invalid_value(format!("govern field `{key}`"), "overflow", "a u32 count")
        })
    };
    let budget_w = match v.get("budget_w") {
        None => base.budget_w,
        Some(j) => Some(j.as_f64().ok_or_else(|| {
            PmssError::malformed("json", "govern field `budget_w` must be a number")
        })?),
    };
    let cap = match v.get("cap") {
        None => base.cap,
        Some(j) => {
            let knob = j.get("knob").and_then(Json::as_str).ok_or_else(|| {
                PmssError::malformed("json", "govern field `cap.knob` must be a string")
            })?;
            let value = j.get("value").and_then(Json::as_f64).ok_or_else(|| {
                PmssError::malformed("json", "govern field `cap.value` must be a number")
            })?;
            Some(match knob {
                "freq_mhz" => CapSetting::FreqMhz(value),
                "power_w" => CapSetting::PowerW(value),
                other => {
                    return Err(PmssError::invalid_value(
                        "govern field `cap.knob`",
                        other,
                        "freq_mhz | power_w",
                    ))
                }
            })
        }
    };
    let plan = GovernorPlan {
        policy,
        budget_w,
        interval_windows: small("interval_windows", base.interval_windows)?,
        increase_rate: num("increase_rate", base.increase_rate)?,
        decrease_rate: num("decrease_rate", base.decrease_rate)?,
        lower_thresh: num("lower_thresh", base.lower_thresh)?,
        upper_thresh: num("upper_thresh", base.upper_thresh)?,
        hysteresis_rounds: small("hysteresis_rounds", base.hysteresis_rounds)?,
        node_floor_w: num("node_floor_w", base.node_floor_w)?,
        node_ceiling_w: num("node_ceiling_w", base.node_ceiling_w)?,
        cap,
    };
    plan.validate()?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_historical_scales() {
        let q = ScenarioSpec::preset(ScalePreset::Quick);
        assert_eq!((q.nodes, q.days), (16, 2.0));
        assert_eq!(q.trace_params().seed, 2024);
        assert!((q.frontier_factor() - 9408.0 * 90.0 / (16.0 * 2.0)).abs() < 1e-9);
        let m = ScenarioSpec::preset(ScalePreset::Medium);
        assert_eq!((m.nodes, m.days), (64, 7.0));
        let l = ScenarioSpec::preset(ScalePreset::Large);
        assert_eq!((l.nodes, l.days), (160, 14.0));
        for s in [&q, &m, &l] {
            s.validate().unwrap();
        }
    }

    #[test]
    fn unknown_scale_name_is_an_explicit_error() {
        let err = ScalePreset::from_name("huge").unwrap_err();
        assert!(matches!(err, PmssError::InvalidValue { .. }), "{err}");
        assert!(err.to_string().contains("huge"));
    }

    #[test]
    fn case_scale_follows_fleet_size() {
        assert_eq!(
            ScenarioSpec::preset(ScalePreset::Quick).case_scale(),
            CaseScale::Small
        );
        assert_eq!(
            ScenarioSpec::preset(ScalePreset::Medium).case_scale(),
            CaseScale::Medium
        );
        assert_eq!(
            ScenarioSpec::preset(ScalePreset::Large).case_scale(),
            CaseScale::Large
        );
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.nodes = 0;
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.freq_caps_mhz = vec![900.0, 1100.0];
        assert!(matches!(
            s.validate().unwrap_err(),
            PmssError::InvalidSpec {
                field: "freq_caps_mhz",
                ..
            }
        ));

        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.boundaries.latency_mi_w = 500.0;
        assert!(matches!(
            s.validate().unwrap_err(),
            PmssError::InvalidBoundaries { .. }
        ));
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let mut s = ScenarioSpec::preset(ScalePreset::Medium);
        s.seed = 7;
        s.boundaries.mi_ci_w = 430.0;
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_json_rejects_invalid_specs() {
        let j = Json::parse(r#"{"nodes": 0}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"freq_caps_mhz": "high"}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
    }

    #[test]
    fn fault_plan_round_trips_through_spec_json() {
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.faults = Some(FaultPlan::preset("frontier-typical").unwrap());
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Partial plans fill the remaining channels with zeros.
        let j =
            Json::parse(r#"{"faults": {"drop_prob": 0.1, "gap_policy": "interpolate"}}"#).unwrap();
        let s = ScenarioSpec::from_json(&j).unwrap();
        let plan = s.faults.unwrap();
        assert_eq!(plan.drop_prob, 0.1);
        assert_eq!(plan.gap_policy, GapPolicy::Interpolate);
        assert_eq!(plan.dup_prob, 0.0);
    }

    #[test]
    fn governor_plan_round_trips_through_spec_json() {
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        let mut plan = GovernorPlan::preset("polimer").unwrap();
        plan.budget_w = Some(25_000.0);
        plan.cap = Some(CapSetting::FreqMhz(900.0));
        s.govern = Some(plan);
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Partial plans fill the rest from the named policy's preset.
        let j = Json::parse(r#"{"govern": {"policy": "greedy", "interval_windows": 4}}"#).unwrap();
        let s = ScenarioSpec::from_json(&j).unwrap();
        let plan = s.govern.unwrap();
        assert_eq!(plan.policy, Policy::Greedy);
        assert_eq!(plan.interval_windows, 4);
        assert_eq!(plan.increase_rate, 0.1);
        assert_eq!(plan.cap, None);
    }

    #[test]
    fn invalid_governor_plans_are_rejected() {
        let j = Json::parse(r#"{"govern": {"policy": "pid"}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"govern": {"interval_windows": 0}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"govern": {"increase_rate": 1.5}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"govern": {"cap": {"knob": "volts", "value": 1.0}}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
    }

    #[test]
    fn absent_governor_keeps_the_historical_spec_json() {
        let clean = ScenarioSpec::preset(ScalePreset::Quick);
        assert!(
            !clean.to_json().to_string_pretty().contains("govern"),
            "preset specs must keep their historical JSON shape"
        );
    }

    #[test]
    fn noop_faults_keep_the_historical_spec_json() {
        let clean = ScenarioSpec::preset(ScalePreset::Quick);
        let mut noop = clean.clone();
        noop.faults = Some(FaultPlan::none());
        assert_eq!(
            clean.to_json().to_string_pretty(),
            noop.to_json().to_string_pretty(),
            "a no-op plan must not change the serialized spec"
        );
    }

    #[test]
    fn fleet_mix_round_trips_through_spec_json() {
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.fleet_mix = Some("mixed-50-50".to_string());
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.resolved_mix(), FleetMix::new(vec![0, 1]));
        assert!(matches!(
            ScenarioSpec::from_json(&Json::parse(r#"{"fleet_mix": "mixed-99"}"#).unwrap())
                .unwrap_err(),
            PmssError::InvalidValue { .. }
        ));
        assert!(ScenarioSpec::from_json(&Json::parse(r#"{"fleet_mix": 7}"#).unwrap()).is_err());
    }

    #[test]
    fn homogeneous_mixes_keep_the_historical_spec_json() {
        let clean = ScenarioSpec::preset(ScalePreset::Quick);
        assert!(
            !clean.to_json().to_string_pretty().contains("fleet_mix"),
            "preset specs must keep their historical JSON shape"
        );
        // `single-sku` is spelled-out homogeneity: same bytes as omission,
        // and it resolves to the same mix `None` does.
        let mut single = clean.clone();
        single.fleet_mix = Some("single-sku".to_string());
        single.validate().unwrap();
        assert_eq!(
            clean.to_json().to_string_pretty(),
            single.to_json().to_string_pretty(),
            "a homogeneous mix must not change the serialized spec"
        );
        assert_eq!(single.resolved_mix(), clean.resolved_mix());
        assert!(single.active_mix().is_none());
    }

    #[test]
    fn econ_trace_round_trips_through_spec_json() {
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.econ = Some(EconTrace::preset("duck-curve").unwrap());
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // A bare preset reference expands, and shift knobs override it.
        let j =
            Json::parse(r#"{"econ": {"preset": "diurnal", "shift_deadline_slots": 8}}"#).unwrap();
        let s = ScenarioSpec::from_json(&j).unwrap();
        let trace = s.econ.unwrap();
        assert_eq!(trace.name, "diurnal");
        assert_eq!(trace.shift_deadline_slots, 8);
        assert_eq!(
            trace.price_usd_per_mwh,
            EconTrace::preset("diurnal").unwrap().price_usd_per_mwh
        );
    }

    #[test]
    fn noop_econ_traces_keep_the_historical_spec_json() {
        let clean = ScenarioSpec::preset(ScalePreset::Quick);
        assert!(
            !clean.to_json().to_string_pretty().contains("econ"),
            "preset specs must keep their historical JSON shape"
        );
        // A flat trace at the reference price is spelled-out inertness:
        // same bytes as omission, and `active_econ` treats it as absent.
        let mut flat = clean.clone();
        flat.econ = Some(EconTrace::flat());
        flat.validate().unwrap();
        assert_eq!(
            clean.to_json().to_string_pretty(),
            flat.to_json().to_string_pretty(),
            "a no-op trace must not change the serialized spec"
        );
        assert!(flat.active_econ().is_none());
        let mut active = clean;
        active.econ = Some(EconTrace::preset("diurnal").unwrap());
        assert!(active.active_econ().is_some());
    }

    #[test]
    fn invalid_econ_traces_are_rejected() {
        for body in [
            r#"{"econ": {"preset": "tou-winter"}}"#,
            r#"{"econ": {"price_usd_per_mwh": []}}"#,
            r#"{"econ": {"price_usd_per_mwh": [60.0, -5.0]}}"#,
            r#"{"econ": {"bucket_s": 1000.0}}"#,
            r#"{"econ": {"shift_deadline_slots": 2.5}}"#,
            r#"{"econ": {"shift_deadline_slots": -1}}"#,
            r#"{"econ": {"shift_budget_frac": 0.0}}"#,
            r#"{"econ": {"carbon_g_per_kwh": "low"}}"#,
        ] {
            let j = Json::parse(body).unwrap();
            assert!(ScenarioSpec::from_json(&j).is_err(), "{body}");
        }
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.econ = Some(EconTrace {
            price_usd_per_mwh: vec![f64::NAN],
            ..EconTrace::flat()
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn invalid_fault_plans_are_rejected() {
        let j = Json::parse(r#"{"faults": {"drop_prob": 1.5}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"faults": {"gap_policy": "discard"}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let j = Json::parse(r#"{"faults": {"reorder_depth": 1e12}}"#).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_err());
        let mut s = ScenarioSpec::preset(ScalePreset::Quick);
        s.faults = Some(FaultPlan {
            nan_prob: -0.5,
            ..FaultPlan::none()
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn from_json_rejects_non_integer_counts_instead_of_truncating() {
        // Before the fix, `"nodes": -1` cast through `as usize` into
        // 18446744073709551615 and `"seed": 1.5` silently became seed 1.
        for (body, field) in [
            (r#"{"nodes": -1}"#, "nodes"),
            (r#"{"nodes": 2.5}"#, "nodes"),
            (r#"{"nodes": 1e300}"#, "nodes"),
            (r#"{"seed": -3}"#, "seed"),
            (r#"{"seed": 1.5}"#, "seed"),
            (r#"{"seed": 1e300}"#, "seed"),
        ] {
            let j = Json::parse(body).unwrap();
            let err = ScenarioSpec::from_json(&j).unwrap_err();
            assert!(
                matches!(err, PmssError::InvalidValue { .. }),
                "{body}: {err}"
            );
            assert!(err.to_string().contains(field), "{body}: {err}");
        }
        // Exact integers written with a fractional JSON spelling stay fine.
        let j = Json::parse(r#"{"nodes": 32.0, "seed": 9007199254740992}"#).unwrap();
        let s = ScenarioSpec::from_json(&j).unwrap();
        assert_eq!((s.nodes, s.seed), (32, 1u64 << 53));
    }
}
