//! # pmss-pipeline — every paper artifact as a value
//!
//! The paper's contribution is one pipeline — synthesize workloads →
//! simulate the fleet → decompose telemetry into modes → project the
//! Table III factors → report Tables V/VI — and this crate makes that
//! pipeline a programmable API instead of 21 hand-wired binaries:
//!
//! * [`spec`] — a typed, validated [`spec::ScenarioSpec`] (scale, seeds,
//!   cap ladders, fleet shape, region boundaries) with JSON round-tripping
//!   and explicit `PMSS_SCALE` parsing (no silent fallbacks);
//! * [`stage`] — the staged [`stage::Pipeline`]: `workloads → fleet →
//!   decompose → project`, each stage computed once and memoized so any
//!   number of artifacts share a single fleet run;
//! * [`artifact`] — the typed [`artifact::Artifact`] values for every
//!   figure and table (Figs. 2–10, Tables I–VII, plus the validation,
//!   what-if, governor, peak-power, and sensitivity extensions), each
//!   rendering to the exact ASCII of the original binaries *and* to
//!   structured JSON;
//! * [`json`] — the dependency-free JSON value type used for structured
//!   output (emit + parse);
//! * [`metrics`] — the `--metrics` observability envelope (run manifest +
//!   `pmss-obs` registry rendered to JSON/ASCII, `PMSS_METRICS` gating);
//! * [`query`] — the typed read-query vocabulary (projection, coverage,
//!   ledger slice, what-if) shared by `pmss query` and the `pmssd`
//!   daemon, rendered through one code path so their answers are
//!   byte-identical;
//! * [`cli`] — the `pmss` command-line front end (`pmss fig 2`,
//!   `pmss table 3 --json`, …) that the thin `pmss` binary calls into.
//!
//! Sweeps, services, and schedulers call [`stage::Pipeline`] directly
//! instead of shelling out to per-artifact binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod cli;
pub mod json;
pub mod metrics;
pub mod query;
pub mod render;
pub mod spec;
pub mod stage;

pub use artifact::{Artifact, ArtifactId, Artifacts};
pub use json::Json;
pub use pmss_error::PmssError;
pub use spec::{ScalePreset, ScenarioSpec};
pub use stage::{FleetArtifacts, Pipeline};
