//! A dependency-free JSON value: construction, emission, and parsing.
//!
//! The build environment vendors no `serde`, so structured output is
//! emitted through this small value type instead.  Emission is
//! deterministic (object keys keep insertion order, floats use Rust's
//! shortest round-trip formatting), which is what makes the `--json`
//! golden tests stable across runs.

use std::collections::BTreeMap;
use std::fmt;

use pmss_error::PmssError;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` — also used for non-finite floats.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder-style.
    ///
    /// # Panics
    /// Panics when `self` is not an object — a construction bug, not a
    /// data error.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` for anything else.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line emission.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, None, 0);
        out
    }

    /// Pretty emission with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip formatting; integers print bare.
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_str(out, s),
            Json::Arr(items) => emit_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].emit(out, indent, depth + 1)
            }),
            Json::Obj(fields) => emit_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                emit_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.emit(out, indent, depth + 1)
            }),
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, PmssError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(PmssError::malformed(
                "json",
                format!("trailing characters at byte {}", p.pos),
            ));
        }
        Ok(v)
    }
}

fn emit_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl From<&[f64]> for Json {
    fn from(v: &[f64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> PmssError {
        PmssError::malformed("json", format!("{} at byte {}", detail.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), PmssError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, PmssError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, PmssError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, PmssError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates fall back to the replacement char;
                            // the emitter never produces them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, PmssError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

/// Parses a JSON object into a key → value map (one level deep), for
/// spec-style lookups.
pub fn to_map(v: &Json) -> Option<BTreeMap<&str, &Json>> {
    match v {
        Json::Obj(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_emits_objects_in_order() {
        let j = Json::obj()
            .field("b", 2.0)
            .field("a", 1.5)
            .field("s", "x\"y")
            .field("v", vec![1.0, 2.0]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"b":2,"a":1.5,"s":"x\"y","v":[1,2]}"#
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let j = Json::obj()
            .field("name", "quick")
            .field("nodes", 16.0)
            .field("caps", vec![1700.0, 900.5])
            .field("flag", true)
            .field("none", Json::Null);
        let text = j.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parses_escapes_and_nested_structures() {
        let j = Json::parse(r#"{"a": [1, {"b": "x\ny"}], "c": -2.5e3}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
        assert_eq!(j.get("c").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn field_replaces_existing_keys() {
        let j = Json::obj().field("a", 1.0).field("a", 2.0);
        assert_eq!(j.to_string_compact(), r#"{"a":2}"#);
    }
}
