//! The staged pipeline: `workloads → fleet → decompose → project`.
//!
//! A [`Pipeline`] owns one [`ScenarioSpec`] and computes each stage at most
//! once: the fleet stage (schedule synthesis + telemetry simulation with
//! all standard observers) and the benchmark stage (Table III from the
//! spec's cap ladders) are memoized, so rendering every figure and table
//! of a scenario costs a single fleet run and a single benchmark sweep.

use pmss_core::project::{project, Projection, ProjectionInput};
use pmss_core::EnergyLedger;
use pmss_error::PmssError;
use pmss_gpu::Engine;
use pmss_sched::{catalog, generate, DomainSpec, Schedule};
use pmss_telemetry::{simulate_fleet, DomainHistograms, FleetConfig, Pair, SystemHistogram};
use pmss_workloads::sweep::CapSetting;
use pmss_workloads::table3::{self, BenchScale, Table3};

use crate::spec::ScenarioSpec;

/// Everything the fleet-wide experiments need, computed in one pass (the
/// former `pmss_bench::FleetRun`).
pub struct FleetArtifacts {
    /// The synthetic schedule (job log + placements).
    pub schedule: Schedule,
    /// The domain catalog used.
    pub domains: Vec<DomainSpec>,
    /// Fig. 8: system-wide power distribution.
    pub system: SystemHistogram,
    /// Fig. 9: per-domain power distributions.
    pub per_domain: DomainHistograms,
    /// Tables IV–VI / Fig. 10: the modal-decomposition ledger.
    pub ledger: EnergyLedger,
    /// Extrapolation factor to full-Frontier three-month MWh.
    pub frontier_factor: f64,
}

/// A staged scenario run with memoized stage outputs.
pub struct Pipeline {
    pub(crate) spec: ScenarioSpec,
    pub(crate) engine: Engine,
    pub(crate) fleet: Option<FleetArtifacts>,
    pub(crate) table3: Option<Table3>,
}

impl Pipeline {
    /// Validates `spec` and wraps it in a fresh pipeline (no stage has run
    /// yet).
    pub fn new(spec: ScenarioSpec) -> Result<Pipeline, PmssError> {
        spec.validate()?;
        Ok(Pipeline {
            spec,
            engine: Engine::default(),
            fleet: None,
            table3: None,
        })
    }

    /// The scenario driving this pipeline.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The shared GPU model engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The spec's frequency ladder as sweep settings.
    pub fn freq_ladder(&self) -> Vec<CapSetting> {
        self.spec
            .freq_caps_mhz
            .iter()
            .map(|&m| CapSetting::FreqMhz(m))
            .collect()
    }

    /// The spec's power ladder as sweep settings.
    pub fn power_ladder(&self) -> Vec<CapSetting> {
        self.spec
            .power_caps_w
            .iter()
            .map(|&w| CapSetting::PowerW(w))
            .collect()
    }

    /// Runs (or replays) the fleet stage: workload synthesis, fleet
    /// telemetry simulation with all standard observers, and the modal
    /// decomposition ledger.
    pub fn fleet(&mut self) -> Result<&FleetArtifacts, PmssError> {
        self.ensure_fleet()?;
        Ok(self.fleet.as_ref().expect("fleet stage just ran"))
    }

    /// Runs (or replays) the benchmark stage: Table III computed from the
    /// spec's own cap ladders.
    pub fn table3(&mut self) -> Result<&Table3, PmssError> {
        self.ensure_table3()?;
        Ok(self.table3.as_ref().expect("benchmark stage just ran"))
    }

    /// Runs the projection stage (Table V): Table III factors applied to
    /// the fleet decomposition at full-Frontier scale.
    pub fn projection(&mut self) -> Result<Projection, PmssError> {
        self.ensure_fleet()?;
        self.ensure_table3()?;
        let fleet = self.fleet.as_ref().expect("fleet stage ran");
        let t3 = self.table3.as_ref().expect("benchmark stage ran");
        let ledger = fleet.ledger.scaled(fleet.frontier_factor);
        project(ProjectionInput::from_ledger(&ledger), t3)
    }

    pub(crate) fn ensure_fleet(&mut self) -> Result<(), PmssError> {
        if self.fleet.is_none() {
            let domains = catalog();
            let schedule = generate(self.spec.trace_params(), &domains);
            type Obs = Pair<Pair<SystemHistogram, DomainHistograms>, EnergyLedger>;
            let obs: Obs = simulate_fleet(&schedule, &FleetConfig::default());
            self.fleet = Some(FleetArtifacts {
                schedule,
                domains,
                system: obs.a.a,
                per_domain: obs.a.b,
                ledger: obs.b,
                frontier_factor: self.spec.frontier_factor(),
            });
        }
        Ok(())
    }

    pub(crate) fn ensure_table3(&mut self) -> Result<(), PmssError> {
        if self.table3.is_none() {
            self.table3 = Some(table3::compute_with_ladders(
                &self.engine,
                BenchScale::default(),
                &self.freq_ladder(),
                &self.power_ladder(),
            )?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScalePreset;

    #[test]
    fn pipeline_rejects_invalid_specs() {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.nodes = 0;
        assert!(Pipeline::new(spec).is_err());
    }

    #[test]
    fn fleet_stage_is_memoized() {
        let mut p = Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).unwrap();
        let total = p.fleet().unwrap().ledger.total().joules;
        assert!(total > 0.0);
        // Second call replays the memoized stage (same object, same totals).
        let again = p.fleet().unwrap().ledger.total().joules;
        assert_eq!(total, again);
    }

    #[test]
    fn spec_ladders_feed_the_benchmark_stage() {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.freq_caps_mhz = vec![1700.0, 1100.0];
        let mut p = Pipeline::new(spec).unwrap();
        let t3 = p.table3().unwrap();
        assert_eq!(t3.freq_rows.len(), 2);
        assert!(t3.freq_row(1100.0).is_some());
        assert!(t3.freq_row(900.0).is_none());
    }

    #[test]
    fn projection_matches_paper_shape() {
        let mut p = Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).unwrap();
        let proj = p.projection().unwrap();
        assert!(!proj.freq_rows.is_empty());
        assert!(!proj.power_rows.is_empty());
        assert!(proj.input.total_mwh() > 0.0);
    }
}
