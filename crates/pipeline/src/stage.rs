//! The staged pipeline: `workloads → fleet → decompose → project`.
//!
//! A [`Pipeline`] owns one [`ScenarioSpec`] and computes each stage at most
//! once: the fleet stage (schedule synthesis + telemetry simulation with
//! all standard observers) and the benchmark stage (Table III from the
//! spec's cap ladders) are memoized, so rendering every figure and table
//! of a scenario costs a single fleet run and a single benchmark sweep.

use pmss_core::project::{project, Projection, ProjectionInput};
use pmss_core::EnergyLedger;
use pmss_econ::EconSeries;
use pmss_error::PmssError;
use pmss_gpu::Engine;
use pmss_obs::{edges, Metrics, Stopwatch};
use pmss_sched::{catalog, generate, DomainSpec, Schedule};
use pmss_telemetry::{
    simulate_fleet_metered, simulate_fleet_with_cache, DomainHistograms, FleetCache, FleetConfig,
    FleetObserver, FleetRunStats, Pair, SystemHistogram,
};
use pmss_workloads::sweep::CapSetting;
use pmss_workloads::table3::{self, BenchScale, Table3};

use crate::spec::ScenarioSpec;

/// Everything the fleet-wide experiments need, computed in one pass (the
/// former `pmss_bench::FleetRun`).
pub struct FleetArtifacts {
    /// The synthetic schedule (job log + placements).
    pub schedule: Schedule,
    /// The domain catalog used.
    pub domains: Vec<DomainSpec>,
    /// Fig. 8: system-wide power distribution.
    pub system: SystemHistogram,
    /// Fig. 9: per-domain power distributions.
    pub per_domain: DomainHistograms,
    /// Tables IV–VI / Fig. 10: the modal-decomposition ledger.
    pub ledger: EnergyLedger,
    /// Per-slot economics lanes accumulated alongside the ledger (always
    /// collected — integrating it against a trace happens at render time,
    /// so the fleet stage stays scenario-shaped, not trace-shaped).
    pub econ: EconSeries,
    /// Extrapolation factor to full-Frontier three-month MWh.
    pub frontier_factor: f64,
}

/// Routes a fleet simulation through the pipeline's shared [`FleetCache`],
/// folding the run's [`pmss_telemetry::FleetRunStats`] into `metrics` when
/// metering is on.  With `metrics` absent this is exactly
/// [`simulate_fleet_with_cache`] — the metered and unmetered paths produce
/// bit-identical observers either way (the sink is folded alongside the
/// observer, never consulted by it).
pub(crate) fn metered_sim<O>(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: &FleetCache,
    metrics: Option<&mut Metrics>,
) -> O
where
    O: FleetObserver + Default,
{
    let Some(m) = metrics else {
        return simulate_fleet_with_cache(schedule, cfg, cache);
    };
    metered_sim_stats(schedule, cfg, cache, Some(m)).0
}

/// Like [`metered_sim`], but always runs the stats-collecting simulation
/// and hands the per-run [`FleetRunStats`] back to the caller (the fault
/// artifact reports injected-fault tallies even with metering off).  The
/// stats sink never feeds back into the observer, so the observer bytes
/// match [`metered_sim`] exactly.
pub(crate) fn metered_sim_stats<O>(
    schedule: &Schedule,
    cfg: &FleetConfig,
    cache: &FleetCache,
    metrics: Option<&mut Metrics>,
) -> (O, FleetRunStats)
where
    O: FleetObserver + Default,
{
    let sw = Stopwatch::start();
    let (obs, stats) = simulate_fleet_metered::<O>(schedule, cfg, cache);
    let wall_s = sw.elapsed_s();
    if let Some(m) = metrics {
        m.inc("fleet.runs");
        m.add("fleet.gpu_samples", stats.gpu_samples);
        m.add("fleet.attributed_samples", stats.attributed_samples);
        m.add("fleet.node_samples", stats.node_samples);
        m.add("boost.engagements", stats.boost_engagements);
        m.add("boost.denied", stats.boost_denied);
        m.gauge_add("boost.granted_s", stats.boost_granted_s);
        // Fault-injection tallies, recorded only when a plan is active so a
        // clean run's metrics envelope keeps its historical set of keys.
        if cfg.faults.as_ref().is_some_and(|p| !p.is_noop()) {
            m.add("faults.dropped", stats.faults_dropped);
            m.add("faults.duplicated", stats.faults_duplicated);
            m.add("faults.glitched", stats.faults_glitched);
            m.add("faults.reordered", stats.faults_reordered);
            m.add("faults.dropout_windows", stats.faults_dropout_windows);
            m.add("faults.gaps_interpolated", stats.gaps_interpolated);
            m.add("faults.gaps_excluded", stats.gaps_excluded);
            m.add("faults.gaps_idle", stats.gaps_idle);
        }
        m.gauge_add("fleet.wall_s", wall_s);
        m.gauge_add(
            "fleet.node_hours",
            schedule.per_node.len() as f64 * schedule.duration_s / 3600.0,
        );
        m.observe("fleet.run_wall_s", edges::WALL_S, wall_s);
    }
    (obs, stats)
}

/// A staged scenario run with memoized stage outputs.
///
/// Every fleet simulation a pipeline performs — the fleet stage and any
/// per-artifact runs (Fig. 2's energy split, the peak-power cap sweep) —
/// shares one [`FleetCache`], so repeated runs of the same schedule replay
/// memoized slot templates.  When built [`Pipeline::with_metrics`], the
/// pipeline additionally accumulates a [`Metrics`] registry (stage wall
/// times, cache traffic, solver work); metering never changes artifact
/// bytes.
pub struct Pipeline {
    pub(crate) spec: ScenarioSpec,
    pub(crate) engine: Engine,
    pub(crate) cache: FleetCache,
    pub(crate) metrics: Option<Metrics>,
    pub(crate) fleet: Option<FleetArtifacts>,
    pub(crate) table3: Option<Table3>,
}

impl Pipeline {
    /// Validates `spec` and wraps it in a fresh pipeline (no stage has run
    /// yet).
    pub fn new(spec: ScenarioSpec) -> Result<Pipeline, PmssError> {
        spec.validate()?;
        Ok(Pipeline {
            spec,
            engine: Engine::default(),
            cache: FleetCache::new(),
            metrics: None,
            fleet: None,
            table3: None,
        })
    }

    /// Like [`Pipeline::new`], but with metrics collection enabled.
    pub fn with_metrics(spec: ScenarioSpec) -> Result<Pipeline, PmssError> {
        let mut p = Pipeline::new(spec)?;
        p.metrics = Some(Metrics::default());
        Ok(p)
    }

    /// Whether this pipeline accumulates metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// The fleet-simulation cache shared by every run this pipeline makes.
    pub fn fleet_cache(&self) -> &FleetCache {
        &self.cache
    }

    /// A snapshot of the accumulated metrics, augmented with the current
    /// cache and engine tallies; `None` unless built
    /// [`Pipeline::with_metrics`].
    pub fn metrics_report(&self) -> Option<Metrics> {
        let mut m = self.metrics.clone()?;
        let tpl = self.cache.template_stats();
        m.add("template_cache.hits", tpl.hits);
        m.add("template_cache.misses", tpl.misses);
        m.add("template_cache.inserts", tpl.inserts);
        m.gauge_set("template_cache.entries", self.cache.template_len() as f64);
        if tpl.hits + tpl.misses > 0 {
            m.gauge_set(
                "template_cache.hit_rate",
                tpl.hits as f64 / (tpl.hits + tpl.misses) as f64,
            );
        }
        let exec = self.cache.exec().stats();
        m.add("exec_cache.hits", exec.hits);
        m.add("exec_cache.misses", exec.misses);
        m.add("exec_cache.inserts", exec.inserts);
        if exec.hits + exec.misses > 0 {
            m.gauge_set(
                "exec_cache.hit_rate",
                exec.hits as f64 / (exec.hits + exec.misses) as f64,
            );
        }
        let eng = self.cache.exec().engine_stats();
        m.add("engine.executions", eng.executions);
        m.add("engine.ppt_throttled", eng.ppt_throttled);
        m.add("cap_solver.iters", eng.solver_iters);
        m.add("cap_solver.breaches", eng.cap_breaches);
        let wall = m.gauge("fleet.wall_s").unwrap_or(0.0);
        if wall > 0.0 {
            m.gauge_set(
                "fleet.node_hours_per_s",
                m.gauge("fleet.node_hours").unwrap_or(0.0) / wall,
            );
        }
        Some(m)
    }

    /// The scenario driving this pipeline.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The shared GPU model engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The spec's frequency ladder as sweep settings.
    pub fn freq_ladder(&self) -> Vec<CapSetting> {
        self.spec
            .freq_caps_mhz
            .iter()
            .map(|&m| CapSetting::FreqMhz(m))
            .collect()
    }

    /// The spec's power ladder as sweep settings.
    pub fn power_ladder(&self) -> Vec<CapSetting> {
        self.spec
            .power_caps_w
            .iter()
            .map(|&w| CapSetting::PowerW(w))
            .collect()
    }

    /// The fleet configuration every simulation of this pipeline uses:
    /// defaults plus the spec's fault plan and SKU mix.  All per-artifact
    /// fleet runs must build on this so `--faults` / `--mix` degrade and
    /// diversify them consistently — and so must external campaign
    /// producers (the `pmssd` client's resident capture), or their
    /// telemetry diverges from the batch comparator's.
    pub fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            faults: self.spec.faults.clone(),
            mix: self.spec.resolved_mix(),
            ..FleetConfig::default()
        }
    }

    /// Runs (or replays) the fleet stage: workload synthesis, fleet
    /// telemetry simulation with all standard observers, and the modal
    /// decomposition ledger.
    pub fn fleet(&mut self) -> Result<&FleetArtifacts, PmssError> {
        self.ensure_fleet()?;
        Ok(self.fleet.as_ref().expect("fleet stage just ran"))
    }

    /// Runs (or replays) the benchmark stage: Table III computed from the
    /// spec's own cap ladders.
    pub fn table3(&mut self) -> Result<&Table3, PmssError> {
        self.ensure_table3()?;
        Ok(self.table3.as_ref().expect("benchmark stage just ran"))
    }

    /// Runs the projection stage (Table V): Table III factors applied to
    /// the fleet decomposition at full-Frontier scale.
    pub fn projection(&mut self) -> Result<Projection, PmssError> {
        self.ensure_fleet()?;
        self.ensure_table3()?;
        let sw = Stopwatch::start();
        let fleet = self.fleet.as_ref().expect("fleet stage ran");
        let t3 = self.table3.as_ref().expect("benchmark stage ran");
        let ledger = fleet.ledger.scaled(fleet.frontier_factor)?;
        let proj = project(ProjectionInput::from_ledger(&ledger), t3);
        if let Some(m) = self.metrics.as_mut() {
            m.inc("stage.projection.runs");
            m.gauge_add("stage.projection.wall_s", sw.elapsed_s());
        }
        proj
    }

    pub(crate) fn ensure_fleet(&mut self) -> Result<(), PmssError> {
        if self.fleet.is_some() {
            if let Some(m) = self.metrics.as_mut() {
                m.inc("stage.fleet.reuses");
            }
            return Ok(());
        }
        let sw = Stopwatch::start();
        let domains = catalog();
        let schedule = generate(self.spec.trace_params(), &domains);
        // Pairing the econ series changes no ledger/histogram operation:
        // `Pair` forwards each event to both members independently, so the
        // historical observers stay bit-identical with the series along.
        type Obs = Pair<Pair<SystemHistogram, DomainHistograms>, Pair<EnergyLedger, EconSeries>>;
        let cfg = self.fleet_config();
        let obs: Obs = metered_sim(&schedule, &cfg, &self.cache, self.metrics.as_mut());
        self.fleet = Some(FleetArtifacts {
            schedule,
            domains,
            system: obs.a.a,
            per_domain: obs.a.b,
            ledger: obs.b.a,
            econ: obs.b.b,
            frontier_factor: self.spec.frontier_factor(),
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("stage.fleet.runs");
            m.gauge_add("stage.fleet.wall_s", sw.elapsed_s());
        }
        Ok(())
    }

    pub(crate) fn ensure_table3(&mut self) -> Result<(), PmssError> {
        if self.table3.is_some() {
            if let Some(m) = self.metrics.as_mut() {
                m.inc("stage.table3.reuses");
            }
            return Ok(());
        }
        let sw = Stopwatch::start();
        self.table3 = Some(table3::compute_with_ladders(
            &self.engine,
            BenchScale::default(),
            &self.freq_ladder(),
            &self.power_ladder(),
        )?);
        if let Some(m) = self.metrics.as_mut() {
            m.inc("stage.table3.runs");
            m.gauge_add("stage.table3.wall_s", sw.elapsed_s());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScalePreset;

    #[test]
    fn pipeline_rejects_invalid_specs() {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.nodes = 0;
        assert!(Pipeline::new(spec).is_err());
    }

    #[test]
    fn fleet_stage_is_memoized() {
        let mut p = Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).unwrap();
        let total = p.fleet().unwrap().ledger.total().joules;
        assert!(total > 0.0);
        // Second call replays the memoized stage (same object, same totals).
        let again = p.fleet().unwrap().ledger.total().joules;
        assert_eq!(total, again);
    }

    #[test]
    fn spec_ladders_feed_the_benchmark_stage() {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.freq_caps_mhz = vec![1700.0, 1100.0];
        let mut p = Pipeline::new(spec).unwrap();
        let t3 = p.table3().unwrap();
        assert_eq!(t3.freq_rows.len(), 2);
        assert!(t3.freq_row(1100.0).is_some());
        assert!(t3.freq_row(900.0).is_none());
    }

    #[test]
    fn projection_matches_paper_shape() {
        let mut p = Pipeline::new(ScenarioSpec::preset(ScalePreset::Quick)).unwrap();
        let proj = p.projection().unwrap();
        assert!(!proj.freq_rows.is_empty());
        assert!(!proj.power_rows.is_empty());
        assert!(proj.input.total_mwh() > 0.0);
    }
}
