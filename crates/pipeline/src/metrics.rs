//! Rendering for the `--metrics` envelope: [`RunManifest`] and [`Metrics`]
//! as JSON values and as an ASCII report block.
//!
//! Metrics *collection* can also be switched on with the `PMSS_METRICS`
//! environment variable, but the variable never changes what the CLI
//! prints — only the explicit `--metrics` flag adds the `run`/`metrics`
//! fields to the envelope (or the ASCII block after the artifact).  That
//! split is what lets the golden suite run with `PMSS_METRICS=1` and pin
//! the guarantee that metering cannot perturb artifact bytes.

use pmss_obs::{Metrics, RunManifest, ValueHist};

use crate::json::Json;
use crate::spec::ScenarioSpec;

/// The environment variable enabling metrics collection (any value except
/// `0`); output is still gated on the explicit `--metrics` flag.
pub const METRICS_ENV: &str = "PMSS_METRICS";

/// Whether `PMSS_METRICS` asks for metrics collection.
pub fn metrics_env_enabled() -> bool {
    std::env::var_os(METRICS_ENV).is_some_and(|v| v != *"0")
}

/// Builds the run manifest for one CLI invocation.
pub fn manifest(command: &str, spec: &ScenarioSpec, wall_s: f64) -> RunManifest {
    RunManifest {
        command: command.to_string(),
        scenario: spec.name.clone(),
        nodes: spec.nodes,
        days: spec.days,
        seed: spec.seed,
        wall_s,
        version: env!("CARGO_PKG_VERSION").to_string(),
    }
}

/// The manifest as a JSON object.
pub fn manifest_to_json(m: &RunManifest) -> Json {
    Json::obj()
        .field("command", m.command.as_str())
        .field("scenario", m.scenario.as_str())
        .field("nodes", m.nodes)
        .field("days", m.days)
        .field("seed", m.seed)
        .field("wall_s", m.wall_s)
        .field("version", m.version.as_str())
}

fn hist_to_json(h: &ValueHist) -> Json {
    let buckets = h
        .buckets()
        .map(|(le, count)| {
            Json::obj()
                .field("le", le.map_or(Json::Null, Json::Num))
                .field("count", count)
        })
        .collect();
    Json::obj()
        .field("count", h.count())
        .field("sum", h.sum())
        .field("mean", h.mean().map_or(Json::Null, Json::Num))
        .field("min", h.min().map_or(Json::Null, Json::Num))
        .field("max", h.max().map_or(Json::Null, Json::Num))
        .field("buckets", Json::Arr(buckets))
}

/// The metrics registry as a JSON object with `counters`, `gauges`, and
/// `hists` members (each sorted by name, so output is deterministic).
pub fn metrics_to_json(m: &Metrics) -> Json {
    let mut counters = Json::obj();
    for (name, v) in m.counters() {
        counters = counters.field(name, v);
    }
    let mut gauges = Json::obj();
    for (name, v) in m.gauges() {
        gauges = gauges.field(name, v);
    }
    let mut hists = Json::obj();
    for (name, h) in m.hists() {
        hists = hists.field(name, hist_to_json(h));
    }
    Json::obj()
        .field("counters", counters)
        .field("gauges", gauges)
        .field("hists", hists)
}

/// The ASCII metrics block appended after an artifact under `--metrics`.
pub fn render_ascii(manifest: &RunManifest, m: &Metrics) -> String {
    let mut out = String::new();
    out.push_str("== metrics ==\n");
    out.push_str(&format!(
        "run: {} | scenario {} ({} nodes x {} days, seed {}) | {:.3} s | v{}\n",
        manifest.command,
        manifest.scenario,
        manifest.nodes,
        manifest.days,
        manifest.seed,
        manifest.wall_s,
        manifest.version,
    ));
    if m.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    let width = m
        .counters()
        .map(|(k, _)| k.len())
        .chain(m.gauges().map(|(k, _)| k.len()))
        .max()
        .unwrap_or(0);
    for (name, v) in m.counters() {
        out.push_str(&format!("  {name:<width$}  {v}\n"));
    }
    for (name, v) in m.gauges() {
        out.push_str(&format!("  {name:<width$}  {v:.6}\n"));
    }
    for (name, h) in m.hists() {
        out.push_str(&format!(
            "  {name}: n={} mean={} max={}\n",
            h.count(),
            h.mean().map_or("-".into(), |v| format!("{v:.4}")),
            h.max().map_or("-".into(), |v| format!("{v:.4}")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_obs::edges;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new();
        m.add("template_cache.hits", 12);
        m.inc("fleet.runs");
        m.gauge_set("exec_cache.hit_rate", 0.75);
        m.observe("artifact.wall_s", edges::WALL_S, 0.002);
        m.observe("artifact.wall_s", edges::WALL_S, 999.0);
        m
    }

    #[test]
    fn envelope_json_round_trips_through_the_parser() {
        let spec = ScenarioSpec::preset(crate::spec::ScalePreset::Quick);
        let man = manifest("fig 2", &spec, 1.25);
        let j = Json::obj()
            .field("run", manifest_to_json(&man))
            .field("metrics", metrics_to_json(&sample_metrics()));
        let back = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(
            back.get("run").and_then(|r| r.get("command")),
            Some(&Json::Str("fig 2".into()))
        );
        let counters = back.get("metrics").and_then(|m| m.get("counters")).unwrap();
        assert_eq!(
            counters.get("template_cache.hits").and_then(Json::as_f64),
            Some(12.0)
        );
        let hist = back
            .get("metrics")
            .and_then(|m| m.get("hists"))
            .and_then(|h| h.get("artifact.wall_s"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(2.0));
        // The overflow bucket (999 s > the largest edge) emits `le: null`.
        let buckets = hist.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), edges::WALL_S.len() + 1);
        assert_eq!(buckets.last().unwrap().get("le"), Some(&Json::Null));
    }

    #[test]
    fn ascii_block_lists_every_metric() {
        let spec = ScenarioSpec::preset(crate::spec::ScalePreset::Quick);
        let man = manifest("stats", &spec, 0.5);
        let text = render_ascii(&man, &sample_metrics());
        assert!(text.starts_with("== metrics =="), "{text}");
        assert!(text.contains("scenario quick (16 nodes x 2 days"), "{text}");
        for needle in [
            "template_cache.hits",
            "fleet.runs",
            "exec_cache.hit_rate",
            "artifact.wall_s: n=2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
