//! The read-query vocabulary shared by the batch CLI and the `pmssd`
//! daemon.
//!
//! The daemon's differential guarantee — every query answer byte-identical
//! to the batch CLI over the same event prefix — only holds if both sides
//! render through *one* code path.  This module is that path: a typed
//! [`Query`] (parsed from CLI positionals or the daemon's JSON wire form)
//! and one [`answer`] function from a [`StreamState`] + Table III to the
//! response [`Json`].  The batch side builds its `StreamState` from a
//! resident-store replay (`pmss query …`); the daemon builds its from the
//! ingest engine's published snapshot; both then call [`answer`].

use pmss_econ::{shift, EconTrace};
use pmss_error::PmssError;
use pmss_stream::StreamState;
use pmss_workloads::{CapSetting, Table3};

use crate::json::Json;
use crate::render::{bounds_json, coverage_json, projection_json, projection_row_json};

/// One read query against a streamed (or batch-replayed) fleet state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Full savings projection at Frontier scale (Table V shape).
    Projection,
    /// Per-mode coverage accounting plus coverage-adjusted headline
    /// bounds.
    Coverage,
    /// Energy-ledger slice: per-region GPU seconds and joules.
    Ledger,
    /// What-if reprojection: the projection row for one cap setting on
    /// the spec's ladder.
    WhatIf(CapSetting),
    /// Cost/CO₂ of the ingested energy under the scenario's econ trace,
    /// with the temporal-shifting what-if.
    Econ,
}

impl Query {
    /// The query's wire/CLI name.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Projection => "projection",
            Query::Coverage => "coverage",
            Query::Ledger => "ledger",
            Query::WhatIf(_) => "whatif",
            Query::Econ => "econ",
        }
    }

    /// Parses the CLI positional form: `projection | coverage | ledger |
    /// econ | whatif <freq_mhz|power_w> <VALUE>`.
    pub fn from_args(args: &[String]) -> Result<Query, PmssError> {
        match args {
            [kind] if kind == "projection" => Ok(Query::Projection),
            [kind] if kind == "coverage" => Ok(Query::Coverage),
            [kind] if kind == "ledger" => Ok(Query::Ledger),
            [kind] if kind == "econ" => Ok(Query::Econ),
            [kind, knob, value] if kind == "whatif" => {
                Ok(Query::WhatIf(parse_setting(knob, value)?))
            }
            _ => Err(PmssError::Usage(
                "query takes: projection | coverage | ledger | econ | \
                 whatif <freq_mhz|power_w> <VALUE>"
                    .to_string(),
            )),
        }
    }

    /// Parses the daemon wire form, e.g. `{"kind":"whatif",
    /// "knob":"freq_mhz","value":1500}`.
    pub fn from_json(v: &Json) -> Result<Query, PmssError> {
        let malformed = |detail: &str| PmssError::malformed("query", detail.to_string());
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing string field `kind`"))?;
        match kind {
            "projection" => Ok(Query::Projection),
            "coverage" => Ok(Query::Coverage),
            "ledger" => Ok(Query::Ledger),
            "econ" => Ok(Query::Econ),
            "whatif" => {
                let knob = v
                    .get("knob")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("whatif needs string field `knob`"))?;
                let value = v
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed("whatif needs numeric field `value`"))?;
                Ok(Query::WhatIf(parse_setting(knob, &value.to_string())?))
            }
            other => Err(malformed(&format!("unknown query kind {other:?}"))),
        }
    }

    /// The wire form [`Query::from_json`] parses.
    pub fn to_json(&self) -> Json {
        let obj = Json::obj().field("kind", self.kind());
        match self {
            Query::WhatIf(CapSetting::FreqMhz(m)) => {
                obj.field("knob", "freq_mhz").field("value", *m)
            }
            Query::WhatIf(CapSetting::PowerW(w)) => obj.field("knob", "power_w").field("value", *w),
            _ => obj,
        }
    }
}

fn parse_setting(knob: &str, value: &str) -> Result<CapSetting, PmssError> {
    let v: f64 = value.parse().map_err(|_| {
        PmssError::invalid_value("what-if value", value, "a finite cap value number")
    })?;
    if !v.is_finite() {
        return Err(PmssError::invalid_value(
            "what-if value",
            value,
            "a finite cap value number",
        ));
    }
    match knob {
        "freq_mhz" => Ok(CapSetting::FreqMhz(v)),
        "power_w" => Ok(CapSetting::PowerW(v)),
        other => Err(PmssError::invalid_value(
            "what-if knob",
            other,
            "freq_mhz | power_w",
        )),
    }
}

/// Answers `query` against `state` — the single render path both the
/// batch CLI and the daemon go through (see module docs).  `econ` is the
/// scenario's active trace; `Query::Econ` needs both it and a state whose
/// ingest path accumulated the per-slot series.
pub fn answer(
    state: &StreamState,
    table3: &Table3,
    econ: Option<&EconTrace>,
    query: &Query,
) -> Result<Json, PmssError> {
    match query {
        Query::Econ => {
            let trace = econ.ok_or_else(|| {
                PmssError::missing(
                    "econ trace",
                    "the scenario carries no active econ trace (pass --econ)",
                )
            })?;
            let series = state.econ().ok_or_else(|| {
                PmssError::missing(
                    "econ series",
                    "this state's ingest path accumulated no per-slot series",
                )
            })?;
            let scaled = series.scaled(state.frontier_factor())?;
            let flat = EconTrace::flat();
            let out = shift(&scaled, trace)?;
            Ok(Json::obj()
                .field("trace", trace.name.as_str())
                .field("slots", scaled.num_slots())
                .field("total_gpu_mwh", scaled.total_gpu_j() / 3.6e9)
                .field("cost_usd", out.baseline_cost_usd)
                .field("carbon_t", out.baseline_carbon_kg / 1e3)
                .field("ref_cost_usd", scaled.cost_usd(&flat))
                .field("ref_carbon_t", scaled.carbon_kg(&flat) / 1e3)
                .field(
                    "shift",
                    Json::obj()
                        .field("deadline_slots", out.deadline_slots)
                        .field("budget_mw", out.budget_w / 1e6)
                        .field("moved_mwh", out.moved_mwh)
                        .field("moves", out.moves.len())
                        .field("shifted_cost_usd", out.shifted_cost_usd)
                        .field("uniform_cost_usd", out.uniform_cost_usd)
                        .field("shifted_carbon_t", out.shifted_carbon_kg / 1e3),
                ))
        }
        Query::Projection => Ok(projection_json(&state.projection(table3)?)),
        Query::Coverage => Ok(Json::obj()
            .field("coverage", coverage_json(&state.coverage()))
            .field(
                "best_free_bounds",
                bounds_json(&state.coverage_bounds(table3)?),
            )),
        Query::Ledger => {
            let totals = state.ledger().region_totals();
            let total = state.ledger().total();
            Ok(Json::obj()
                .field(
                    "regions",
                    Json::Arr(
                        pmss_core::Region::all()
                            .iter()
                            .zip(totals.iter())
                            .map(|(r, c)| {
                                Json::obj()
                                    .field("region", r.label())
                                    .field("seconds", c.seconds)
                                    .field("joules", c.joules)
                            })
                            .collect(),
                    ),
                )
                .field(
                    "total",
                    Json::obj()
                        .field("seconds", total.seconds)
                        .field("joules", total.joules),
                ))
        }
        Query::WhatIf(setting) => {
            let p = state.projection(table3)?;
            let ladder = match setting {
                CapSetting::FreqMhz(_) => &p.freq_rows,
                CapSetting::PowerW(_) => &p.power_rows,
            };
            ladder
                .iter()
                .find(|r| r.setting == *setting)
                .map(projection_row_json)
                .ok_or_else(|| {
                    PmssError::invalid_value(
                        "what-if setting",
                        format!("{setting:?}"),
                        "a setting on the spec's cap ladder",
                    )
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_and_wire_forms_agree() {
        let cases: [(&[&str], Query); 5] = [
            (&["projection"], Query::Projection),
            (&["coverage"], Query::Coverage),
            (&["ledger"], Query::Ledger),
            (&["econ"], Query::Econ),
            (
                &["whatif", "power_w", "400"],
                Query::WhatIf(CapSetting::PowerW(400.0)),
            ),
        ];
        for (args, want) in cases {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let q = Query::from_args(&owned).unwrap();
            assert_eq!(q, want);
            assert_eq!(Query::from_json(&q.to_json()).unwrap(), q);
        }
    }

    #[test]
    fn hostile_query_forms_are_typed_errors() {
        for bad in [
            vec!["frobnicate".to_string()],
            vec!["whatif".to_string(), "volts".to_string(), "12".to_string()],
            vec![
                "whatif".to_string(),
                "power_w".to_string(),
                "NaN".to_string(),
            ],
            vec![],
        ] {
            assert!(Query::from_args(&bad).is_err(), "{bad:?}");
        }
        assert!(Query::from_json(&Json::obj()).is_err());
        assert!(Query::from_json(&Json::obj().field("kind", "whatif")).is_err());
    }
}
