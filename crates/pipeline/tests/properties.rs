//! Property-based tests for the scenario-spec JSON boundary — the place
//! untrusted numbers enter the pipeline.

use pmss_pipeline::json::Json;
use pmss_pipeline::spec::{ScalePreset, ScenarioSpec};
use proptest::prelude::*;

/// Largest integer exactly representable in a JSON number.
const MAX_EXACT: u64 = 1 << 53;

proptest! {
    /// Valid integer fields round-trip exactly: what goes into the JSON
    /// is what `from_json` reconstructs, bit for bit.
    #[test]
    fn integer_fields_round_trip_exactly(
        nodes in 1..100_000usize,
        seed in 0..MAX_EXACT,
    ) {
        let mut spec = ScenarioSpec::preset(ScalePreset::Quick);
        spec.nodes = nodes;
        spec.seed = seed;
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(back.nodes, nodes);
        prop_assert_eq!(back.seed, seed);
        prop_assert_eq!(back, spec);
    }

    /// Fractional counts are rejected, never truncated: before the fix
    /// `"nodes": 2.5` silently became a 2-node fleet.
    #[test]
    fn fractional_counts_are_rejected(
        whole in 1..1000u32,
        frac in 1..100u32,
        field in 0..2usize,
    ) {
        let value = whole as f64 + frac as f64 / 128.0;
        prop_assume!(value.fract() != 0.0);
        let key = ["nodes", "seed"][field];
        let j = Json::parse(&format!("{{\"{key}\": {value}}}")).unwrap();
        let err = ScenarioSpec::from_json(&j).unwrap_err();
        prop_assert!(
            matches!(err, pmss_error::PmssError::InvalidValue { .. }),
            "{}", err
        );
        prop_assert!(err.to_string().contains(key), "{}", err);
    }

    /// Negative counts are rejected, never wrapped: before the fix
    /// `"nodes": -1` cast through `as usize` into 2^64 - 1.
    #[test]
    fn negative_counts_are_rejected(
        magnitude in 1..MAX_EXACT,
        field in 0..2usize,
    ) {
        let key = ["nodes", "seed"][field];
        let j = Json::parse(&format!("{{\"{key}\": -{magnitude}}}")).unwrap();
        let err = ScenarioSpec::from_json(&j).unwrap_err();
        prop_assert!(
            matches!(err, pmss_error::PmssError::InvalidValue { .. }),
            "{}", err
        );
    }

    /// Values past 2^53 are rejected: they were never exactly
    /// representable in JSON's f64, so accepting them would silently
    /// change the seed (and thus the whole trace).
    #[test]
    fn oversized_counts_are_rejected(excess in 1.0..1e20f64, field in 0..2usize) {
        let value = MAX_EXACT as f64 + excess * 1e3;
        prop_assume!(value > MAX_EXACT as f64);
        let key = ["nodes", "seed"][field];
        let j = Json::parse(&format!("{{\"{key}\": {value:e}}}")).unwrap();
        let err = ScenarioSpec::from_json(&j).unwrap_err();
        prop_assert!(
            matches!(err, pmss_error::PmssError::InvalidValue { .. }),
            "{}", err
        );
    }
}
