//! # pmss-stream — bounded-memory streaming ingest of fleet telemetry
//!
//! The batch pipeline decomposes a whole trace at once; a production
//! deployment sees telemetry windows *as they arrive* — late, duplicated,
//! reordered within a collection fabric's delivery bound — and must answer
//! "what are the savings so far?" at any moment without holding the trace.
//! This crate is that ingest path:
//!
//! * [`StreamEngine`] — sharded ingest of [`pmss_telemetry::WindowEvent`]s
//!   with one partial observer and one bounded reorder buffer per
//!   telemetry channel: O(channels × horizon) memory, never O(trace);
//! * [`StreamConfig`] — shard count + reorder horizon, with
//!   [`StreamConfig::for_plan`] deriving the minimal safe horizon from a
//!   `pmss-faults` plan;
//! * [`StreamState`] — the snapshot/query API (`ledger()`, `projection()`,
//!   `coverage_bounds()`) whose answers are **bit-identical** to the batch
//!   path once the same windows have been ingested;
//! * [`StreamError`] — typed rejection of events that outlive the horizon;
//! * `stream.*` metrics via [`StreamEngine::publish_metrics`].
//!
//! ## Why snapshots can be bit-identical
//!
//! Floating-point addition is not associative, so a stream can only match
//! the batch sum if both use the same association.  The batch simulation
//! accumulates ledger-bearing observers *per channel*, merging channel
//! partials in canonical order (nodes ascending; GPU slots `0..4`, then
//! rest-of-node) — see `FleetObserver::CHANNEL_GROUPED`.  The engine keeps
//! exactly those partials, applies each channel's windows in ascending
//! window order (what the reorder buffer restores), and snapshots by
//! merging in the same canonical order.  Equality is structural, not
//! approximate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod state;

pub use engine::{StreamConfig, StreamEngine, StreamError, StreamStats};
pub use state::{StreamSnapshot, StreamState};
