//! The streaming ingest engine: reorder-buffered, sharded, bounded-memory.
//!
//! Telemetry windows arrive as [`WindowEvent`]s, possibly out of order
//! within a bounded reorder horizon (a collection fabric's delivery jitter,
//! modeled by `pmss-faults`' bounded-buffer reordering).  The engine holds
//! one partial observer per telemetry channel plus a small per-channel
//! reorder buffer, releases windows into the partial once they can no
//! longer be preceded by a late sibling, and snapshots by merging the
//! partials in the batch simulation's canonical channel order — which is
//! what makes a snapshot bit-identical to [`simulate_fleet`] over the same
//! windows (see [`FleetObserver::CHANNEL_GROUPED`]).
//!
//! Memory is O(live channels × horizon) buffered windows, never O(trace).
//!
//! [`simulate_fleet`]: pmss_telemetry::simulate_fleet

use std::collections::VecDeque;
use std::fmt;
use std::mem::size_of;

use pmss_error::PmssError;
use pmss_faults::FaultPlan;
use pmss_obs::Metrics;
use pmss_sched::Schedule;
use pmss_telemetry::{
    apply_event, ColumnBlock, FleetObserver, Tag, WindowEvent, WindowKind, NO_JOB, REST_SLOT,
};

/// Telemetry channels per node: the GPU slots plus the rest-of-node
/// channel — the stride of the dense per-shard channel table.
const CHANNELS_PER_NODE: usize = REST_SLOT as usize + 1;

/// Default bound on a channel's reorder-ring span, in windows (see
/// [`StreamConfig::max_span_windows`]): ~2 years of 15 s windows, far above
/// any real campaign (three months is ~5×10⁵ windows) but small enough
/// that a single adversarial far-future window can never grow a ring past
/// a few hundred megabytes.
pub const DEFAULT_MAX_SPAN: u64 = 1 << 22;

/// Spill vectors kept per shard for reuse.  Spills only happen on
/// duplicate deliveries of one window, so a handful of slabs covers any
/// realistic fault plan without hoarding memory.
const SPARE_SLABS: usize = 8;

/// Shape of a streaming ingest: how many shards partition the fleet and
/// how much delivery reordering the engine must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of ingest shards; channels are assigned by `node % shards`.
    pub shards: usize,
    /// Reorder horizon in windows: a window is buffered until a sibling
    /// `horizon` windows ahead has been seen, after which no earlier
    /// window can still arrive.  Must exceed the delivery lag bound
    /// (`FaultPlan::reorder_depth`); see [`StreamConfig::for_plan`].
    pub reorder_horizon: u64,
    /// Bound on a channel's reorder-ring span, in windows: an event whose
    /// window is this many or more past the channel's release floor is
    /// rejected with [`StreamError::SpanOverflow`] instead of growing the
    /// ring toward it.  The ring grows lazily to the span actually
    /// buffered, so this is the engine's memory armor against adversarial
    /// far-future windows (a window near `u64::MAX` would otherwise
    /// demand an unpayable allocation).  Generator streams never span
    /// more than the horizon plus the longest dropped run, so the
    /// [`DEFAULT_MAX_SPAN`] default is invisible to legitimate traffic.
    pub max_span_windows: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            reorder_horizon: 1,
            max_span_windows: DEFAULT_MAX_SPAN,
        }
    }
}

impl StreamConfig {
    /// The minimal safe configuration for telemetry degraded by `plan`:
    /// a horizon one past the plan's delivery-lag bound (`reorder_depth`),
    /// which is exactly enough to make every buffered window final before
    /// release.  A clean stream (no plan) gets horizon 1: each window is
    /// released as soon as its successor arrives.
    pub fn for_plan(plan: Option<&FaultPlan>) -> StreamConfig {
        let depth = plan
            .filter(|p| !p.is_noop())
            .map_or(0, |p| p.reorder_depth as u64);
        StreamConfig {
            shards: 1,
            reorder_horizon: depth + 1,
            max_span_windows: DEFAULT_MAX_SPAN,
        }
    }

    /// Returns `self` with a different shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> StreamConfig {
        self.shards = shards;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PmssError> {
        if self.shards == 0 {
            return Err(PmssError::invalid_value(
                "stream shards",
                "0",
                "at least one ingest shard",
            ));
        }
        if self.reorder_horizon == 0 {
            return Err(PmssError::invalid_value(
                "stream reorder horizon",
                "0",
                "at least one window of lateness tolerance",
            ));
        }
        if self.max_span_windows == 0 {
            return Err(PmssError::invalid_value(
                "stream max span",
                "0",
                "at least one window of addressable reorder span",
            ));
        }
        Ok(())
    }
}

/// Why the engine refused an event.
///
/// Every variant is a *per-event* rejection: the engine's state (ledger,
/// reorder buffers, tallies other than the reject counter itself) is
/// untouched, and later ingests proceed normally — an adversarial frame
/// can be dropped and the stream resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The event's window is behind its channel's release floor: an event
    /// at least `reorder_horizon` windows ahead was already seen, so this
    /// window was finalized and its telemetry can no longer be amended.
    LateArrival {
        /// Node of the offending event.
        node: u32,
        /// Channel slot of the offending event.
        slot: u8,
        /// The event's window.
        window: u64,
        /// The channel's release floor (first still-accepted window).
        floor: u64,
    },
    /// The event names a channel the schedule does not have: a slot past
    /// the rest-of-node channel, or a node outside the fleet.
    InvalidChannel {
        /// Node of the offending event.
        node: u32,
        /// Channel slot of the offending event.
        slot: u8,
        /// Nodes in the schedule's fleet (valid nodes are `0..nodes`).
        nodes: u64,
    },
    /// The event's window is too far past its channel's release floor to
    /// be buffered: accepting it would grow the reorder ring beyond
    /// [`StreamConfig::max_span_windows`] (or beyond addressable memory).
    SpanOverflow {
        /// Node of the offending event.
        node: u32,
        /// Channel slot of the offending event.
        slot: u8,
        /// The event's window.
        window: u64,
        /// The channel's release floor (first still-accepted window).
        floor: u64,
        /// The configured span bound the event exceeded.
        max_span: u64,
    },
    /// The event attributes its sample to a job index outside the
    /// schedule's job log — applying it would index out of bounds.
    InvalidJob {
        /// Node of the offending event.
        node: u32,
        /// Channel slot of the offending event.
        slot: u8,
        /// The event's window.
        window: u64,
        /// The out-of-range job index.
        job: u64,
        /// Jobs in the schedule's log (valid indices are `0..jobs`).
        jobs: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::LateArrival {
                node,
                slot,
                window,
                floor,
            } => write!(
                f,
                "late arrival on channel ({node}, {slot}): window {window} is \
                 behind the release floor {floor} (delivery lag exceeded the \
                 configured reorder horizon)"
            ),
            StreamError::InvalidChannel { node, slot, nodes } => write!(
                f,
                "invalid channel ({node}, {slot}): the schedule has nodes \
                 0..{nodes} with GPU slots 0..{REST_SLOT} plus the \
                 rest-of-node slot {REST_SLOT}"
            ),
            StreamError::SpanOverflow {
                node,
                slot,
                window,
                floor,
                max_span,
            } => write!(
                f,
                "reorder span overflow on channel ({node}, {slot}): window \
                 {window} is {} past the release floor {floor}, beyond the \
                 {max_span}-window buffering bound",
                window - floor
            ),
            StreamError::InvalidJob {
                node,
                slot,
                window,
                job,
                jobs,
            } => write!(
                f,
                "invalid job attribution on channel ({node}, {slot}) window \
                 {window}: job index {job} is outside the schedule's job log \
                 (0..{jobs})"
            ),
        }
    }
}

impl From<StreamError> for PmssError {
    fn from(e: StreamError) -> PmssError {
        let expected = match e {
            StreamError::LateArrival { .. } => "delivery lag within the configured reorder horizon",
            StreamError::InvalidChannel { .. } => "a channel the schedule's fleet has",
            StreamError::SpanOverflow { .. } => "a window within the configured reorder span bound",
            StreamError::InvalidJob { .. } => "a job index within the schedule's job log",
        };
        PmssError::invalid_value("stream event", e.to_string(), expected)
    }
}

/// Ingest tallies, cheap enough to read after every event.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Events accepted (samples + gaps + rest-of-node).
    pub events: u64,
    /// GPU power samples accepted.
    pub samples: u64,
    /// Gap (lost-window) events accepted.
    pub gaps: u64,
    /// Rest-of-node samples accepted.
    pub rest_samples: u64,
    /// Windows released from reorder buffers into channel partials.
    pub released_windows: u64,
    /// Events rejected as [`StreamError::LateArrival`].
    pub late_rejects: u64,
    /// Events rejected as [`StreamError::InvalidChannel`].
    pub channel_rejects: u64,
    /// Events rejected as [`StreamError::SpanOverflow`].
    pub span_rejects: u64,
    /// Events rejected as [`StreamError::InvalidJob`].
    pub job_rejects: u64,
    /// Windows currently buffered across all channels.
    pub buffered_windows: usize,
    /// High-water mark of `buffered_windows` (measured at release
    /// steady-state, so it respects the declared per-channel bound).
    pub peak_buffered_windows: usize,
    /// High-water mark of any single channel's buffered windows; bounded
    /// by the configured reorder horizon.
    pub peak_channel_windows: usize,
}

/// One reorder-ring slot: the deliveries of one window.  The overwhelming
/// majority of windows arrive exactly once, so the single-event case is
/// stored inline; duplicate deliveries spill into a `Vec` drawn from the
/// shard's slab free list and returned on release.
#[derive(Debug, Clone)]
enum Slot {
    /// No delivery buffered for this window (yet).
    Empty,
    /// Exactly one delivery, stored inline.
    One(WindowEvent),
    /// Duplicate deliveries, in arrival order.
    Many(Vec<WindowEvent>),
}

impl Slot {
    fn is_present(&self) -> bool {
        !matches!(self, Slot::Empty)
    }
}

/// One telemetry channel's ingest state.
///
/// The reorder buffer is a ring: slot `i` of `ring` holds the deliveries
/// of window `floor + i`.  The ring grows lazily to the span actually
/// buffered (at release steady-state at most the reorder horizon, since a
/// window whose successor `horizon` ahead has been seen is released), and
/// its allocation is retained across releases — the steady state allocates
/// nothing per window, where the previous `BTreeMap<u64, Vec<WindowEvent>>`
/// paid a node plus a one-element `Vec` per buffered window.
#[derive(Debug, Clone)]
struct Channel<O> {
    /// Windows below the floor, applied in ascending order.
    partial: O,
    /// Buffered in-horizon windows; slot `i` is window `floor + i`.
    ring: VecDeque<Slot>,
    /// Present (distinct buffered) windows in the ring.
    buffered: usize,
    /// Highest window seen on this channel.
    max_seen: u64,
    /// First window still accepted; everything below is final.
    floor: u64,
}

impl<O: FleetObserver + Default> Default for Channel<O> {
    fn default() -> Self {
        Channel {
            partial: O::default(),
            ring: VecDeque::new(),
            buffered: 0,
            max_seen: 0,
            floor: 0,
        }
    }
}

/// One ingest shard: a dense table of the channels of every node with
/// `node % shards == shard index` (indexed by
/// `(node / shards) * CHANNELS_PER_NODE + slot`), plus a delivered-event
/// tally for imbalance accounting and the spill-slab free list.
#[derive(Debug, Clone)]
struct Shard<O> {
    channels: Vec<Option<Channel<O>>>,
    /// Live (materialized) channels in `channels`.
    live: usize,
    events: u64,
    /// Reusable spill vectors (see [`Slot::Many`]).
    spare: Vec<Vec<WindowEvent>>,
}

impl<O> Default for Shard<O> {
    fn default() -> Self {
        Shard {
            channels: Vec::new(),
            live: 0,
            events: 0,
            spare: Vec::new(),
        }
    }
}

/// Applies one released slot's deliveries to the channel partial, in
/// arrival order, returning any spill slab to the free list.
fn apply_slot<O: FleetObserver>(
    partial: &mut O,
    schedule: &Schedule,
    slot: Slot,
    spare: &mut Vec<Vec<WindowEvent>>,
) {
    match slot {
        Slot::Empty => {}
        Slot::One(ev) => apply_event(partial, schedule, &ev),
        Slot::Many(mut evs) => {
            for e in &evs {
                apply_event(partial, schedule, e);
            }
            if spare.len() < SPARE_SLABS {
                evs.clear();
                spare.push(evs);
            }
        }
    }
}

/// Releases every window that can no longer be preceded: delivery rank is
/// window + lag with lag < horizon, and ranks arrive non-decreasing, so
/// once a window `max_seen` is delivered no window at or below
/// `max_seen - horizon` can still appear.  The floor advances only past
/// *released* (present) windows — a window index that was never delivered
/// stays acceptable until some later window is finalized past it, exactly
/// as the previous ordered-map implementation behaved.
fn release_ready<O: FleetObserver>(
    ch: &mut Channel<O>,
    spare: &mut Vec<Vec<WindowEvent>>,
    stats: &mut StreamStats,
    schedule: &Schedule,
    horizon: u64,
) {
    // First present window; generator streams are dense, so this is
    // almost always the front slot.
    while let Some(k) = ch.ring.iter().position(Slot::is_present) {
        let w = ch.floor + k as u64;
        if w.saturating_add(horizon) > ch.max_seen {
            break;
        }
        for _ in 0..k {
            ch.ring.pop_front();
        }
        let slot = ch.ring.pop_front().expect("present slot at k");
        apply_slot(&mut ch.partial, schedule, slot, spare);
        ch.floor = w + 1;
        ch.buffered -= 1;
        stats.buffered_windows -= 1;
        stats.released_windows += 1;
    }
}

/// The streaming ingest engine, generic over the observer it maintains.
///
/// Snapshots are bit-identical to the batch path only for observers the
/// batch simulation accumulates per channel
/// ([`FleetObserver::CHANNEL_GROUPED`], i.e. the energy ledger); for other
/// observers a snapshot is the same telemetry under a different — equally
/// valid — floating-point association.
pub struct StreamEngine<'a, O: FleetObserver + Default + Clone> {
    schedule: &'a Schedule,
    cfg: StreamConfig,
    shards: Vec<Shard<O>>,
    stats: StreamStats,
}

impl<'a, O: FleetObserver + Default + Clone> StreamEngine<'a, O> {
    /// Creates an engine over `schedule`'s job log (needed to attribute
    /// sample events to jobs).
    pub fn new(schedule: &'a Schedule, cfg: StreamConfig) -> Result<Self, PmssError> {
        cfg.validate()?;
        Ok(StreamEngine {
            schedule,
            cfg,
            shards: (0..cfg.shards).map(|_| Shard::default()).collect(),
            stats: StreamStats::default(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Current ingest tallies.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The declared buffered-window bound: every live channel holds at
    /// most `reorder_horizon` windows, so total buffered memory is
    /// O(channels × horizon) — independent of trace length.
    pub fn buffer_bound(&self) -> usize {
        let channels: u64 = self.shards.iter().map(|s| s.live as u64).sum();
        // Multiply in u64 so a horizon above u32::MAX is not truncated on
        // 32-bit targets, then saturate into the platform's usize.
        let bound = channels.saturating_mul(self.cfg.reorder_horizon);
        usize::try_from(bound).unwrap_or(usize::MAX)
    }

    /// Approximate heap footprint of the reorder buffers, in bytes: ring
    /// and spill-slab capacities across every live channel (capacities,
    /// not lengths, because the buffers are retained for reuse).
    pub fn buffer_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for shard in &self.shards {
            bytes = bytes
                .saturating_add(shard.channels.capacity() * size_of::<Option<Channel<O>>>())
                .saturating_add(
                    shard
                        .spare
                        .iter()
                        .map(|v| v.capacity() * size_of::<WindowEvent>())
                        .sum(),
                );
            for ch in shard.channels.iter().flatten() {
                bytes = bytes.saturating_add(ch.ring.capacity() * size_of::<Slot>());
                for slot in &ch.ring {
                    if let Slot::Many(evs) = slot {
                        bytes = bytes.saturating_add(evs.capacity() * size_of::<WindowEvent>());
                    }
                }
            }
        }
        bytes
    }

    /// Validates the parts of `ev` that are dangerous when the event comes
    /// from an untrusted frame, *before* any engine state is touched: the
    /// channel must exist in the schedule's fleet, the window must be
    /// within the channel's accepted span, and any job attribution must
    /// index the schedule's job log.  Returns the event's ring offset.
    fn admit(&self, ev: &WindowEvent) -> Result<usize, StreamError> {
        if (ev.slot as usize) >= CHANNELS_PER_NODE
            || (ev.node as usize) >= self.schedule.per_node.len()
        {
            return Err(StreamError::InvalidChannel {
                node: ev.node,
                slot: ev.slot,
                nodes: self.schedule.per_node.len() as u64,
            });
        }
        // Job attribution indexes `schedule.jobs`; an out-of-range index
        // from an adversarial frame must be refused here, where it is a
        // typed error, not inside `apply_event`, where it is a panic.
        let job = match ev.kind {
            WindowKind::Sample { job, .. } | WindowKind::Gap { job, .. } => job,
            WindowKind::NodeRest { .. } => None,
        };
        if let Some(j) = job {
            if j >= self.schedule.jobs.len() {
                return Err(StreamError::InvalidJob {
                    node: ev.node,
                    slot: ev.slot,
                    window: ev.window,
                    job: j as u64,
                    jobs: self.schedule.jobs.len() as u64,
                });
            }
        }
        let floor = self.channel(ev.node, ev.slot).map_or(0, |ch| ch.floor);
        if ev.window < floor {
            return Err(StreamError::LateArrival {
                node: ev.node,
                slot: ev.slot,
                window: ev.window,
                floor,
            });
        }
        // The ring offset the event would occupy.  Bounding it (and
        // checking the usize conversion rather than `as`-truncating) is
        // what keeps a far-future window from demanding an unbounded ring
        // allocation or landing in some other window's slot.
        let span = ev.window - floor;
        match usize::try_from(span) {
            Ok(idx) if span < self.cfg.max_span_windows => Ok(idx),
            _ => Err(StreamError::SpanOverflow {
                node: ev.node,
                slot: ev.slot,
                window: ev.window,
                floor,
                max_span: self.cfg.max_span_windows,
            }),
        }
    }

    /// The (possibly unmaterialized) channel of `(node, slot)`.
    fn channel(&self, node: u32, slot: u8) -> Option<&Channel<O>> {
        let shard = &self.shards[node as usize % self.cfg.shards];
        let local = (node as usize / self.cfg.shards) * CHANNELS_PER_NODE + slot as usize;
        shard.channels.get(local).and_then(Option::as_ref)
    }

    /// Counts a rejection in the matching [`StreamStats`] counter.
    fn count_reject(&mut self, err: &StreamError) {
        match err {
            StreamError::LateArrival { .. } => self.stats.late_rejects += 1,
            StreamError::InvalidChannel { .. } => self.stats.channel_rejects += 1,
            StreamError::SpanOverflow { .. } => self.stats.span_rejects += 1,
            StreamError::InvalidJob { .. } => self.stats.job_rejects += 1,
        }
    }

    /// Ingests one event, buffering it until its window is final.
    ///
    /// Adversarial or degraded events are counted and rejected with a
    /// typed [`StreamError`] — late windows ([`StreamError::LateArrival`]),
    /// channels outside the schedule ([`StreamError::InvalidChannel`]),
    /// windows beyond the buffering span ([`StreamError::SpanOverflow`]),
    /// and out-of-range job attributions ([`StreamError::InvalidJob`]).
    /// Every check runs before any state is touched, so a rejected event
    /// leaves the engine exactly as it was and later ingests proceed
    /// normally.
    pub fn ingest(&mut self, ev: WindowEvent) -> Result<(), StreamError> {
        let idx = match self.admit(&ev) {
            Ok(idx) => idx,
            Err(e) => {
                self.count_reject(&e);
                return Err(e);
            }
        };
        let horizon = self.cfg.reorder_horizon;
        let schedule = self.schedule;
        let nshards = self.cfg.shards;
        let shard = &mut self.shards[ev.node as usize % nshards];
        let local = (ev.node as usize / nshards) * CHANNELS_PER_NODE + ev.slot as usize;
        if local >= shard.channels.len() {
            shard.channels.resize_with(local + 1, || None);
        }
        let ch = match &mut shard.channels[local] {
            Some(ch) => ch,
            vacant => {
                shard.live += 1;
                vacant.insert(Channel::default())
            }
        };
        debug_assert_eq!(idx as u64, ev.window - ch.floor);
        shard.events += 1;
        self.stats.events += 1;
        match ev.kind {
            WindowKind::Sample { .. } => self.stats.samples += 1,
            WindowKind::Gap { .. } => self.stats.gaps += 1,
            WindowKind::NodeRest { .. } => self.stats.rest_samples += 1,
        }
        ch.max_seen = ch.max_seen.max(ev.window);
        if idx >= ch.ring.len() {
            // Lazy growth to the span actually buffered — a huge horizon
            // must not preallocate anything (it only *permits* lateness).
            ch.ring.resize(idx + 1, Slot::Empty);
        }
        let slot = &mut ch.ring[idx];
        let fresh = match slot {
            Slot::Empty => {
                *slot = Slot::One(ev);
                true
            }
            Slot::One(_) => {
                let mut evs = shard.spare.pop().unwrap_or_default();
                let Slot::One(first) = std::mem::replace(slot, Slot::Empty) else {
                    unreachable!("matched One above")
                };
                evs.push(first);
                evs.push(ev);
                *slot = Slot::Many(evs);
                false
            }
            Slot::Many(evs) => {
                evs.push(ev);
                false
            }
        };
        if fresh {
            ch.buffered += 1;
            self.stats.buffered_windows += 1;
        }
        release_ready(ch, &mut shard.spare, &mut self.stats, schedule, horizon);
        self.stats.peak_channel_windows = self.stats.peak_channel_windows.max(ch.buffered);
        self.stats.peak_buffered_windows = self
            .stats
            .peak_buffered_windows
            .max(self.stats.buffered_windows);
        Ok(())
    }

    /// Ingests one channel block in stored (arrival) order — the columnar
    /// generator's delivery path.  Strictly-ascending blocks landing on an
    /// empty reorder ring (every clean channel, and any fault plan without
    /// reordering or duplication) take a columnar fast path: the rows that
    /// are already final fold straight into the channel partial as one
    /// range ([`FleetObserver::fold_rows`]) and only the in-horizon tail
    /// touches the ring.  The fold performs the identical observer-call
    /// sequence the per-event path would, so results — and every ingest
    /// statistic, including the buffered-window peaks — are bit-identical.
    /// Other blocks fall back to row-by-row [`StreamEngine::ingest`],
    /// stopping at the first rejection exactly like
    /// [`StreamEngine::ingest_all`] (the rows before it stay applied; the
    /// rejected row leaves no trace).  A block naming a channel outside
    /// the schedule is refused atomically with
    /// [`StreamError::InvalidChannel`] before any row is touched.
    pub fn ingest_block(&mut self, block: &ColumnBlock) -> Result<(), StreamError> {
        // Every row shares the block's channel, so the channel bounds are
        // checked once, up front, and the rejection is atomic.
        if (block.slot() as usize) >= CHANNELS_PER_NODE
            || (block.node() as usize) >= self.schedule.per_node.len()
        {
            let err = StreamError::InvalidChannel {
                node: block.node(),
                slot: block.slot(),
                nodes: self.schedule.per_node.len() as u64,
            };
            self.count_reject(&err);
            return Err(err);
        }
        if self.try_ingest_block_inorder(block) {
            return Ok(());
        }
        for ev in block.iter() {
            self.ingest(ev)?;
        }
        Ok(())
    }

    /// The in-order columnar fast path (see [`StreamEngine::ingest_block`]).
    /// Returns `false` — leaving the engine untouched — when the block
    /// needs the general per-event path: non-monotonic or duplicated
    /// windows, a non-empty reorder ring, rows behind the release floor,
    /// or rows the per-event path would reject (bad job attributions,
    /// spans beyond the buffering bound), so that every rejection is
    /// reported with the per-event path's exact typed error and prefix
    /// semantics.  The caller has already validated the block's channel.
    fn try_ingest_block_inorder(&mut self, block: &ColumnBlock) -> bool {
        let ws = block.windows();
        let n = ws.len();
        if n == 0 {
            return true;
        }
        if !ws.windows(2).all(|p| p[0] < p[1]) {
            return false;
        }
        // Rows with out-of-range job attributions must surface through the
        // per-event path's typed rejection, never reach `fold_rows`.
        let jobs_len = self.schedule.jobs.len() as u64;
        if block
            .jobs()
            .iter()
            .any(|&j| j != NO_JOB && u64::from(j) >= jobs_len)
        {
            return false;
        }
        let horizon = self.cfg.reorder_horizon;
        let schedule = self.schedule;
        let nshards = self.cfg.shards;

        // Every check below reads the channel's current state without
        // materializing it, so a block routed to the fallback (or rejected
        // there) has not touched the engine yet.
        let (floor0, buffered0, max_seen0) = match self.channel(block.node(), block.slot()) {
            Some(ch) => (ch.floor, ch.buffered, ch.max_seen),
            None => (0, 0, 0),
        };
        if buffered0 != 0 || ws[0] < floor0 {
            return false;
        }

        // Rows final once the whole block is seen: window + horizon at or
        // below the final high-water mark.  Ascending windows make this a
        // prefix, released by the per-event path in exactly row order.
        let max_after = max_seen0.max(ws[n - 1]);
        let split = ws.partition_point(|&w| w.saturating_add(horizon) <= max_after);

        // Buffered-occupancy peaks the per-event path would have recorded:
        // after ingesting row `i` (running high-water mark `m`), the ring
        // holds the rows not yet releasable — a sliding window over the
        // ascending lane, scanned with two cursors.  The same scan tracks
        // the release floor each row would be admitted against, so rows
        // the per-event path would reject as [`StreamError::SpanOverflow`]
        // force the fallback (which reports the typed error with its
        // exact prefix semantics).
        let buffered_before = self.stats.buffered_windows;
        let mut peak = 0usize;
        let mut lo = 0usize;
        for (i, &w) in ws.iter().enumerate() {
            // `lo` reflects the releases rows `0..i` triggered, so this is
            // the floor the per-event path would check row `i` against.
            let floor_now = if lo == 0 { floor0 } else { ws[lo - 1] + 1 };
            let span = w - floor_now;
            if span >= self.cfg.max_span_windows || usize::try_from(span).is_err() {
                return false;
            }
            let m = max_seen0.max(w);
            while ws[lo].saturating_add(horizon) <= m {
                lo += 1;
            }
            peak = peak.max(i - lo + 1);
        }

        let node = block.node() as usize;
        let shard = &mut self.shards[node % nshards];
        let local = (node / nshards) * CHANNELS_PER_NODE + block.slot() as usize;
        if local >= shard.channels.len() {
            shard.channels.resize_with(local + 1, || None);
        }
        let ch = match &mut shard.channels[local] {
            Some(ch) => ch,
            vacant => {
                shard.live += 1;
                vacant.insert(Channel::default())
            }
        };
        debug_assert!(ch.ring.iter().all(|s| !s.is_present()));
        ch.ring.clear();

        // Per-kind tallies straight off the tag lane.
        const TAG_SAMPLE: u8 = Tag::Sample as u8;
        const TAG_REST: u8 = Tag::NodeRest as u8;
        let mut samples = 0u64;
        let mut rest = 0u64;
        for &t in block.tags() {
            match t {
                TAG_SAMPLE => samples += 1,
                TAG_REST => rest += 1,
                _ => {}
            }
        }
        shard.events += n as u64;
        self.stats.events += n as u64;
        self.stats.samples += samples;
        self.stats.rest_samples += rest;
        self.stats.gaps += n as u64 - samples - rest;

        ch.max_seen = max_after;
        ch.partial.fold_rows(schedule, block, 0..split);
        self.stats.released_windows += split as u64;
        if split > 0 {
            ch.floor = ws[split - 1] + 1;
        }
        for (i, &w) in ws.iter().enumerate().skip(split) {
            // In bounds: every row's span against its admission floor was
            // validated above, and the floor only advanced since.
            let idx = usize::try_from(w - ch.floor).expect("tail span validated before mutation");
            if idx >= ch.ring.len() {
                ch.ring.resize(idx + 1, Slot::Empty);
            }
            ch.ring[idx] = Slot::One(block.event(i));
            ch.buffered += 1;
        }
        self.stats.buffered_windows += n - split;
        self.stats.peak_channel_windows = self.stats.peak_channel_windows.max(peak);
        self.stats.peak_buffered_windows =
            self.stats.peak_buffered_windows.max(buffered_before + peak);
        true
    }

    /// Ingests a sequence of events, stopping at the first rejection.
    pub fn ingest_all(
        &mut self,
        events: impl IntoIterator<Item = WindowEvent>,
    ) -> Result<(), StreamError> {
        for ev in events {
            self.ingest(ev)?;
        }
        Ok(())
    }

    /// Drains every reorder buffer into its channel partial — the
    /// end-of-stream signal, after which a snapshot covers every ingested
    /// window.
    pub fn flush(&mut self) {
        let schedule = self.schedule;
        for shard in &mut self.shards {
            let spare = &mut shard.spare;
            for ch in shard.channels.iter_mut().flatten() {
                while let Some(slot) = ch.ring.pop_front() {
                    // The ring's last slot is always present (it was
                    // created for a delivered window), so the floor ends at
                    // max delivered window + 1 either way.
                    ch.floor += 1;
                    if slot.is_present() {
                        apply_slot(&mut ch.partial, schedule, slot, spare);
                        ch.buffered -= 1;
                        self.stats.buffered_windows -= 1;
                        self.stats.released_windows += 1;
                    }
                }
            }
        }
    }

    /// The merged observer over every window ingested so far — released
    /// *and* still-buffered ones, so a mid-stream snapshot equals the
    /// batch result over exactly the ingested window set.
    ///
    /// Channels merge in the batch simulation's canonical order (nodes
    /// ascending; GPU slots `0..4`, then rest-of-node), which makes the
    /// result independent of the shard count and, for channel-grouped
    /// observers, bit-identical to [`pmss_telemetry::simulate_fleet`].
    pub fn snapshot(&self) -> O {
        let nshards = self.cfg.shards;
        let mut keys: Vec<(u32, u8, usize, usize)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            for (li, ch) in shard.channels.iter().enumerate() {
                if ch.is_some() {
                    let node = (li / CHANNELS_PER_NODE) * nshards + si;
                    let slot = (li % CHANNELS_PER_NODE) as u8;
                    keys.push((node as u32, slot, si, li));
                }
            }
        }
        keys.sort_unstable_by_key(|&(node, slot, ..)| (node, slot));
        let mut out = O::default();
        for (_, _, si, li) in keys {
            let ch = self.shards[si].channels[li].as_ref().expect("live channel");
            let mut part = ch.partial.clone();
            for slot in &ch.ring {
                match slot {
                    Slot::Empty => {}
                    Slot::One(ev) => apply_event(&mut part, self.schedule, ev),
                    Slot::Many(evs) => {
                        for e in evs {
                            apply_event(&mut part, self.schedule, e);
                        }
                    }
                }
            }
            out.merge(part);
        }
        out
    }

    /// Flushes and returns the final observer with the ingest tallies.
    pub fn finish(mut self) -> (O, StreamStats) {
        self.flush();
        (self.snapshot(), self.stats)
    }

    /// Publishes ingest tallies into a metrics registry under `stream.*`:
    /// event/sample/gap counters, reorder-buffer occupancy (current and
    /// peak, against the declared bound), and shard imbalance (most-loaded
    /// shard's event share over a perfectly balanced share).
    pub fn publish_metrics(&self, m: &mut Metrics) {
        m.add("stream.events", self.stats.events);
        m.add("stream.samples", self.stats.samples);
        m.add("stream.gaps", self.stats.gaps);
        m.add("stream.rest_samples", self.stats.rest_samples);
        m.add("stream.released_windows", self.stats.released_windows);
        m.add("stream.late_rejects", self.stats.late_rejects);
        m.add("stream.channel_rejects", self.stats.channel_rejects);
        m.add("stream.span_rejects", self.stats.span_rejects);
        m.add("stream.job_rejects", self.stats.job_rejects);
        m.gauge_set("stream.shards", self.cfg.shards as f64);
        m.gauge_set("stream.reorder_horizon", self.cfg.reorder_horizon as f64);
        m.gauge_set(
            "stream.buffered_windows",
            self.stats.buffered_windows as f64,
        );
        m.gauge_set(
            "stream.peak_buffered_windows",
            self.stats.peak_buffered_windows as f64,
        );
        m.gauge_set(
            "stream.peak_channel_windows",
            self.stats.peak_channel_windows as f64,
        );
        m.gauge_set("stream.buffer_bound", self.buffer_bound() as f64);
        m.gauge_set("stream.buffer_bytes", self.buffer_bytes() as f64);
        let max = self.shards.iter().map(|s| s.events).max().unwrap_or(0);
        if self.stats.events > 0 {
            let balanced = self.stats.events as f64 / self.cfg.shards as f64;
            m.gauge_set("stream.shard_imbalance", max as f64 / balanced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_core::EnergyLedger;
    use pmss_sched::{catalog, generate, TraceParams};
    use pmss_telemetry::{fleet_window_events, simulate_fleet, FleetConfig};

    fn schedule() -> Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 7,
                ..TraceParams::default()
            },
            &catalog(),
        )
    }

    #[test]
    fn config_validation_rejects_degenerate_shapes() {
        assert!(StreamConfig {
            shards: 0,
            ..StreamConfig::default()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            reorder_horizon: 0,
            ..StreamConfig::default()
        }
        .validate()
        .is_err());
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn buffer_bound_saturates_instead_of_truncating() {
        // A horizon wider than 32 bits must not wrap the declared bound:
        // the multiplication happens in u64 and saturates into usize.
        let sched = schedule();
        let cfg = StreamConfig {
            reorder_horizon: u64::MAX,
            ..StreamConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&sched, cfg).unwrap();
        assert_eq!(eng.buffer_bound(), 0); // no live channels yet
        let fleet_cfg = FleetConfig::default();
        let mut first = None;
        fleet_window_events(&sched, &fleet_cfg, |ev| {
            if first.is_none() {
                first = Some(ev);
            }
        });
        eng.ingest(first.expect("fleet emits events")).unwrap();
        assert_eq!(eng.buffer_bound(), usize::MAX);
    }

    #[test]
    fn for_plan_covers_the_plans_reorder_depth() {
        assert_eq!(StreamConfig::for_plan(None).reorder_horizon, 1);
        let plan = pmss_faults::FaultPlan::preset("frontier-typical").unwrap();
        let cfg = StreamConfig::for_plan(Some(&plan));
        assert!(cfg.reorder_horizon > plan.reorder_depth as u64);
    }

    #[test]
    fn clean_in_order_stream_matches_batch_bit_for_bit() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let batch: EnergyLedger = simulate_fleet(&sched, &cfg);
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
        });
        let (ledger, stats) = eng.finish();
        assert_eq!(ledger, batch);
        assert!(stats.events > 0);
        assert_eq!(stats.late_rejects, 0);
    }

    #[test]
    fn snapshot_is_shard_count_invariant() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let mut ledgers = Vec::new();
        for shards in [1, 3] {
            let mut eng: StreamEngine<'_, EnergyLedger> =
                StreamEngine::new(&sched, StreamConfig::default().with_shards(shards)).unwrap();
            fleet_window_events(&sched, &cfg, |ev| {
                eng.ingest(ev).unwrap();
            });
            ledgers.push(eng.finish().0);
        }
        assert_eq!(ledgers[0], ledgers[1]);
    }

    #[test]
    fn late_arrival_is_rejected_without_corrupting_state() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(
            &sched,
            StreamConfig {
                reorder_horizon: 2,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let mk = |window: u64| WindowEvent {
            node: 0,
            slot: 0,
            sku: 0,
            window,
            rank: window,
            t_s: window as f64 * 15.0,
            span_s: 15.0,
            kind: WindowKind::Sample {
                power_w: 300.0,
                job: None,
            },
        };
        eng.ingest(mk(0)).unwrap();
        eng.ingest(mk(5)).unwrap(); // finalizes window 0, floor -> 1
        let err = eng.ingest(mk(0)).unwrap_err();
        assert!(matches!(err, StreamError::LateArrival { window: 0, .. }));
        assert_eq!(eng.stats().late_rejects, 1);
        // A never-released in-horizon window is still welcome out of order.
        eng.ingest(mk(4)).unwrap();
        let (ledger, stats) = eng.finish();
        assert_eq!(stats.samples, 3);
        assert_eq!(ledger.coverage().observed_s, 3.0 * 15.0);
    }

    #[test]
    fn buffered_windows_respect_the_declared_bound() {
        let sched = schedule();
        let horizon = 4u64;
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(
            &sched,
            StreamConfig {
                shards: 2,
                reorder_horizon: horizon,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let cfg = FleetConfig::default();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
            assert!(eng.stats().buffered_windows <= eng.buffer_bound());
        });
        assert!(eng.stats().peak_channel_windows <= horizon as usize);
    }

    #[test]
    fn block_ingest_matches_event_ingest_bit_for_bit() {
        let sched = schedule();
        // Clean (fast path throughout), a dropping plan (fast path over
        // windows with holes), and a reordering plan (per-event fallback):
        // the block path must reproduce the event path's ledger AND every
        // ingest statistic, peaks included.
        let plans = [
            None,
            Some(FaultPlan {
                drop_prob: 0.05,
                seed: 11,
                ..FaultPlan::default()
            }),
            Some(FaultPlan::preset("frontier-typical").unwrap()),
        ];
        for plan in plans {
            let cfg = FleetConfig {
                faults: plan.clone(),
                ..FleetConfig::default()
            };
            let stream_cfg = StreamConfig::for_plan(cfg.faults.as_ref());
            let mut by_event: StreamEngine<'_, EnergyLedger> =
                StreamEngine::new(&sched, stream_cfg).unwrap();
            pmss_telemetry::fleet_window_blocks(&sched, &cfg, |block| {
                for ev in block.iter() {
                    by_event.ingest(ev).unwrap();
                }
            });
            let mut by_block: StreamEngine<'_, EnergyLedger> =
                StreamEngine::new(&sched, stream_cfg).unwrap();
            pmss_telemetry::fleet_window_blocks(&sched, &cfg, |block| {
                by_block.ingest_block(block).unwrap();
            });
            assert_eq!(by_block.stats(), by_event.stats(), "plan {plan:?}");
            let (event_ledger, event_stats) = by_event.finish();
            let (block_ledger, block_stats) = by_block.finish();
            assert_eq!(block_ledger, event_ledger, "plan {plan:?}");
            assert_eq!(block_stats, event_stats, "plan {plan:?}");
            assert!(block_stats.events > 0);
        }
    }

    #[test]
    fn buffer_bytes_reports_retained_ring_memory() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        assert_eq!(eng.buffer_bytes(), 0);
        let cfg = FleetConfig::default();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
        });
        // Rings are retained after release, so the gauge stays nonzero
        // even at steady state, and the metric mirrors it.
        assert!(eng.buffer_bytes() > 0);
        let mut m = Metrics::default();
        eng.publish_metrics(&mut m);
        assert_eq!(
            m.gauge("stream.buffer_bytes"),
            Some(eng.buffer_bytes() as f64)
        );
    }

    #[test]
    fn duplicate_deliveries_spill_and_release_in_arrival_order() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(
            &sched,
            StreamConfig {
                reorder_horizon: 3,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let mk = |window: u64, power_w: f64| WindowEvent {
            node: 0,
            slot: 0,
            sku: 0,
            window,
            rank: window,
            t_s: window as f64 * 15.0,
            span_s: 15.0,
            kind: WindowKind::Sample { power_w, job: None },
        };
        // Window 0 delivered three times (spills One -> Many), then
        // finalized by window 3.
        eng.ingest(mk(0, 100.0)).unwrap();
        eng.ingest(mk(0, 250.0)).unwrap();
        eng.ingest(mk(0, 430.0)).unwrap();
        assert_eq!(eng.stats().buffered_windows, 1, "duplicates share a window");
        eng.ingest(mk(3, 100.0)).unwrap();
        assert_eq!(eng.stats().released_windows, 1);
        let (ledger, stats) = eng.finish();
        assert_eq!(stats.samples, 4);
        // All three duplicate deliveries were applied.
        assert_eq!(ledger.coverage().observed_s, 4.0 * 15.0);
    }

    #[test]
    fn metrics_report_the_ingest_shape() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default().with_shards(2)).unwrap();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
        });
        let mut m = Metrics::default();
        eng.publish_metrics(&mut m);
        assert_eq!(m.counter("stream.events"), eng.stats().events);
        assert!(m.gauge("stream.shard_imbalance").unwrap() >= 1.0);
        assert_eq!(m.gauge("stream.shards"), Some(2.0));
    }

    fn sample(node: u32, slot: u8, window: u64, job: Option<usize>) -> WindowEvent {
        WindowEvent {
            node,
            slot,
            sku: 0,
            window,
            rank: window,
            t_s: window as f64 * 15.0,
            span_s: 15.0,
            kind: WindowKind::Sample {
                power_w: 300.0,
                job,
            },
        }
    }

    #[test]
    fn adversarial_channel_is_rejected_with_prior_state_intact() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        eng.ingest(sample(0, 0, 0, None)).unwrap();
        let before: EnergyLedger = eng.snapshot();
        let stats_before = eng.stats();
        // A slot past rest-of-node and a node past the fleet both name a
        // channel the schedule does not have.
        let err = eng.ingest(sample(0, REST_SLOT + 1, 0, None)).unwrap_err();
        assert!(matches!(err, StreamError::InvalidChannel { slot, .. } if slot == REST_SLOT + 1));
        let err = eng.ingest(sample(u32::MAX, 0, 0, None)).unwrap_err();
        assert!(matches!(
            err,
            StreamError::InvalidChannel { node: u32::MAX, .. }
        ));
        assert_eq!(eng.stats().channel_rejects, 2);
        assert_eq!(eng.snapshot(), before, "rejected frames touched state");
        assert_eq!(
            StreamStats {
                channel_rejects: 0,
                ..eng.stats()
            },
            stats_before
        );
    }

    #[test]
    fn far_future_window_is_rejected_as_span_overflow() {
        let sched = schedule();
        let cfg = StreamConfig {
            max_span_windows: 8,
            ..StreamConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&sched, cfg).unwrap();
        eng.ingest(sample(0, 0, 7, None)).unwrap(); // span 7: buffered
        let err = eng.ingest(sample(0, 0, 8, None)).unwrap_err(); // one past
        assert!(matches!(
            err,
            StreamError::SpanOverflow {
                window: 8,
                max_span: 8,
                ..
            }
        ));
        let err = eng.ingest(sample(0, 0, u64::MAX, None)).unwrap_err();
        assert!(matches!(
            err,
            StreamError::SpanOverflow {
                window: u64::MAX,
                ..
            }
        ));
        assert_eq!(eng.stats().span_rejects, 2);
        // The rejected frames left the channel fully usable.
        eng.ingest(sample(0, 0, 0, None)).unwrap();
        let (ledger, stats) = eng.finish();
        assert_eq!(stats.samples, 2);
        assert_eq!(ledger.coverage().observed_s, 2.0 * 15.0);
    }

    #[test]
    fn out_of_schedule_job_is_rejected_as_invalid_job() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        let err = eng
            .ingest(sample(0, 0, 0, Some(sched.jobs.len())))
            .unwrap_err();
        assert!(matches!(err, StreamError::InvalidJob { .. }));
        assert_eq!(eng.stats().job_rejects, 1);
        assert_eq!(eng.stats().events, 0, "rejected before any tally");
    }

    #[test]
    fn adversarial_block_is_rejected_atomically() {
        let sched = schedule();
        let cfg = StreamConfig {
            max_span_windows: 8,
            ..StreamConfig::default()
        };
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&sched, cfg).unwrap();
        // A block on an out-of-schedule channel is refused as a whole.
        let mut bad_channel = ColumnBlock::new(u32::MAX, 0);
        bad_channel.push(&sample(u32::MAX, 0, 0, None));
        let err = eng.ingest_block(&bad_channel).unwrap_err();
        assert!(matches!(
            err,
            StreamError::InvalidChannel { node: u32::MAX, .. }
        ));
        assert_eq!(eng.stats().events, 0);
        // A poisoned row mid-block falls back to the per-event path: the
        // valid prefix lands, the bad row comes back as a typed error.
        let mut bad_job = ColumnBlock::new(0, 0);
        bad_job.push(&sample(0, 0, 0, None));
        bad_job.push(&sample(0, 0, 1, Some(sched.jobs.len())));
        let err = eng.ingest_block(&bad_job).unwrap_err();
        assert!(matches!(err, StreamError::InvalidJob { window: 1, .. }));
        assert_eq!(eng.stats().job_rejects, 1);
        assert_eq!(eng.stats().events, 1, "valid prefix was ingested");
        // Same prefix semantics for a far-future row inside a block.
        let mut far = ColumnBlock::new(1, 0);
        far.push(&sample(1, 0, 0, None));
        far.push(&sample(1, 0, 20, None));
        let err = eng.ingest_block(&far).unwrap_err();
        assert!(matches!(err, StreamError::SpanOverflow { window: 20, .. }));
        assert_eq!(eng.stats().span_rejects, 1);
        assert_eq!(eng.stats().events, 2);
    }
}
