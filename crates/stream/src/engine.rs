//! The streaming ingest engine: reorder-buffered, sharded, bounded-memory.
//!
//! Telemetry windows arrive as [`WindowEvent`]s, possibly out of order
//! within a bounded reorder horizon (a collection fabric's delivery jitter,
//! modeled by `pmss-faults`' bounded-buffer reordering).  The engine holds
//! one partial observer per telemetry channel plus a small per-channel
//! reorder buffer, releases windows into the partial once they can no
//! longer be preceded by a late sibling, and snapshots by merging the
//! partials in the batch simulation's canonical channel order — which is
//! what makes a snapshot bit-identical to [`simulate_fleet`] over the same
//! windows (see [`FleetObserver::CHANNEL_GROUPED`]).
//!
//! Memory is O(live channels × horizon) buffered windows, never O(trace).
//!
//! [`simulate_fleet`]: pmss_telemetry::simulate_fleet

use std::collections::BTreeMap;
use std::fmt;

use pmss_error::PmssError;
use pmss_faults::FaultPlan;
use pmss_obs::Metrics;
use pmss_sched::Schedule;
use pmss_telemetry::{apply_event, FleetObserver, WindowEvent, WindowKind};

/// Shape of a streaming ingest: how many shards partition the fleet and
/// how much delivery reordering the engine must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of ingest shards; channels are assigned by `node % shards`.
    pub shards: usize,
    /// Reorder horizon in windows: a window is buffered until a sibling
    /// `horizon` windows ahead has been seen, after which no earlier
    /// window can still arrive.  Must exceed the delivery lag bound
    /// (`FaultPlan::reorder_depth`); see [`StreamConfig::for_plan`].
    pub reorder_horizon: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            reorder_horizon: 1,
        }
    }
}

impl StreamConfig {
    /// The minimal safe configuration for telemetry degraded by `plan`:
    /// a horizon one past the plan's delivery-lag bound (`reorder_depth`),
    /// which is exactly enough to make every buffered window final before
    /// release.  A clean stream (no plan) gets horizon 1: each window is
    /// released as soon as its successor arrives.
    pub fn for_plan(plan: Option<&FaultPlan>) -> StreamConfig {
        let depth = plan
            .filter(|p| !p.is_noop())
            .map_or(0, |p| p.reorder_depth as u64);
        StreamConfig {
            shards: 1,
            reorder_horizon: depth + 1,
        }
    }

    /// Returns `self` with a different shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> StreamConfig {
        self.shards = shards;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PmssError> {
        if self.shards == 0 {
            return Err(PmssError::invalid_value(
                "stream shards",
                "0",
                "at least one ingest shard",
            ));
        }
        if self.reorder_horizon == 0 {
            return Err(PmssError::invalid_value(
                "stream reorder horizon",
                "0",
                "at least one window of lateness tolerance",
            ));
        }
        Ok(())
    }
}

/// Why the engine refused an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The event's window is behind its channel's release floor: an event
    /// at least `reorder_horizon` windows ahead was already seen, so this
    /// window was finalized and its telemetry can no longer be amended.
    LateArrival {
        /// Node of the offending event.
        node: u32,
        /// Channel slot of the offending event.
        slot: u8,
        /// The event's window.
        window: u64,
        /// The channel's release floor (first still-accepted window).
        floor: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::LateArrival {
                node,
                slot,
                window,
                floor,
            } => write!(
                f,
                "late arrival on channel ({node}, {slot}): window {window} is \
                 behind the release floor {floor} (delivery lag exceeded the \
                 configured reorder horizon)"
            ),
        }
    }
}

impl From<StreamError> for PmssError {
    fn from(e: StreamError) -> PmssError {
        PmssError::invalid_value(
            "stream event",
            e.to_string(),
            "delivery lag within the configured reorder horizon",
        )
    }
}

/// Ingest tallies, cheap enough to read after every event.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Events accepted (samples + gaps + rest-of-node).
    pub events: u64,
    /// GPU power samples accepted.
    pub samples: u64,
    /// Gap (lost-window) events accepted.
    pub gaps: u64,
    /// Rest-of-node samples accepted.
    pub rest_samples: u64,
    /// Windows released from reorder buffers into channel partials.
    pub released_windows: u64,
    /// Events rejected as [`StreamError::LateArrival`].
    pub late_rejects: u64,
    /// Windows currently buffered across all channels.
    pub buffered_windows: usize,
    /// High-water mark of `buffered_windows` (measured at release
    /// steady-state, so it respects the declared per-channel bound).
    pub peak_buffered_windows: usize,
    /// High-water mark of any single channel's buffered windows; bounded
    /// by the configured reorder horizon.
    pub peak_channel_windows: usize,
}

/// One telemetry channel's ingest state.
#[derive(Debug, Clone)]
struct Channel<O> {
    /// Windows below the floor, applied in ascending order.
    partial: O,
    /// Buffered in-horizon windows, keyed by window index; duplicate
    /// deliveries of one window keep their arrival order in the `Vec`.
    buffer: BTreeMap<u64, Vec<WindowEvent>>,
    /// Highest window seen on this channel.
    max_seen: u64,
    /// First window still accepted; everything below is final.
    floor: u64,
}

impl<O: FleetObserver + Default> Default for Channel<O> {
    fn default() -> Self {
        Channel {
            partial: O::default(),
            buffer: BTreeMap::new(),
            max_seen: 0,
            floor: 0,
        }
    }
}

/// One ingest shard: the channels of every node with `node % shards ==
/// shard index`, plus a delivered-event tally for imbalance accounting.
#[derive(Debug, Clone)]
struct Shard<O> {
    channels: BTreeMap<(u32, u8), Channel<O>>,
    events: u64,
}

impl<O> Default for Shard<O> {
    fn default() -> Self {
        Shard {
            channels: BTreeMap::new(),
            events: 0,
        }
    }
}

/// The streaming ingest engine, generic over the observer it maintains.
///
/// Snapshots are bit-identical to the batch path only for observers the
/// batch simulation accumulates per channel
/// ([`FleetObserver::CHANNEL_GROUPED`], i.e. the energy ledger); for other
/// observers a snapshot is the same telemetry under a different — equally
/// valid — floating-point association.
pub struct StreamEngine<'a, O: FleetObserver + Default + Clone> {
    schedule: &'a Schedule,
    cfg: StreamConfig,
    shards: Vec<Shard<O>>,
    stats: StreamStats,
}

impl<'a, O: FleetObserver + Default + Clone> StreamEngine<'a, O> {
    /// Creates an engine over `schedule`'s job log (needed to attribute
    /// sample events to jobs).
    pub fn new(schedule: &'a Schedule, cfg: StreamConfig) -> Result<Self, PmssError> {
        cfg.validate()?;
        Ok(StreamEngine {
            schedule,
            cfg,
            shards: (0..cfg.shards).map(|_| Shard::default()).collect(),
            stats: StreamStats::default(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Current ingest tallies.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The declared buffered-window bound: every live channel holds at
    /// most `reorder_horizon` windows, so total buffered memory is
    /// O(channels × horizon) — independent of trace length.
    pub fn buffer_bound(&self) -> usize {
        let channels: u64 = self.shards.iter().map(|s| s.channels.len() as u64).sum();
        // Multiply in u64 so a horizon above u32::MAX is not truncated on
        // 32-bit targets, then saturate into the platform's usize.
        let bound = channels.saturating_mul(self.cfg.reorder_horizon);
        usize::try_from(bound).unwrap_or(usize::MAX)
    }

    /// Ingests one event, buffering it until its window is final.
    ///
    /// Events whose window fell behind the channel's release floor (their
    /// delivery lag exceeded the configured horizon) are counted and
    /// rejected with [`StreamError::LateArrival`]; the engine's state is
    /// unchanged and later ingests proceed normally.
    pub fn ingest(&mut self, ev: WindowEvent) -> Result<(), StreamError> {
        let horizon = self.cfg.reorder_horizon;
        let shard = &mut self.shards[ev.node as usize % self.cfg.shards];
        let ch = shard.channels.entry(ev.channel()).or_default();
        if ev.window < ch.floor {
            self.stats.late_rejects += 1;
            return Err(StreamError::LateArrival {
                node: ev.node,
                slot: ev.slot,
                window: ev.window,
                floor: ch.floor,
            });
        }
        shard.events += 1;
        self.stats.events += 1;
        match ev.kind {
            WindowKind::Sample { .. } => self.stats.samples += 1,
            WindowKind::Gap { .. } => self.stats.gaps += 1,
            WindowKind::NodeRest { .. } => self.stats.rest_samples += 1,
        }
        ch.max_seen = ch.max_seen.max(ev.window);
        let fresh = match ch.buffer.entry(ev.window) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(vec![ev]);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().push(ev);
                false
            }
        };
        if fresh {
            self.stats.buffered_windows += 1;
        }
        // Release every window that can no longer be preceded: delivery
        // rank is window + lag with lag < horizon, and ranks arrive
        // non-decreasing, so once a window `max_seen` is delivered no
        // window at or below `max_seen - horizon` can still appear.
        let max_seen = ch.max_seen;
        while let Some((&w, _)) = ch.buffer.iter().next() {
            if w.saturating_add(horizon) > max_seen {
                break;
            }
            let evs = ch.buffer.remove(&w).expect("first key exists");
            for e in &evs {
                apply_event(&mut ch.partial, self.schedule, e);
            }
            ch.floor = w + 1;
            self.stats.buffered_windows -= 1;
            self.stats.released_windows += 1;
        }
        self.stats.peak_channel_windows = self.stats.peak_channel_windows.max(ch.buffer.len());
        self.stats.peak_buffered_windows = self
            .stats
            .peak_buffered_windows
            .max(self.stats.buffered_windows);
        Ok(())
    }

    /// Ingests a sequence of events, stopping at the first rejection.
    pub fn ingest_all(
        &mut self,
        events: impl IntoIterator<Item = WindowEvent>,
    ) -> Result<(), StreamError> {
        for ev in events {
            self.ingest(ev)?;
        }
        Ok(())
    }

    /// Drains every reorder buffer into its channel partial — the
    /// end-of-stream signal, after which a snapshot covers every ingested
    /// window.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            for ch in shard.channels.values_mut() {
                while let Some((w, evs)) = ch.buffer.pop_first() {
                    for e in &evs {
                        apply_event(&mut ch.partial, self.schedule, e);
                    }
                    ch.floor = w + 1;
                    self.stats.buffered_windows -= 1;
                    self.stats.released_windows += 1;
                }
            }
        }
    }

    /// The merged observer over every window ingested so far — released
    /// *and* still-buffered ones, so a mid-stream snapshot equals the
    /// batch result over exactly the ingested window set.
    ///
    /// Channels merge in the batch simulation's canonical order (nodes
    /// ascending; GPU slots `0..4`, then rest-of-node), which makes the
    /// result independent of the shard count and, for channel-grouped
    /// observers, bit-identical to [`pmss_telemetry::simulate_fleet`].
    pub fn snapshot(&self) -> O {
        let mut keys: Vec<(usize, (u32, u8))> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            keys.extend(shard.channels.keys().map(|&k| (i, k)));
        }
        keys.sort_unstable_by_key(|&(_, k)| k);
        let mut out = O::default();
        for (i, key) in keys {
            let ch = &self.shards[i].channels[&key];
            let mut part = ch.partial.clone();
            for evs in ch.buffer.values() {
                for e in evs {
                    apply_event(&mut part, self.schedule, e);
                }
            }
            out.merge(part);
        }
        out
    }

    /// Flushes and returns the final observer with the ingest tallies.
    pub fn finish(mut self) -> (O, StreamStats) {
        self.flush();
        (self.snapshot(), self.stats)
    }

    /// Publishes ingest tallies into a metrics registry under `stream.*`:
    /// event/sample/gap counters, reorder-buffer occupancy (current and
    /// peak, against the declared bound), and shard imbalance (most-loaded
    /// shard's event share over a perfectly balanced share).
    pub fn publish_metrics(&self, m: &mut Metrics) {
        m.add("stream.events", self.stats.events);
        m.add("stream.samples", self.stats.samples);
        m.add("stream.gaps", self.stats.gaps);
        m.add("stream.rest_samples", self.stats.rest_samples);
        m.add("stream.released_windows", self.stats.released_windows);
        m.add("stream.late_rejects", self.stats.late_rejects);
        m.gauge_set("stream.shards", self.cfg.shards as f64);
        m.gauge_set("stream.reorder_horizon", self.cfg.reorder_horizon as f64);
        m.gauge_set(
            "stream.buffered_windows",
            self.stats.buffered_windows as f64,
        );
        m.gauge_set(
            "stream.peak_buffered_windows",
            self.stats.peak_buffered_windows as f64,
        );
        m.gauge_set(
            "stream.peak_channel_windows",
            self.stats.peak_channel_windows as f64,
        );
        m.gauge_set("stream.buffer_bound", self.buffer_bound() as f64);
        let max = self.shards.iter().map(|s| s.events).max().unwrap_or(0);
        if self.stats.events > 0 {
            let balanced = self.stats.events as f64 / self.cfg.shards as f64;
            m.gauge_set("stream.shard_imbalance", max as f64 / balanced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmss_core::EnergyLedger;
    use pmss_sched::{catalog, generate, TraceParams};
    use pmss_telemetry::{fleet_window_events, simulate_fleet, FleetConfig};

    fn schedule() -> Schedule {
        generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 7,
                ..TraceParams::default()
            },
            &catalog(),
        )
    }

    #[test]
    fn config_validation_rejects_degenerate_shapes() {
        assert!(StreamConfig {
            shards: 0,
            reorder_horizon: 1
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            shards: 1,
            reorder_horizon: 0
        }
        .validate()
        .is_err());
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn buffer_bound_saturates_instead_of_truncating() {
        // A horizon wider than 32 bits must not wrap the declared bound:
        // the multiplication happens in u64 and saturates into usize.
        let sched = schedule();
        let cfg = StreamConfig {
            shards: 1,
            reorder_horizon: u64::MAX,
        };
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(&sched, cfg).unwrap();
        assert_eq!(eng.buffer_bound(), 0); // no live channels yet
        let fleet_cfg = FleetConfig::default();
        let mut first = None;
        fleet_window_events(&sched, &fleet_cfg, |ev| {
            if first.is_none() {
                first = Some(ev);
            }
        });
        eng.ingest(first.expect("fleet emits events")).unwrap();
        assert_eq!(eng.buffer_bound(), usize::MAX);
    }

    #[test]
    fn for_plan_covers_the_plans_reorder_depth() {
        assert_eq!(StreamConfig::for_plan(None).reorder_horizon, 1);
        let plan = pmss_faults::FaultPlan::preset("frontier-typical").unwrap();
        let cfg = StreamConfig::for_plan(Some(&plan));
        assert!(cfg.reorder_horizon > plan.reorder_depth as u64);
    }

    #[test]
    fn clean_in_order_stream_matches_batch_bit_for_bit() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let batch: EnergyLedger = simulate_fleet(&sched, &cfg);
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
        });
        let (ledger, stats) = eng.finish();
        assert_eq!(ledger, batch);
        assert!(stats.events > 0);
        assert_eq!(stats.late_rejects, 0);
    }

    #[test]
    fn snapshot_is_shard_count_invariant() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let mut ledgers = Vec::new();
        for shards in [1, 3] {
            let mut eng: StreamEngine<'_, EnergyLedger> =
                StreamEngine::new(&sched, StreamConfig::default().with_shards(shards)).unwrap();
            fleet_window_events(&sched, &cfg, |ev| {
                eng.ingest(ev).unwrap();
            });
            ledgers.push(eng.finish().0);
        }
        assert_eq!(ledgers[0], ledgers[1]);
    }

    #[test]
    fn late_arrival_is_rejected_without_corrupting_state() {
        let sched = schedule();
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(
            &sched,
            StreamConfig {
                shards: 1,
                reorder_horizon: 2,
            },
        )
        .unwrap();
        let mk = |window: u64| WindowEvent {
            node: 0,
            slot: 0,
            window,
            rank: window,
            t_s: window as f64 * 15.0,
            span_s: 15.0,
            kind: WindowKind::Sample {
                power_w: 300.0,
                job: None,
            },
        };
        eng.ingest(mk(0)).unwrap();
        eng.ingest(mk(5)).unwrap(); // finalizes window 0, floor -> 1
        let err = eng.ingest(mk(0)).unwrap_err();
        assert!(matches!(err, StreamError::LateArrival { window: 0, .. }));
        assert_eq!(eng.stats().late_rejects, 1);
        // A never-released in-horizon window is still welcome out of order.
        eng.ingest(mk(4)).unwrap();
        let (ledger, stats) = eng.finish();
        assert_eq!(stats.samples, 3);
        assert_eq!(ledger.coverage().observed_s, 3.0 * 15.0);
    }

    #[test]
    fn buffered_windows_respect_the_declared_bound() {
        let sched = schedule();
        let horizon = 4u64;
        let mut eng: StreamEngine<'_, EnergyLedger> = StreamEngine::new(
            &sched,
            StreamConfig {
                shards: 2,
                reorder_horizon: horizon,
            },
        )
        .unwrap();
        let cfg = FleetConfig::default();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
            assert!(eng.stats().buffered_windows <= eng.buffer_bound());
        });
        assert!(eng.stats().peak_channel_windows <= horizon as usize);
    }

    #[test]
    fn metrics_report_the_ingest_shape() {
        let sched = schedule();
        let cfg = FleetConfig::default();
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default().with_shards(2)).unwrap();
        fleet_window_events(&sched, &cfg, |ev| {
            eng.ingest(ev).unwrap();
        });
        let mut m = Metrics::default();
        eng.publish_metrics(&mut m);
        assert_eq!(m.counter("stream.events"), eng.stats().events);
        assert!(m.gauge("stream.shard_imbalance").unwrap() >= 1.0);
        assert_eq!(m.gauge("stream.shards"), Some(2.0));
    }
}
