//! Snapshot/query view over a streamed energy ledger.
//!
//! A [`StreamState`] is what a monitoring consumer reads between ingest
//! batches: the ledger accumulated so far, the savings projection it
//! implies at full-Frontier scale, and the coverage-adjusted bounds on the
//! headline figure.  Each accessor mirrors the corresponding batch
//! pipeline computation exactly, so a state snapshotted after the last
//! window equals the batch artifact bit for bit.

use pmss_core::project::{project, Projection, ProjectionInput, SavingsBounds};
use pmss_core::{Coverage, EnergyLedger};
use pmss_econ::EconSeries;
use pmss_error::PmssError;
use pmss_telemetry::Pair;
use pmss_workloads::Table3;

use crate::engine::{StreamEngine, StreamStats};

/// A point-in-time view of a streamed fleet decomposition.
#[derive(Debug, Clone)]
pub struct StreamState {
    ledger: EnergyLedger,
    econ: Option<EconSeries>,
    frontier_factor: f64,
}

impl StreamState {
    /// Wraps a snapshotted ledger; `frontier_factor` extrapolates the
    /// simulated fleet to full-Frontier scale exactly like the batch
    /// pipeline's projection stage.
    pub fn new(ledger: EnergyLedger, frontier_factor: f64) -> StreamState {
        StreamState {
            ledger,
            econ: None,
            frontier_factor,
        }
    }

    /// Wraps a snapshotted ledger plus the per-slot economics series
    /// accumulated alongside it.
    pub fn with_econ(ledger: EnergyLedger, econ: EconSeries, frontier_factor: f64) -> StreamState {
        StreamState {
            ledger,
            econ: Some(econ),
            frontier_factor,
        }
    }

    /// Snapshots `engine` (released *and* buffered windows) into a state.
    pub fn capture(engine: &StreamEngine<'_, EnergyLedger>, frontier_factor: f64) -> StreamState {
        StreamState::new(engine.snapshot(), frontier_factor)
    }

    /// Snapshots a paired ledger + econ-series engine.  The ledger
    /// component is bit-identical to what [`StreamState::capture`] yields
    /// from a ledger-only engine over the same windows: `Pair` forwards
    /// each event to both members independently and both are
    /// channel-grouped, so pairing changes no ledger operation.
    pub fn capture_pair(
        engine: &StreamEngine<'_, Pair<EnergyLedger, EconSeries>>,
        frontier_factor: f64,
    ) -> StreamState {
        let pair = engine.snapshot();
        StreamState::with_econ(pair.a, pair.b, frontier_factor)
    }

    /// The decomposition ledger over every ingested window.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The per-slot economics series, when the ingest path accumulated
    /// one (see [`StreamState::capture_pair`]).
    pub fn econ(&self) -> Option<&EconSeries> {
        self.econ.as_ref()
    }

    /// The full-Frontier extrapolation factor this state projects with.
    pub fn frontier_factor(&self) -> f64 {
        self.frontier_factor
    }

    /// Per-mode coverage accounting of the ingested telemetry.
    pub fn coverage(&self) -> Coverage {
        self.ledger.coverage()
    }

    /// The savings projection at full-Frontier scale — the same
    /// computation as the batch pipeline's projection stage
    /// (`project(from_ledger(scaled(ledger)))`), so its rows are
    /// bit-identical once the same windows have been ingested.
    ///
    /// Errors while no energy has been ingested yet (a projection against
    /// zero energy is meaningless).
    pub fn projection(&self, table3: &Table3) -> Result<Projection, PmssError> {
        let scaled = self.ledger.scaled(self.frontier_factor)?;
        project(ProjectionInput::from_ledger(&scaled), table3)
    }

    /// Coverage-adjusted bounds on the best no-slowdown savings figure —
    /// the stream's honest headline while telemetry is still arriving or
    /// degraded.
    pub fn coverage_bounds(&self, table3: &Table3) -> Result<SavingsBounds, PmssError> {
        let p = self.projection(table3)?;
        Ok(p.best_free()
            .coverage_bounds_dt0(self.coverage().fraction()))
    }
}

/// A [`StreamState`] paired with the ingest tallies it was captured under
/// (what the `pmss stream` subcommand prints per snapshot).
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// The queryable state.
    pub state: StreamState,
    /// Ingest tallies at capture time.
    pub stats: StreamStats,
    /// Simulated stream time at capture, seconds from trace start.
    pub t_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use pmss_sched::{catalog, generate, TraceParams};
    use pmss_telemetry::{fleet_window_events, FleetConfig};
    use pmss_workloads::table3;

    #[test]
    fn state_mirrors_the_batch_projection_path() {
        let sched = generate(
            TraceParams {
                nodes: 4,
                duration_s: 4.0 * 3600.0,
                seed: 7,
                ..TraceParams::default()
            },
            &catalog(),
        );
        let mut eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        fleet_window_events(&sched, &FleetConfig::default(), |ev| {
            eng.ingest(ev).unwrap();
        });
        eng.flush();
        let factor = 3.5;
        let state = StreamState::capture(&eng, factor);
        let t3 = table3::compute_default();
        let p = state.projection(&t3).unwrap();
        let want = project(
            ProjectionInput::from_ledger(&state.ledger().scaled(factor).unwrap()),
            &t3,
        )
        .unwrap();
        assert_eq!(p.input.e_total_j, want.input.e_total_j);
        let b = state.coverage_bounds(&t3).unwrap();
        // Clean telemetry: full coverage collapses the interval.
        assert_eq!(b.coverage, 1.0);
        assert_eq!(b.lo_pct, b.hi_pct);
    }

    #[test]
    fn pairing_an_econ_series_leaves_the_ledger_bits_unchanged() {
        let sched = generate(
            TraceParams {
                nodes: 3,
                duration_s: 2.0 * 3600.0,
                seed: 11,
                ..TraceParams::default()
            },
            &catalog(),
        );
        let mut solo: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        let mut paired: StreamEngine<'_, Pair<EnergyLedger, EconSeries>> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        fleet_window_events(&sched, &FleetConfig::default(), |ev| {
            solo.ingest(ev).unwrap();
            paired.ingest(ev).unwrap();
        });
        solo.flush();
        paired.flush();
        let a = StreamState::capture(&solo, 2.0);
        let b = StreamState::capture_pair(&paired, 2.0);
        assert_eq!(format!("{:?}", a.ledger()), format!("{:?}", b.ledger()));
        let econ = b.econ().expect("paired capture carries the series");
        assert!(econ.total_gpu_j() > 0.0);
        assert_eq!(b.frontier_factor(), 2.0);
        assert!(a.econ().is_none());
    }

    #[test]
    fn empty_state_projects_to_a_typed_error() {
        let sched = generate(
            TraceParams {
                nodes: 1,
                duration_s: 3600.0,
                seed: 1,
                ..TraceParams::default()
            },
            &catalog(),
        );
        let eng: StreamEngine<'_, EnergyLedger> =
            StreamEngine::new(&sched, StreamConfig::default()).unwrap();
        let state = StreamState::capture(&eng, 1.0);
        let t3 = table3::compute_default();
        assert!(state.projection(&t3).is_err());
        assert!(state.coverage_bounds(&t3).is_err());
    }
}
