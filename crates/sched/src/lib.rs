//! # pmss-sched — synthetic SLURM-like scheduling substrate
//!
//! The paper joins out-of-band power telemetry with SLURM job logs to
//! analyze power per job, science domain, and job size (Table II b–c,
//! Table VII, Figs. 9–10).  This crate generates the equivalent synthetic
//! records: a science-domain catalog with Fig. 9-style workload archetypes
//! ([`domains`]), the Frontier queue policy ([`policy`], Table VII), and a
//! greedy trace generator producing job logs and per-node placements
//! ([`gen`]), plus log serialization ([`log`]) and aggregate statistics
//! ([`stats`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod domains;
pub mod gen;
pub mod log;
pub mod policy;
pub mod stats;

pub use domains::{catalog, ClassShares, DomainSpec};
pub use gen::{generate, Job, Placement, Schedule, TraceParams};
pub use policy::JobSizeClass;
pub use stats::{schedule_stats, ScheduleStats};
