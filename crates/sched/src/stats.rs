//! Schedule statistics: the aggregate views an operator (or the Fig. 10
//! analysis) needs from a job trace — node-hour shares per domain and size
//! class, duration distributions, and utilization.

use crate::gen::Schedule;
use crate::policy::JobSizeClass;

/// Aggregate statistics of one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleStats {
    /// Jobs per (domain, size-class) cell.
    pub job_counts: Vec<[usize; 5]>,
    /// Node-seconds per (domain, size-class) cell.
    pub node_seconds: Vec<[f64; 5]>,
    /// Total node-seconds scheduled.
    pub total_node_seconds: f64,
    /// Fleet utilization in `[0, 1]`.
    pub utilization: f64,
    /// Job-duration quantiles `(p10, p50, p90)`, seconds.
    pub duration_quantiles_s: (f64, f64, f64),
}

/// Computes statistics over a schedule with `n_domains` catalog entries.
pub fn schedule_stats(schedule: &Schedule, n_domains: usize) -> ScheduleStats {
    let mut job_counts = vec![[0usize; 5]; n_domains];
    let mut node_seconds = vec![[0.0f64; 5]; n_domains];
    let mut total = 0.0;
    let mut durations: Vec<f64> = Vec::with_capacity(schedule.jobs.len());

    for j in &schedule.jobs {
        let ns = j.num_nodes as f64 * j.duration_s();
        if j.domain < n_domains {
            job_counts[j.domain][j.size_class.index()] += 1;
            node_seconds[j.domain][j.size_class.index()] += ns;
        }
        total += ns;
        durations.push(j.duration_s());
    }
    durations.sort_by(|a, b| a.partial_cmp(b).expect("no NaN durations"));
    let q = |p: f64| -> f64 {
        if durations.is_empty() {
            0.0
        } else {
            let idx = ((durations.len() - 1) as f64 * p).round() as usize;
            durations[idx]
        }
    };

    ScheduleStats {
        job_counts,
        node_seconds,
        total_node_seconds: total,
        utilization: schedule.utilization(),
        duration_quantiles_s: (q(0.1), q(0.5), q(0.9)),
    }
}

impl ScheduleStats {
    /// Node-hour share of a domain, in `[0, 1]`.
    pub fn domain_share(&self, domain: usize) -> f64 {
        if self.total_node_seconds == 0.0 {
            return 0.0;
        }
        self.node_seconds
            .get(domain)
            .map(|row| row.iter().sum::<f64>() / self.total_node_seconds)
            .unwrap_or(0.0)
    }

    /// Node-hour share of a size class, in `[0, 1]`.
    pub fn size_share(&self, size: JobSizeClass) -> f64 {
        if self.total_node_seconds == 0.0 {
            return 0.0;
        }
        self.node_seconds
            .iter()
            .map(|row| row[size.index()])
            .sum::<f64>()
            / self.total_node_seconds
    }

    /// Total job count.
    pub fn total_jobs(&self) -> usize {
        self.job_counts.iter().flat_map(|r| r.iter()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::catalog;
    use crate::gen::{generate, TraceParams};

    fn stats() -> (ScheduleStats, usize) {
        let cat = catalog();
        let s = generate(
            TraceParams {
                nodes: 32,
                duration_s: 6.0 * 86_400.0,
                seed: 8,
                min_job_s: 900.0,
            },
            &cat,
        );
        (schedule_stats(&s, cat.len()), s.jobs.len())
    }

    #[test]
    fn counts_and_shares_are_consistent() {
        let (st, n_jobs) = stats();
        assert_eq!(st.total_jobs(), n_jobs);
        let share_sum: f64 = (0..8).map(|d| st.domain_share(d)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "{share_sum}");
        let size_sum: f64 = JobSizeClass::all().iter().map(|&c| st.size_share(c)).sum();
        assert!((size_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn domain_shares_track_catalog_activity() {
        // The deficit scheduler keeps realized node-hour shares near the
        // catalog's activity targets.
        let (st, _) = stats();
        for (d, spec) in catalog().iter().enumerate() {
            assert!(
                (st.domain_share(d) - spec.activity).abs() < 0.06,
                "{}: share {} vs target {}",
                spec.code,
                st.domain_share(d),
                spec.activity
            );
        }
    }

    #[test]
    fn duration_quantiles_are_ordered_and_bounded() {
        let (st, _) = stats();
        let (p10, p50, p90) = st.duration_quantiles_s;
        assert!(p10 <= p50 && p50 <= p90);
        assert!(p10 >= 900.0 - 1e-9, "min job duration respected");
        assert!(p90 <= 12.0 * 3600.0 + 1e-6, "walltime limit respected");
    }

    #[test]
    fn utilization_is_high_after_backfill() {
        let (st, _) = stats();
        assert!(st.utilization > 0.95, "utilization {}", st.utilization);
    }
}
