//! Science-domain catalog with workload profiles.
//!
//! The paper derives science domains from the `project_id` prefix in the
//! SLURM log and shows (Fig. 9) that each domain's GPU power distribution
//! is strongly modal: some domains are compute-intensive (a, b), some
//! latency/network/I-O bound (c, d), some memory-intensive (e, f), and some
//! multi-modal (g, h).  This catalog encodes eight such archetypes with
//! activity shares and workload-class mixtures calibrated so that the
//! fleet-wide GPU-hour split lands near the paper's Table IV
//! (29.8 % / 49.5 % / 19.5 % / 1.1 %).

use pmss_workloads::AppClass;

/// One science domain: its name (the `project_id` prefix), workload
/// mixture, job-size preferences, and share of fleet activity.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Domain code, used as the project-id prefix (e.g. `CPH` for
    /// computational physics ⇒ projects `CPH101`, `CPH102`, …).
    pub code: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Workload-class mixture `(class, weight)`; weights sum to 1.
    pub mix: Vec<(AppClass, f64)>,
    /// Job-size class weights `[A, B, C, D, E]`.
    pub size_weights: [f64; 5],
    /// Share of total fleet GPU-hours; catalog shares sum to 1.
    pub activity: f64,
}

impl DomainSpec {
    /// Samples a workload class index by `u` in `[0, 1)`.
    pub fn class_for(&self, u: f64) -> AppClass {
        let mut acc = 0.0;
        for &(class, w) in &self.mix {
            acc += w;
            if u < acc {
                return class;
            }
        }
        self.mix.last().expect("non-empty mix").0
    }
}

/// The eight-domain catalog mirroring the paper's Fig. 9 archetypes.
///
/// Activity shares and mixtures are the calibration that reproduces the
/// Table IV GPU-hour split; see `pmss-core`'s decomposition tests.
pub fn catalog() -> Vec<DomainSpec> {
    use AppClass::*;
    vec![
        // Fig. 9 (a)-(b): compute-intensive domains running near the TDP.
        DomainSpec {
            code: "CPH",
            name: "lattice/particle physics",
            mix: vec![(ComputeIntensive, 0.85), (MemoryIntensive, 0.15)],
            size_weights: [0.25, 0.35, 0.30, 0.07, 0.03],
            activity: 0.10,
        },
        DomainSpec {
            code: "MAT",
            name: "materials / electronic structure",
            mix: vec![
                (ComputeIntensive, 0.78),
                (MemoryIntensive, 0.17),
                (LatencyBound, 0.05),
            ],
            size_weights: [0.10, 0.35, 0.40, 0.10, 0.05],
            activity: 0.09,
        },
        // Fig. 9 (c)-(d): latency / network / IO bound domains.
        DomainSpec {
            code: "BIO",
            name: "bioinformatics / genomics",
            mix: vec![(LatencyBound, 0.80), (MemoryIntensive, 0.20)],
            size_weights: [0.02, 0.13, 0.40, 0.25, 0.20],
            activity: 0.16,
        },
        DomainSpec {
            code: "DAT",
            name: "data analytics / workflows",
            mix: vec![(LatencyBound, 0.75), (Mixed, 0.25)],
            size_weights: [0.02, 0.08, 0.35, 0.30, 0.25],
            activity: 0.13,
        },
        // Fig. 9 (e)-(f): memory-intensive domains.
        DomainSpec {
            code: "CLI",
            name: "climate / earth system",
            mix: vec![(MemoryIntensive, 0.92), (LatencyBound, 0.08)],
            size_weights: [0.30, 0.35, 0.25, 0.07, 0.03],
            activity: 0.21,
        },
        DomainSpec {
            code: "CFD",
            name: "computational fluid dynamics",
            mix: vec![(MemoryIntensive, 0.85), (ComputeIntensive, 0.15)],
            size_weights: [0.20, 0.35, 0.30, 0.10, 0.05],
            activity: 0.17,
        },
        // Fig. 9 (g)-(h): multi-modal domains.
        DomainSpec {
            code: "AST",
            name: "astrophysics",
            mix: vec![(Mixed, 1.0)],
            size_weights: [0.15, 0.30, 0.35, 0.12, 0.08],
            activity: 0.07,
        },
        DomainSpec {
            code: "FUS",
            name: "fusion / plasma",
            mix: vec![(Mixed, 0.55), (MemoryIntensive, 0.45)],
            size_weights: [0.10, 0.30, 0.40, 0.12, 0.08],
            activity: 0.07,
        },
    ]
}

/// Expected fleet-wide GPU-hour share per workload class implied by the
/// catalog (`Mixed` spreads evenly across the three base classes).
pub fn expected_class_shares(domains: &[DomainSpec]) -> ClassShares {
    let mut s = ClassShares::default();
    for d in domains {
        for &(class, w) in &d.mix {
            let a = d.activity * w;
            match class {
                AppClass::ComputeIntensive => s.compute += a,
                AppClass::MemoryIntensive => s.memory += a,
                AppClass::LatencyBound => s.latency += a,
                AppClass::Mixed => {
                    s.compute += a / 3.0;
                    s.memory += a / 3.0;
                    s.latency += a / 3.0;
                }
            }
        }
    }
    s
}

/// GPU-hour shares per base workload class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassShares {
    /// Compute-intensive share.
    pub compute: f64,
    /// Memory-intensive share.
    pub memory: f64,
    /// Latency/network/IO-bound share.
    pub latency: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activities_sum_to_one() {
        let total: f64 = catalog().iter().map(|d| d.activity).sum();
        assert!((total - 1.0).abs() < 1e-9, "activity sum {total}");
    }

    #[test]
    fn mixtures_sum_to_one() {
        for d in catalog() {
            let w: f64 = d.mix.iter().map(|&(_, w)| w).sum();
            assert!((w - 1.0).abs() < 1e-9, "{}: mixture sum {w}", d.code);
        }
    }

    #[test]
    fn size_weights_are_valid_distributions() {
        for d in catalog() {
            let s: f64 = d.size_weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: size weights {s}", d.code);
            assert!(d.size_weights.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn class_shares_match_calibration_targets() {
        // The catalog is calibrated so that the *observed* fleet
        // decomposition lands on Table IV (29.8 / 49.5 / 19.5 / 1.1 %; the
        // cross-crate integration tests assert that).  The raw mixture
        // differs from the observed split because mixed apps spread across
        // regions, CI apps stage data in the MI band, latency apps emit
        // some MI bursts, and a little scheduler idle always reads as
        // region 1.  These bounds pin the calibrated mixture itself.
        let s = expected_class_shares(&catalog());
        assert!((0.20..0.32).contains(&s.latency), "latency {}", s.latency);
        assert!((0.40..0.55).contains(&s.memory), "memory {}", s.memory);
        assert!((0.14..0.28).contains(&s.compute), "compute {}", s.compute);
        assert!(s.memory > s.latency && s.memory > s.compute, "MI dominates");
        let total = s.latency + s.memory + s.compute;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_sampling_follows_mixture() {
        let d = &catalog()[0]; // CPH: 85 % compute-intensive
        let n = 10_000;
        let ci = (0..n)
            .filter(|&i| d.class_for(i as f64 / n as f64) == AppClass::ComputeIntensive)
            .count();
        assert!((ci as f64 / n as f64 - 0.85).abs() < 0.01);
    }

    #[test]
    fn codes_are_unique() {
        let cat = catalog();
        let mut codes: Vec<_> = cat.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), cat.len());
    }
}
