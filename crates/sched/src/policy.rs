//! Frontier's job scheduling policy (paper Table VII): five job-size
//! classes with node ranges and maximum walltimes.

/// Total nodes of the full Frontier system the Table VII ranges refer to.
pub const FRONTIER_NODES: usize = 9408;

/// Job-size classes A–E from the paper's Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobSizeClass {
    /// 5645–9408 nodes, 12 h walltime.
    A,
    /// 1882–5644 nodes, 12 h walltime.
    B,
    /// 184–1881 nodes, 12 h walltime.
    C,
    /// 92–183 nodes, 6 h walltime.
    D,
    /// 1–91 nodes, 2 h walltime.
    E,
}

impl JobSizeClass {
    /// All classes, largest first (the paper's ordering).
    pub fn all() -> [JobSizeClass; 5] {
        [
            JobSizeClass::A,
            JobSizeClass::B,
            JobSizeClass::C,
            JobSizeClass::D,
            JobSizeClass::E,
        ]
    }

    /// Inclusive node-count range of the class (Table VII).
    pub fn node_range(self) -> (usize, usize) {
        match self {
            JobSizeClass::A => (5645, 9408),
            JobSizeClass::B => (1882, 5644),
            JobSizeClass::C => (184, 1881),
            JobSizeClass::D => (92, 183),
            JobSizeClass::E => (1, 91),
        }
    }

    /// Maximum walltime in hours (Table VII).
    pub fn max_walltime_h(self) -> f64 {
        match self {
            JobSizeClass::A | JobSizeClass::B | JobSizeClass::C => 12.0,
            JobSizeClass::D => 6.0,
            JobSizeClass::E => 2.0,
        }
    }

    /// The class a job of `nodes` nodes falls into.
    ///
    /// # Panics
    /// Panics for `nodes == 0` or `nodes > 9408`.
    pub fn of_nodes(nodes: usize) -> JobSizeClass {
        for class in Self::all() {
            let (lo, hi) = class.node_range();
            if (lo..=hi).contains(&nodes) {
                return class;
            }
        }
        panic!("node count {nodes} outside the Frontier range 1..=9408");
    }

    /// Single-letter label.
    pub fn label(self) -> char {
        match self {
            JobSizeClass::A => 'A',
            JobSizeClass::B => 'B',
            JobSizeClass::C => 'C',
            JobSizeClass::D => 'D',
            JobSizeClass::E => 'E',
        }
    }

    /// Index 0..5 (A = 0), for dense per-class tables.
    pub fn index(self) -> usize {
        match self {
            JobSizeClass::A => 0,
            JobSizeClass::B => 1,
            JobSizeClass::C => 2,
            JobSizeClass::D => 3,
            JobSizeClass::E => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_machine_without_gaps() {
        let mut prev_hi = 0usize;
        for class in JobSizeClass::all().iter().rev() {
            let (lo, hi) = class.node_range();
            assert_eq!(lo, prev_hi + 1, "gap below class {:?}", class);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, 9408);
    }

    #[test]
    fn classification_matches_table_vii() {
        assert_eq!(JobSizeClass::of_nodes(9408), JobSizeClass::A);
        assert_eq!(JobSizeClass::of_nodes(5645), JobSizeClass::A);
        assert_eq!(JobSizeClass::of_nodes(5644), JobSizeClass::B);
        assert_eq!(JobSizeClass::of_nodes(1882), JobSizeClass::B);
        assert_eq!(JobSizeClass::of_nodes(184), JobSizeClass::C);
        assert_eq!(JobSizeClass::of_nodes(183), JobSizeClass::D);
        assert_eq!(JobSizeClass::of_nodes(92), JobSizeClass::D);
        assert_eq!(JobSizeClass::of_nodes(91), JobSizeClass::E);
        assert_eq!(JobSizeClass::of_nodes(1), JobSizeClass::E);
    }

    #[test]
    fn walltimes_match_table_vii() {
        assert_eq!(JobSizeClass::A.max_walltime_h(), 12.0);
        assert_eq!(JobSizeClass::D.max_walltime_h(), 6.0);
        assert_eq!(JobSizeClass::E.max_walltime_h(), 2.0);
    }

    #[test]
    #[should_panic(expected = "outside the Frontier range")]
    fn zero_nodes_rejected() {
        let _ = JobSizeClass::of_nodes(0);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in JobSizeClass::all().iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
