//! Synthetic job-trace generation: the stand-in for three months of
//! Frontier SLURM history.
//!
//! A greedy backfilling placement fills a fleet of `nodes` nodes over
//! `duration_s` seconds: jobs draw a science domain (by activity share), a
//! size class (by the domain's size bias, Table VII ranges), a walltime
//! (bounded by the class limit), and a workload class (by the domain's
//! mixture).  The output carries exactly the fields the paper's Table II
//! lists for the job-scheduler log (b) and the per-node scheduler data (c).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmss_workloads::AppClass;

use crate::domains::DomainSpec;
use crate::policy::{JobSizeClass, FRONTIER_NODES};

/// One scheduled job — the Table II(b) record plus the synthesis metadata.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique job id.
    pub id: u64,
    /// Index into the domain catalog.
    pub domain: usize,
    /// Project id, `<domain code><number>` (the paper derives the science
    /// domain from this prefix).
    pub project_id: String,
    /// Allocated node count.
    pub num_nodes: usize,
    /// Size class (Table VII).
    pub size_class: JobSizeClass,
    /// Start time, seconds from trace begin.
    pub begin_s: f64,
    /// End time, seconds from trace begin.
    pub end_s: f64,
    /// Workload archetype driving the phase synthesis.
    pub app_class: AppClass,
    /// Per-job RNG seed for reproducible phase synthesis.
    pub seed: u64,
}

impl Job {
    /// Job duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.begin_s
    }
}

/// Per-node placement record — Table II(c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Job index into [`Schedule::jobs`].
    pub job: usize,
    /// Start time on this node, in seconds.
    pub begin_s: f64,
    /// End time on this node, in seconds.
    pub end_s: f64,
}

/// A complete synthetic trace: the job log plus per-node timelines.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All jobs, in start order.
    pub jobs: Vec<Job>,
    /// Per-node placements, each sorted by start time and non-overlapping.
    pub per_node: Vec<Vec<Placement>>,
    /// Trace horizon, in seconds.
    pub duration_s: f64,
}

impl Schedule {
    /// Total scheduled node-seconds divided by available node-seconds.
    pub fn utilization(&self) -> f64 {
        let used: f64 = self
            .per_node
            .iter()
            .flat_map(|p| p.iter().map(|pl| pl.end_s - pl.begin_s))
            .sum();
        used / (self.per_node.len() as f64 * self.duration_s)
    }

    /// Jobs of a given domain.
    pub fn jobs_of_domain(&self, domain: usize) -> impl Iterator<Item = &Job> {
        self.jobs.iter().filter(move |j| j.domain == domain)
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Fleet size in nodes.  The paper's system has 9408; experiments
    /// default to a scaled-down fleet and extrapolate.
    pub nodes: usize,
    /// Trace horizon in seconds (the paper: ~3 months).
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Minimum job duration, seconds.
    pub min_job_s: f64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            nodes: 64,
            duration_s: 7.0 * 86_400.0,
            seed: 2024,
            min_job_s: 900.0,
        }
    }
}

fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Generates a schedule over `domains` with greedy earliest-fit placement.
pub fn generate(params: TraceParams, domains: &[DomainSpec]) -> Schedule {
    assert!(params.nodes >= 1 && params.duration_s > 0.0);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // free_at[i]: time node i becomes available.
    let mut free_at = vec![0.0f64; params.nodes];
    let mut per_node: Vec<Vec<Placement>> = vec![Vec::new(); params.nodes];
    let mut jobs: Vec<Job> = Vec::new();

    // `activity` is a *GPU-hour* share, but the loop schedules *jobs* of
    // wildly different node-second footprints.  Domain selection is
    // therefore deficit-driven: each new job goes to the domain furthest
    // below its target share of the node-seconds scheduled so far.  This
    // keeps the realized shares on target at any trace length — an iid
    // draw would need thousands of jobs to converge.
    let mut ns_by_domain = vec![0.0f64; domains.len()];
    let mut total_ns = 0.0f64;
    // Same deficit logic one level down: workload classes within a domain.
    let mut ns_by_class: Vec<Vec<f64>> = domains.iter().map(|d| vec![0.0; d.mix.len()]).collect();

    loop {
        // Earliest-available nodes first.
        let mut order: Vec<usize> = (0..params.nodes).collect();
        order.sort_by(|&a, &b| free_at[a].partial_cmp(&free_at[b]).expect("no NaN times"));
        let earliest = free_at[order[0]];
        if earliest >= params.duration_s {
            break;
        }

        let d_idx = (0..domains.len())
            .max_by(|&a, &b| {
                let da = domains[a].activity * total_ns - ns_by_domain[a];
                let db = domains[b].activity * total_ns - ns_by_domain[b];
                da.partial_cmp(&db).expect("no NaN deficits")
            })
            .expect("non-empty catalog");
        let dom = &domains[d_idx];

        // Size class by domain bias, node count uniform within the class
        // range (clamped to the fleet).
        let class = JobSizeClass::all()[sample_weighted(&dom.size_weights, &mut rng)];
        let (lo, hi) = class.node_range();
        let want = rng.gen_range(lo..=hi);
        // The simulated fleet is a scaled-down Frontier: a job keeps its
        // *fractional* footprint of the machine, so the co-scheduling
        // structure (and the GPU-hour shares per domain and size class)
        // survive the scale-down.  `num_nodes` records the simulated
        // allocation; `size_class` keeps the paper-scale request.
        let scale = params.nodes as f64 / FRONTIER_NODES as f64;
        let num_nodes = ((want as f64 * scale).ceil() as usize).clamp(1, params.nodes);

        // Walltime: uniform between the minimum and the class limit, capped
        // by the remaining horizon.
        let max_s = class.max_walltime_h() * 3600.0;
        let dur = rng
            .gen_range(params.min_job_s..=max_s.max(params.min_job_s + 1.0))
            .min(params.duration_s);

        let picked = &order[..num_nodes];
        let begin = picked
            .iter()
            .map(|&n| free_at[n])
            .fold(0.0f64, f64::max)
            .max(earliest);
        if begin >= params.duration_s {
            // The earliest node still had room but the co-allocation does
            // not; retry with whatever fits next round.
            let n0 = order[0];
            free_at[n0] = params.duration_s;
            continue;
        }
        let end = (begin + dur).min(params.duration_s);

        let job_idx = jobs.len();
        let id = job_idx as u64 + 1;
        // Deficit with one-job lookahead: jobs are lumpy relative to a
        // domain's total, so the class choice accounts for this job's own
        // node-seconds (choose the class whose post-assignment deficit
        // stays largest, i.e. argmax deficit_c + ns * weight_c).
        let ns_preview = num_nodes as f64 * (end - begin);
        let class_idx = (0..dom.mix.len())
            .max_by(|&a, &b| {
                let da = dom.mix[a].1 * ns_by_domain[d_idx] - ns_by_class[d_idx][a]
                    + ns_preview * dom.mix[a].1;
                let db = dom.mix[b].1 * ns_by_domain[d_idx] - ns_by_class[d_idx][b]
                    + ns_preview * dom.mix[b].1;
                da.partial_cmp(&db).expect("no NaN deficits")
            })
            .expect("non-empty mix");
        jobs.push(Job {
            id,
            domain: d_idx,
            project_id: format!("{}{:03}", dom.code, 100 + (rng.gen_range(0..20))),
            num_nodes,
            size_class: class,
            begin_s: begin,
            end_s: end,
            app_class: dom.mix[class_idx].0,
            seed: rng.gen(),
        });
        for &n in picked {
            per_node[n].push(Placement {
                job: job_idx,
                begin_s: begin,
                end_s: end,
            });
            free_at[n] = end;
        }
        let ns = num_nodes as f64 * (end - begin);
        ns_by_domain[d_idx] += ns;
        ns_by_class[d_idx][class_idx] += ns;
        total_ns += ns;
    }

    // Backfill: real schedulers fill co-allocation gaps with small jobs.
    // Each gap on a node's timeline becomes a chain of single-node E-class
    // jobs, keeping fleet utilization near the >90 % of the production
    // system and populating the small-job rows of the Fig. 10 heatmaps.
    #[allow(clippy::needless_range_loop)] // the body mutates per_node[node]
    for node in 0..params.nodes {
        let mut gaps: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0f64;
        for p in &per_node[node] {
            if p.begin_s - t >= params.min_job_s {
                gaps.push((t, p.begin_s));
            }
            t = p.end_s;
        }
        if params.duration_s - t >= params.min_job_s {
            gaps.push((t, params.duration_s));
        }
        for (gap_lo, gap_hi) in gaps {
            let mut cursor = gap_lo;
            while gap_hi - cursor >= params.min_job_s {
                let class = JobSizeClass::E;
                let max_s = (class.max_walltime_h() * 3600.0).min(gap_hi - cursor);
                let dur = if max_s > params.min_job_s {
                    rng.gen_range(params.min_job_s..=max_s)
                } else {
                    max_s
                };
                let end = cursor + dur;

                let d_idx = (0..domains.len())
                    .max_by(|&a, &b| {
                        let da = domains[a].activity * total_ns - ns_by_domain[a];
                        let db = domains[b].activity * total_ns - ns_by_domain[b];
                        da.partial_cmp(&db).expect("no NaN deficits")
                    })
                    .expect("non-empty catalog");
                let dom = &domains[d_idx];
                let ns_preview = dur;
                let class_idx = (0..dom.mix.len())
                    .max_by(|&a, &b| {
                        let da = dom.mix[a].1 * ns_by_domain[d_idx] - ns_by_class[d_idx][a]
                            + ns_preview * dom.mix[a].1;
                        let db = dom.mix[b].1 * ns_by_domain[d_idx] - ns_by_class[d_idx][b]
                            + ns_preview * dom.mix[b].1;
                        da.partial_cmp(&db).expect("no NaN deficits")
                    })
                    .expect("non-empty mix");

                let job_idx = jobs.len();
                jobs.push(Job {
                    id: job_idx as u64 + 1,
                    domain: d_idx,
                    project_id: format!("{}{:03}", dom.code, 100 + (rng.gen_range(0..20))),
                    num_nodes: 1,
                    size_class: class,
                    begin_s: cursor,
                    end_s: end,
                    app_class: dom.mix[class_idx].0,
                    seed: rng.gen(),
                });
                per_node[node].push(Placement {
                    job: job_idx,
                    begin_s: cursor,
                    end_s: end,
                });
                ns_by_domain[d_idx] += dur;
                ns_by_class[d_idx][class_idx] += dur;
                total_ns += dur;
                cursor = end;
            }
        }
    }

    jobs.sort_by(|a, b| a.begin_s.partial_cmp(&b.begin_s).expect("no NaN"));
    // Re-index placements after the sort.
    let mut index_of_id = vec![0usize; jobs.len() + 1];
    for (i, j) in jobs.iter().enumerate() {
        index_of_id[j.id as usize] = i;
    }
    for node in &mut per_node {
        for p in node.iter_mut() {
            // placements recorded pre-sort job indices == id-1.
            p.job = index_of_id[p.job + 1];
        }
        node.sort_by(|a, b| a.begin_s.partial_cmp(&b.begin_s).expect("no NaN"));
    }

    Schedule {
        jobs,
        per_node,
        duration_s: params.duration_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::catalog;

    fn small_schedule() -> Schedule {
        generate(
            TraceParams {
                nodes: 16,
                duration_s: 86_400.0,
                seed: 7,
                min_job_s: 600.0,
            },
            &catalog(),
        )
    }

    #[test]
    fn placements_never_overlap_per_node() {
        let s = small_schedule();
        for node in &s.per_node {
            for w in node.windows(2) {
                assert!(
                    w[1].begin_s >= w[0].end_s - 1e-9,
                    "overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn utilization_is_high() {
        let s = small_schedule();
        assert!(s.utilization() > 0.85, "utilization {}", s.utilization());
        assert!(s.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn job_fields_are_consistent() {
        let s = small_schedule();
        assert!(!s.jobs.is_empty());
        let cat = catalog();
        for j in &s.jobs {
            assert!(j.end_s > j.begin_s);
            assert!(j.end_s <= s.duration_s + 1e-9);
            assert!(j.num_nodes >= 1 && j.num_nodes <= 16);
            assert!(j.project_id.starts_with(cat[j.domain].code));
            // On the scaled fleet every class is clamped to <= nodes; the
            // recorded class is the *requested* one.
            assert!(j.duration_s() <= j.size_class.max_walltime_h() * 3600.0 + 1e-6);
        }
    }

    #[test]
    fn placements_reference_their_jobs() {
        let s = small_schedule();
        for node in &s.per_node {
            for p in node {
                let j = &s.jobs[p.job];
                assert_eq!(p.begin_s, j.begin_s);
                assert_eq!(p.end_s, j.end_s);
            }
        }
        // Every job appears on exactly num_nodes (clamped) node timelines.
        let mut counts = vec![0usize; s.jobs.len()];
        for node in &s.per_node {
            for p in node {
                counts[p.job] += 1;
            }
        }
        for (j, &c) in s.jobs.iter().zip(&counts) {
            assert_eq!(c, j.num_nodes, "job {} placement count", j.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_schedule();
        let b = small_schedule();
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.jobs[0].project_id, b.jobs[0].project_id);
        assert_eq!(a.per_node[0], b.per_node[0]);
    }

    #[test]
    fn all_domains_appear_over_a_long_trace() {
        let s = generate(
            TraceParams {
                nodes: 32,
                duration_s: 21.0 * 86_400.0,
                seed: 9,
                min_job_s: 600.0,
            },
            &catalog(),
        );
        for d in 0..catalog().len() {
            assert!(
                s.jobs_of_domain(d).next().is_some(),
                "domain {d} never scheduled"
            );
        }
    }
}
