//! SLURM-like job-log serialization (paper Table II b).
//!
//! The paper's pipeline ingests scheduler logs as text records with
//! `job_id`, `project_id`, `num_nodes`, `begin_time`, and `end_time`.
//! This module renders a [`Schedule`](crate::gen::Schedule)'s job list in
//! that format and parses it back — a lossless round trip, so synthetic
//! traces can be stored, inspected, and re-analyzed like production logs.

use std::io::{self, BufRead, Write};

use pmss_workloads::AppClass;

use crate::gen::Job;
use crate::policy::JobSizeClass;

/// Column header of the log format.
pub const HEADER: &str = "job_id|project_id|num_nodes|size_class|begin_s|end_s|app_class|seed";

fn app_class_code(c: AppClass) -> &'static str {
    match c {
        AppClass::ComputeIntensive => "CI",
        AppClass::MemoryIntensive => "MI",
        AppClass::LatencyBound => "LB",
        AppClass::Mixed => "MX",
    }
}

fn parse_app_class(s: &str) -> Option<AppClass> {
    match s {
        "CI" => Some(AppClass::ComputeIntensive),
        "MI" => Some(AppClass::MemoryIntensive),
        "LB" => Some(AppClass::LatencyBound),
        "MX" => Some(AppClass::Mixed),
        _ => None,
    }
}

fn parse_size_class(s: &str) -> Option<JobSizeClass> {
    JobSizeClass::all()
        .into_iter()
        .find(|c| c.label().to_string() == s)
}

/// Writes the job log, one pipe-separated record per job.
pub fn write_log<W: Write>(mut w: W, jobs: &[Job]) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for j in jobs {
        writeln!(
            w,
            "{}|{}|{}|{}|{:.3}|{:.3}|{}|{}",
            j.id,
            j.project_id,
            j.num_nodes,
            j.size_class.label(),
            j.begin_s,
            j.end_s,
            app_class_code(j.app_class),
            j.seed,
        )?;
    }
    Ok(())
}

/// Parses a log written by [`write_log`].
///
/// The `domain` field is reconstructed from the project-id prefix against
/// `domain_codes` (the paper does exactly this join).
pub fn read_log<R: BufRead>(r: R, domain_codes: &[&str]) -> io::Result<Vec<Job>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        let err = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}: {line:?}", lineno + 1),
            )
        };
        if fields.len() != 8 {
            return Err(err("expected 8 fields"));
        }
        let project_id = fields[1].to_string();
        let domain = domain_codes
            .iter()
            .position(|c| project_id.starts_with(c))
            .ok_or_else(|| err("unknown project prefix"))?;
        out.push(Job {
            id: fields[0].parse().map_err(|_| err("bad job_id"))?,
            domain,
            project_id,
            num_nodes: fields[2].parse().map_err(|_| err("bad num_nodes"))?,
            size_class: parse_size_class(fields[3]).ok_or_else(|| err("bad size_class"))?,
            begin_s: fields[4].parse().map_err(|_| err("bad begin_s"))?,
            end_s: fields[5].parse().map_err(|_| err("bad end_s"))?,
            app_class: parse_app_class(fields[6]).ok_or_else(|| err("bad app_class"))?,
            seed: fields[7].parse().map_err(|_| err("bad seed"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::catalog;
    use crate::gen::{generate, TraceParams};
    use std::io::BufReader;

    #[test]
    fn log_round_trips() {
        let cat = catalog();
        let codes: Vec<&str> = cat.iter().map(|d| d.code).collect();
        let s = generate(
            TraceParams {
                nodes: 8,
                duration_s: 12.0 * 3600.0,
                seed: 4,
                min_job_s: 900.0,
            },
            &cat,
        );
        let mut buf = Vec::new();
        write_log(&mut buf, &s.jobs).unwrap();
        let back = read_log(BufReader::new(buf.as_slice()), &codes).unwrap();
        assert_eq!(back.len(), s.jobs.len());
        for (a, b) in s.jobs.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.project_id, b.project_id);
            assert_eq!(a.num_nodes, b.num_nodes);
            assert_eq!(a.size_class, b.size_class);
            assert_eq!(a.app_class, b.app_class);
            assert_eq!(a.seed, b.seed);
            assert!((a.begin_s - b.begin_s).abs() < 1e-3);
            assert!((a.end_s - b.end_s).abs() < 1e-3);
        }
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let log = format!("{HEADER}\n1|ZZZ123|4|E|0.0|100.0|MI|7\n");
        let e = read_log(BufReader::new(log.as_bytes()), &["CPH"]).unwrap_err();
        assert!(e.to_string().contains("unknown project prefix"));
    }

    #[test]
    fn malformed_records_are_errors() {
        for bad in [
            "1|CPH1|4|E|0.0|100.0|MI",   // missing field
            "x|CPH1|4|E|0.0|100.0|MI|7", // bad id
            "1|CPH1|4|Q|0.0|100.0|MI|7", // bad class
            "1|CPH1|4|E|0.0|100.0|??|7", // bad app class
        ] {
            let log = format!("{HEADER}\n{bad}\n");
            assert!(
                read_log(BufReader::new(log.as_bytes()), &["CPH"]).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
