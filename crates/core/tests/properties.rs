//! Property-based tests for the decomposition and projection.

use pmss_core::decompose::EnergyLedger;
use pmss_core::project::{project, ProjectionInput};
use pmss_core::Region;
use pmss_sched::JobSizeClass;
use pmss_telemetry::{FleetObserver, SampleCtx};
use pmss_workloads::table3;
use proptest::prelude::*;

fn job(domain: usize, size: JobSizeClass) -> pmss_sched::Job {
    pmss_sched::Job {
        id: 1 + domain as u64 * 8 + size.index() as u64,
        domain,
        project_id: "T".into(),
        num_nodes: 1,
        size_class: size,
        begin_s: 0.0,
        end_s: 1.0,
        app_class: pmss_workloads::AppClass::Mixed,
        seed: 0,
    }
}

fn arb_samples() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0usize..4, 0usize..5, 50.0..650.0f64), 1..400)
}

fn build_ledger(samples: &[(usize, usize, f64)]) -> EnergyLedger {
    let mut l = EnergyLedger::new(15.0);
    for &(d, s, w) in samples {
        let j = job(d, JobSizeClass::all()[s]);
        l.gpu_sample(
            &SampleCtx {
                node: 0,
                slot: 0,
                sku: 0,
                job: Some(&j),
            },
            0.0,
            w,
        );
    }
    l
}

proptest! {
    /// Region classification is a partition: every sample lands in exactly
    /// one region, and the fractions sum to one.
    #[test]
    fn region_fractions_partition(samples in arb_samples()) {
        let l = build_ledger(&samples);
        let f = l.gpu_hours_fractions();
        prop_assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let total = l.total();
        prop_assert!((total.seconds - samples.len() as f64 * 15.0).abs() < 1e-6);
    }

    /// Ledger energy equals the sum of sample power x window.
    #[test]
    fn ledger_conserves_energy(samples in arb_samples()) {
        let l = build_ledger(&samples);
        let direct: f64 = samples.iter().map(|&(_, _, w)| w * 15.0).sum();
        prop_assert!((l.total().joules - direct).abs() < 1e-6 * direct.max(1.0));
    }

    /// Filtered totals never exceed unfiltered totals, and the all-pass
    /// filter reproduces the attributed totals exactly.
    #[test]
    fn filtering_is_monotone(samples in arb_samples(), dom in 0usize..4) {
        let l = build_ledger(&samples);
        let all = l.region_totals_filtered(|_, _| true);
        let some = l.region_totals_filtered(|d, _| d == dom);
        for r in Region::all() {
            prop_assert!(some[r.index()].joules <= all[r.index()].joules + 1e-9);
            prop_assert!(some[r.index()].seconds <= all[r.index()].seconds + 1e-9);
        }
    }

    /// Projection linearity: scaling the ledger scales MWh rows linearly
    /// while leaving percentages unchanged.
    #[test]
    fn projection_scale_invariance(samples in arb_samples(), factor in 1.5..50.0f64) {
        let l = build_ledger(&samples);
        prop_assume!(l.total().joules > 0.0);
        let t3 = table3::compute_default();
        let p1 = project(ProjectionInput::from_ledger(&l), &t3).expect("projection");
        let p2 = project(ProjectionInput::from_ledger(&l.scaled(factor).expect("finite factor")), &t3)
            .expect("projection");
        for (a, b) in p1.freq_rows.iter().zip(&p2.freq_rows) {
            prop_assert!((b.ts_mwh - factor * a.ts_mwh).abs() < 1e-6 * b.ts_mwh.abs().max(1e-9));
            prop_assert!((b.savings_pct - a.savings_pct).abs() < 1e-9);
            prop_assert!((b.delta_t_pct - a.delta_t_pct).abs() < 1e-9);
        }
    }

    /// The dT=0 column never exceeds the total savings column when all
    /// savings are non-negative, and is bounded by it in magnitude overall.
    #[test]
    fn dt0_is_a_subset_of_total_savings(samples in arb_samples()) {
        let l = build_ledger(&samples);
        prop_assume!(l.total().joules > 0.0);
        let t3 = table3::compute_default();
        let p = project(ProjectionInput::from_ledger(&l), &t3).expect("projection");
        for r in p.freq_rows.iter().chain(&p.power_rows) {
            // dT=0 savings only counts modes also counted in the total.
            prop_assert!(r.savings_dt0_pct <= r.savings_pct.max(0.0) + 1e-9
                || r.ci_mwh < 0.0, "row {:?}", r);
        }
    }

    /// Merging ledgers is associative-equivalent to recording the union.
    #[test]
    fn ledger_merge_equals_union(
        a in arb_samples(),
        b in arb_samples(),
    ) {
        let mut la = build_ledger(&a);
        let lb = build_ledger(&b);
        la.merge(lb);
        let union: Vec<_> = a.iter().chain(&b).cloned().collect();
        let lu = build_ledger(&union);
        prop_assert!((la.total().joules - lu.total().joules).abs() < 1e-6);
        for r in Region::all() {
            prop_assert!(
                (la.region_totals()[r.index()].seconds
                    - lu.region_totals()[r.index()].seconds)
                    .abs()
                    < 1e-9
            );
        }
    }
}
