//! ASCII table rendering for the paper's tables — used by the `pmss-bench`
//! binaries that regenerate each artifact.

use pmss_workloads::Table3;

use crate::decompose::EnergyLedger;
use crate::heatmap::Heatmap;
use crate::modes::Region;
use crate::project::Projection;

/// Fixed-width table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders Table III (benchmark factors).
pub fn render_table3(t: &Table3) -> String {
    let mut out = String::from("(a) Frequency Cap\n");
    for (title, rows) in [
        ("(a) Frequency Cap", &t.freq_rows),
        ("(b) Power Cap", &t.power_rows),
    ] {
        let mut tb = Table::new(&[
            "cap", "P% VAI", "P% MB", "T% VAI", "T% MB", "E% VAI", "E% MB",
        ]);
        for r in rows {
            tb.row(vec![
                format!("{:.0}", r.setting.value()),
                format!("{:.1}", r.vai.power_pct),
                format!("{:.1}", r.mb.power_pct),
                format!("{:.1}", r.vai.runtime_pct),
                format!("{:.1}", r.mb.runtime_pct),
                format!("{:.1}", r.vai.energy_pct),
                format!("{:.1}", r.mb.energy_pct),
            ]);
        }
        if title.starts_with("(b)") {
            out.push_str("(b) Power Cap\n");
        }
        out.push_str(&tb.render());
    }
    out
}

/// Renders Table IV (modal decomposition) from a ledger.
pub fn render_table4(ledger: &EnergyLedger) -> String {
    let fractions = ledger.gpu_hours_fractions();
    let mut tb = Table::new(&[
        "Region",
        "Mode (region of operation)",
        "Range (W)",
        "GPU Hrs. (%)",
    ]);
    for (i, region) in Region::all().iter().enumerate() {
        let (lo, hi) = region.range_w();
        let range = if hi.is_infinite() {
            format!(">= {lo:.0}")
        } else if lo == 0.0 {
            format!("<= {hi:.0}")
        } else {
            format!("{lo:.0}-{hi:.0}")
        };
        tb.row(vec![
            format!("{}", i + 1),
            region.label().to_string(),
            range,
            format!("{:.1}", 100.0 * fractions[region.index()]),
        ]);
    }
    tb.render()
}

/// Renders Table V / VI (savings projection).
pub fn render_projection(p: &Projection, freq_only: bool) -> String {
    let mut out = format!(
        "Total GPU energy: {:.0} MWh\n(a) Frequency Cap\n",
        p.input.total_mwh()
    );
    let render_rows = |rows: &[crate::project::ProjectionRow]| -> String {
        let mut tb = Table::new(&[
            "cap",
            "C.I. (MWh)",
            "M.I. (MWh)",
            "T.S. (MWh)",
            "Savings (%)",
            "dT (%)",
            "Sav.% dT=0",
        ]);
        for r in rows {
            tb.row(vec![
                format!("{:.0}", r.setting.value()),
                format!("{:.1}", r.ci_mwh),
                format!("{:.1}", r.mi_mwh),
                format!("{:.1}", r.ts_mwh),
                format!("{:.1}", r.savings_pct),
                format!("{:.1}", r.delta_t_pct),
                format!("{:.1}", r.savings_dt0_pct),
            ]);
        }
        tb.render()
    };
    out.push_str(&render_rows(&p.freq_rows));
    if !freq_only {
        out.push_str("(b) Power Cap\n");
        out.push_str(&render_rows(&p.power_rows));
    }
    out
}

/// Renders a Fig. 10-style heatmap with domain labels.
pub fn render_heatmap(h: &Heatmap, domain_labels: &[&str], title: &str) -> String {
    let mut tb = Table::new(&["domain", "A", "B", "C", "D", "E"]);
    for (d, row) in h.rows.iter().enumerate() {
        let label = domain_labels.get(d).copied().unwrap_or("?");
        let mut cells = vec![label.to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        tb.row(cells);
    }
    format!("{title}\n{}", tb.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbb"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn table4_rendering_contains_all_regions() {
        let ledger = EnergyLedger::new(15.0);
        let s = render_table4(&ledger);
        for label in ["Latency", "Memory", "Compute", "Boosted"] {
            assert!(s.contains(label), "{s}");
        }
    }
}
